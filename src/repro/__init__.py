"""repro — a Python reproduction of gem5-Aladdin (MICRO 2016).

"Co-Designing Accelerators and SoC Interfaces using gem5-Aladdin",
Y.S. Shao, S. Xi, V. Srinivasan, G.-Y. Wei, D. Brooks.

The library couples a trace-based pre-RTL accelerator simulator (Aladdin,
:mod:`repro.aladdin`) with an event-driven SoC substrate (gem5-like bus /
DRAM / coherent caches / DMA / TLB / CPU driver, :mod:`repro.sim`,
:mod:`repro.memory`, :mod:`repro.dma`, :mod:`repro.cpu`), re-implements the
MachSuite workloads (:mod:`repro.workloads`), and layers the paper's
co-design methodology on top (:mod:`repro.core`).

Quick start::

    from repro import DesignPoint, run_design
    result = run_design("md-knn", DesignPoint(lanes=4, partitions=4))
    print(result.time_us, result.power_mw, result.edp)

See README.md for the architecture overview and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.config import DesignPoint, SoCConfig, PARAMETER_TABLE
from repro.core.soc import SoC, run_design
from repro.core.metrics import RunResult
from repro.core.sweep import (
    dma_design_space,
    cache_design_space,
    run_sweep,
)
from repro.core.sweeppool import (
    FailedPoint,
    SweepCache,
    SweepManifest,
    SweepMetrics,
    partition_results,
    sweep_key,
)
from repro.core.pareto import pareto_frontier, edp_optimal, sweep_pareto
from repro.core.scenarios import (
    SCENARIOS,
    Scenario,
    run_isolated,
    run_scenario_optimum,
    edp_improvement,
)
from repro.core import figures
from repro.aladdin import Accelerator, TraceBuilder, DDDG
from repro.workloads import (
    Workload,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
    workload_source,
    cached_trace,
    cached_ddg,
    CORE_EIGHT,
    ALL_WORKLOADS,
)
from repro.errors import (
    ReproError,
    ConfigError,
    FrontendError,
    SimulationError,
    SweepError,
    TraceError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "DesignPoint",
    "SoCConfig",
    "PARAMETER_TABLE",
    "SoC",
    "run_design",
    "RunResult",
    "dma_design_space",
    "cache_design_space",
    "run_sweep",
    "FailedPoint",
    "SweepCache",
    "SweepManifest",
    "SweepMetrics",
    "partition_results",
    "sweep_key",
    "pareto_frontier",
    "edp_optimal",
    "sweep_pareto",
    "SCENARIOS",
    "Scenario",
    "run_isolated",
    "run_scenario_optimum",
    "edp_improvement",
    "figures",
    "Accelerator",
    "TraceBuilder",
    "DDDG",
    "Workload",
    "get_workload",
    "register_workload",
    "unregister_workload",
    "workload_names",
    "workload_source",
    "cached_trace",
    "cached_ddg",
    "CORE_EIGHT",
    "ALL_WORKLOADS",
    "ReproError",
    "ConfigError",
    "FrontendError",
    "SimulationError",
    "SweepError",
    "TraceError",
    "WorkloadError",
    "__version__",
]
