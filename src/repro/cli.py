"""Command-line interface.

Mirrors how gem5-Aladdin is driven from the shell: configure a design
point, point it at a workload, get timing/power/area and runtime
breakdowns back.

    python -m repro list
    python -m repro run md-knn --lanes 8 --partitions 8
    python -m repro run spmv-crs --mem cache --cache-size 8 --cache-ports 4
    python -m repro sweep fft-transpose --density standard
    python -m repro validate
    python -m repro figure fig2b

Observability (see :mod:`repro.obs`):

    python -m repro stats gemm-ncubed --json stats.json
    python -m repro trace gemm-ncubed -o trace.json --debug-flags dma,sched
    python -m repro run aes-aes --debug-flags bus,dram
    REPRO_DEBUG_FLAGS=tlb python -m repro run spmv-crs --mem cache

Correctness checking (see :mod:`repro.check`):

    python -m repro run gemm-ncubed --check --check-report health.json
    python -m repro sweep md-knn --density quick --check
    REPRO_CHECK=1 python -m repro run fft-transpose --mem cache

Robust sweeps (see :mod:`repro.core.sweeppool`):

    python -m repro sweep md-knn --on-error collect --retries 2
    python -m repro sweep md-knn --jobs 4 --timeout 300
    python -m repro sweep md-knn --resume      # after a crash / Ctrl-C

Tiered-fidelity sweeps (see :mod:`repro.core.calibrate`):

    python -m repro calibrate aes-aes gemm-ncubed
    python -m repro sweep aes-aes --fidelity auto --density full
    python -m repro sweep aes-aes --fidelity fast   # predictions only

Sweep-as-a-service (see :mod:`repro.serve`):

    python -m repro serve --port 8642 --jobs 4
    python -m repro query pareto aes-aes --density quick
    python -m repro query edp aes-aes --no-evaluate   # warm-only
    python -m repro query stats --json -

Python kernel frontend (see :mod:`repro.frontend`):

    python -m repro trace-kernel my_kernel.py
    python -m repro workloads
    python -m repro sweep fir --kernel my_kernel.py --density quick
    python -m repro query pareto fir --kernel my_kernel.py
"""

import argparse
import sys
from contextlib import contextmanager

from repro.core.config import DesignPoint, SoCConfig
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.reporting import breakdown_table, format_table, pareto_table, percent
from repro.core.soc import run_design
from repro.core.sweep import cache_design_space, dma_design_space, run_sweep
from repro.workloads import cached_ddg, get_workload, workload_names


def build_parser():
    """Construct the argparse CLI tree."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="gem5-Aladdin reproduction: SoC/accelerator co-design "
                    "simulation (MICRO 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads (with traces)")

    wl_p = sub.add_parser(
        "workloads",
        help="enumerate what is sweepable: name, description, source "
             "(builtin|frontend); cheap — no traces are built")
    _add_kernel_args(wl_p)

    tk_p = sub.add_parser(
        "trace-kernel",
        help="trace the @kernel functions in a Python file "
             "(see repro.frontend)")
    tk_p.add_argument("file", metavar="FILE.py",
                      help="kernel file defining @kernel functions")
    tk_p.add_argument("--histogram", action="store_true",
                      help="print the per-opcode dynamic op histogram")

    run_p = sub.add_parser("run", help="run one (workload, design) offload")
    run_p.add_argument("workload", metavar="workload")
    run_p.add_argument("--check-report", metavar="PATH", default=None,
                       help="write the checker's health report as JSON "
                            "(implies --check)")
    _add_kernel_args(run_p)
    _add_design_args(run_p)
    _add_platform_args(run_p)

    prof_p = sub.add_parser(
        "profile",
        help="run one offload under the event-loop profiler")
    prof_p.add_argument("workload", metavar="workload")
    prof_p.add_argument("--top", type=int, default=None, metavar="N",
                        help="show only the N heaviest components")
    _add_kernel_args(prof_p)
    _add_design_args(prof_p)
    _add_platform_args(prof_p)

    stats_p = sub.add_parser(
        "stats",
        help="run one offload and dump the full stats registry")
    stats_p.add_argument("workload", metavar="workload")
    stats_p.add_argument("--json", metavar="PATH", default=None,
                         help="also write the registry as JSON "
                              "('-' for stdout)")
    stats_p.add_argument("--no-text", action="store_true",
                         help="suppress the stats.txt-style text dump")
    _add_kernel_args(stats_p)
    _add_design_args(stats_p)
    _add_platform_args(stats_p)

    trace_p = sub.add_parser(
        "trace",
        help="run one offload and export a Chrome trace_event timeline")
    trace_p.add_argument("workload", metavar="workload")
    trace_p.add_argument("-o", "--out", metavar="PATH", default="trace.json",
                         help="output path (default trace.json); load in "
                              "Perfetto or chrome://tracing")
    _add_kernel_args(trace_p)
    _add_design_args(trace_p)
    _add_platform_args(trace_p)

    pipe_p = sub.add_parser(
        "pipeline",
        help="chain accelerators producer->consumer through a "
             "back-pressured handoff buffer (see repro.core.pipeline)")
    pipe_p.add_argument("workloads", nargs="+", metavar="workload",
                        help="stage workloads, upstream first (>= 2)")
    pipe_p.add_argument("--handoff", choices=("dma", "cache"),
                        default="dma",
                        help="handoff buffer kind: scratchpad ring over "
                             "DMA with full/empty-bit back-pressure "
                             "(default) or aliased coherent-cache regions")
    pipe_p.add_argument("--buffer-bytes", type=int, default=4096,
                        metavar="N",
                        help="shared handoff ring size in bytes per link "
                             "(DMA handoff; default 4096)")
    pipe_p.add_argument("--double-buffer", action="store_true",
                        help="split each handoff ring into two slots so "
                             "producer fill overlaps consumer drain")
    pipe_p.add_argument("--lanes", type=int, default=4)
    pipe_p.add_argument("--partitions", type=int, default=4)
    pipe_p.add_argument("--solo-baseline", action="store_true",
                        help="also run each stage alone and report the "
                             "pipeline's speedup over serial offloads")
    pipe_p.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome trace_event timeline with "
                             "per-stage rows and per-link stall/park rows")
    pipe_p.add_argument("--json", metavar="PATH", default=None,
                        help="write the full pipeline result as JSON "
                             "('-' for stdout)")
    pipe_p.add_argument("--check-report", metavar="PATH", default=None,
                        help="write the checker's health report as JSON "
                             "(implies --check)")
    _add_kernel_args(pipe_p)
    _add_platform_args(pipe_p)

    sweep_p = sub.add_parser("sweep",
                             help="sweep both design spaces for a workload")
    sweep_p.add_argument("workload", metavar="workload")
    _add_kernel_args(sweep_p)
    sweep_p.add_argument("--density", default="standard",
                         choices=("quick", "standard", "full"))
    sweep_p.add_argument("--json", metavar="PATH",
                         help="write every design point as JSON")
    sweep_p.add_argument("--csv", metavar="PATH",
                         help="write every design point as CSV")
    sweep_p.add_argument("--profile", action="store_true",
                         help="profile the event loop across the whole "
                              "sweep (forces serial, uncached evaluation)")
    sweep_p.add_argument("--dump-stats", metavar="DIR", default=None,
                         help="write one stats-registry JSON per design "
                              "point into DIR (forces serial, uncached "
                              "evaluation)")
    _add_platform_args(sweep_p)
    _add_sweep_engine_args(sweep_p)
    _add_fidelity_args(sweep_p)

    cal_p = sub.add_parser(
        "calibrate",
        help="fit the fast analytic tier against exact simulation")
    cal_p.add_argument("workloads", nargs="+", metavar="workload",
                       help="workloads to calibrate (see 'repro list')")
    cal_p.add_argument("--density", default="standard",
                       choices=("quick", "standard", "full"),
                       help="grid whose corners/mid-edges are sampled "
                            "exactly (default standard)")
    _add_kernel_args(cal_p)
    _add_sweep_engine_args(cal_p)

    val_p = sub.add_parser("validate",
                           help="Figure 4: analytic model vs detailed sim")
    val_p.add_argument("workloads", nargs="*", default=None)

    fig_p = sub.add_parser("figure", help="regenerate one paper figure")
    fig_p.add_argument("name",
                       choices=("fig1", "fig2a", "fig2b", "fig4", "fig6a",
                                "fig6b", "fig7", "fig8", "fig9", "fig10",
                                "fig11"))
    fig_p.add_argument("--density", default="standard",
                       choices=("quick", "standard", "full"))
    _add_sweep_engine_args(fig_p)
    _add_fidelity_args(fig_p)

    serve_p = sub.add_parser(
        "serve",
        help="serve sweep/Pareto/EDP queries over HTTP against the "
             "result store (see repro.serve)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8642,
                         help="listen port (default 8642; 0 = ephemeral)")
    serve_p.add_argument("--jobs", type=_jobs_count, default=1, metavar="N",
                         help="worker processes for cold points "
                              "(0 = one per CPU; default 1)")
    serve_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="result store directory "
                              "(default .sweep-cache)")
    serve_p.add_argument("--fidelity", choices=("exact", "fast", "auto"),
                         default=None,
                         help="evaluation tier for cold points (default: "
                              "auto where a calibration exists, exact "
                              "otherwise)")
    serve_p.add_argument("--batch-window", type=float, default=0.02,
                         metavar="S",
                         help="seconds the dispatcher waits to coalesce "
                              "concurrent requests into one batch "
                              "(default 0.02)")
    serve_p.add_argument("--verbose", action="store_true",
                         help="log every HTTP request")

    query_p = sub.add_parser(
        "query",
        help="query a running 'repro serve' (sweep/pareto/edp/figure/"
             "stats/health)")
    query_p.add_argument("kind",
                         choices=("sweep", "pareto", "edp", "figure",
                                  "stats", "health", "workloads"))
    query_p.add_argument("workload", nargs="?", default=None,
                         help="workload to query (required for result "
                              "queries, ignored for stats/health)")
    query_p.add_argument("--kernel", metavar="FILE.py", action="append",
                         default=None, dest="kernel_files",
                         help="submit this kernel file's @kernel "
                              "functions to the server (POST /kernels) "
                              "before querying; repeatable")
    query_p.add_argument("--server", default=None, metavar="URL",
                         help="service base URL (default: "
                              "$REPRO_SERVE_URL or "
                              "http://127.0.0.1:8642)")
    query_p.add_argument("--space", choices=("dma", "cache", "both"),
                         default="both")
    query_p.add_argument("--density", default="standard",
                         choices=("quick", "standard", "full"))
    query_p.add_argument("--fidelity", choices=("exact", "fast", "auto"),
                         default=None,
                         help="evaluation tier for cold points "
                              "(default: the server's)")
    query_p.add_argument("--no-evaluate", action="store_true",
                         help="warm-only: answer from the store and "
                              "report missing points instead of "
                              "simulating them")
    query_p.add_argument("--json", metavar="PATH", default=None,
                         help="write the full JSON response "
                              "('-' for stdout)")
    return parser


def _add_kernel_args(parser):
    parser.add_argument("--kernel", metavar="FILE.py", action="append",
                        default=None, dest="kernel_files",
                        help="load and register the @kernel functions in "
                             "this Python file before resolving the "
                             "workload (see repro.frontend); repeatable")


def _load_kernel_files(args):
    """Register the kernels of every ``--kernel FILE`` (idempotent)."""
    from repro.frontend import load_kernel_file
    loaded = []
    for path in getattr(args, "kernel_files", None) or []:
        loaded.extend(load_kernel_file(path, replace=True))
    return loaded


def _resolve_workload(args, name=None):
    """Validate the requested workload name against the live registry."""
    _load_kernel_files(args)
    from repro.workloads import workload_names
    name = name if name is not None else args.workload
    names = workload_names()
    if name not in names:
        raise SystemExit(
            f"unknown workload {name!r}; available: {', '.join(names)} "
            f"(register your own with --kernel FILE.py)")
    return name


def _ii_value(text):
    """Parse --ii: 'auto' or a positive integer."""
    if text == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be 'auto' or an integer >= 1, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be 'auto' or an integer >= 1, got {text!r}")
    return value


def _add_design_args(parser):
    parser.add_argument("--lanes", type=int, default=4)
    parser.add_argument("--partitions", type=int, default=4)
    parser.add_argument("--mem", choices=("dma", "cache"), default="dma")
    parser.add_argument("--no-pipelined-dma", action="store_true")
    parser.add_argument("--no-triggered-compute", action="store_true")
    parser.add_argument("--double-buffer", action="store_true")
    parser.add_argument("--cache-size", type=int, default=8,
                        help="cache size in KB")
    parser.add_argument("--cache-line", type=int, default=64)
    parser.add_argument("--cache-ports", type=int, default=2)
    parser.add_argument("--cache-assoc", type=int, default=4)
    parser.add_argument("--prefetcher", choices=("none", "stride"),
                        default="stride")
    parser.add_argument("--pipelining",
                        choices=("off", "barriers", "modulo"),
                        default="barriers",
                        help="loop-pipelining discipline: synchronizing "
                             "round barriers (default), free overlap "
                             "(off), or modulo scheduling at an "
                             "initiation interval (modulo)")
    parser.add_argument("--ii", type=_ii_value, default="auto",
                        metavar="II",
                        help="initiation interval for --pipelining=modulo: "
                             "'auto' searches for the minimal feasible II "
                             "(default), an integer forces one")


def _add_platform_args(parser):
    parser.add_argument("--bus-width", type=int, default=32,
                        choices=(32, 64))
    parser.add_argument("--background-traffic", action="store_true")
    parser.add_argument("--debug-flags", metavar="FLAGS", default=None,
                        help="comma-separated debug-trace flags "
                             "(e.g. bus,dram,tlb,dma,sched or 'all'; "
                             "default: $REPRO_DEBUG_FLAGS)")
    # default=None (not False) so an absent flag falls back to $REPRO_CHECK.
    parser.add_argument("--check", action="store_true", default=None,
                        help="enable runtime correctness checking: MOESI "
                             "invariants, end-of-run leak audits, deadlock "
                             "diagnosis (default: $REPRO_CHECK)")


def _checker_from_args(args):
    """Resolve --check / $REPRO_CHECK into a Checker (or None)."""
    from repro.check import resolve_check
    enabled = getattr(args, "check", None)
    if enabled is None and getattr(args, "check_report", None):
        enabled = True
    return resolve_check(enabled)


@contextmanager
def _debug_flags(args):
    """Enable --debug-flags / REPRO_DEBUG_FLAGS for one command.

    Flags must be active *before* the SoC is built (components capture
    their tracers at construction); the previous state is restored on
    exit so in-process callers (tests) never leak flags.
    """
    import os

    from repro.obs import trace
    spec = getattr(args, "debug_flags", None)
    if spec is None:
        spec = os.environ.get(trace.ENV_VAR) or None
    with trace.flags(spec):
        yield trace


def _jobs_count(text):
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be >= 0 (0 = one per CPU), got {value}")
    return value


def _add_sweep_engine_args(parser):
    parser.add_argument("--jobs", type=_jobs_count, default=1, metavar="N",
                        help="evaluate design points over N worker "
                             "processes (0 = one per CPU; default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep result cache")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="sweep cache directory "
                             "(default .sweep-cache)")
    parser.add_argument("--on-error", choices=("raise", "collect"),
                        default="raise",
                        help="'collect' records a failing design point as "
                             "a structured FailedPoint and keeps sweeping "
                             "(default: abort on first failure)")
    parser.add_argument("--retries", type=int, default=0, metavar="N",
                        help="re-issue a failing design point up to N "
                             "extra attempts (default 0)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-point wall-clock limit in seconds; an "
                             "overdue point's worker is killed and the "
                             "point retried or failed")
    parser.add_argument("--resume", action="store_true",
                        help="resume an interrupted sweep: re-evaluate "
                             "only the missing/failed points recorded in "
                             "the cache + manifest (requires the cache)")


def _add_fidelity_args(parser):
    parser.add_argument("--fidelity", choices=("exact", "fast", "auto"),
                        default="exact",
                        help="simulation tier: exact co-simulation "
                             "(default), calibrated analytic predictions "
                             "(fast), or triage — fast model prunes, only "
                             "the candidate frontier is confirmed exactly "
                             "(auto)")
    parser.add_argument("--guard-band", type=float, default=None,
                        metavar="B",
                        help="assumed max relative error of the fast "
                             "model during auto pruning (default: the "
                             "calibration's validated error bound)")


def sweep_engine_from_args(args):
    """(parallel, cache_dir) for run_sweep from parsed CLI arguments."""
    from repro.core.sweeppool import DEFAULT_CACHE_DIR
    parallel = args.jobs if args.jobs != 1 else None
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    return parallel, cache_dir


def sweep_robustness_from_args(args):
    """Robust-engine kwargs for run_sweep from parsed CLI arguments."""
    if args.resume and args.no_cache:
        raise SystemExit("--resume needs the sweep cache; drop --no-cache")
    return {
        "on_error": args.on_error,
        "retries": args.retries,
        "timeout": args.timeout,
        "resume": args.resume,
    }


def design_from_args(args):
    """Build a DesignPoint from parsed CLI arguments."""
    return DesignPoint(
        lanes=args.lanes, partitions=args.partitions,
        mem_interface=args.mem,
        pipelined_dma=not args.no_pipelined_dma,
        dma_triggered_compute=not args.no_triggered_compute,
        double_buffer=args.double_buffer,
        cache_size_kb=args.cache_size, cache_line=args.cache_line,
        cache_ports=args.cache_ports, cache_assoc=args.cache_assoc,
        prefetcher=args.prefetcher,
        pipelining=args.pipelining, ii=args.ii)


def config_from_args(args):
    """Build an SoCConfig from parsed CLI arguments."""
    return SoCConfig(bus_width_bits=args.bus_width,
                     background_traffic=args.background_traffic)


def cmd_list(_args, out):
    """``repro list``: table of available workloads."""
    rows = []
    for name in workload_names():
        wl = get_workload(name)
        ddg = cached_ddg(name)
        rows.append([name, wl.description, ddg.num_nodes,
                     ddg.footprint_bytes()])
    out(format_table(["workload", "description", "trace_nodes",
                      "footprint_B"], rows))
    return 0


def cmd_workloads(args, out):
    """``repro workloads``: cheap sweepable-workload enumeration.

    Unlike ``repro list`` this never builds a trace, so it is safe to
    run against a large registry (or from a served deployment's cron);
    the ``source`` column separates the builtin suite from dynamically
    registered frontend kernels.
    """
    from repro.workloads.registry import workload_source
    _load_kernel_files(args)
    rows = []
    for name in workload_names():
        wl = get_workload(name)
        rows.append([name, wl.description, workload_source(name)])
    out(format_table(["workload", "description", "source"], rows))
    return 0


def cmd_trace_kernel(args, out):
    """``repro trace-kernel``: capture + verify the kernels in a file.

    Loads the file, registers its ``@kernel`` functions, runs both
    passes of each (pure-Python reference + proxy trace, cross-checked)
    and prints a per-kernel capture summary.  After this succeeds the
    kernels are sweepable by name: ``repro sweep <name> --kernel FILE``.
    """
    from repro.frontend import load_kernel_file
    from repro.workloads.registry import cached_trace
    kernels = load_kernel_file(args.file, replace=True)
    for wl in kernels:
        trace = cached_trace(wl.name)
        wl.verify(trace)
        arrays = ", ".join(
            f"{decl.name}[{decl.length}]x{decl.word_bytes}B/{decl.kind}"
            for decl in trace.arrays.values())
        footprint = sum(decl.size_bytes for decl in trace.arrays.values())
        out(f"kernel   : {wl.name}")
        if wl.description:
            out(f"  desc   : {wl.description}")
        out(f"  trace  : {trace.num_nodes} ops, "
            f"{trace.num_iterations()} parallel iterations, verified "
            f"against the Python reference")
        out(f"  arrays : {arrays} ({footprint} B)")
        if args.histogram:
            hist = trace.op_histogram()
            out("  ops    : " + " ".join(
                f"{op}={n}" for op, n in sorted(hist.items())))
    out("")
    out(f"{len(kernels)} kernel(s) registered; sweep with "
        f"'repro sweep <name> --kernel {args.file}'")
    return 0


def cmd_run(args, out):
    """``repro run``: one offload, metrics + breakdown + stats."""
    _resolve_workload(args)
    design = design_from_args(args)
    checker = _checker_from_args(args)
    with _debug_flags(args):
        result = run_design(args.workload, design, config_from_args(args),
                            check=checker if checker is not None else False)
    out(f"workload : {args.workload}")
    out(f"design   : {design!r}")
    out(f"time     : {result.time_us:.2f} us  "
        f"({result.accel_cycles} accelerator cycles)")
    out(f"power    : {result.power_mw:.3f} mW")
    out(f"area     : {result.area_mm2:.4f} mm^2")
    out(f"EDP      : {result.edp:.3e} J*s")
    out("")
    out(breakdown_table([result], title="cycle classes:"))
    out("")
    out("stats:")
    for key, value in sorted(result.stats.items()):
        if value is not None:
            out(f"  {key:20s} {value}")
    if checker is not None:
        audit = checker.last_audit or {}
        out("")
        out(f"check    : clean ({checker.invariant_checks} invariant "
            f"checks, {audit.get('components_audited', 0)} components "
            f"audited, 0 leaks)")
        if args.check_report:
            checker.dump_json(args.check_report)
            out(f"wrote health report to {args.check_report}")
    return 0


def cmd_profile(args, out):
    """``repro profile``: one offload under the event-loop profiler,
    reporting per-component event counts and callback wall time."""
    from repro.sim.profiling import EventProfiler
    _resolve_workload(args)
    design = design_from_args(args)
    profiler = EventProfiler()
    checker = _checker_from_args(args)
    result = run_design(args.workload, design, config_from_args(args),
                        profiler=profiler,
                        check=checker if checker is not None else False)
    out(f"workload : {args.workload}")
    out(f"design   : {design!r}")
    out(f"time     : {result.time_us:.2f} us  "
        f"({result.accel_cycles} accelerator cycles)")
    out("")
    out(profiler.report(top=args.top))
    return 0


def cmd_pipeline(args, out):
    """``repro pipeline``: chain N accelerators through handoff buffers."""
    import json as json_mod

    from repro.core.pipeline import AcceleratorPipeline
    from repro.errors import ConfigError
    from repro.units import ticks_to_us

    for name in args.workloads:
        _resolve_workload(args, name)
    design = DesignPoint(
        lanes=args.lanes, partitions=args.partitions,
        mem_interface="dma" if args.handoff == "dma" else "cache")
    checker = _checker_from_args(args)
    events = []
    with _debug_flags(args) as trace:
        if args.trace:
            trace.start_recording()
        try:
            try:
                pipe = AcceleratorPipeline(
                    [(w, design) for w in args.workloads],
                    handoff=args.handoff, buffer_bytes=args.buffer_bytes,
                    double_buffer=args.double_buffer,
                    cfg=config_from_args(args),
                    check=checker if checker is not None else False)
            except ConfigError as exc:
                raise SystemExit(str(exc))
            result = pipe.run()
        finally:
            if args.trace:
                events = trace.stop_recording()

    out(f"pipeline : {' -> '.join(args.workloads)}")
    ring = (f", {args.buffer_bytes} B ring"
            f"{' x2 (double buffered)' if args.double_buffer else ''}"
            if args.handoff == "dma" else ", aliased regions")
    out(f"handoff  : {args.handoff}{ring}")
    out(f"makespan : {ticks_to_us(result.makespan_ticks):.2f} us")
    out("")
    rows = [[f"stage{i}", r.workload, f"{r.time_us:.2f}",
             f"{r.power_mw:.3f}"]
            for i, r in enumerate(result.stage_results)]
    out(format_table(["stage", "workload", "time_us", "power_mW"], rows))
    out("")
    rows = [[f"link{l['link']}", f"{l['producer']}->{l['consumer']}",
             l["handoffs"], l["producer_stalls"], l["consumer_parks"],
             f"{ticks_to_us(l['producer_stall_ticks']):.2f}",
             f"{ticks_to_us(l['consumer_park_ticks']):.2f}",
             "yes" if l["ordering_clean"] else "NO"]
            for l in result.links]
    out(format_table(["link", "stages", "handoffs", "stalls", "parks",
                      "stall_us", "park_us", "ordered"], rows))
    if args.solo_baseline:
        out("")
        out(f"speedup  : {pipe.speedup_vs_serial():.3f}x vs serial "
            f"offloads (sum of solo runs / pipeline makespan)")
    if checker is not None:
        audit = checker.last_audit or {}
        out("")
        out(f"check    : clean ({checker.invariant_checks} invariant "
            f"checks, {audit.get('components_audited', 0)} components "
            f"audited, 0 leaks)")
        if args.check_report:
            checker.dump_json(args.check_report)
            out(f"wrote health report to {args.check_report}")
    if args.trace:
        from repro.obs.timeline import pipeline_timeline
        builder = pipeline_timeline(pipe, trace_events=events)
        num_events = builder.write(args.trace)
        out(f"timeline : {len(builder.rows())} rows, {num_events} events "
            f"({len(events)} trace markers) -> {args.trace}")
    if args.json:
        payload = json_mod.dumps(result.to_dict(), indent=2,
                                 sort_keys=True)
        if args.json == "-":
            out(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            out(f"wrote {args.json}")
    return 0


def cmd_sweep(args, out):
    """``repro sweep``: both design spaces, Pareto + optima."""
    from repro.core.sweeppool import SweepMetrics
    _resolve_workload(args)
    cfg = config_from_args(args)
    parallel, cache_dir = sweep_engine_from_args(args)
    metrics = SweepMetrics()
    profiler = None
    if args.profile:
        from repro.sim.profiling import EventProfiler
        profiler = EventProfiler()
    dump_dma = dump_cache = None
    if args.dump_stats:
        # One subdirectory per design space, so point indices don't clash.
        import os
        dump_dma = os.path.join(args.dump_stats, "dma")
        dump_cache = os.path.join(args.dump_stats, "cache")
    # An *explicit* --check builds one accumulating checker and forces the
    # serial engine (its counters live in this process).  Env-only checking
    # ($REPRO_CHECK) stays on the parallel/cached path: check=None defers
    # resolution to each run_design call, and worker processes inherit the
    # variable.
    checker = _checker_from_args(args) if args.check else None
    robust = sweep_robustness_from_args(args)
    if args.profile or args.dump_stats or checker is not None:
        if args.fidelity != "exact":
            raise SystemExit("--fidelity fast/auto is incompatible with "
                             "--profile/--dump-stats/--check: the fast "
                             "tier runs no events to profile, dump or "
                             "check")
        parallel, cache_dir = None, None
        # The forced-serial engine fills metrics too, but cannot resume
        # (no cache) or enforce a per-point timeout (no workers).
        robust["resume"] = False
        robust["timeout"] = None
    dma_space = dma_design_space(args.density)
    cache_space = cache_design_space(args.density)
    calibration = _calibration_for_sweep(args, cfg, parallel, cache_dir,
                                         out)
    if args.resume and cache_dir is not None:
        _print_resume_summary(out, args.workload, cfg, cache_dir,
                              [("DMA", dma_space), ("cache", cache_space)])
    dma = run_sweep(args.workload, dma_space, cfg,
                    parallel=parallel, cache_dir=cache_dir, metrics=metrics,
                    profiler=profiler, dump_stats=dump_dma, check=checker,
                    fidelity=args.fidelity, calibration=calibration,
                    guard_band=args.guard_band, **robust)
    cache = run_sweep(args.workload, cache_space, cfg,
                      parallel=parallel, cache_dir=cache_dir,
                      metrics=metrics, profiler=profiler,
                      dump_stats=dump_cache, check=checker,
                      fidelity=args.fidelity, calibration=calibration,
                      guard_band=args.guard_band, **robust)
    from repro.core.sweeppool import partition_results
    dma_ok, dma_failed = partition_results(dma)
    cache_ok, cache_failed = partition_results(cache)
    failed = dma_failed + cache_failed
    if args.fidelity == "auto":
        # Frontiers/optima over exact-confirmed points only; the triage
        # guarantees the pruned (fast) points are dominated.
        dma_ok = [r for r in dma_ok if r.fidelity == "exact"]
        cache_ok = [r for r in cache_ok if r.fidelity == "exact"]
    if args.json or args.csv:
        from repro.core.export import results_to_csv, results_to_json
        ok = dma_ok + cache_ok
        if args.json:
            results_to_json(ok, args.json)
            out(f"wrote {len(ok)} design points to {args.json}")
        if args.csv:
            results_to_csv(ok, args.csv)
            out(f"wrote {len(ok)} design points to {args.csv}")
    tag = " (predicted)" if args.fidelity == "fast" else ""
    out(pareto_table(pareto_frontier(dma_ok),
                     f"DMA Pareto frontier{tag}:"))
    out("")
    out(pareto_table(pareto_frontier(cache_ok),
                     f"cache Pareto frontier{tag}:"))
    if dma_ok and cache_ok:
        best_dma, best_cache = edp_optimal(dma_ok), edp_optimal(cache_ok)
        out("")
        out(f"DMA   EDP optimum: {best_dma.design!r}  "
            f"edp={best_dma.edp:.3e}")
        out(f"cache EDP optimum: {best_cache.design!r}  "
            f"edp={best_cache.edp:.3e}")
        winner = "DMA" if best_dma.edp <= best_cache.edp else "cache"
        out(f"-> {winner} wins for {args.workload}")
    out("")
    if checker is not None:
        out(f"check: clean across {checker.audits} design points "
            f"({checker.invariant_checks} invariant checks, 0 violations, "
            f"0 leaks)")
    if args.dump_stats:
        out(f"wrote per-point stats registries under {args.dump_stats}/")
    if profiler is not None:
        out(profiler.report())
    elif metrics is not None:
        out(metrics.report())
    if calibration is not None:
        _print_fidelity_report(out, args, calibration, metrics)
    if failed:
        out("")
        out(f"FAILED points: {len(failed)} "
            f"(re-run with --resume to retry them)")
        for fp in failed:
            out(f"  {fp.design!r}: [{fp.kind}] {fp.error} "
                f"(attempts={fp.attempts})")
        return 2
    return 0


def _calibration_for_sweep(args, cfg, parallel, cache_dir, out):
    """Load (or fit on the spot) the calibration a fast/auto sweep needs."""
    if args.fidelity == "exact":
        return None
    from repro.core.calibrate import Calibration, calibrate_workload
    calibration = None
    if cache_dir is not None:
        calibration = Calibration.load(cache_dir, args.workload, cfg)
    if calibration is None:
        out(f"no calibration for {args.workload}; sampling exact "
            f"simulations to fit the fast tier "
            f"(persist with 'repro calibrate')...")
        calibration = calibrate_workload(args.workload, cfg,
                                         density=args.density,
                                         cache_dir=cache_dir,
                                         parallel=parallel)
    return calibration


def _print_fidelity_report(out, args, calibration, metrics):
    """The measured fast-vs-exact error report of a fast/auto sweep."""
    if args.guard_band is not None:
        band_t = band_p = args.guard_band
    else:
        band_t = calibration.time_bound
        band_p = calibration.power_bound
    out("")
    out(f"fidelity   : {args.fidelity} (guard band: time "
        f"{percent(band_t)}, power {percent(band_p)})")
    if args.fidelity == "auto" and metrics.fast_time_errors:
        terr = metrics.fast_time_error_max
        perr = metrics.fast_power_error_max
        verdict = ("within" if terr <= band_t and perr <= band_p
                   else "EXCEEDS")
        out(f"fast error : measured max time {percent(terr)}, power "
            f"{percent(perr)} on {len(metrics.fast_time_errors)} "
            f"confirmed points — {verdict} the guard band")


def cmd_calibrate(args, out):
    """``repro calibrate``: fit + persist the fast tier per workload."""
    from repro.core.calibrate import calibrate_workload
    from repro.core.sweeppool import SweepMetrics
    _load_kernel_files(args)
    parallel, cache_dir = sweep_engine_from_args(args)
    available = workload_names()
    unknown = [w for w in args.workloads if w not in available]
    if unknown:
        raise SystemExit(f"unknown workload(s): {', '.join(unknown)} "
                         f"(see 'repro workloads')")
    metrics = SweepMetrics()
    for workload in args.workloads:
        cal = calibrate_workload(workload, density=args.density,
                                 cache_dir=cache_dir, parallel=parallel,
                                 metrics=metrics)
        rows = [[key, str(fit.samples), percent(fit.time_error_max),
                 percent(fit.power_error_max), "ok"]
                for key, fit in sorted(cal.classes.items())]
        rows += [[key, str(fit.samples), percent(fit.time_error_max),
                  percent(fit.power_error_max), "REJECTED"]
                 for key, fit in sorted(cal.rejected.items())]
        out(format_table(["class", "samples", "time err", "power err",
                          "fit"], rows))
        out(f"{workload}: error bound time {percent(cal.time_bound)}, "
            f"power {percent(cal.power_bound)} "
            f"(worst in-sample error x safety margin)")
        if cal.rejected:
            out(f"rejected: {', '.join(sorted(cal.rejected))} — these "
                f"classes fall back to exact simulation under "
                f"--fidelity auto")
        if cache_dir is not None:
            out(f"saved to {cal.path_for(cache_dir, workload)}")
        else:
            out("not persisted (--no-cache); pass a cache dir to reuse it")
        out("")
    out(metrics.report())
    return 0


def _print_resume_summary(out, workload, cfg, cache_dir, spaces):
    """Report what a --resume sweep is about to skip / re-evaluate."""
    from repro.core.sweeppool import SweepManifest
    for label, designs in spaces:
        doc = SweepManifest.peek(cache_dir, workload, designs, cfg)
        if doc is None:
            out(f"resume {label:5s}: no manifest (fresh sweep of "
                f"{len(designs)} points)")
        else:
            out(f"resume {label:5s}: {doc['done']} done, "
                f"{doc['failed']} failed, {doc['pending']} pending "
                f"of {doc['points']} points")


def cmd_stats(args, out):
    """``repro stats``: one offload, full stats-registry dump.

    Prints a gem5-style ``stats.txt`` block; ``--json PATH`` additionally
    writes the registry as structured JSON (``-`` prints it).
    """
    import json as _json

    from repro.core.soc import SoC
    from repro.obs.stats import StatRegistry
    _resolve_workload(args)
    design = design_from_args(args)
    registry = StatRegistry()
    checker = _checker_from_args(args)
    with _debug_flags(args):
        soc = SoC(args.workload, design, config_from_args(args),
                  check=checker if checker is not None else False)
        soc.reg_stats(registry)
        result = soc.run()
    out(f"workload : {args.workload}")
    out(f"design   : {design!r}")
    out(f"time     : {result.time_us:.2f} us  "
        f"({result.accel_cycles} accelerator cycles)")
    if not args.no_text:
        out("")
        out(registry.dump_text())
    if args.json:
        if args.json == "-":
            out(_json.dumps(registry.to_json(), indent=2, sort_keys=True))
        else:
            registry.dump_json(args.json)
            out(f"wrote {len(registry)} stats to {args.json}")
    return 0


def cmd_trace(args, out):
    """``repro trace``: one offload, Chrome trace_event timeline export.

    Busy intervals of every engine become timeline rows; any enabled
    ``--debug-flags`` become instant markers on per-flag rows.  Open the
    output in Perfetto (ui.perfetto.dev) or ``chrome://tracing``.
    """
    from repro.core.soc import SoC
    from repro.obs.timeline import soc_timeline
    _resolve_workload(args)
    design = design_from_args(args)
    checker = _checker_from_args(args)
    with _debug_flags(args) as trace:
        trace.start_recording()
        try:
            soc = SoC(args.workload, design, config_from_args(args),
                      check=checker if checker is not None else False)
            result = soc.run()
        finally:
            events = trace.stop_recording()
    builder = soc_timeline(soc, trace_events=events)
    num_events = builder.write(args.out)
    out(f"workload : {args.workload}")
    out(f"design   : {design!r}")
    out(f"time     : {result.time_us:.2f} us  "
        f"({result.accel_cycles} accelerator cycles)")
    out(f"timeline : {len(builder.rows())} rows, {num_events} events "
        f"({len(events)} trace markers) -> {args.out}")
    out("view     : load in https://ui.perfetto.dev or chrome://tracing")
    return 0


def cmd_validate(args, out):
    """``repro validate``: Figure 4's model-vs-sim errors."""
    from repro.core.validation import validate_suite
    from repro.workloads import CORE_EIGHT
    workloads = args.workloads or CORE_EIGHT
    suite = validate_suite(workloads)
    rows = [[r.workload, percent(r.total_error),
             percent(r.component_errors["flush"]),
             percent(r.component_errors["dma"]),
             percent(r.component_errors["compute"])]
            for r in suite["rows"]]
    out(format_table(["workload", "total", "flush", "dma", "compute"], rows))
    out(f"average total error: {percent(suite['avg_total_error'])} "
        f"(paper vs hardware: 6.4% dma / 5% compute / 5% flush)")
    return 0


def cmd_figure(args, out):
    """``repro figure``: regenerate one paper figure."""
    from repro.core import figures
    from repro.core.sweeppool import SweepMetrics
    parallel, cache_dir = sweep_engine_from_args(args)
    robust = sweep_robustness_from_args(args)
    metrics = SweepMetrics()
    figures.set_sweep_options(parallel=parallel, cache_dir=cache_dir,
                              metrics=metrics, fidelity=args.fidelity,
                              guard_band=args.guard_band, **robust)
    try:
        fn = getattr(figures, args.name)
        if args.name in ("fig1", "fig8", "fig9", "fig10"):
            data = fn(density=args.density)
        else:
            data = fn()
    finally:
        figures.set_sweep_options()
    out(_render_figure(args.name, data))
    if metrics.points:
        out("")
        out(metrics.report())
    return 0


def _render_figure(name, data):
    """A compact text rendering; the benchmarks print richer tables."""
    from repro.core.reporting import breakdown_table
    if name == "fig2a":
        return breakdown_table([data], title="Figure 2a")
    if name == "fig2b":
        return breakdown_table(data, title="Figure 2b")
    if name == "fig4":
        lines = [f"{r.workload:20s} total_err={percent(r.total_error)}"
                 for r in data["rows"]]
        lines.append(f"avg={percent(data['avg_total_error'])}")
        return "\n".join(lines)
    if name == "fig10":
        lines = []
        for w, per in data["rows"].items():
            vals = " ".join(f"{k}={per[k]['improvement']:.2f}x"
                            for k in per)
            lines.append(f"{w:20s} {vals}")
        lines.append(f"averages: {data['averages']}")
        return "\n".join(lines)
    if name == "fig11":
        lines = [f"Figure 11: II-vs-EDP, {data['workload']}"]
        pareto = {id(r) for r in data["pareto"]}
        for row in data["rows"]:
            mode = row["pipelining"]
            if mode == "modulo":
                mode = (f"modulo ii={row['ii']} "
                        f"(req {row['ii_requested']}, "
                        f"rec {row['rec_mii']}, res {row['res_mii']})")
            mark = " *" if id(row["result"]) in pareto else ""
            lines.append(f"  {mode:40s} time={row['time_us']:.2f}us "
                         f"edp={row['edp_js']:.3e}{mark}")
        lines.append(f"pareto points: {len(data['pareto'])} "
                     f"(* marks frontier)")
        return "\n".join(lines)
    return repr(data)


def cmd_serve(args, out):
    """``repro serve``: HTTP/JSON sweep service over the result store."""
    from repro.core.sweeppool import DEFAULT_CACHE_DIR
    from repro.serve.httpd import serve
    serve(args.cache_dir or DEFAULT_CACHE_DIR, host=args.host,
          port=args.port, jobs=args.jobs, fidelity=args.fidelity,
          batch_window=args.batch_window, verbose=args.verbose, out=out)
    return 0


def cmd_query(args, out):
    """``repro query``: one request against a running ``repro serve``."""
    import json as _json
    import os

    from repro.serve.client import ServiceClient, ServiceError
    server = (args.server or os.environ.get("REPRO_SERVE_URL")
              or "http://127.0.0.1:8642")
    client = ServiceClient(server)
    try:
        for path in args.kernel_files or []:
            with open(path) as fh:
                doc = client.submit_kernel(fh.read(),
                                           filename=os.path.basename(path))
            out(f"registered kernel(s) on {server}: "
                f"{', '.join(k['name'] for k in doc['kernels'])}")
        if args.kind == "health":
            response = client.health()
        elif args.kind == "stats":
            response = client.stats()
        elif args.kind == "workloads":
            response = {"workloads": client.workloads()}
        else:
            if not args.workload:
                raise SystemExit(
                    f"'repro query {args.kind}' needs a workload "
                    f"(see 'repro query workloads')")
            response = client.query(args.kind, args.workload,
                                    space=args.space, density=args.density,
                                    fidelity=args.fidelity,
                                    evaluate=not args.no_evaluate)
    except ServiceError as exc:
        raise SystemExit(f"query failed: {exc}")
    except OSError as exc:
        raise SystemExit(f"cannot reach {server}: {exc}")
    _print_query_summary(args.kind, response, out)
    if args.json == "-":
        out(_json.dumps(response, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as fh:
            _json.dump(response, fh, indent=2, sort_keys=True)
            fh.write("\n")
        out(f"wrote response to {args.json}")
    return 0


def _print_query_summary(kind, response, out):
    """Human-readable one-screen summary of a query response."""
    if kind == "health":
        out(f"status   : {response['status']}")
        out(f"store    : {response['cache_dir']} "
            f"({response['cached_points']} cached points)")
        out(f"fidelity : {response['fidelity']}")
        return
    if kind == "stats":
        svc = response["service"]
        out(f"requests : {svc['requests']} ({svc['points']} points)")
        out(f"served   : {svc['hits']} hits, {svc['joins']} joins, "
            f"{svc['dispatches']} dispatches "
            f"({svc['failures']} failed)")
        out(f"latency  : p50 {svc['latency_p50'] * 1e3:.1f} ms, "
            f"p95 {svc['latency_p95'] * 1e3:.1f} ms; "
            f"queue depth {svc['queue_depth']}")
        return
    if kind == "workloads":
        out(" ".join(response["workloads"]))
        return
    svc = response["service"]
    out(f"{kind} {response['workload']}: {response['points']} points "
        f"({svc['hits']} hits, {svc['joins']} joins, "
        f"{svc['dispatches']} dispatches, {response['missing']} missing)")
    if kind == "pareto":
        out(f"frontier : {len(response['frontier'])} points")
    if kind in ("pareto", "edp") and response.get("edp_optimal"):
        opt = response["edp_optimal"]
        out(f"edp opt  : {opt['mem_interface']} lanes={opt['lanes']} "
            f"time={opt['time_us']:.2f}us power={opt['power_mw']:.2f}mW "
            f"edp={opt['edp_js']:.3e}")
    if kind == "figure":
        for interface, data in sorted(response["interfaces"].items()):
            out(f"{interface:5s}    : frontier {len(data['frontier'])} "
                f"points")
    if kind == "sweep":
        out(f"results  : {len(response['results'])} records")


COMMANDS = {
    "list": cmd_list,
    "workloads": cmd_workloads,
    "trace-kernel": cmd_trace_kernel,
    "run": cmd_run,
    "pipeline": cmd_pipeline,
    "profile": cmd_profile,
    "stats": cmd_stats,
    "trace": cmd_trace,
    "sweep": cmd_sweep,
    "calibrate": cmd_calibrate,
    "validate": cmd_validate,
    "figure": cmd_figure,
    "serve": cmd_serve,
    "query": cmd_query,
}


def main(argv=None, out=print):
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args, out)


if __name__ == "__main__":
    sys.exit(main())
