"""Memory request/response plumbing.

All memory-side components (bus, DRAM, caches, DMA) exchange
:class:`MemRequest` objects and deliver results through callbacks, mirroring
gem5's port/packet architecture in a lightweight way.
"""

import itertools

_req_ids = itertools.count()


class MemRequest:
    """One memory transaction.

    Attributes:
        addr: physical byte address.
        size: transfer size in bytes.
        is_write: write vs read.
        requester: name of the issuing component (for stats/debug).
        callback: invoked as ``callback(req)`` when the request completes.
        is_prefetch: demand miss vs prefetcher-issued.
    """

    __slots__ = (
        "req_id",
        "addr",
        "size",
        "is_write",
        "requester",
        "callback",
        "is_prefetch",
        "issue_tick",
        "grant_tick",
        "complete_tick",
    )

    def __init__(self, addr, size, is_write, requester="", callback=None,
                 is_prefetch=False):
        self.req_id = next(_req_ids)
        self.addr = addr
        self.size = size
        self.is_write = is_write
        self.requester = requester
        self.callback = callback
        self.is_prefetch = is_prefetch
        self.issue_tick = None
        self.grant_tick = None
        self.complete_tick = None

    def complete(self, now):
        """Mark completion at ``now`` and fire the callback, if any."""
        self.complete_tick = now
        if self.callback is not None:
            self.callback(self)

    def __repr__(self):
        kind = "W" if self.is_write else "R"
        return (f"MemRequest(#{self.req_id} {kind} addr=0x{self.addr:x} "
                f"size={self.size} from={self.requester})")


class ReadResp:
    """Completion record handed to accelerator-side callbacks."""

    __slots__ = ("addr", "latency_ticks")

    def __init__(self, addr, latency_ticks):
        self.addr = addr
        self.latency_ticks = latency_ticks
