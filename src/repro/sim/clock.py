"""Clock domains.

The SoC modeled in the paper mixes clock domains: the Zedboard's Cortex-A9
runs at 667 MHz while the accelerators and AXI fabric run at 100 MHz (chosen
so a 4 KB flush and a 4 KB DMA take equal time — Section IV-B1).  A
:class:`ClockDomain` converts between cycles and ticks and aligns events to
clock edges.
"""

from repro.units import freq_mhz_to_period_ticks


class ClockDomain:
    """A fixed-frequency clock.

    >>> accel = ClockDomain(100)     # 100 MHz -> 10 ns period
    >>> accel.period
    10000
    >>> accel.cycles_to_ticks(3)
    30000
    """

    __slots__ = ("freq_mhz", "period")

    def __init__(self, freq_mhz):
        self.freq_mhz = freq_mhz
        self.period = freq_mhz_to_period_ticks(freq_mhz)

    def cycles_to_ticks(self, cycles):
        """Ticks spanned by ``cycles`` clock cycles (rounded per cycle)."""
        if type(cycles) is int:
            # Integer cycle counts (the hot path) need no rounding.
            return cycles * self.period
        return int(round(cycles * self.period))

    def ticks_to_cycles(self, ticks):
        """Whole cycles elapsed in ``ticks`` (floor)."""
        return ticks // self.period

    def next_edge(self, now):
        """The first clock edge at or after tick ``now``."""
        remainder = now % self.period
        if remainder == 0:
            return now
        return now + (self.period - remainder)

    def edge_after(self, now):
        """The first clock edge strictly after tick ``now``."""
        return self.next_edge(now + 1)


# Default domains used throughout the paper's experiments.
CPU_CLOCK_MHZ = 667
ACCEL_CLOCK_MHZ = 100
BUS_CLOCK_MHZ = 100
