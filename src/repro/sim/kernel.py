"""Event queue and simulator driver.

This is the heart of the gem5-like substrate: a single global event queue
ordered by (tick, sequence).  Every component — the accelerator datapath,
caches, DMA engine, bus, DRAM, CPU driver — schedules callbacks on the same
queue, which is what lets the simulator capture the *dynamic interactions*
between accelerators and the SoC that the paper is about.

Ticks are picoseconds (see :mod:`repro.units`).
"""

import heapq

from repro.errors import SimulationError


class EventQueue:
    """A monotonically ordered callback queue.

    Events scheduled at the same tick fire in scheduling order (a stable
    sequence number breaks ties), which keeps simulations deterministic.
    """

    def __init__(self):
        self._heap = []
        self._seq = 0
        self.now = 0

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run later in the
        current tick, after all previously scheduled same-tick events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute tick ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event at tick {when}, now is {self.now}"
            )
        heapq.heappush(self._heap, (when, self._seq, callback, args))
        self._seq += 1

    def empty(self):
        """True when no events remain."""
        return not self._heap

    def peek_time(self):
        """Tick of the next pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Pop and run the next event.  Returns False when the queue is empty."""
        if not self._heap:
            return False
        when, _seq, callback, args = heapq.heappop(self._heap)
        self.now = when
        callback(*args)
        return True

    def run(self, max_events=50_000_000, until=None):
        """Drain the queue.

        ``max_events`` guards against livelock (a runaway simulation raises
        :class:`SimulationError` rather than spinning forever).  ``until``
        optionally stops the simulation once the next event would fire past
        that tick.
        """
        executed = 0
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                self.now = until
                return executed
            if executed >= max_events:
                raise SimulationError(
                    f"event budget exceeded ({max_events} events): likely livelock"
                )
            self.step()
            executed += 1
        return executed


class Simulator:
    """Owns an event queue plus end-of-simulation bookkeeping.

    Components register completion flags through :meth:`add_done_dependency`;
    the simulation is *done* when every registered dependency reports done.
    This mirrors gem5's exit-event idiom without global state.
    """

    def __init__(self):
        self.queue = EventQueue()
        self._done_checks = []

    @property
    def now(self):
        return self.queue.now

    def schedule(self, delay, callback, *args):
        """Schedule a relative-delay event on the queue."""
        self.queue.schedule(delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        """Schedule an absolute-tick event on the queue."""
        self.queue.schedule_at(when, callback, *args)

    def add_done_dependency(self, check):
        """Register a zero-arg callable that returns True once its component
        has finished all its work."""
        self._done_checks.append(check)

    def all_done(self):
        """True when every registered component reports done."""
        return all(check() for check in self._done_checks)

    def run(self, max_events=50_000_000):
        """Run until the event queue drains, then verify completion.

        Raises :class:`SimulationError` if the queue drained while some
        component still had outstanding work — that is a deadlock (e.g. a
        load waiting on a full/empty bit that no DMA will ever set).
        """
        executed = self.queue.run(max_events=max_events)
        if not self.all_done():
            pending = [check for check in self._done_checks if not check()]
            raise SimulationError(
                f"simulation deadlocked: {len(pending)} component(s) still busy "
                f"at tick {self.now} with an empty event queue"
            )
        return executed
