"""Event queue and simulator driver.

This is the heart of the gem5-like substrate: a single global event queue
ordered by (tick, sequence).  Every component — the accelerator datapath,
caches, DMA engine, bus, DRAM, CPU driver — schedules callbacks on the same
queue, which is what lets the simulator capture the *dynamic interactions*
between accelerators and the SoC that the paper is about.

Ticks are picoseconds (see :mod:`repro.units`).

Hot-path notes (see DESIGN.md "Kernel fast paths"):

* Same-tick events bypass the heap entirely: an event scheduled for the
  current tick lands in a plain FIFO.  Sequence ordering is preserved
  because every heap event at tick T was scheduled *before* ``now``
  reached T, so all of its sequence numbers precede any FIFO entry —
  draining heap-at-T before the FIFO reproduces (tick, seq) order exactly.
* :meth:`EventQueue.run` drains inline rather than re-dispatching through
  :meth:`step` per event, and binds the heap/FIFO to locals.
* Profiling (:mod:`repro.sim.profiling`) is opt-in: when no profiler is
  attached, the only cost is one ``is None`` check per :meth:`run` call.
"""

import heapq
from collections import deque

from repro.errors import DeadlockError, SimulationError
from repro.obs import trace


class EventQueue:
    """A monotonically ordered callback queue.

    Events scheduled at the same tick fire in scheduling order (a stable
    sequence number breaks ties), which keeps simulations deterministic.
    """

    __slots__ = ("_heap", "_fifo", "_seq", "now", "_profiler")

    def __init__(self):
        self._heap = []
        self._fifo = deque()   # events for the *current* tick, FIFO order
        self._seq = 0
        self.now = 0
        self._profiler = None

    def set_profiler(self, profiler):
        """Attach (or with ``None`` detach) an event profiler.

        While attached, :meth:`run` times every callback and attributes
        counts and wall time per component — see
        :class:`repro.sim.profiling.EventProfiler`.
        """
        self._profiler = profiler

    @property
    def profiler(self):
        return self._profiler

    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` ticks from now.

        ``delay`` must be non-negative; zero-delay events run later in the
        current tick, after all previously scheduled same-tick events.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        if delay == 0:
            self._fifo.append((callback, args))
            return
        heapq.heappush(self._heap, (self.now + delay, self._seq, callback, args))
        self._seq += 1

    def schedule_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute tick ``when``."""
        if when <= self.now:
            if when == self.now:
                self._fifo.append((callback, args))
                return
            raise SimulationError(
                f"cannot schedule event at tick {when}, now is {self.now}"
            )
        heapq.heappush(self._heap, (when, self._seq, callback, args))
        self._seq += 1

    def empty(self):
        """True when no events remain."""
        return not self._fifo and not self._heap

    def peek_time(self):
        """Tick of the next pending event, or None when empty."""
        if self._heap and self._heap[0][0] == self.now:
            return self.now
        if self._fifo:
            return self.now
        return self._heap[0][0] if self._heap else None

    def step(self):
        """Pop and run the next event.  Returns False when the queue is empty.

        Heap events already due at the current tick run before FIFO
        entries: the FIFO only ever holds events scheduled *while* ``now``
        was the current tick, whose sequence numbers are necessarily later.
        """
        heap = self._heap
        if heap and heap[0][0] == self.now:
            _when, _seq, callback, args = heapq.heappop(heap)
            callback(*args)
            return True
        if self._fifo:
            callback, args = self._fifo.popleft()
            callback(*args)
            return True
        if not heap:
            return False
        when, _seq, callback, args = heapq.heappop(heap)
        self.now = when
        callback(*args)
        return True

    def run(self, max_events=50_000_000, until=None):
        """Drain the queue.

        ``max_events`` guards against livelock (a runaway simulation raises
        :class:`SimulationError` rather than spinning forever).  ``until``
        optionally stops the simulation once the next event would fire past
        that tick; ``now`` advances to ``until`` either way — including
        when the queue drains before the horizon.
        """
        if self._profiler is not None:
            return self._run_profiled(max_events, until)
        executed = 0
        heap = self._heap
        fifo = self._fifo
        pop = heapq.heappop
        popleft = fifo.popleft
        while True:
            # Heap events already due at the current tick first (their
            # sequence numbers predate everything in the FIFO), then the
            # same-tick FIFO, then advance to the next heap tick.
            if heap and heap[0][0] == self.now:
                if executed >= max_events:
                    raise _budget_error(max_events)
                callback, args = pop(heap)[2:]
            elif fifo:
                if executed >= max_events:
                    raise _budget_error(max_events)
                callback, args = popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return executed
                if executed >= max_events:
                    raise _budget_error(max_events)
                entry = pop(heap)
                self.now = entry[0]
                callback, args = entry[2:]
            else:
                if until is not None and self.now < until:
                    self.now = until
                return executed
            callback(*args)
            executed += 1

    def _run_profiled(self, max_events, until):
        """The :meth:`run` loop with per-callback wall-time attribution.

        Kept separate so the unprofiled hot loop pays nothing for the
        instrumentation.
        """
        profiler = self._profiler
        executed = 0
        heap = self._heap
        fifo = self._fifo
        pop = heapq.heappop
        while True:
            if heap and heap[0][0] == self.now:
                if executed >= max_events:
                    raise _budget_error(max_events)
                callback, args = pop(heap)[2:]
            elif fifo:
                if executed >= max_events:
                    raise _budget_error(max_events)
                callback, args = fifo.popleft()
            elif heap:
                when = heap[0][0]
                if until is not None and when > until:
                    self.now = until
                    return executed
                if executed >= max_events:
                    raise _budget_error(max_events)
                entry = pop(heap)
                self.now = entry[0]
                callback, args = entry[2:]
            else:
                if until is not None and self.now < until:
                    self.now = until
                return executed
            profiler.run_event(callback, args)
            executed += 1


def _budget_error(max_events):
    return SimulationError(
        f"event budget exceeded ({max_events} events): likely livelock"
    )


class Simulator:
    """Owns an event queue plus end-of-simulation bookkeeping.

    Components register completion flags through :meth:`add_done_dependency`;
    the simulation is *done* when every registered dependency reports done.
    This mirrors gem5's exit-event idiom without global state.
    """

    __slots__ = ("queue", "_done_checks", "events_executed", "_trace",
                 "_diagnosers")

    def __init__(self):
        self.queue = EventQueue()
        self._done_checks = []
        # Total events drained across every run() call: accumulated from
        # the loop's own counter, so the per-event hot path is untouched.
        self.events_executed = 0
        self._trace = trace.tracer("kernel", "sim")
        self._diagnosers = []

    @property
    def now(self):
        return self.queue.now

    def schedule(self, delay, callback, *args):
        """Schedule a relative-delay event on the queue."""
        self.queue.schedule(delay, callback, *args)

    def schedule_at(self, when, callback, *args):
        """Schedule an absolute-tick event on the queue."""
        self.queue.schedule_at(when, callback, *args)

    def add_done_dependency(self, check):
        """Register a zero-arg callable that returns True once its component
        has finished all its work."""
        self._done_checks.append(check)

    def add_deadlock_diagnoser(self, diagnoser):
        """Register a zero-arg callable invoked when the queue drains with
        unfinished work.  It must return a report dict; a ``"summary"``
        entry, if present, is appended to the raised
        :class:`~repro.errors.DeadlockError`'s message.  Installed by
        :class:`repro.check.Checker` — without one, deadlocks raise the
        plain :class:`SimulationError` as before."""
        self._diagnosers.append(diagnoser)

    def all_done(self):
        """True when every registered component reports done."""
        return all(check() for check in self._done_checks)

    def run(self, max_events=50_000_000):
        """Run until the event queue drains, then verify completion.

        Raises :class:`SimulationError` if the queue drained while some
        component still had outstanding work — that is a deadlock (e.g. a
        load waiting on a full/empty bit that no DMA will ever set).
        """
        if self._trace is not None:
            self._trace(self.now, "run: draining event queue")
        executed = self.queue.run(max_events=max_events)
        self.events_executed += executed
        if self._trace is not None:
            self._trace(self.now, "run: drained %d event(s)", executed)
        if not self.all_done():
            pending = [check for check in self._done_checks if not check()]
            message = (
                f"simulation deadlocked: {len(pending)} component(s) still "
                f"busy at tick {self.now} with an empty event queue"
            )
            if self._diagnosers:
                reports = [diagnose() for diagnose in self._diagnosers]
                report = (reports[0] if len(reports) == 1
                          else {"reports": reports})
                summaries = [r.get("summary") for r in reports
                             if r.get("summary")]
                for summary in summaries:
                    message += f"\n{summary}"
                raise DeadlockError(message, report)
            raise SimulationError(message)
        return executed

    def reg_stats(self, stats, prefix="soc.sim"):
        """Mirror the event-loop's bookkeeping into a stats registry."""
        stats.scalar(f"{prefix}.events", lambda: self.events_executed,
                     desc="events executed across all run() calls")
        stats.scalar(f"{prefix}.final_tick", lambda: self.now,
                     desc="simulated tick at the last dump")
