"""Activity-interval statistics.

The paper decomposes runtime by classifying every cycle according to which
engines were active (flush-only, DMA+flush, compute+DMA, compute-only —
Section IV-C).  Components record busy intervals with an
:class:`IntervalTracker`; the metrics layer merges and intersects them.
"""


class IntervalTracker:
    """Records [start, end) busy intervals in tick units.

    Components call :meth:`begin` / :meth:`end` around activity.  Nested
    begins are reference-counted so overlapping activations (e.g. several
    outstanding DMA blocks) merge into one interval.
    """

    def __init__(self, name=""):
        self.name = name
        self.intervals = []
        self._depth = 0
        self._open_start = None

    def begin(self, now):
        """Open (or nest into) a busy interval at tick ``now``."""
        if self._depth == 0:
            self._open_start = now
        self._depth += 1

    def end(self, now):
        """Close one nesting level; records the interval at depth zero."""
        if self._depth <= 0:
            raise ValueError(f"IntervalTracker {self.name!r}: end without begin")
        self._depth -= 1
        if self._depth == 0:
            if now > self._open_start:
                self.intervals.append((self._open_start, now))
            self._open_start = None

    def add(self, start, end):
        """Directly record a busy interval."""
        if end > start:
            self.intervals.append((start, end))

    @property
    def busy(self):
        return self._depth > 0

    def merged(self):
        """The recorded intervals, merged and sorted."""
        return merge_intervals(self.intervals)

    def total_busy(self):
        """Total ticks covered by at least one recorded interval."""
        return total_covered(self.intervals)


def merge_intervals(intervals):
    """Merge overlapping/adjacent [start, end) intervals.

    >>> merge_intervals([(0, 10), (5, 20), (30, 40)])
    [(0, 20), (30, 40)]
    """
    if not intervals:
        return []
    out = []
    for start, end in sorted(intervals):
        if out and start <= out[-1][1]:
            prev_start, prev_end = out[-1]
            out[-1] = (prev_start, max(prev_end, end))
        else:
            out.append((start, end))
    return out


def total_covered(intervals):
    """Total length covered by a set of possibly-overlapping intervals."""
    return sum(end - start for start, end in merge_intervals(intervals))


def intersect(a, b):
    """Intersection of two merged interval lists.

    >>> intersect([(0, 10)], [(5, 20)])
    [(5, 10)]
    """
    a = merge_intervals(a)
    b = merge_intervals(b)
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if start < end:
            out.append((start, end))
        if a[i][1] < b[j][1]:
            i += 1
        else:
            j += 1
    return out


def subtract(a, b):
    """Intervals of ``a`` not covered by ``b`` (both as interval lists).

    >>> subtract([(0, 10)], [(3, 5)])
    [(0, 3), (5, 10)]
    """
    a = merge_intervals(a)
    b = merge_intervals(b)
    out = []
    j = 0
    for start, end in a:
        cur = start
        while j < len(b) and b[j][1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            if b[k][0] > cur:
                out.append((cur, b[k][0]))
            cur = max(cur, b[k][1])
            k += 1
        if cur < end:
            out.append((cur, end))
    return out
