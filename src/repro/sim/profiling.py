"""Opt-in event-loop profiling.

Attributes event counts and callback wall time to the *component* that
owns each callback (the class of a bound method's receiver, or the
function's qualified name), answering "where does simulation time go?" —
the datapath issue loop, the cache, the bus, DRAM, the DMA engine...

The profiler is attached to an :class:`~repro.sim.kernel.EventQueue` via
``set_profiler``; while detached the event loop pays zero overhead (one
``is None`` check per ``run()`` call, not per event).

    profiler = EventProfiler()
    soc.sim.queue.set_profiler(profiler)
    soc.run()
    print(profiler.report())

CLI: ``repro profile <workload> [design flags]`` and
``repro sweep <workload> --profile``.
"""

from time import perf_counter


class EventProfiler:
    """Per-component event counts and callback wall time."""

    __slots__ = ("records", "_timer")

    def __init__(self, timer=perf_counter):
        # component label -> [event count, wall seconds]
        self.records = {}
        self._timer = timer

    # -- the hot hook --------------------------------------------------------

    def run_event(self, callback, args):
        """Invoke ``callback(*args)``, timing it and attributing the cost.

        Called by ``EventQueue._run_profiled`` for every event; exceptions
        from the callback propagate after the sample is recorded.
        """
        timer = self._timer
        start = timer()
        try:
            callback(*args)
        finally:
            elapsed = timer() - start
            key = _component_of(callback)
            record = self.records.get(key)
            if record is None:
                self.records[key] = [1, elapsed]
            else:
                record[0] += 1
                record[1] += elapsed

    # -- results -------------------------------------------------------------

    @property
    def total_events(self):
        return sum(count for count, _secs in self.records.values())

    @property
    def total_seconds(self):
        return sum(secs for _count, secs in self.records.values())

    def events_per_second(self):
        """Aggregate event throughput over the profiled window."""
        secs = self.total_seconds
        return self.total_events / secs if secs else 0.0

    def as_dict(self):
        """{component: {"events": n, "seconds": s}} sorted by time desc."""
        items = sorted(self.records.items(), key=lambda kv: -kv[1][1])
        return {key: {"events": count, "seconds": secs}
                for key, (count, secs) in items}

    def report(self, top=None):
        """A formatted table, heaviest components first."""
        items = sorted(self.records.items(), key=lambda kv: -kv[1][1])
        if top is not None:
            items = items[:top]
        total_secs = self.total_seconds or 1.0
        lines = [f"{'component':40s} {'events':>10s} {'seconds':>9s} "
                 f"{'share':>6s}"]
        for key, (count, secs) in items:
            lines.append(f"{key:40s} {count:10d} {secs:9.4f} "
                         f"{100.0 * secs / total_secs:5.1f}%")
        lines.append(f"{'total':40s} {self.total_events:10d} "
                     f"{self.total_seconds:9.4f} "
                     f"({self.events_per_second():,.0f} events/s)")
        return "\n".join(lines)

    def clear(self):
        self.records.clear()


def _component_of(callback):
    """A stable component label for one event callback."""
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        return f"{type(owner).__name__}.{callback.__name__}"
    return getattr(callback, "__qualname__", None) or repr(callback)


def profile_run(fn, *args, **kwargs):
    """Convenience: run ``fn`` (which must accept ``profiler=``) under a
    fresh profiler; returns ``(result, profiler)``."""
    profiler = EventProfiler()
    result = fn(*args, profiler=profiler, **kwargs)
    return result, profiler
