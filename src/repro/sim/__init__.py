"""Discrete-event simulation kernel (the gem5-like substrate core).

Exposes the event queue, clock domains, memory request plumbing, and
statistics primitives that every other subsystem builds on.
"""

from repro.sim.kernel import EventQueue, Simulator
from repro.sim.clock import ClockDomain
from repro.sim.ports import MemRequest, ReadResp
from repro.sim.stats import IntervalTracker, merge_intervals, total_covered

__all__ = [
    "EventQueue",
    "Simulator",
    "ClockDomain",
    "MemRequest",
    "ReadResp",
    "IntervalTracker",
    "merge_intervals",
    "total_covered",
]
