"""Miss Status Holding Registers.

MSHRs give the accelerator cache hit-under-miss and multiple outstanding
misses (Section IV-D): a lane blocked on a miss does not prevent other lanes
from hitting, and secondary misses to an in-flight line merge instead of
issuing duplicate fills.  The paper's configuration uses 16 MSHRs (Figure 3).
"""


class MSHRFile:
    """Tracks in-flight line fills and the requests waiting on each."""

    def __init__(self, num_entries):
        self.num_entries = num_entries
        self._entries = {}
        self.max_in_use = 0
        self.merged_misses = 0

    def lookup(self, line_addr):
        """True when a fill for ``line_addr`` is already outstanding."""
        return line_addr in self._entries

    def full(self):
        """True when no MSHR entry is free."""
        return len(self._entries) >= self.num_entries

    def allocate(self, line_addr):
        """Reserve an entry for a new primary miss.

        Returns False when no entry is free (the access must retry later).
        """
        if line_addr in self._entries:
            raise ValueError(f"MSHR already allocated for line 0x{line_addr:x}")
        if self.full():
            return False
        self._entries[line_addr] = []
        self.max_in_use = max(self.max_in_use, len(self._entries))
        return True

    def merge(self, line_addr, waiter):
        """Attach a secondary miss to an outstanding fill."""
        self._entries[line_addr].append(waiter)
        self.merged_misses += 1

    def release(self, line_addr):
        """Complete a fill; returns the waiters that merged into it."""
        return self._entries.pop(line_addr)

    def pending_lines(self):
        """Line addresses with fills still outstanding (audit/diagnosis)."""
        return list(self._entries)

    @property
    def in_use(self):
        return len(self._entries)
