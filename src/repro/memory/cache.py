"""Set-associative, write-back, coherent cache.

Models gem5's "classic cache" as used by gem5-Aladdin for accelerator-side
caches (Section III-D): configurable size / line size / associativity /
ports, MSHRs for hit-under-miss, LRU replacement, write-allocate, and an
optional strided prefetcher.  Coherence state per line is MOESI, managed
through the :class:`~repro.memory.coherence.CoherenceDomain`.

The cache is timing-only: data values flow through the functional execution
of the kernel trace, so lines carry state but no bytes.
"""

from collections import OrderedDict

from repro.errors import ConfigError
from repro.memory.coherence import LineState
from repro.memory.mshr import MSHRFile
from repro.memory.prefetch import NullPrefetcher, StridePrefetcher
from repro.obs import trace


class Cache:
    """One coherent cache (used for both the accelerator and the CPU side)."""

    def __init__(self, sim, clock, name, size_bytes, line_size, assoc,
                 mshrs=16, hit_latency_cycles=2, prefetcher="none",
                 prefetch_degree=2):
        if size_bytes % (line_size * assoc):
            raise ConfigError(
                f"cache size {size_bytes} not divisible by line*assoc "
                f"({line_size}x{assoc})"
            )
        self.sim = sim
        self.clock = clock
        self.name = name
        self.size_bytes = size_bytes
        self.line_size = line_size
        self.assoc = assoc
        self.num_sets = size_bytes // (line_size * assoc)
        self.hit_latency = hit_latency_cycles
        # Hot-path precomputation: line/set math as shift+mask when the
        # geometry is power-of-two (the overwhelmingly common case), and
        # the hit latency in ticks so accesses never re-derive it.
        if line_size & (line_size - 1) == 0:
            self._line_mask = ~(line_size - 1)
            self._line_shift = line_size.bit_length() - 1
        else:
            self._line_mask = None
            self._line_shift = None
        if self.num_sets & (self.num_sets - 1) == 0:
            self._set_mask = self.num_sets - 1
        else:
            self._set_mask = None
        self._hit_ticks = clock.cycles_to_ticks(hit_latency_cycles)
        self.mshrs = MSHRFile(mshrs)
        # set index -> OrderedDict(line_addr -> state), LRU order (oldest first)
        self._sets = [OrderedDict() for _ in range(self.num_sets)]
        self.domain = None  # set by CoherenceDomain.register
        self._checker = None  # set by CoherenceDomain.attach_checker
        if prefetcher == "stride":
            self.prefetcher = StridePrefetcher(degree=prefetch_degree)
        else:
            self.prefetcher = NullPrefetcher()
        self.hits = 0
        self.misses = 0          # primary demand misses (fills issued)
        self.merged = 0          # secondary misses absorbed by an MSHR
        self.blocked = 0         # rejected attempts (MSHRs full)
        self.writebacks = 0
        self.fills = 0           # lines actually installed (demand)
        self.prefetch_fills = 0
        self.reads = 0
        self.writes = 0
        self._trace = trace.tracer("cache", name)

    # -- address helpers ---------------------------------------------------

    def line_addr(self, addr):
        """The line-aligned base address containing ``addr``."""
        if self._line_mask is not None:
            return addr & self._line_mask
        return addr - (addr % self.line_size)

    def _set_index(self, line_addr):
        if self._set_mask is not None and self._line_shift is not None:
            return (line_addr >> self._line_shift) & self._set_mask
        return (line_addr // self.line_size) % self.num_sets

    def _set_of(self, line_addr):
        return self._sets[self._set_index(line_addr)]

    # -- snooping interface (called by the coherence domain) ----------------

    def peek_state(self, line_addr):
        """MOESI state of a line without touching LRU (snoop view)."""
        return self._set_of(line_addr).get(line_addr, LineState.INVALID)

    def snoop_invalidate(self, line_addr):
        """A peer is taking ownership: drop the line.

        Dirty data is forwarded cache-to-cache by the domain, so no
        writeback traffic is generated here.
        """
        self._set_of(line_addr).pop(line_addr, None)

    def snoop_downgrade(self, line_addr):
        """A peer read a line we own: M/E -> O/S (we keep responsibility
        for dirty data in the O state)."""
        cache_set = self._set_of(line_addr)
        state = cache_set.get(line_addr)
        if state == LineState.MODIFIED:
            cache_set[line_addr] = LineState.OWNED
        elif state == LineState.EXCLUSIVE:
            cache_set[line_addr] = LineState.SHARED

    # -- direct state manipulation (preload / flush engines) ----------------

    def preload(self, start, size, state=LineState.MODIFIED):
        """Install every line of [start, start+size) — e.g. CPU-generated
        input data sitting dirty in the CPU's cache before offload."""
        line = self.line_addr(start)
        while line < start + size:
            self._install(line, state)
            line += self.line_size

    def flush_line(self, line_addr):
        """Software flush (writeback + invalidate) of one line.

        Returns True when the line was dirty (a writeback was generated).
        """
        cache_set = self._set_of(line_addr)
        state = cache_set.pop(line_addr, LineState.INVALID)
        if state in LineState.DIRTY_STATES:
            self.writebacks += 1
            if self.domain is not None:
                self.domain.writeback(self, line_addr, state)
            return True
        return False

    def extract_line(self, line_addr):
        """Remove a line without generating traffic; returns True when it
        was dirty.  Used by flush engines that own their writeback path
        (the CPU reaches DRAM through its own port, not the accelerator
        fabric)."""
        state = self._set_of(line_addr).pop(line_addr, LineState.INVALID)
        if state in LineState.DIRTY_STATES:
            self.writebacks += 1
            return True
        return False

    def invalidate_line(self, line_addr):
        """Software invalidate (no writeback — used for DMA return regions)."""
        self._set_of(line_addr).pop(line_addr, None)

    # -- the access path -----------------------------------------------------

    def access(self, addr, size, is_write, callback, stream=None):
        """Attempt one demand access.

        Returns ``"hit"``, ``"miss"`` (accepted, fill in flight) or
        ``"blocked"`` (MSHRs exhausted — caller must retry).  ``callback()``
        fires once the data is available (after the hit latency, or after
        the fill plus hit latency).
        """
        line = self.line_addr(addr)
        if self.line_addr(addr + size - 1) != line:
            raise ConfigError(
                f"access at 0x{addr:x} size {size} spans cache lines"
            )
        # Single set lookup per access: the set dict is resolved once and
        # reused for the state probe, LRU touch, and state update.
        cache_set = self._sets[self._set_index(line)]
        state = cache_set.get(line, LineState.INVALID)
        hit = state != LineState.INVALID and (
            not is_write or state in (LineState.MODIFIED, LineState.EXCLUSIVE)
        )
        if hit:
            self._count_access(is_write, addr, stream)
            self.hits += 1
            cache_set.move_to_end(line)
            if is_write:
                cache_set[line] = LineState.MODIFIED
                if self._checker is not None:
                    self._checker.on_install(self, line, LineState.MODIFIED)
            self.sim.schedule(self._hit_ticks, callback)
            return "hit"

        # Miss (or write upgrade, which we conservatively treat as a miss).
        if self.mshrs.lookup(line):
            self._count_access(is_write, addr, stream)
            self.merged += 1
            self.mshrs.merge(line, (callback, is_write))
            return "miss"
        if not self.mshrs.allocate(line):
            # Rejected: the caller retries, so count nothing yet.
            self.blocked += 1
            if self._trace is not None:
                self._trace(self.sim.now, "blocked 0x%x (MSHRs full)", line)
            return "blocked"
        self._count_access(is_write, addr, stream)
        self.misses += 1
        if self._trace is not None:
            self._trace(self.sim.now, "%s miss 0x%x",
                        "write" if is_write else "read", line)
        self.mshrs.merge(line, (callback, is_write))
        self.domain.fetch_line(
            self, line, for_write=is_write,
            callback=lambda fill_state, _line=line: self._fill(_line, fill_state),
        )
        return "miss"

    def _count_access(self, is_write, addr, stream):
        """Per accepted access: stats plus one prefetcher observation."""
        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        for target in self.prefetcher.observe(stream or "anon", addr,
                                              self.line_size):
            self._try_prefetch(target)

    def _try_prefetch(self, line_addr):
        """Issue a prefetch fill if the line is absent and MSHRs allow."""
        if self.peek_state(line_addr) != LineState.INVALID:
            return
        if self.mshrs.lookup(line_addr) or self.mshrs.full():
            return
        self.mshrs.allocate(line_addr)
        self.domain.fetch_line(
            self, line_addr, for_write=False,
            callback=lambda st, _line=line_addr: self._fill(_line, st,
                                                            prefetch=True),
        )

    def _fill(self, line_addr, fill_state, prefetch=False):
        waiters = self.mshrs.release(line_addr)
        # A waiter that wrote forces the installed state to M.  If the fill
        # came back from a plain read probe (anything but M), peers may still
        # hold the line — the domain must invalidate them or they would
        # retain stale SHARED copies next to our MODIFIED one.
        if any(w_is_write for _cb, w_is_write in waiters):
            if fill_state != LineState.MODIFIED and self.domain is not None:
                self.domain.upgrade_line(self, line_addr)
            fill_state = LineState.MODIFIED
        self._install(line_addr, fill_state)
        if prefetch:
            self.prefetch_fills += 1
        else:
            self.fills += 1
        if self._trace is not None:
            self._trace(self.sim.now, "fill 0x%x state=%s%s", line_addr,
                        fill_state, " (prefetch)" if prefetch else "")
        delay = self._hit_ticks
        for cb, _is_write in waiters:
            self.sim.schedule(delay, cb)

    def _install(self, line_addr, state):
        cache_set = self._set_of(line_addr)
        if line_addr in cache_set:
            cache_set.move_to_end(line_addr)
            cache_set[line_addr] = state
        else:
            if len(cache_set) >= self.assoc:
                victim, victim_state = cache_set.popitem(last=False)
                if victim_state in LineState.DIRTY_STATES:
                    # Every dirty eviction generates writeback traffic —
                    # including preload-path evictions, which used to skip
                    # the domain and silently drop modeled bus/DRAM work.
                    self.writebacks += 1
                    if self.domain is not None:
                        self.domain.writeback(self, victim, victim_state)
            cache_set[line_addr] = state
        if self._checker is not None:
            self._checker.on_install(self, line_addr, state)

    # -- stats ----------------------------------------------------------------

    def miss_rate(self):
        """Primary demand misses over accepted accesses (merged secondary
        misses count as neither hit nor miss, matching gem5's convention)."""
        total = self.hits + self.misses + self.merged
        return self.misses / total if total else 0.0

    def resident_lines(self):
        """Number of valid lines currently installed."""
        return sum(len(s) for s in self._sets)

    def reg_stats(self, stats, prefix=None):
        """Mirror this cache's counters into a stats registry."""
        prefix = prefix or f"soc.{self.name}"
        stats.scalar(f"{prefix}.reads", lambda: self.reads,
                     desc="accepted read accesses")
        stats.scalar(f"{prefix}.writes", lambda: self.writes,
                     desc="accepted write accesses")
        stats.scalar(f"{prefix}.hits", lambda: self.hits,
                     desc="demand hits")
        stats.scalar(f"{prefix}.misses", lambda: self.misses,
                     desc="primary demand misses (fills issued)")
        stats.scalar(f"{prefix}.merged", lambda: self.merged,
                     desc="secondary misses absorbed by an MSHR")
        stats.scalar(f"{prefix}.blocked", lambda: self.blocked,
                     desc="rejected accesses (MSHRs full)")
        stats.scalar(f"{prefix}.fills", lambda: self.fills,
                     desc="demand lines installed")
        stats.scalar(f"{prefix}.prefetch_fills", lambda: self.prefetch_fills,
                     desc="prefetched lines installed")
        stats.scalar(f"{prefix}.writebacks", lambda: self.writebacks,
                     desc="dirty lines written back")
        stats.formula(f"{prefix}.miss_rate",
                      lambda misses, hits, merged:
                      misses / (hits + misses + merged),
                      deps=(f"{prefix}.misses", f"{prefix}.hits",
                            f"{prefix}.merged"),
                      desc="primary misses / accepted accesses")
