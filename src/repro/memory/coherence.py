"""MOESI snooping coherence over the system bus.

gem5-Aladdin attaches the accelerator cache to gem5's classic memory system
with "a basic MOESI cache coherence protocol" (Section III-D).  We model a
snooping domain: a missing cache broadcasts a probe; if a peer owns the line
(M/O/E) it forwards the data cache-to-cache, otherwise the fill comes from
DRAM through the bus.  Writes invalidate peer copies.

This is what lets cache-based accelerators skip the explicit software flush
that DMA-based designs must pay for: the CPU's dirty input data is pulled
on demand, line by line.
"""

from repro.obs import trace
from repro.sim.ports import MemRequest
from repro.units import ns_to_ticks


class LineState:
    """MOESI states, stored per cache line."""

    MODIFIED = "M"
    OWNED = "O"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"

    OWNER_STATES = ("M", "O", "E")
    DIRTY_STATES = ("M", "O")


class _ForwardResponder:
    """Terminates a cache-to-cache transfer: the owning cache supplies the
    data directly on the bus, so the request never reaches DRAM."""

    def __init__(self, sim):
        self.sim = sim
        self.forwards = 0

    def handle(self, req):
        self.forwards += 1
        req.complete(self.sim.now)


class CoherenceDomain:
    """The set of caches snooping one bus, plus the path to memory."""

    def __init__(self, sim, bus, snoop_ns=20.0):
        self.sim = sim
        self.bus = bus
        self.snoop_ticks = ns_to_ticks(snoop_ns)
        self.caches = []
        self._responder = _ForwardResponder(sim)
        self.cache_to_cache_transfers = 0
        self.memory_fetches = 0
        self.invalidations = 0
        self.upgrades = 0
        # Same-line fetch serialization: line_addr -> list of deferred
        # (requester, for_write, callback) fetches.  Two caches fetching
        # one line concurrently would both compute their fill state from
        # the *pre-fill* snoop picture — e.g. a read probe finding INVALID
        # everywhere installs EXCLUSIVE next to the peer's in-flight
        # MODIFIED fill.  Conflicting fetches wait for the in-flight fill
        # and then re-probe against the updated state.
        self._pending = {}
        self.deferred_fetches = 0
        self.checker = None  # set by attach_checker (see repro.check)
        self._trace = trace.tracer("coh", "coherence")

    def register(self, cache):
        """Attach a cache to this snooping domain."""
        self.caches.append(cache)
        cache.domain = self
        cache._checker = self.checker

    def attach_checker(self, checker):
        """Hook a :class:`repro.check.invariants.MOESIChecker` into every
        line-state transition of this domain (None detaches)."""
        self.checker = checker
        for cache in self.caches:
            cache._checker = checker

    def _peers(self, requester):
        return [c for c in self.caches if c is not requester]

    def fetch_line(self, requester, line_addr, for_write, callback):
        """Fetch a line on behalf of ``requester``.

        ``callback(fill_state)`` fires when the data arrives, where
        ``fill_state`` is the MOESI state the requester should install.
        A fetch for a line with another fetch already in flight is
        deferred until that fill lands, so its snoop probe sees the
        post-fill state.
        """
        pending = self._pending
        if line_addr in pending:
            self.deferred_fetches += 1
            pending[line_addr].append((requester, for_write, callback))
            if self._trace is not None:
                self._trace(self.sim.now, "defer 0x%x for %s (fetch in flight)",
                            line_addr, requester.name)
            return
        pending[line_addr] = []
        self._issue_fetch(requester, line_addr, for_write, callback)

    def _issue_fetch(self, requester, line_addr, for_write, callback):
        owner = None
        sharers = []
        for peer in self._peers(requester):
            state = peer.peek_state(line_addr)
            if state in LineState.OWNER_STATES:
                owner = peer
            elif state == LineState.SHARED:
                sharers.append(peer)

        if for_write:
            # Read-for-ownership: every other copy dies.
            for peer in self._peers(requester):
                if peer.peek_state(line_addr) != LineState.INVALID:
                    peer.snoop_invalidate(line_addr)
                    self.invalidations += 1
            fill_state = LineState.MODIFIED
        elif owner is not None:
            # Owner keeps a copy and becomes responsible for the dirty data.
            owner.snoop_downgrade(line_addr)
            fill_state = LineState.SHARED
        elif sharers:
            fill_state = LineState.SHARED
        else:
            fill_state = LineState.EXCLUSIVE

        line_size = requester.line_size
        req = MemRequest(
            line_addr, line_size, is_write=False,
            requester=requester.name,
            callback=lambda _req: self._fetch_complete(line_addr, callback,
                                                       fill_state),
        )
        if self._trace is not None:
            self._trace(self.sim.now,
                        "fetch 0x%x for %s (%s) -> %s from %s", line_addr,
                        requester.name, "write" if for_write else "read",
                        fill_state, owner.name if owner else "memory")
        if owner is not None:
            # Cache-to-cache transfer: data moves over the bus but skips DRAM.
            self.cache_to_cache_transfers += 1
            self.bus.request(req, target=self._responder,
                             extra_delay=self.snoop_ticks)
        else:
            self.memory_fetches += 1
            self.bus.request(req, extra_delay=self.snoop_ticks)

    def _fetch_complete(self, line_addr, callback, fill_state):
        """A fill arrived: install it, then release one deferred fetch."""
        callback(fill_state)
        deferred = self._pending.pop(line_addr)
        if deferred:
            requester, for_write, next_cb = deferred.pop(0)
            self._pending[line_addr] = deferred
            self._issue_fetch(requester, line_addr, for_write, next_cb)

    def upgrade_line(self, requester, line_addr):
        """Upgrade ``requester``'s pending fill to ownership.

        Used when a write merged into a read-allocated MSHR: the original
        probe was a plain read, so peers still hold S/O copies that must be
        invalidated before the requester may install MODIFIED.  The
        invalidation piggybacks on the in-flight fill's bus transaction, so
        no extra timing cost is modeled — only the state change.
        """
        self.upgrades += 1
        for peer in self._peers(requester):
            if peer.peek_state(line_addr) != LineState.INVALID:
                peer.snoop_invalidate(line_addr)
                self.invalidations += 1

    def writeback(self, cache, line_addr, state=None):
        """Evict dirty data to memory (fire-and-forget for timing).

        ``state`` is the line's MOESI state at eviction time; the
        invariant checker uses it to reject writebacks from clean lines
        (``None`` skips that check for callers that predate the hook).
        """
        if self.checker is not None:
            self.checker.on_writeback(cache, line_addr, state)
        req = MemRequest(line_addr, cache.line_size, is_write=True,
                         requester=f"{cache.name}-wb")
        self.bus.request(req)

    def reg_stats(self, stats, prefix="soc.coherence"):
        """Mirror the domain's counters into a stats registry."""
        stats.scalar(f"{prefix}.cache_to_cache_transfers",
                     lambda: self.cache_to_cache_transfers,
                     desc="fills forwarded from a peer cache")
        stats.scalar(f"{prefix}.memory_fetches",
                     lambda: self.memory_fetches,
                     desc="fills serviced by DRAM")
        stats.scalar(f"{prefix}.invalidations", lambda: self.invalidations,
                     desc="peer copies invalidated")
        stats.scalar(f"{prefix}.upgrades", lambda: self.upgrades,
                     desc="read-allocated MSHRs upgraded to ownership")
        stats.scalar(f"{prefix}.deferred_fetches",
                     lambda: self.deferred_fetches,
                     desc="same-line fetches serialized behind an "
                          "in-flight fill")
