"""Memory-system components of the gem5-like SoC substrate.

Everything the paper's Figure 3 draws between the datapath lanes and DRAM
lives here: the shared system bus, the banked DRAM model, coherent caches
with MSHRs and a strided prefetcher, partitioned scratchpads, the
accelerator TLB, full/empty ready bits, and a background-traffic injector
used for shared-resource-contention studies.
"""

from repro.memory.bus import SystemBus
from repro.memory.dram import DRAM
from repro.memory.sram import Scratchpad
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain, LineState
from repro.memory.tlb import AcceleratorTLB
from repro.memory.fullempty import ReadyBits
from repro.memory.traffic import TrafficGenerator

__all__ = [
    "SystemBus",
    "DRAM",
    "Scratchpad",
    "Cache",
    "CoherenceDomain",
    "LineState",
    "AcceleratorTLB",
    "ReadyBits",
    "TrafficGenerator",
]
