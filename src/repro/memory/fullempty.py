"""Full/empty ("ready") bits for DMA-triggered computation and handoff.

Section IV-B2: the accelerator starts executing as soon as the DMA is
*programmed*; every scratchpad load first checks a full/empty bit tracked at
cache-line granularity.  If the bit is clear, only that load's lane stalls;
the DMA engine sets bits as data lands and wakes the stalled loads.

Streaming pipelines (:mod:`repro.core.pipeline`) use the same bits in both
directions: a *full* bit means a producer committed that chunk of a shared
handoff buffer and the consumer may read it; clearing the bit returns the
buffer credit, waking a producer stalled on a full buffer.  The range
waiters (:meth:`ReadyBits.wait_range` / :meth:`ReadyBits.wait_empty_range`)
and :class:`DescriptorGate` implement that back-pressured protocol on top
of the line-granularity state.
"""

from repro.errors import SimulationError


class ReadyBits:
    """Line-granularity full/empty bits for one scratchpad array."""

    def __init__(self, array_name, size_bytes, granularity=64):
        self.array = array_name
        self.size_bytes = size_bytes
        self.granularity = granularity
        self.num_bits = -(-size_bytes // granularity) if size_bytes else 0
        self._ready = bytearray(self.num_bits)
        self._waiters = {}  # bit index -> list of callbacks (wake on fill)
        self._empty_waiters = {}  # bit index -> callbacks (wake on clear)
        self.stalls = 0
        self.lines_cleared = 0

    def _bit(self, offset):
        if not 0 <= offset < self.size_bytes:
            if offset == 0 and not self.size_bytes:
                return 0  # zero-size array: single vacuous offset
            raise SimulationError(
                f"ready-bit offset {offset} outside array {self.array!r} "
                f"of {self.size_bytes} bytes (granularity "
                f"{self.granularity}; legal offsets are "
                f"[0, {self.size_bytes}))"
            )
        return offset // self.granularity

    def is_ready(self, offset):
        """True when the line covering ``offset`` has arrived."""
        bit = self._bit(offset)
        return bool(self._ready[bit]) if self.num_bits else True

    def wait(self, offset, callback):
        """Invoke ``callback`` when the line covering ``offset`` is filled.

        Fires immediately if already ready; otherwise the caller's lane is
        considered stalled until the DMA engine fills the line.
        """
        bit = self._bit(offset)
        if not self.num_bits or self._ready[bit]:
            callback()
            return False
        self.stalls += 1
        self._waiters.setdefault(bit, []).append(callback)
        return True

    def wait_bit(self, bit, callback):
        """Fast-path wait on a precomputed (known-clear) bit index.

        Callers that precompute bit indices (the scratchpad interface)
        check ``_ready`` themselves and only call this on a stall.
        """
        self.stalls += 1
        self._waiters.setdefault(bit, []).append(callback)
        return True

    def set_range(self, offset, size):
        """Mark [offset, offset+size) ready and wake any waiters.

        Boundary-tolerant: an empty range (``size <= 0``) and a range
        starting exactly at the end of the array — a zero-byte tail
        descriptor lands there — are no-ops; only ranges genuinely outside
        the array raise.
        """
        if size <= 0 or not self.num_bits or offset == self.size_bytes:
            return
        first = self._bit(offset)
        last = self._bit(min(offset + size, self.size_bytes) - 1)
        for bit in range(first, last + 1):
            if not self._ready[bit]:
                self._ready[bit] = 1
                for callback in self._waiters.pop(bit, ()):
                    callback()

    def set_all(self):
        """Mark the whole array ready (preloaded scratchpads)."""
        self.set_range(0, self.size_bytes)

    def clear_range(self, offset, size):
        """Mark [offset, offset+size) empty again and wake space waiters.

        The consumer half of a handoff buffer: clearing a chunk's bits
        returns its buffer credit, waking any producer stalled on a full
        buffer.  Boundary rules mirror :meth:`set_range`.
        """
        if size <= 0 or not self.num_bits or offset == self.size_bytes:
            return
        first = self._bit(offset)
        last = self._bit(min(offset + size, self.size_bytes) - 1)
        for bit in range(first, last + 1):
            if self._ready[bit]:
                self._ready[bit] = 0
                self.lines_cleared += 1
                for callback in self._empty_waiters.pop(bit, ()):
                    callback()

    def all_ready(self):
        """True when every line has arrived."""
        return all(self._ready) if self.num_bits else True

    def range_ready(self, offset, size):
        """True when every line of [offset, offset+size) is full."""
        first, last = self._range_bits(offset, size)
        return all(self._ready[first:last + 1])

    def range_empty(self, offset, size):
        """True when every line of [offset, offset+size) is empty."""
        first, last = self._range_bits(offset, size)
        return not any(self._ready[first:last + 1])

    def _range_bits(self, offset, size):
        if size <= 0 or not self.num_bits:
            return 0, -1  # vacuous range: slices to ()
        first = self._bit(offset)
        last = self._bit(min(offset + size, self.size_bytes) - 1)
        return first, last

    def _wait_on(self, offset, size, callback, table, want_set):
        """Fire ``callback`` once every bit of the range matches the
        wanted state, tracking partially satisfied ranges bit by bit."""
        first, last = self._range_bits(offset, size)
        missing = [bit for bit in range(first, last + 1)
                   if bool(self._ready[bit]) != want_set]
        if not missing:
            callback()
            return False
        self.stalls += 1
        remaining = [len(missing)]

        def one_arrived():
            remaining[0] -= 1
            if remaining[0] == 0:
                callback()

        for bit in missing:
            table.setdefault(bit, []).append(one_arrived)
        return True

    def wait_range(self, offset, size, callback):
        """Invoke ``callback`` once every line of the range is full.

        Fires immediately (returning False) when the range is already
        ready; otherwise returns True and the caller is parked until the
        last covering line is set.
        """
        return self._wait_on(offset, size, callback, self._waiters, True)

    def wait_empty_range(self, offset, size, callback):
        """Invoke ``callback`` once every line of the range is empty.

        The producer half of back-pressure: a full buffer slot parks the
        producer until the consumer clears it.  Fires immediately
        (returning False) when the range is already clear.
        """
        return self._wait_on(offset, size, callback, self._empty_waiters,
                             False)

    def pending_waiters(self):
        """Number of callbacks still blocked on unfilled lines."""
        return sum(len(v) for v in self._waiters.values())

    def pending_empty_waiters(self):
        """Number of callbacks still blocked waiting for lines to clear."""
        return sum(len(v) for v in self._empty_waiters.values())


class DescriptorGate:
    """Gates a DMA transaction's start on a full/empty-bit condition.

    Passed to :meth:`repro.dma.engine.DMAEngine.enqueue` as ``gate=``:
    when the transaction reaches the head of the channel queue the engine
    starts it only once the gated range is in the wanted state —
    ``until="full"`` parks a consumer's pull until the producer committed
    the chunk, ``until="empty"`` parks a producer's push until the buffer
    slot was drained (back-pressure).  ``tracker`` (an
    :class:`~repro.sim.stats.IntervalTracker`) records the park window;
    ``opened_tick`` records when the gate let the transaction through.
    """

    def __init__(self, bits, offset, size, until="full", tracker=None):
        if until not in ("full", "empty"):
            raise SimulationError(f"unknown gate condition {until!r}")
        self.bits = bits
        self.offset = offset
        self.size = size
        self.until = until
        self.tracker = tracker
        self.opened_tick = None
        self.waited = False

    def satisfied(self):
        """True when the gated range is in the wanted state."""
        if self.until == "full":
            return self.bits.range_ready(self.offset, self.size)
        return self.bits.range_empty(self.offset, self.size)

    def wait(self, callback):
        """Register ``callback`` for when the condition becomes true."""
        self.waited = True
        if self.until == "full":
            self.bits.wait_range(self.offset, self.size, callback)
        else:
            self.bits.wait_empty_range(self.offset, self.size, callback)

    def notify_open(self, tick):
        """Record the tick the engine actually started the transaction."""
        self.opened_tick = tick
