"""Full/empty ("ready") bits for DMA-triggered computation.

Section IV-B2: the accelerator starts executing as soon as the DMA is
*programmed*; every scratchpad load first checks a full/empty bit tracked at
cache-line granularity.  If the bit is clear, only that load's lane stalls;
the DMA engine sets bits as data lands and wakes the stalled loads.
"""

from repro.errors import SimulationError


class ReadyBits:
    """Line-granularity full/empty bits for one scratchpad array."""

    def __init__(self, array_name, size_bytes, granularity=64):
        self.array = array_name
        self.size_bytes = size_bytes
        self.granularity = granularity
        self.num_bits = -(-size_bytes // granularity) if size_bytes else 0
        self._ready = bytearray(self.num_bits)
        self._waiters = {}  # bit index -> list of callbacks
        self.stalls = 0

    def _bit(self, offset):
        if not 0 <= offset < self.size_bytes:
            if offset == 0 and not self.size_bytes:
                return 0  # zero-size array: single vacuous offset
            raise SimulationError(
                f"ready-bit offset {offset} outside array {self.array!r} "
                f"of {self.size_bytes} bytes (granularity "
                f"{self.granularity}; legal offsets are "
                f"[0, {self.size_bytes}))"
            )
        return offset // self.granularity

    def is_ready(self, offset):
        """True when the line covering ``offset`` has arrived."""
        bit = self._bit(offset)
        return bool(self._ready[bit]) if self.num_bits else True

    def wait(self, offset, callback):
        """Invoke ``callback`` when the line covering ``offset`` is filled.

        Fires immediately if already ready; otherwise the caller's lane is
        considered stalled until the DMA engine fills the line.
        """
        bit = self._bit(offset)
        if not self.num_bits or self._ready[bit]:
            callback()
            return False
        self.stalls += 1
        self._waiters.setdefault(bit, []).append(callback)
        return True

    def wait_bit(self, bit, callback):
        """Fast-path wait on a precomputed (known-clear) bit index.

        Callers that precompute bit indices (the scratchpad interface)
        check ``_ready`` themselves and only call this on a stall.
        """
        self.stalls += 1
        self._waiters.setdefault(bit, []).append(callback)
        return True

    def set_range(self, offset, size):
        """Mark [offset, offset+size) ready and wake any waiters.

        Boundary-tolerant: an empty range (``size <= 0``) and a range
        starting exactly at the end of the array — a zero-byte tail
        descriptor lands there — are no-ops; only ranges genuinely outside
        the array raise.
        """
        if size <= 0 or not self.num_bits or offset == self.size_bytes:
            return
        first = self._bit(offset)
        last = self._bit(min(offset + size, self.size_bytes) - 1)
        for bit in range(first, last + 1):
            if not self._ready[bit]:
                self._ready[bit] = 1
                for callback in self._waiters.pop(bit, ()):
                    callback()

    def set_all(self):
        """Mark the whole array ready (preloaded scratchpads)."""
        self.set_range(0, self.size_bytes)

    def all_ready(self):
        """True when every line has arrived."""
        return all(self._ready) if self.num_bits else True

    def pending_waiters(self):
        """Number of callbacks still blocked on unfilled lines."""
        return sum(len(v) for v in self._waiters.values())
