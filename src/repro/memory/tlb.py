"""Accelerator TLB.

gem5-Aladdin implements a custom TLB (Section III-D) because (1) gem5's TLBs
are ISA-specific and (2) Aladdin's *trace* addresses must be translated into
the simulated virtual and then physical address space.  We reproduce both
functions: a translation map from trace arrays to simulated addresses, and
an 8-entry fully-associative page TLB with a pre-characterized 200 ns miss
penalty (Figure 3), with a single page-table walker serializing misses.
"""

from collections import OrderedDict

from repro.obs import trace
from repro.units import ns_to_ticks

PAGE_SIZE = 4096


class AcceleratorTLB:
    """Fully-associative, LRU page TLB with one walker."""

    def __init__(self, sim, entries=8, miss_latency_ns=200.0,
                 page_size=PAGE_SIZE, name="accel-tlb"):
        self.sim = sim
        self.entries = entries
        self.page_size = page_size
        self.miss_ticks = ns_to_ticks(miss_latency_ns)
        self.name = name
        self._tlb = OrderedDict()  # vpn -> ppn
        self._pending = {}         # vpn -> list of (callback, offset)
        self._walker_free = 0
        self.hits = 0
        self.misses = 0
        self.walks = 0
        self.evictions = 0
        self._trace = trace.tracer("tlb", name)

    def _vpn(self, vaddr):
        return vaddr // self.page_size

    def translate(self, vaddr, phys_offset, callback):
        """Translate ``vaddr``; ``callback(paddr)`` fires when done.

        Hits complete immediately (the lookup is folded into the cache hit
        latency, as in the paper); misses pay the walk latency, serialized
        through the single walker.
        """
        vpn = self._vpn(vaddr)
        offset = vaddr % self.page_size
        if vpn in self._tlb:
            self.hits += 1
            self._tlb.move_to_end(vpn)
            callback(self._tlb[vpn] * self.page_size + offset)
            return True
        self.misses += 1
        if vpn in self._pending:
            # A walk for this page is already in flight: coalesce.
            self._pending[vpn].append((callback, offset))
            return False
        self._pending[vpn] = [(callback, offset)]
        self.walks += 1
        start = max(self.sim.now, self._walker_free)
        done = start + self.miss_ticks
        self._walker_free = done
        ppn = (vaddr + phys_offset) // self.page_size
        if self._trace is not None:
            self._trace(self.sim.now, "miss vpn=0x%x walk done=%d", vpn, done)
        self.sim.schedule_at(done, self._finish_walk, vpn, ppn)
        return False

    def _finish_walk(self, vpn, ppn):
        # Refills must refresh recency: an already-resident vpn is moved to
        # the MRU end, not left at its stale position (and never triggers a
        # spurious eviction).  Residency is checked *before* the capacity
        # test so the two cases stay disjoint.
        if vpn in self._tlb:
            self._tlb.move_to_end(vpn)
        elif len(self._tlb) >= self.entries:
            victim, _ = self._tlb.popitem(last=False)
            self.evictions += 1
            if self._trace is not None:
                self._trace(self.sim.now, "evict vpn=0x%x", victim)
        self._tlb[vpn] = ppn
        for callback, offset in self._pending.pop(vpn):
            callback(ppn * self.page_size + offset)

    def miss_rate(self):
        """TLB misses over all translations."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0

    def reg_stats(self, stats, prefix="accel0.tlb"):
        """Mirror this TLB's counters into a stats registry."""
        stats.scalar(f"{prefix}.hits", lambda: self.hits,
                     desc="translations hitting a resident entry")
        stats.scalar(f"{prefix}.misses", lambda: self.misses,
                     desc="translations missing the TLB")
        stats.scalar(f"{prefix}.walks", lambda: self.walks,
                     desc="page-table walks issued (coalesced misses share)")
        stats.scalar(f"{prefix}.evictions", lambda: self.evictions,
                     desc="LRU entries evicted on refill")
        stats.formula(f"{prefix}.miss_rate",
                      lambda misses, hits: misses / (hits + misses),
                      deps=(f"{prefix}.misses", f"{prefix}.hits"),
                      desc="misses / translations")
