"""Accelerator TLB.

gem5-Aladdin implements a custom TLB (Section III-D) because (1) gem5's TLBs
are ISA-specific and (2) Aladdin's *trace* addresses must be translated into
the simulated virtual and then physical address space.  We reproduce both
functions: a translation map from trace arrays to simulated addresses, and
an 8-entry fully-associative page TLB with a pre-characterized 200 ns miss
penalty (Figure 3), with a single page-table walker serializing misses.
"""

from collections import OrderedDict

from repro.units import ns_to_ticks

PAGE_SIZE = 4096


class AcceleratorTLB:
    """Fully-associative, LRU page TLB with one walker."""

    def __init__(self, sim, entries=8, miss_latency_ns=200.0,
                 page_size=PAGE_SIZE, name="accel-tlb"):
        self.sim = sim
        self.entries = entries
        self.page_size = page_size
        self.miss_ticks = ns_to_ticks(miss_latency_ns)
        self.name = name
        self._tlb = OrderedDict()  # vpn -> ppn
        self._pending = {}         # vpn -> list of (callback, offset)
        self._walker_free = 0
        self.hits = 0
        self.misses = 0
        self.walks = 0

    def _vpn(self, vaddr):
        return vaddr // self.page_size

    def translate(self, vaddr, phys_offset, callback):
        """Translate ``vaddr``; ``callback(paddr)`` fires when done.

        Hits complete immediately (the lookup is folded into the cache hit
        latency, as in the paper); misses pay the walk latency, serialized
        through the single walker.
        """
        vpn = self._vpn(vaddr)
        offset = vaddr % self.page_size
        if vpn in self._tlb:
            self.hits += 1
            self._tlb.move_to_end(vpn)
            callback(self._tlb[vpn] * self.page_size + offset)
            return True
        self.misses += 1
        if vpn in self._pending:
            # A walk for this page is already in flight: coalesce.
            self._pending[vpn].append((callback, offset))
            return False
        self._pending[vpn] = [(callback, offset)]
        self.walks += 1
        start = max(self.sim.now, self._walker_free)
        done = start + self.miss_ticks
        self._walker_free = done
        ppn = (vaddr + phys_offset) // self.page_size
        self.sim.schedule_at(done, self._finish_walk, vpn, ppn)
        return False

    def _finish_walk(self, vpn, ppn):
        if vpn not in self._tlb and len(self._tlb) >= self.entries:
            self._tlb.popitem(last=False)
        self._tlb[vpn] = ppn
        for callback, offset in self._pending.pop(vpn):
            callback(ppn * self.page_size + offset)

    def miss_rate(self):
        """TLB misses over all translations."""
        total = self.hits + self.misses
        return self.misses / total if total else 0.0
