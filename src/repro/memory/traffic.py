"""Background bus-traffic injector.

Section IV-A's fourth design consideration is behaviour under *shared
resource contention*: "invariably a DMA operation or cache fill will stall
to allow another process to make progress."  The paper proxies contention
by shrinking the bus; this component provides a direct knob as well — a
synthetic agent issuing periodic bulk reads on the system bus, standing in
for other accelerators / CPU traffic in a loaded SoC.
"""

from repro.sim.ports import MemRequest


class TrafficGenerator:
    """Deterministic periodic traffic source on the system bus."""

    def __init__(self, sim, bus, clock, burst_bytes=64,
                 interval_cycles=10, base_addr=0x8000_0000,
                 footprint_bytes=1 << 20, jitter_seed=0x9E3779B9,
                 name="traffic"):
        self.sim = sim
        self.bus = bus
        self.clock = clock
        self.burst_bytes = burst_bytes
        self.interval_cycles = interval_cycles
        self.base_addr = base_addr
        self.footprint = footprint_bytes
        self.name = name
        self._lcg = jitter_seed & 0xFFFFFFFF
        self._running = False
        self._offset = 0
        self.bursts_issued = 0

    def _next_jitter(self):
        # Small deterministic LCG so runs are reproducible.
        self._lcg = (self._lcg * 1664525 + 1013904223) & 0xFFFFFFFF
        return self._lcg % max(self.interval_cycles // 4, 1)

    def start(self, stop_check):
        """Begin injecting; ``stop_check()`` returning True ends the stream."""
        self._running = True
        self._stop_check = stop_check
        self._tick()

    def _tick(self):
        if not self._running or self._stop_check():
            self._running = False
            return
        addr = self.base_addr + self._offset
        self._offset = (self._offset + self.burst_bytes * 4) % self.footprint
        self.bursts_issued += 1
        self.bus.request(MemRequest(addr, self.burst_bytes, is_write=False,
                                    requester=self.name))
        delay = self.clock.cycles_to_ticks(
            self.interval_cycles + self._next_jitter())
        self.sim.schedule(delay, self._tick)

    def stop(self):
        """Stop injecting after the current tick."""
        self._running = False
