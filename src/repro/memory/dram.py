"""Banked DRAM with open-row timing.

Pipelined DMA in the paper splits transfers into *page sized* blocks
specifically "to optimize for DRAM row buffer hits" (Section IV-B1), so the
model must distinguish row hits from row misses.  We model N banks, each
with one open row; consecutive rows interleave across banks.
"""

from repro.units import ns_to_ticks


class DRAM:
    """Memory controller + DRAM devices behind the system bus."""

    def __init__(self, sim, banks=8, row_bytes=4096,
                 row_hit_ns=25.0, row_miss_ns=50.0, name="dram"):
        self.sim = sim
        self.banks = banks
        self.row_bytes = row_bytes
        self.t_hit = ns_to_ticks(row_hit_ns)
        self.t_miss = ns_to_ticks(row_miss_ns)
        self.name = name
        self._open_row = [None] * banks
        self._bank_free = [0] * banks
        self.row_hits = 0
        self.row_misses = 0
        self.reads = 0
        self.writes = 0

    def _decode(self, addr):
        row_id = addr // self.row_bytes
        return row_id % self.banks, row_id

    def handle(self, req):
        """Service one request; completion fires when the access finishes."""
        bank, row = self._decode(req.addr)
        start = max(self.sim.now, self._bank_free[bank])
        if self._open_row[bank] == row:
            latency = self.t_hit
            self.row_hits += 1
        else:
            latency = self.t_miss
            self.row_misses += 1
            self._open_row[bank] = row
        self._bank_free[bank] = start + latency
        if req.is_write:
            self.writes += 1
        else:
            self.reads += 1
        done = start + latency
        self.sim.schedule_at(done, req.complete, done)

    def row_hit_rate(self):
        """Fraction of accesses that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0
