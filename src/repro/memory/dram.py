"""Banked DRAM with open-row timing.

Pipelined DMA in the paper splits transfers into *page sized* blocks
specifically "to optimize for DRAM row buffer hits" (Section IV-B1), so the
model must distinguish row hits from row misses.  We model N banks, each
with one open row; consecutive rows interleave across banks.

Observability: per-bank busy intervals feed the timeline export
(:mod:`repro.obs.timeline`), ``bank_conflict_ticks`` counts ticks each
request waited for its bank to free up, and :meth:`reg_stats` mirrors all
counters into a stats registry.  Tracing rides the ``dram`` debug flag.
"""

from repro.obs import trace
from repro.sim.stats import IntervalTracker
from repro.units import ns_to_ticks


class DRAM:
    """Memory controller + DRAM devices behind the system bus."""

    def __init__(self, sim, banks=8, row_bytes=4096,
                 row_hit_ns=25.0, row_miss_ns=50.0, name="dram"):
        self.sim = sim
        self.banks = banks
        self.row_bytes = row_bytes
        self.t_hit = ns_to_ticks(row_hit_ns)
        self.t_miss = ns_to_ticks(row_miss_ns)
        self.name = name
        self._open_row = [None] * banks
        self._bank_free = [0] * banks
        self.row_hits = 0
        self.row_misses = 0
        self.reads = 0
        self.writes = 0
        # Ticks spent waiting on a busy bank, per bank (bank conflicts).
        self.bank_conflict_ticks = [0] * banks
        # Per-bank busy intervals, for the timeline export.
        self.bank_busy = [IntervalTracker(f"{name}.bank{i}")
                          for i in range(banks)]
        self._trace = trace.tracer("dram", name)

    def _decode(self, addr):
        row_id = addr // self.row_bytes
        return row_id % self.banks, row_id

    def handle(self, req):
        """Service one request; completion fires when the access finishes."""
        bank, row = self._decode(req.addr)
        now = self.sim.now
        start = self._bank_free[bank]
        if start > now:
            self.bank_conflict_ticks[bank] += start - now
        else:
            start = now
        if self._open_row[bank] == row:
            latency = self.t_hit
            self.row_hits += 1
        else:
            latency = self.t_miss
            self.row_misses += 1
            self._open_row[bank] = row
        done = start + latency
        self._bank_free[bank] = done
        self.bank_busy[bank].add(start, done)
        if req.is_write:
            self.writes += 1
        else:
            self.reads += 1
        if self._trace is not None:
            self._trace(now, "%s 0x%x bank=%d row=%d %s wait=%d done=%d",
                        "wr" if req.is_write else "rd", req.addr, bank, row,
                        "hit" if latency == self.t_hit else "miss",
                        start - now, done)
        self.sim.schedule_at(done, req.complete, done)

    def row_hit_rate(self):
        """Fraction of accesses that hit an open row."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def reg_stats(self, stats, prefix="soc.dram"):
        """Mirror this controller's counters into a stats registry."""
        stats.scalar(f"{prefix}.reads", lambda: self.reads,
                     desc="read requests serviced")
        stats.scalar(f"{prefix}.writes", lambda: self.writes,
                     desc="write requests serviced")
        stats.scalar(f"{prefix}.row_hits", lambda: self.row_hits,
                     desc="row-buffer hits")
        stats.scalar(f"{prefix}.row_misses", lambda: self.row_misses,
                     desc="row-buffer misses (activations)")
        stats.formula(f"{prefix}.row_hit_rate",
                      lambda hits, misses: hits / (hits + misses),
                      deps=(f"{prefix}.row_hits", f"{prefix}.row_misses"),
                      desc="row hits / accesses")
        stats.vector(f"{prefix}.bank_conflict_ticks",
                     lambda: self.bank_conflict_ticks,
                     desc="ticks requests waited on a busy bank, per bank")
        stats.vector(f"{prefix}.bank_busy_ticks",
                     lambda: [t.total_busy() for t in self.bank_busy],
                     desc="busy ticks per bank")
