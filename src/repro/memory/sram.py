"""Partitioned scratchpad memories.

Aladdin-style accelerators keep data in software-managed scratchpads.  Each
array may be *cyclically partitioned* into P banks (word i lives in bank
i mod P); every bank sustains ``ports`` accesses per accelerator cycle.
Partitioning is the paper's local-memory-bandwidth knob (Figure 3 sweeps
1..16 partitions).
"""

from repro.errors import ConfigError


class ArraySpec:
    """Static description of one accelerator-local array."""

    __slots__ = ("name", "size_bytes", "word_bytes")

    def __init__(self, name, size_bytes, word_bytes=4):
        self.name = name
        self.size_bytes = size_bytes
        self.word_bytes = word_bytes

    @property
    def num_words(self):
        return self.size_bytes // self.word_bytes


class Scratchpad:
    """All local arrays of one accelerator, with per-bank port arbitration.

    The datapath scheduler calls :meth:`try_access` once per candidate memory
    op per cycle; an access is accepted if the target bank still has a free
    port in that cycle.  Bank conflicts are therefore visible to the
    scheduler, which retries the op on a later cycle.
    """

    def __init__(self, arrays, partitions, ports_per_partition=1):
        if partitions < 1:
            raise ConfigError(f"partitions must be >= 1, got {partitions}")
        if ports_per_partition < 1:
            raise ConfigError("ports_per_partition must be >= 1")
        self.arrays = {a.name: a for a in arrays}
        self.partitions = partitions
        self.ports = ports_per_partition
        # Per array, per bank: [cycle, uses_in_cycle].  Nested containers
        # (instead of one tuple-keyed dict) keep the per-access path to a
        # single dict lookup plus a list index.
        self._banks = {
            name: [[-1, 0] for _bank in range(partitions)]
            for name in self.arrays
        }
        self.accesses = 0
        self.conflicts = 0
        self.access_by_array = {name: 0 for name in self.arrays}

    def bank_of(self, array, word_index):
        """Cyclic partitioning: bank = word index mod partitions."""
        return word_index % self.partitions

    def try_access(self, array, word_index, cycle):
        """Attempt an access in ``cycle``.  Returns True when a port was won."""
        banks = self._banks.get(array)
        if banks is None:
            raise ConfigError(f"unknown scratchpad array {array!r}")
        slot = banks[word_index % self.partitions]
        if slot[0] != cycle:
            slot[0] = cycle
            slot[1] = 1
        elif slot[1] >= self.ports:
            self.conflicts += 1
            return False
        else:
            slot[1] += 1
        self.accesses += 1
        self.access_by_array[array] += 1
        return True

    @property
    def total_bytes(self):
        """Total SRAM capacity (all arrays); the paper's "SRAM size" axis."""
        return sum(a.size_bytes for a in self.arrays.values())

    def partition_bytes(self, array):
        """Capacity of one bank of ``array`` (used by the energy model)."""
        spec = self.arrays[array]
        words_per_bank = -(-spec.num_words // self.partitions)
        return max(words_per_bank * spec.word_bytes, spec.word_bytes)

    @property
    def bandwidth_words_per_cycle(self):
        """Peak local-memory bandwidth: one word per port per bank per cycle."""
        return self.partitions * self.ports

    def reg_stats(self, stats, prefix="accel0.spad"):
        """Mirror this scratchpad's counters into a stats registry."""
        stats.scalar(f"{prefix}.accesses", lambda: self.accesses,
                     desc="accepted bank accesses")
        stats.scalar(f"{prefix}.conflicts", lambda: self.conflicts,
                     desc="accesses rejected by bank-port arbitration")
        stats.formula(f"{prefix}.conflict_rate",
                      lambda conflicts, accesses:
                      conflicts / (conflicts + accesses),
                      deps=(f"{prefix}.conflicts", f"{prefix}.accesses"),
                      desc="conflicts / attempted accesses")
