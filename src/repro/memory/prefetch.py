"""Strided hardware prefetcher.

Figure 3 lists "Hardware prefetchers: Strided" among the swept parameters.
We implement a reference-prediction-table prefetcher: streams are keyed by
the static access site (the trace's array name stands in for the PC); once
a stream shows a stable stride across two consecutive demand accesses, the
prefetcher issues fills ``degree`` strides ahead.
"""


class StridePrefetcher:
    """Per-stream stride detection with configurable lookahead degree."""

    def __init__(self, degree=2, table_size=16):
        self.degree = degree
        self.table_size = table_size
        # stream key -> [last_addr, last_stride, confidence]
        self._table = {}
        self.issued = 0
        self.useful_hint = 0

    def observe(self, stream, addr, line_size):
        """Record a demand access; returns line addresses worth prefetching."""
        entry = self._table.get(stream)
        if entry is None:
            if len(self._table) >= self.table_size:
                # Evict an arbitrary (oldest-inserted) stream.
                self._table.pop(next(iter(self._table)))
            self._table[stream] = [addr, 0, 0]
            return []
        last_addr, last_stride, confidence = entry
        stride = addr - last_addr
        if stride != 0 and stride == last_stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self._table[stream] = [addr, stride, confidence]
        if confidence < 1 or stride == 0:
            return []
        targets = []
        for i in range(1, self.degree + 1):
            target = addr + stride * i
            line = target - (target % line_size)
            if line != addr - (addr % line_size) and line not in targets:
                targets.append(line)
        self.issued += len(targets)
        return targets


class NullPrefetcher:
    """Disabled prefetcher (always returns no candidates)."""

    def __init__(self):
        self.issued = 0

    def observe(self, stream, addr, line_size):
        """Record nothing; never prefetches."""
        return []
