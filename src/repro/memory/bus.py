"""Shared system bus.

The paper modulates the system bus width (32 / 64 bits) as a proxy for
shared-resource contention (Section V-B2), and the DMA engine "fully
utilizes the available bus bandwidth", creating the serial-data-arrival
effect (Section IV-C2).  Both behaviours fall out of an occupancy model:

* FIFO arbitration: requests are granted in arrival order.
* A granted transfer occupies the bus for ``arb + ceil(bytes / width)``
  bus cycles; nothing else moves during that window.
* After occupancy the request is handed to its target (DRAM by default,
  or a cache-to-cache fill path supplied by the coherence domain).
"""

import math

from repro.obs import trace
from repro.sim.stats import IntervalTracker


class SystemBus:
    """Bandwidth-limited shared interconnect with FIFO arbitration."""

    def __init__(self, sim, clock, width_bits, downstream=None,
                 arb_cycles=1, name="bus"):
        if width_bits % 8:
            raise ValueError("bus width must be a whole number of bytes")
        self.sim = sim
        self.clock = clock
        self.width_bits = width_bits
        self.width_bytes = width_bits // 8
        self.downstream = downstream
        self.arb_cycles = arb_cycles
        self.name = name
        self._next_free = 0
        self.busy = IntervalTracker(name)
        self.bytes_transferred = 0
        self.num_requests = 0
        self.queue_ticks = 0      # total arbitration wait (grant - issue)
        self.max_queue_ticks = 0
        # Optional per-request queue-wait distribution, installed by
        # reg_stats (None keeps the request path free of sampling).
        self.queue_wait_dist = None
        self._trace = trace.tracer("bus", name)

    def occupancy_ticks(self, size):
        """Bus occupancy (ticks) of one transfer of ``size`` bytes."""
        beats = max(1, math.ceil(size / self.width_bytes))
        return self.clock.cycles_to_ticks(self.arb_cycles + beats)

    def request(self, req, target=None, extra_delay=0):
        """Queue ``req`` on the bus.

        ``target`` overrides the default downstream component; it must expose
        ``handle(req)``.  ``extra_delay`` adds fixed ticks before arbitration
        (used for snoop latencies).  Completion is signalled through
        ``req.callback`` by whoever ultimately services the request.
        """
        now = self.sim.now + extra_delay
        grant = max(self.clock.next_edge(now), self._next_free)
        occupancy = self.occupancy_ticks(req.size)
        self._next_free = grant + occupancy
        self.busy.add(grant, grant + occupancy)
        self.bytes_transferred += req.size
        self.num_requests += 1
        # Issue = arrival at arbitration (after any snoop delay); grant =
        # the tick the transfer actually wins the bus.  Their difference is
        # the queueing latency under contention.
        req.issue_tick = now
        req.grant_tick = grant
        waited = grant - now
        self.queue_ticks += waited
        self.max_queue_ticks = max(self.max_queue_ticks, waited)
        if self.queue_wait_dist is not None:
            self.queue_wait_dist.sample(waited)
        if self._trace is not None:
            self._trace(now,
                        "%s 0x%x size=%d from=%s waited=%d occupy=[%d,%d)",
                        "wr" if req.is_write else "rd", req.addr, req.size,
                        req.requester, waited, grant, grant + occupancy)
        handler = target if target is not None else self.downstream
        if handler is None:
            # No downstream: the bus itself completes the request once the
            # data beats have moved (used by cache-to-cache transfers).
            self.sim.schedule_at(grant + occupancy, req.complete, grant + occupancy)
        else:
            self.sim.schedule_at(grant + occupancy, handler.handle, req)

    def avg_queue_ticks(self):
        """Mean arbitration wait per request (ticks)."""
        return self.queue_ticks / self.num_requests if self.num_requests else 0.0

    def utilization(self, start, end):
        """Fraction of [start, end) during which the bus moved data."""
        span = end - start
        if span <= 0:
            return 0.0
        covered = sum(
            max(0, min(e, end) - max(s, start)) for s, e in self.busy.merged()
        )
        return covered / span

    @property
    def next_free(self):
        return self._next_free

    def reg_stats(self, stats, prefix="soc.bus"):
        """Mirror this bus's counters into a stats registry.

        Also installs the per-request queue-wait :class:`~repro.obs.stats.
        Distribution` (sampling starts once the registry is attached).
        """
        stats.scalar(f"{prefix}.requests", lambda: self.num_requests,
                     desc="transfers granted")
        stats.scalar(f"{prefix}.bytes", lambda: self.bytes_transferred,
                     desc="bytes moved over the bus")
        stats.scalar(f"{prefix}.queue_ticks", lambda: self.queue_ticks,
                     desc="total arbitration wait (ticks)")
        stats.scalar(f"{prefix}.max_queue_ticks",
                     lambda: self.max_queue_ticks,
                     desc="worst single arbitration wait (ticks)")
        stats.scalar(f"{prefix}.busy_ticks", lambda: self.busy.total_busy(),
                     desc="ticks the bus was moving data")
        stats.formula(f"{prefix}.avg_queue_ticks",
                      lambda ticks, reqs: ticks / reqs,
                      deps=(f"{prefix}.queue_ticks", f"{prefix}.requests"),
                      desc="mean arbitration wait per request")
        self.queue_wait_dist = stats.distribution(
            f"{prefix}.queue_wait", desc="arbitration wait per request")
