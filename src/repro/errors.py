"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid design point or SoC configuration was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. deadlock)."""


class InvariantError(SimulationError):
    """A runtime correctness invariant was violated (see :mod:`repro.check`).

    Raised by the MOESI invariant checker when the coherence protocol
    reaches an illegal global state — e.g. two caches both holding a line
    MODIFIED, or a writeback generated from a clean line.
    """


class LeakError(SimulationError):
    """An end-of-run resource audit found leaked state (see
    :mod:`repro.check`): unreleased MSHR entries, pending full/empty-bit
    waiters, an in-flight DMA transaction, and the like.

    ``leaks`` holds the structured findings, one dict per leak.
    """

    def __init__(self, message, leaks=None):
        super().__init__(message)
        self.leaks = list(leaks or [])


class DeadlockError(SimulationError):
    """The event queue drained while an offload was still unfinished.

    Raised in place of the generic deadlock :class:`SimulationError` when a
    watchdog diagnoser is attached (see :mod:`repro.check.watchdog`);
    ``report`` carries the structured diagnosis — which lanes stalled on
    which full/empty bits, which MSHRs are pending, DMA channel state.
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report or {}


class SweepError(ReproError):
    """A design-point evaluation failed inside a sweep.

    Raised by the robust sweep engine (:mod:`repro.core.sweeppool`) when a
    point exhausts its retry budget under ``on_error="raise"``.  ``failure``
    carries the structured :class:`~repro.core.sweeppool.FailedPoint`
    (workload, design, exception repr, traceback, attempts, failure kind).
    """

    def __init__(self, message, failure=None):
        super().__init__(message)
        self.failure = failure


class CalibrationError(ReproError):
    """A tiered-fidelity sweep could not obtain or apply a calibration.

    Raised by :mod:`repro.core.calibrate` when a fast/auto sweep needs a
    calibrated fast model that is missing (run ``repro calibrate`` first),
    was fitted against a different platform configuration, or does not
    cover the design class of a requested point.
    """


class TraceError(ReproError):
    """A kernel produced an invalid dynamic trace."""


class FrontendError(TraceError):
    """A plain-Python kernel could not be traced (see :mod:`repro.frontend`).

    Raised by the kernel frontend for untraceable constructs — branching
    on a traced value (``if``, ``min``/``max``, ``and``/``or``), implicit
    escapes (``int()``/``float()``/``math.sqrt`` on a proxy), unsupported
    operators, bad array specs, writes to read-only inputs — and when the
    traced execution diverges from the pure-Python reference run.  The
    message always names the construct and the supported alternative.
    """


class WorkloadError(ReproError):
    """A workload was requested that does not exist or failed validation."""
