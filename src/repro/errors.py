"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError):
    """An invalid design point or SoC configuration was supplied."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state (e.g. deadlock)."""


class TraceError(ReproError):
    """A kernel produced an invalid dynamic trace."""


class WorkloadError(ReproError):
    """A workload was requested that does not exist or failed validation."""
