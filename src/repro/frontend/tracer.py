"""Ambient tracing context and the parallel-loop marker.

A kernel function runs twice (see :mod:`repro.frontend.kernel`): once
concretely as the self-checking functional reference, once symbolically
with proxy values that emit trace nodes.  Both passes execute the *same*
function body, so constructs that behave differently per pass
(:func:`parallel_range`, the :mod:`repro.frontend` intrinsics) consult
the ambient :class:`KernelContext` installed for the duration of the
call instead of taking an explicit handle — that is what lets kernels
stay plain Python functions.
"""

import threading
from contextlib import contextmanager

from repro.errors import FrontendError

_STATE = threading.local()


class KernelContext:
    """One pass over one kernel: mode, trace builder, loop bookkeeping.

    ``mode`` is ``"concrete"`` (reference pass — no trace builder) or
    ``"trace"`` (proxy pass — ``tb`` is the live
    :class:`~repro.aladdin.trace.TraceBuilder`).  ``next_iteration`` is
    the global parallel-iteration counter: the paper's model has exactly
    one parallel loop whose iterations map onto datapath lanes, and the
    counter numbers them in execution order — exactly how the DSL
    kernels number ``tb.iteration``.
    """

    __slots__ = ("mode", "tb", "kernel_name", "parallel_active",
                 "next_iteration")

    def __init__(self, mode, tb=None, kernel_name=""):
        if mode not in ("concrete", "trace"):
            raise ValueError(f"bad context mode {mode!r}")
        self.mode = mode
        self.tb = tb
        self.kernel_name = kernel_name
        self.parallel_active = False
        self.next_iteration = 0


def current_context():
    """The active :class:`KernelContext`, or None outside a traced call."""
    return getattr(_STATE, "ctx", None)


def require_context(what):
    """The active context, or a diagnostic for misplaced intrinsic use."""
    ctx = current_context()
    if ctx is None:
        raise FrontendError(
            f"{what} is only meaningful inside a @kernel function being "
            f"traced; call the kernel through its Workload interface "
            f"(build/verify) or repro.frontend.trace_kernel")
    return ctx


@contextmanager
def activate(ctx):
    """Install ``ctx`` as the ambient context for one kernel pass."""
    prev = current_context()
    if prev is not None:
        raise FrontendError(
            f"kernel {ctx.kernel_name!r} invoked while kernel "
            f"{prev.kernel_name!r} is being traced; kernels must not call "
            f"other kernels (inline the shared code instead)")
    _STATE.ctx = ctx
    try:
        yield ctx
    finally:
        _STATE.ctx = None


def parallel_range(*args):
    """``range()`` whose iterations are the kernel's *parallel* loop.

    Marks the loop the paper maps onto datapath lanes: each yielded
    index runs inside its own ``tb.iteration`` scope during the trace
    pass (numbered in execution order, matching how the DSL kernels
    number flattened nests), and is a plain loop during the concrete
    reference pass or when the function is called outside tracing.

    The model has exactly one parallel loop, so nesting raises
    :class:`FrontendError`; code after the loop is serial (iteration
    ``-1``), like the DSL.  Successive ``parallel_range`` loops continue
    the iteration numbering.  Do not ``break`` out of a parallel loop —
    partially consumed generators only restore the serial scope when
    they are garbage collected.
    """
    indices = range(*args)
    ctx = current_context()
    if ctx is None:
        yield from indices
        return
    if ctx.parallel_active:
        raise FrontendError(
            "parallel_range loops cannot nest: the model has one parallel "
            "loop (its iterations map onto datapath lanes); flatten the "
            "nest into a single parallel_range and derive the original "
            "indices with divmod, keeping inner loops serial")
    ctx.parallel_active = True
    tb = ctx.tb
    try:
        for i in indices:
            if tb is not None:
                tb._cur_iter = ctx.next_iteration
                tb.max_iter = max(tb.max_iter, ctx.next_iteration)
            ctx.next_iteration += 1
            yield i
    finally:
        ctx.parallel_active = False
        if tb is not None:
            tb._cur_iter = -1
