"""Python kernel frontend: trace plain functions into sweepable accelerators.

Aladdin gets its dynamic traces from an LLVM instrumentation pass over
ordinary C; this package is the analogous move for our reproduction —
a restricted plain-Python function becomes a captured, design-independent
trace by symbolic execution with operator-overloading proxies, with a
concrete reference run as the built-in functional check::

    from repro import frontend as fe

    @fe.kernel(description="64-tap FIR filter")
    def fir(x: fe.Array("x", 256, word_bytes=8, kind="input"),
            h: fe.Array("h", 64, word_bytes=8, kind="input"),
            y: fe.Array("y", 193, word_bytes=8, kind="output")):
        for i in fe.parallel_range(193):
            acc = 0.0
            for t in range(64):
                acc = acc + x[i + t] * h[t]
            y[i] = acc

    fir.register()                  # now a first-class workload: sweeps,
                                    # figures, `repro serve`, caches — all
                                    # by name ("fir")

Restrictions (each violation raises :class:`~repro.errors.FrontendError`
naming the alternative): one parallel loop (:func:`parallel_range`, not
nested), no branching on traced values (use :func:`select` /
:func:`fmin` / :func:`fmax`), no implicit escapes (``int()``,
``float()``, ``math.sqrt`` — use :func:`sqrt` / :func:`concrete`), no
writes to ``kind="input"`` arrays, no ``%``/``**``/``==``/``>=``
operators.  See DESIGN.md §4 "Python kernel frontend".
"""

from repro.errors import FrontendError
from repro.frontend.arrays import Array
from repro.frontend.intrinsics import (
    concrete,
    fcmp,
    fmax,
    fmin,
    icmp,
    select,
    sqrt,
)
from repro.frontend.kernel import FrontendKernel, kernel
from repro.frontend.loader import collect_kernels, load_kernel_file
from repro.frontend.proxy import Traced
from repro.frontend.tracer import parallel_range

__all__ = [
    "Array",
    "FrontendError",
    "FrontendKernel",
    "Traced",
    "collect_kernels",
    "concrete",
    "fcmp",
    "fmax",
    "fmin",
    "icmp",
    "kernel",
    "load_kernel_file",
    "parallel_range",
    "select",
    "sqrt",
    "trace_kernel",
]


def trace_kernel(kernel):
    """Capture the trace of a ``@kernel`` object (``kernel.build()``).

    Runs both passes — the pure-Python reference and the proxy trace —
    and returns the verified :class:`~repro.aladdin.trace.TraceBuilder`.
    """
    if not isinstance(kernel, FrontendKernel):
        raise FrontendError(
            f"trace_kernel needs a @kernel object, got {kernel!r}")
    return kernel.build()
