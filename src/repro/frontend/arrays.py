"""Array specs and their per-pass views.

An :class:`Array` annotation on a ``@kernel`` parameter declares one
kernel array exactly like ``TraceBuilder.array`` does: name, length,
word size, role (``input`` / ``output`` / ``inout`` / ``internal``) and
initial contents.  During a kernel pass the parameter is bound to a view
object — :class:`ConcreteArray` in the reference pass (plain Python
lists with the same bounds/role validation the trace pass applies) or
:class:`TracedArray` in the trace pass (``__getitem__``/``__setitem__``
emit load/store nodes) — so the same function body runs in both worlds.
"""

from repro.errors import FrontendError
from repro.frontend.proxy import Traced, concrete_of, operand_of

KINDS = ("input", "output", "inout", "internal")


class Array:
    """Declares one kernel array: ``Array("a", n, word_bytes=8, kind=...)``.

    ``init`` seeds the functional contents: a sequence of numbers, or a
    callable ``init(rng) -> sequence`` drawing from the workload's
    deterministic rng (specs are evaluated in parameter order, so rng
    consumption is reproducible).  Inputs/inouts default to uniform
    floats in [-1, 1); outputs/internals default to zeros, matching the
    trace-builder DSL.
    """

    __slots__ = ("name", "length", "word_bytes", "kind", "init")

    def __init__(self, name, length, word_bytes=8, kind="input", init=None):
        if not name or not isinstance(name, str):
            raise FrontendError(
                f"array name must be a non-empty string, got {name!r}")
        if not isinstance(length, int) or length <= 0:
            raise FrontendError(
                f"array {name!r}: length must be a positive int, "
                f"got {length!r}")
        if kind not in KINDS:
            raise FrontendError(
                f"array {name!r}: kind must be one of {KINDS}, "
                f"got {kind!r}")
        self.name = name
        self.length = length
        self.word_bytes = word_bytes
        self.kind = kind
        self.init = init

    def __repr__(self):
        return (f"Array({self.name!r}, {self.length}, "
                f"word_bytes={self.word_bytes}, kind={self.kind!r})")

    @property
    def writable(self):
        return self.kind != "input"

    def materialize(self, rng):
        """The initial contents for one kernel pass."""
        init = self.init
        if init is None:
            if self.kind in ("input", "inout"):
                return [rng.uniform(-1.0, 1.0) for _ in range(self.length)]
            return [0] * self.length
        if callable(init):
            init = init(rng)
        data = list(init)
        if len(data) != self.length:
            raise FrontendError(
                f"array {self.name!r}: init produced {len(data)} elements, "
                f"expected {self.length}")
        for value in data:
            if isinstance(value, bool) or not isinstance(value,
                                                         (int, float)):
                raise FrontendError(
                    f"array {self.name!r}: init element {value!r} is not a "
                    f"number")
        return data


class _ArrayView:
    """Shared bounds/role validation for both pass views."""

    __slots__ = ("spec",)

    def __init__(self, spec):
        self.spec = spec

    def __len__(self):
        return self.spec.length

    def _index(self, index, writing):
        spec = self.spec
        if writing and not spec.writable:
            raise FrontendError(
                f"write to read-only input array {spec.name!r}; declare it "
                f'kind="inout" if the kernel updates it in place')
        if isinstance(index, Traced):
            # Indirect addressing (spmv-style): the address escapes to its
            # concrete value — Aladdin removes address computation from
            # the DDDG, so the trace records no extra dependence, exactly
            # like the DSL idiom ``tb.load(arr, int(ptr.value))``.
            index = concrete_of(index)
        if isinstance(index, float):
            if not index.is_integer():
                raise FrontendError(
                    f"{spec.name}[{index!r}]: array index must be an "
                    f"integer")
            index = int(index)
        if not isinstance(index, int) or isinstance(index, bool):
            raise FrontendError(
                f"{spec.name}[{index!r}]: array index must be an int or a "
                f"traced integer value (slices and fancy indexing are not "
                f"traceable)")
        if not 0 <= index < spec.length:
            raise FrontendError(
                f"{spec.name}[{index}] out of bounds (length "
                f"{spec.length}; negative indices are not supported — "
                f"they alias addresses the accelerator never computes)")
        return index


class ConcreteArray(_ArrayView):
    """Reference-pass view: plain list storage, same validation."""

    __slots__ = ("data",)

    def __init__(self, spec, data):
        super().__init__(spec)
        self.data = data

    def __getitem__(self, index):
        return self.data[self._index(index, writing=False)]

    def __setitem__(self, index, value):
        index = self._index(index, writing=True)
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FrontendError(
                f"{self.spec.name}[{index}] = {value!r}: stored values "
                f"must be numbers")
        self.data[index] = value


class TracedArray(_ArrayView):
    """Trace-pass view: accesses emit load/store nodes."""

    __slots__ = ("tb",)

    def __init__(self, spec, tb):
        super().__init__(spec)
        self.tb = tb

    def __getitem__(self, index):
        index = self._index(index, writing=False)
        return Traced(self.tb, self.tb.load(self.spec.name, index))

    def __setitem__(self, index, value):
        index = self._index(index, writing=True)
        self.tb.store(self.spec.name, index,
                      operand_of(value, f"value stored to "
                                        f"{self.spec.name}[{index}]"))
