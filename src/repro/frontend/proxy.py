"""Operator-overloading proxies that emit trace ops as they compute.

A :class:`Traced` value wraps one SSA :class:`repro.aladdin.trace.Value`
(producing node + concrete number).  Arithmetic on proxies emits the
matching :class:`~repro.aladdin.ir.Op` through the ambient trace builder
— float ops when either operand is concretely a float, integer ops
otherwise, the same opcode choice a DSL author makes by hand — and
returns a new proxy, so ordinary expressions like ``acc + a[i] * b[i]``
build the dataflow graph as a side effect of evaluating it.

Anything that would *consume* a traced value outside the dataflow — an
``if``, ``min``/``max``, ``int()``/``float()``, ``math.sqrt`` — raises
:class:`FrontendError` naming the supported alternative (``fe.select``,
``fe.fmin``/``fe.fmax``, ``fe.sqrt``, or the explicit ``fe.concrete``
escape), because a silently dropped dependence would produce a trace
that schedules faster than the kernel it claims to model.
"""

from repro.aladdin.ir import Op
from repro.errors import FrontendError

#: Binary operator table: python hook -> (float opcode, int opcode).
_BINOPS = {
    "+": (Op.FADD, Op.ADD),
    "-": (Op.FSUB, Op.SUB),
    "*": (Op.FMUL, Op.MUL),
    "/": (Op.FDIV, Op.FDIV),   # Python / is float division for ints too
    "//": (None, Op.DIV),
    "&": (None, Op.AND),
    "|": (None, Op.OR),
    "^": (None, Op.XOR),
    "<<": (None, Op.SHL),
    ">>": (None, Op.SHR),
}


def concrete_of(value):
    """The plain number behind a proxy, number, or raw SSA value."""
    if isinstance(value, Traced):
        return value._val.value
    return value


def operand_of(value, what="operand"):
    """Lower a proxy/number to what :meth:`TraceBuilder.op` accepts."""
    if isinstance(value, Traced):
        return value._val
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FrontendError(
            f"unsupported {what} {value!r} ({type(value).__name__}) in a "
            f"traced expression; only traced values, ints and floats "
            f"participate in kernel dataflow")
    return value


def _is_float(value):
    return isinstance(concrete_of(value), float)


class Traced:
    """One traced SSA value flowing through a kernel expression."""

    __slots__ = ("_tb", "_val")

    def __init__(self, tb, val):
        self._tb = tb
        self._val = val

    @property
    def concrete(self):
        """The concrete number this value holds (read-only peek)."""
        return self._val.value

    def __repr__(self):
        return (f"Traced(node={self._val.node}, "
                f"value={self._val.value!r})")

    # -- arithmetic -----------------------------------------------------------

    def _binary(self, other, symbol, swapped=False):
        a, b = (other, self) if swapped else (self, other)
        fa = operand_of(a, f"left operand of {symbol!r}")
        fb = operand_of(b, f"right operand of {symbol!r}")
        float_op, int_op = _BINOPS[symbol]
        use_float = _is_float(a) or _is_float(b)
        op = float_op if use_float else int_op
        if op is None:
            raise FrontendError(
                f"operator {symbol!r} needs integer operands, got "
                f"{concrete_of(a)!r} and {concrete_of(b)!r}; integer "
                f"bitwise/shift ops have no floating-point form")
        return Traced(self._tb, self._tb.op(op, fa, fb))

    def __add__(self, other):
        return self._binary(other, "+")

    def __radd__(self, other):
        return self._binary(other, "+", swapped=True)

    def __sub__(self, other):
        return self._binary(other, "-")

    def __rsub__(self, other):
        return self._binary(other, "-", swapped=True)

    def __mul__(self, other):
        return self._binary(other, "*")

    def __rmul__(self, other):
        return self._binary(other, "*", swapped=True)

    def __truediv__(self, other):
        return self._binary(other, "/")

    def __rtruediv__(self, other):
        return self._binary(other, "/", swapped=True)

    def __floordiv__(self, other):
        return self._binary(other, "//")

    def __rfloordiv__(self, other):
        return self._binary(other, "//", swapped=True)

    def __and__(self, other):
        return self._binary(other, "&")

    def __rand__(self, other):
        return self._binary(other, "&", swapped=True)

    def __or__(self, other):
        return self._binary(other, "|")

    def __ror__(self, other):
        return self._binary(other, "|", swapped=True)

    def __xor__(self, other):
        return self._binary(other, "^")

    def __rxor__(self, other):
        return self._binary(other, "^", swapped=True)

    def __lshift__(self, other):
        return self._binary(other, "<<")

    def __rlshift__(self, other):
        return self._binary(other, "<<", swapped=True)

    def __rshift__(self, other):
        return self._binary(other, ">>")

    def __rrshift__(self, other):
        return self._binary(other, ">>", swapped=True)

    def __neg__(self):
        zero = 0.0 if _is_float(self) else 0
        return self._binary(zero, "-", swapped=True)

    # -- comparisons ----------------------------------------------------------

    def _compare(self, other, swapped=False):
        """Greater-than compare (the DSL's icmp/fcmp: 1 iff a > b)."""
        a, b = (other, self) if swapped else (self, other)
        fa = operand_of(a, "compared value")
        fb = operand_of(b, "compared value")
        op = Op.FCMP if _is_float(a) or _is_float(b) else Op.ICMP
        return Traced(self._tb, self._tb.op(op, fa, fb))

    def __gt__(self, other):
        return self._compare(other)

    def __lt__(self, other):
        return self._compare(other, swapped=True)

    def __ge__(self, other):
        raise FrontendError(
            "operator >= is not a single accelerator op (the IR compares "
            "are strict greater-than); rewrite with > / < — e.g. "
            "'not (b > a)' becomes fe.select(b > a, 0, 1)")

    def __le__(self, other):
        raise FrontendError(
            "operator <= is not a single accelerator op (the IR compares "
            "are strict greater-than); rewrite with > / < — e.g. "
            "'not (a > b)' becomes fe.select(a > b, 0, 1)")

    def __eq__(self, other):
        raise FrontendError(
            "operator ==/!= on traced values is not a single accelerator "
            "op; use arithmetic compares (> / <) or fe.concrete() to "
            "escape to plain Python when the comparison only steers "
            "host-side control flow")

    def __ne__(self, other):
        return self.__eq__(other)

    __hash__ = None

    # -- forbidden escapes ----------------------------------------------------

    def __bool__(self):
        raise FrontendError(
            "data-dependent control flow on a traced value: 'if'/'while'/"
            "'and'/'or'/min/max/sorted consume a traced value as a plain "
            "bool, which would drop its dependence from the trace.  Use "
            "fe.select(cond, a, b) for data-dependent values, fe.fmin/"
            "fe.fmax for extrema, or fe.concrete(v) to deliberately "
            "escape a value into host control flow (the escape is not "
            "traced)")

    def _no_escape(self, via):
        raise FrontendError(
            f"implicit {via} escape of a traced value: the result would "
            f"leave the trace without a node.  Use the fe.* intrinsics "
            f"(fe.sqrt, fe.fmin, fe.fmax, fe.select) to keep the "
            f"computation in the trace, or fe.concrete(v) to "
            f"deliberately read the plain number (not traced)")

    def __int__(self):
        self._no_escape("int()")

    def __float__(self):
        self._no_escape("float()")

    def __index__(self):
        self._no_escape("__index__ (use in range/slice/bit-ops)")

    def __abs__(self):
        self._no_escape("abs() (use fe.select(x > 0, x, -x))")

    def __mod__(self, other):
        raise FrontendError(
            "operator % has no accelerator op; restructure with // and - "
            "(q = a // b; r = a - q * b) or escape with fe.concrete")

    __rmod__ = __mod__

    def __pow__(self, other):
        raise FrontendError(
            "operator ** has no accelerator op; expand small powers into "
            "multiplies (x * x) or use fe.sqrt for square roots")

    __rpow__ = __pow__
