"""The ``@kernel`` decorator: plain-Python functions become workloads.

A decorated function runs twice per trace capture:

1. **Concrete reference pass** — parameters bound to
   :class:`~repro.frontend.arrays.ConcreteArray` views over plain lists;
   the function computes with host arithmetic.  Its final array contents
   are the functional reference.
2. **Trace pass** — a fresh :class:`~repro.aladdin.trace.TraceBuilder`
   declares the same arrays with the same initial data, parameters bind
   to :class:`~repro.frontend.arrays.TracedArray` views, and every
   expression flows through operator-overloading proxies that emit
   trace nodes as they compute.

After the trace pass the captured array contents are compared against
the reference *bit for bit* — both passes execute the same float ops in
the same order, so any divergence means an untraced escape slipped
through, and the capture fails loudly instead of producing a trace that
models a different computation than the Python says.

The resulting :class:`FrontendKernel` is a first-class
:class:`~repro.workloads.registry.Workload`: ``build()`` captures the
trace, the auto-generated ``verify()`` replays the pure-Python reference
against a trace's recorded outputs, and
:func:`~repro.workloads.registry.register_workload` (or
:meth:`FrontendKernel.register`) puts it behind every sweep, figure and
service entry point by name.
"""

import inspect

from repro.errors import FrontendError
from repro.frontend.arrays import Array, ConcreteArray, TracedArray
from repro.frontend.tracer import KernelContext, activate
from repro.workloads.registry import Workload, register_workload

#: Tolerance for verify(): zero — both passes run identical float ops in
#: identical order, so the reference is reproduced exactly or not at all.
_EXACT = 0


class FrontendKernel(Workload):
    """A traced plain-Python kernel, usable anywhere a Workload is."""

    def __init__(self, fn, name=None, description=None, seed=None):
        self.fn = fn
        self.name = name or fn.__name__.replace("_", "-")
        self.description = (description
                            if description is not None
                            else (inspect.getdoc(fn) or "").split("\n")[0])
        self._seed = seed
        self.arrays = self._signature_arrays(fn)

    def __repr__(self):
        return (f"FrontendKernel({self.name!r}, "
                f"arrays=[{', '.join(a.name for a in self.arrays)}])")

    @staticmethod
    def _signature_arrays(fn):
        """Ordered Array specs from the function's annotations."""
        try:
            sig = inspect.signature(fn)
        except (TypeError, ValueError) as exc:
            raise FrontendError(f"@kernel target {fn!r} has no inspectable "
                                f"signature: {exc}")
        specs = []
        seen = set()
        for param in sig.parameters.values():
            if param.kind in (param.VAR_POSITIONAL, param.VAR_KEYWORD):
                raise FrontendError(
                    f"kernel {fn.__name__!r}: *args/**kwargs parameters "
                    f"are not traceable; declare each array explicitly")
            spec = param.annotation
            if isinstance(spec, str):
                raise FrontendError(
                    f"kernel {fn.__name__!r}: parameter {param.name!r} has "
                    f"a string annotation — 'from __future__ import "
                    f"annotations' defers Array specs to strings; remove "
                    f"that import from the kernel module")
            if not isinstance(spec, Array):
                raise FrontendError(
                    f"kernel {fn.__name__!r}: parameter {param.name!r} "
                    f"needs an Array annotation (e.g. {param.name}: "
                    f'Array("{param.name}", 64, word_bytes=8, '
                    f'kind="input")), got {spec!r}')
            if spec.name in seen:
                raise FrontendError(
                    f"kernel {fn.__name__!r}: two parameters declare the "
                    f"array name {spec.name!r}; aliased arrays would fold "
                    f"distinct memories into one address space")
            seen.add(spec.name)
            specs.append(spec)
        if not specs:
            raise FrontendError(
                f"kernel {fn.__name__!r} declares no arrays; a kernel "
                f"with no memory traffic has nothing to accelerate")
        return specs

    # -- seeding --------------------------------------------------------------

    def rng(self):
        """Deterministic rng; ``seed=`` pins it (e.g. to a DSL twin's)."""
        if self._seed is not None:
            import random
            return random.Random(self._seed)
        return super().rng()

    def _initial_data(self):
        """Per-array initial contents, one rng stream per capture."""
        rng = self.rng()
        return {spec.name: spec.materialize(rng) for spec in self.arrays}

    # -- the two passes -------------------------------------------------------

    def reference(self, init=None):
        """Run the concrete pass; returns ``{array: final contents}``."""
        init = init if init is not None else self._initial_data()
        views = [ConcreteArray(spec, list(init[spec.name]))
                 for spec in self.arrays]
        ctx = KernelContext("concrete", kernel_name=self.name)
        with activate(ctx):
            self.fn(*views)
        return {view.spec.name: view.data for view in views}

    def build(self):
        """Capture the trace (concrete pass, trace pass, self-check)."""
        from repro.aladdin.trace import TraceBuilder

        init = self._initial_data()
        expected = self.reference(init)
        tb = TraceBuilder(self.name)
        views = []
        for spec in self.arrays:
            tb.array(spec.name, spec.length, word_bytes=spec.word_bytes,
                     kind=spec.kind, init=list(init[spec.name]))
            views.append(TracedArray(spec, tb))
        ctx = KernelContext("trace", tb=tb, kernel_name=self.name)
        with activate(ctx):
            self.fn(*views)
        if tb.num_nodes == 0:
            raise FrontendError(
                f"kernel {self.name!r} traced zero operations; the trace "
                f"pass never touched a traced array — is every loop bound "
                f"zero, or does the kernel compute only on host values?")
        self._check_divergence(tb, expected)
        return tb

    def _check_divergence(self, tb, expected):
        for spec in self.arrays:
            got = tb.arrays[spec.name].data
            want = expected[spec.name]
            for i, (g, w) in enumerate(zip(got, want)):
                if g != w and not (g != g and w != w):  # NaN == NaN here
                    raise FrontendError(
                        f"kernel {self.name!r}: traced execution diverged "
                        f"from the Python reference at {spec.name}[{i}]: "
                        f"traced {g!r} vs reference {w!r}.  An untraced "
                        f"escape (fe.concrete on a value that feeds "
                        f"results, or side effects on host state) changed "
                        f"the computation between passes")

    # -- Workload interface ---------------------------------------------------

    def verify(self, trace):
        """Auto-generated check: replay the Python reference, compare."""
        expected = self.reference()
        for spec in self.arrays:
            if spec.kind == "internal":
                continue  # never leaves the accelerator
            got = trace.arrays[spec.name].data
            want = expected[spec.name]
            for i, (g, w) in enumerate(zip(got, want)):
                if g != w and not (g != g and w != w):
                    raise AssertionError(
                        f"{self.name}: {spec.name}[{i}] = {g!r}, "
                        f"expected {w!r}")

    def register(self, replace=False):
        """Register under ``self.name``; returns self for chaining."""
        return register_workload(self, replace=replace)


def kernel(fn=None, *, name=None, description=None, seed=None):
    """Decorator: ``@kernel`` / ``@kernel(name=..., seed=...)``.

    ``name`` defaults to the function name with underscores dashed
    (``def fir_filter`` → ``fir-filter``); ``description`` to the first
    docstring line; ``seed`` overrides the rng seed (pass a DSL twin's
    ``"repro-<name>"`` seed to reproduce its exact input data).
    The decorated object is a :class:`FrontendKernel` — a Workload, not
    a function; call ``.reference()`` for the pure-Python result,
    ``.build()`` for the trace, ``.register()`` to make it sweepable.
    """
    def wrap(fn):
        return FrontendKernel(fn, name=name, description=description,
                              seed=seed)
    if fn is not None:
        return wrap(fn)
    return wrap
