"""Load kernel files: ``repro trace-kernel x.py``, ``--kernel``, POST /kernels.

A *kernel file* is an ordinary Python file whose top level defines one
or more ``@kernel`` objects (or ``Workload.from_builder`` instances
listed in a module-level ``KERNELS`` sequence).  Loading executes the
file, collects those workloads and registers them.

Registered files are *advertised* in ``$REPRO_KERNEL_PATHS``
(``os.pathsep``-separated) so that spawn-context sweep workers — fresh
interpreters that receive only a workload *name* — re-load the same
files on first registry use and resolve the name identically (see
``repro.workloads.registry._ensure_loaded``).  That is what lets a
file-based kernel ride the parallel pool, the sweep cache, tiered
calibration and the service layer with zero special cases.
"""

import os
import runpy

from repro.errors import FrontendError, WorkloadError
from repro.frontend.kernel import FrontendKernel
from repro.workloads.registry import (
    ENV_KERNEL_PATHS,
    _LOADED_KERNEL_PATHS,
    Workload,
    register_workload,
)


def collect_kernels(namespace, path="<namespace>"):
    """The workloads a kernel-file namespace defines, in definition order.

    An explicit module-level ``KERNELS`` sequence wins (any Workload
    instances); otherwise every top-level :class:`FrontendKernel` is
    collected.  Duplicates (two names for one object) collapse.
    """
    explicit = namespace.get("KERNELS")
    if explicit is not None:
        kernels = list(explicit)
        for wl in kernels:
            if not isinstance(wl, Workload):
                raise FrontendError(
                    f"{path}: KERNELS entries must be Workload instances "
                    f"(@kernel objects or Workload.from_builder(...)), "
                    f"got {wl!r}")
        return kernels
    kernels, seen = [], set()
    for value in namespace.values():
        if isinstance(value, FrontendKernel) and id(value) not in seen:
            seen.add(id(value))
            kernels.append(value)
    return kernels


def load_kernel_file(path, register=True, replace=False, advertise=True):
    """Execute ``path`` and register the kernels it defines.

    Returns the list of workload instances found.  ``replace=True``
    allows re-loading a file whose kernels are already registered
    (same-name dynamic registrations are overwritten); ``advertise``
    records the path in ``$REPRO_KERNEL_PATHS`` so sweep worker
    processes can resolve the same names.

    The file runs with ``__name__`` set to a non-``"__main__"`` value,
    so a trailing ``if __name__ == "__main__":`` demo block is skipped.
    """
    path = os.path.abspath(path)
    if not os.path.exists(path):
        raise FrontendError(f"kernel file not found: {path}")
    try:
        namespace = runpy.run_path(path, run_name="repro.kernelfile")
    except (FrontendError, WorkloadError):
        raise
    except Exception as exc:
        raise FrontendError(
            f"kernel file {path} failed to execute: {exc!r}") from exc
    kernels = collect_kernels(namespace, path)
    if not kernels:
        raise FrontendError(
            f"kernel file {path} defines no kernels; decorate a function "
            f"with @repro.frontend.kernel (or list Workload instances in "
            f"a module-level KERNELS sequence)")
    if register:
        # Mark before registering: registration touches the registry,
        # whose lazy loader must not re-execute this same file.
        _LOADED_KERNEL_PATHS.add(path)
        for wl in kernels:
            register_workload(wl, replace=replace)
        if advertise:
            advertise_kernel_path(path)
    return kernels


def advertise_kernel_path(path):
    """Append ``path`` to ``$REPRO_KERNEL_PATHS`` (idempotent)."""
    path = os.path.abspath(path)
    existing = os.environ.get(ENV_KERNEL_PATHS, "")
    parts = [p for p in existing.split(os.pathsep) if p]
    if path not in parts:
        parts.append(path)
        os.environ[ENV_KERNEL_PATHS] = os.pathsep.join(parts)
    _LOADED_KERNEL_PATHS.add(path)
