"""Kernel intrinsics: traced math that has no Python operator.

Each intrinsic is pass-polymorphic: on plain numbers (the concrete
reference pass, or ordinary Python use outside tracing) it computes with
host arithmetic, on :class:`~repro.frontend.proxy.Traced` values it
emits the matching trace ops.  Both paths produce bit-identical numbers
— the trace pass self-check depends on it.
"""

import math

from repro.aladdin.ir import Op
from repro.errors import FrontendError
from repro.frontend.proxy import Traced, concrete_of, operand_of


def _any_traced(*values):
    for value in values:
        if isinstance(value, Traced):
            return value
    return None


def _emit(tb, op, *operands):
    return Traced(tb, tb.op(op, *(operand_of(v) for v in operands)))


def _float_like(*values):
    return any(isinstance(concrete_of(v), float) for v in values)


def sqrt(x):
    """Square root of ``|x|`` (the IR's fsqrt semantics, like the DSL)."""
    proxy = _any_traced(x)
    if proxy is None:
        return math.sqrt(abs(float(x)))
    return _emit(proxy._tb, Op.FSQRT, x)


def select(cond, a, b):
    """``a`` when ``cond`` is truthy else ``b``, as a traced select op.

    ``cond`` is typically a traced compare (``x > y``); all three
    operands join the dataflow, so a data-dependent choice costs one
    select node instead of untraceable control flow.
    """
    proxy = _any_traced(cond, a, b)
    if proxy is None:
        return a if cond else b
    return _emit(proxy._tb, Op.SELECT, cond, a, b)


def fmin(a, b):
    """Elementwise minimum as compare + select (no branch)."""
    proxy = _any_traced(a, b)
    if proxy is None:
        return b if a > b else a
    op = Op.FCMP if _float_like(a, b) else Op.ICMP
    cond = _emit(proxy._tb, op, a, b)
    return select(cond, b, a)


def fmax(a, b):
    """Elementwise maximum as compare + select (no branch)."""
    proxy = _any_traced(a, b)
    if proxy is None:
        return a if a > b else b
    op = Op.FCMP if _float_like(a, b) else Op.ICMP
    cond = _emit(proxy._tb, op, a, b)
    return select(cond, a, b)


def concrete(x):
    """Deliberately escape a traced value to its plain number.

    The escape hatch for host-side control decisions the accelerator
    does not compute — data-dependent loop *bounds* (``range(fe.concrete
    (begin), fe.concrete(end))``) and indirect addresses, the same holes
    the DSL leaves via ``.value``.  The read itself is not traced; any
    compare steering the host loop should still be emitted (e.g.
    ``end > begin``) so the trace carries the loop-bound work.
    """
    return concrete_of(x)


def icmp(a, b):
    """Explicit integer greater-than compare node (1 iff a > b).

    For loop-bound compares whose *result* only steers host control
    flow (the spmv idiom: emit the compare, then iterate concretely).
    """
    proxy = _any_traced(a, b)
    if proxy is None:
        return 1 if a > b else 0
    return _emit(proxy._tb, Op.ICMP, a, b)


def fcmp(a, b):
    """Explicit float greater-than compare node (1 iff a > b)."""
    proxy = _any_traced(a, b)
    if proxy is None:
        return 1 if float(a) > float(b) else 0
    return _emit(proxy._tb, Op.FCMP, a, b)
