"""DMA subsystem: descriptors and the bulk-transfer engine.

Implements the paper's baseline DMA flow plus the two latency optimizations
of Section IV-B: pipelined DMA (page-sized flush/transfer overlap, driven by
the SoC flow in :mod:`repro.core.soc`) and DMA-triggered computation (the
engine sets full/empty bits as bursts land).
"""

from repro.dma.descriptor import DMADescriptor
from repro.dma.engine import DMAEngine

__all__ = ["DMADescriptor", "DMAEngine"]
