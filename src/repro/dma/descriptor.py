"""DMA transfer descriptors.

Section III-C: "the programmer constructs a DMA transfer descriptor that
contains the source and destination memory addresses along with the size of
the transfer.  Multiple descriptors can be constructed and connected through
a linked list."  A transaction is a chain of descriptors serviced in order.
"""

from repro.errors import ConfigError


class DMADescriptor:
    """One contiguous copy: memory region <-> scratchpad array slice."""

    __slots__ = ("mem_addr", "array", "array_offset", "size", "to_accel")

    def __init__(self, mem_addr, array, array_offset, size, to_accel):
        if size < 0:
            raise ConfigError(
                f"DMA descriptor size must be non-negative, got {size}")
        self.mem_addr = mem_addr
        self.array = array          # scratchpad array name
        self.array_offset = array_offset
        self.size = size
        self.to_accel = to_accel    # True: dmaLoad (mem -> spad)

    def split(self, block_bytes):
        """Split into page-sized descriptors for pipelined DMA."""
        out = []
        done = 0
        while done < self.size:
            chunk = min(block_bytes, self.size - done)
            out.append(DMADescriptor(self.mem_addr + done, self.array,
                                     self.array_offset + done, chunk,
                                     self.to_accel))
            done += chunk
        return out

    def __repr__(self):
        direction = "load" if self.to_accel else "store"
        return (f"DMADescriptor({direction} {self.array}+{self.array_offset} "
                f"<-> 0x{self.mem_addr:x}, {self.size}B)")
