"""The DMA engine.

Models gem5's DMA device as used by gem5-Aladdin (Section III-C):

* A transaction (chain of descriptors) begins with a fixed setup delay —
  40 accelerator cycles at 100 MHz, the paper's characterized cost of
  metadata reads (4 cycles), one-way CPU initiation (17 cycles), and
  housekeeping (Section IV-B1).
* Data then moves in bus-width bursts over the shared system bus, strictly
  in address order — this is the *serial data arrival* effect that bounds
  DMA-triggered compute (Section IV-C2).
* A bounded number of bursts is kept in flight so other agents (caches,
  traffic generators) can interleave on the bus.
* As each burst of a ``dmaLoad`` lands in the scratchpad the engine sets the
  corresponding full/empty bits, waking any stalled datapath lanes.

Transactions queue FIFO on a single channel, which is how pipelined DMA's
page-sized blocks stay ordered behind one another.
"""

from repro.obs import trace
from repro.sim.ports import MemRequest
from repro.sim.stats import IntervalTracker


class _Transaction:
    __slots__ = ("descriptors", "on_done", "bursts", "next_burst",
                 "completed_bursts", "label", "gate")

    def __init__(self, descriptors, on_done, label, gate=None):
        self.descriptors = descriptors
        self.on_done = on_done
        self.bursts = []
        self.next_burst = 0
        self.completed_bursts = 0
        self.label = label
        self.gate = gate


class DMAEngine:
    """Single-channel DMA engine on the system bus."""

    def __init__(self, sim, clock, bus, setup_cycles=40, burst_bytes=64,
                 max_outstanding=4, name="dma"):
        self.sim = sim
        self.clock = clock
        self.bus = bus
        self.setup_cycles = setup_cycles
        self.burst_bytes = burst_bytes
        self.max_outstanding = max_outstanding
        self.name = name
        self.busy = IntervalTracker(name)
        self._queue = []
        self._active = None
        self._in_flight = 0
        self.bytes_moved = 0
        self.transactions = 0
        self.gated_starts = 0
        self.gate_wait_ticks = 0
        # array name -> ReadyBits, installed by the SoC when DMA-triggered
        # compute is enabled.
        self.ready_bits = {}
        self._trace = trace.tracer("dma", name)

    def enqueue(self, descriptors, on_done=None, label="", gate=None):
        """Queue one transaction (a descriptor chain).

        ``gate`` — a :class:`~repro.memory.fullempty.DescriptorGate` —
        defers the transaction's *start*: when it reaches the head of the
        channel queue the engine parks (channel reserved but not busy)
        until the gate's full/empty-bit condition holds.  Streaming
        pipelines use this for ready-bit-gated pulls and back-pressured
        pushes; later transactions wait behind a parked head in FIFO
        order, as on a real single-channel engine.
        """
        txn = _Transaction(list(descriptors), on_done, label, gate)
        for desc in txn.descriptors:
            offset = 0
            while offset < desc.size:
                chunk = min(self.burst_bytes, desc.size - offset)
                txn.bursts.append((desc, offset, chunk))
                offset += chunk
        self._queue.append(txn)
        if self._active is None:
            self._start_next()

    def idle(self):
        """True when no transaction is active, parked, or queued."""
        return self._active is None and not self._queue

    def _start_next(self):
        if not self._queue:
            return
        txn = self._active = self._queue.pop(0)
        gate = txn.gate
        if gate is not None and not gate.satisfied():
            self.gated_starts += 1
            parked_at = self.sim.now
            if gate.tracker is not None:
                gate.tracker.begin(parked_at)
            if self._trace is not None:
                self._trace(parked_at, "txn parked on %s gate%s",
                            gate.until,
                            f" [{txn.label}]" if txn.label else "")

            def opened():
                now = self.sim.now
                self.gate_wait_ticks += now - parked_at
                if gate.tracker is not None:
                    gate.tracker.end(now)
                self._begin(txn)

            gate.wait(opened)
            return
        self._begin(txn)

    def _begin(self, txn):
        self.transactions += 1
        self.busy.begin(self.sim.now)
        if txn.gate is not None:
            txn.gate.notify_open(self.sim.now)
        setup = self.clock.cycles_to_ticks(self.setup_cycles)
        if self._trace is not None:
            self._trace(self.sim.now,
                        "txn %d start: %d descriptor(s), %d burst(s)%s",
                        self.transactions, len(txn.descriptors),
                        len(txn.bursts),
                        f" [{txn.label}]" if txn.label else "")
        self.sim.schedule(setup, lambda: self._pump(txn))

    def _pump(self, txn):
        """Keep up to ``max_outstanding`` bursts on the bus, in order."""
        if not txn.bursts:
            # Empty descriptor chain (or all descriptors zero-size): there
            # is no data to move, so no _burst_done will ever fire.  The
            # transaction must complete right after setup or the channel
            # wedges forever, deadlocking every later transaction.
            self._finish_active(txn)
            return
        while (txn.next_burst < len(txn.bursts)
               and self._in_flight < self.max_outstanding):
            desc, offset, chunk = txn.bursts[txn.next_burst]
            txn.next_burst += 1
            self._in_flight += 1
            req = MemRequest(
                desc.mem_addr + offset, chunk,
                is_write=not desc.to_accel,
                requester=self.name,
                callback=lambda req, d=desc, o=offset, c=chunk:
                    self._burst_done(txn, d, o, c),
            )
            self.bus.request(req)

    def _burst_done(self, txn, desc, offset, chunk):
        self._in_flight -= 1
        txn.completed_bursts += 1
        self.bytes_moved += chunk
        if desc.to_accel:
            bits = self.ready_bits.get(desc.array)
            if bits is not None:
                bits.set_range(desc.array_offset + offset, chunk)
        if txn.completed_bursts == len(txn.bursts):
            self._finish_active(txn)
        else:
            self._pump(txn)

    def _finish_active(self, txn):
        """Complete the active transaction and start the next queued one."""
        self.busy.end(self.sim.now)
        if self._trace is not None:
            self._trace(self.sim.now, "txn done: %d burst(s) complete",
                        txn.completed_bursts)
        self._active = None
        on_done = txn.on_done
        if on_done is not None:
            on_done()
        # on_done may have enqueued (and thereby started) the next
        # transaction already; starting again here would pop a second
        # transaction onto the single channel and orphan the first.
        if self._active is None:
            self._start_next()

    def reg_stats(self, stats, prefix="accel0.dma"):
        """Mirror this engine's counters into a stats registry."""
        stats.scalar(f"{prefix}.transactions", lambda: self.transactions,
                     desc="descriptor chains processed")
        stats.scalar(f"{prefix}.bytes_moved", lambda: self.bytes_moved,
                     desc="bytes transferred")
        stats.scalar(f"{prefix}.busy_ticks", lambda: self.busy.total_busy(),
                     desc="ticks with a transaction in flight")
        stats.scalar(f"{prefix}.gated_starts", lambda: self.gated_starts,
                     desc="transactions parked on a full/empty gate")
        stats.scalar(f"{prefix}.gate_wait_ticks",
                     lambda: self.gate_wait_ticks,
                     desc="ticks the channel head waited behind a gate")
