"""Operation set of the accelerator IR.

Aladdin's DDDG nodes are LLVM IR instructions.  Our trace builder emits the
same kinds of operations with per-op latencies (accelerator cycles at
100 MHz) and dynamic energies (pJ, TSMC 40 nm-class constants in line with
Aladdin's characterization).  Address/induction arithmetic is deliberately
*not* traced: Aladdin removes induction-variable and address-computation
nodes as a standard optimization, so we never create them.
"""


class FuClass:
    """Functional-unit classes; each datapath lane has one pipelined unit
    (initiation interval 1) of each class that the kernel uses."""

    ALU = "alu"        # integer add/sub/logic/shift/compare
    IMUL = "imul"      # integer multiply / divide
    FADD = "fadd"      # FP add/sub/compare
    FMUL = "fmul"      # FP multiply
    FDIV = "fdiv"      # FP divide / sqrt
    MEM = "mem"        # load/store issue port

    ALL = (ALU, IMUL, FADD, FMUL, FDIV, MEM)


class Op:
    """Opcode mnemonics."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    ICMP = "icmp"
    SELECT = "select"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FSQRT = "fsqrt"
    FCMP = "fcmp"
    LOAD = "load"
    STORE = "store"


class OpInfo:
    """Static properties of one opcode."""

    __slots__ = ("latency", "fu", "energy_pj")

    def __init__(self, latency, fu, energy_pj):
        self.latency = latency       # accelerator cycles (100 MHz)
        self.fu = fu                 # FuClass
        self.energy_pj = energy_pj   # dynamic energy per operation


OP_INFO = {
    Op.ADD:    OpInfo(1, FuClass.ALU, 0.10),
    Op.SUB:    OpInfo(1, FuClass.ALU, 0.10),
    Op.MUL:    OpInfo(3, FuClass.IMUL, 1.50),
    Op.DIV:    OpInfo(10, FuClass.IMUL, 4.00),
    Op.AND:    OpInfo(1, FuClass.ALU, 0.05),
    Op.OR:     OpInfo(1, FuClass.ALU, 0.05),
    Op.XOR:    OpInfo(1, FuClass.ALU, 0.05),
    Op.SHL:    OpInfo(1, FuClass.ALU, 0.05),
    Op.SHR:    OpInfo(1, FuClass.ALU, 0.05),
    Op.ICMP:   OpInfo(1, FuClass.ALU, 0.05),
    Op.SELECT: OpInfo(1, FuClass.ALU, 0.05),
    Op.FADD:   OpInfo(3, FuClass.FADD, 0.90),
    Op.FSUB:   OpInfo(3, FuClass.FADD, 0.90),
    Op.FCMP:   OpInfo(1, FuClass.FADD, 0.30),
    Op.FMUL:   OpInfo(4, FuClass.FMUL, 1.80),
    Op.FDIV:   OpInfo(15, FuClass.FDIV, 5.00),
    Op.FSQRT:  OpInfo(15, FuClass.FDIV, 5.00),
    Op.LOAD:   OpInfo(1, FuClass.MEM, 0.0),   # memory energy modeled separately
    Op.STORE:  OpInfo(1, FuClass.MEM, 0.0),
}

MEMORY_OPS = (Op.LOAD, Op.STORE)


def is_memory(op):
    """True for load/store opcodes."""
    return op == Op.LOAD or op == Op.STORE


# -- resource tables for modulo scheduling ------------------------------------
#
# The II search (repro.aladdin.modulo) needs two static maps over FU
# classes, in the style of polyphony's PipelineScheduler resource tables:
# per-class issue capacity (reservation-table width per lane per cycle)
# and the min/max operation latency bound per class.

#: Per-lane, per-cycle issue slots for each FU class (reservation-table
#: width).  Every class is a single pipelined unit (II = 1) per lane by
#: default; schedulers accept ``fu_per_lane`` overrides.
FU_CAPACITY = {fu: 1 for fu in FuClass.ALL}


def _latency_bounds():
    bounds = {}
    for info in OP_INFO.values():
        lo, hi = bounds.get(info.fu, (info.latency, info.latency))
        bounds[info.fu] = (min(lo, info.latency), max(hi, info.latency))
    return bounds


#: ``{fu_class: (min_latency, max_latency)}`` in accelerator cycles,
#: derived from :data:`OP_INFO` so it can never drift from the opcode set.
FU_LATENCY = _latency_bounds()


def fu_capacities(fu_per_lane=None):
    """Effective per-lane issue capacities: defaults plus overrides."""
    caps = dict(FU_CAPACITY)
    if fu_per_lane:
        for fu, width in fu_per_lane.items():
            if fu not in caps:
                raise KeyError(f"unknown FU class {fu!r}")
            caps[fu] = width
    return caps
