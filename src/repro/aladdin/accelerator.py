"""Standalone accelerator simulation — classic Aladdin.

"Aladdin only focuses on the standalone datapath and local memories.  It
assumes that all data has been preloaded into the local scratchpads"
(Section III-B).  :meth:`Accelerator.run_isolated` reproduces exactly that:
the kernel's DDDG is scheduled against the configured lanes/partitions with
every scratchpad word ready at time zero and no SoC attached.  This is the
"isolated" design style that the co-design experiments (Figs 1, 9, 10)
compare against.
"""

from repro.sim.kernel import Simulator
from repro.sim.clock import ClockDomain, ACCEL_CLOCK_MHZ
from repro.memory.sram import ArraySpec, Scratchpad
from repro.aladdin.ddg import DDDG
from repro.aladdin.modulo import plan_ii
from repro.aladdin.transforms import assign_lanes
from repro.aladdin.scheduler import DatapathScheduler, SpadInterface
from repro.aladdin.area import AreaModel
from repro.aladdin.power import PowerModel
from repro.units import edp, power_mw


class IsolatedResult:
    """Performance/power/area summary of one isolated run."""

    def __init__(self, cycles, ticks, energy, spad, scheduler, area=None):
        self.cycles = cycles
        self.ticks = ticks
        self.energy = energy                      # EnergyBreakdown
        self.energy_pj = energy.total_pj
        self.power_mw = power_mw(self.energy_pj, ticks)
        self.edp = edp(self.energy_pj, ticks)
        self.spad = spad
        self.scheduler = scheduler
        self.area = area                          # AreaBreakdown or None

    @property
    def area_mm2(self):
        return self.area.total_mm2 if self.area is not None else None


def make_scratchpad(trace, partitions, ports_per_partition=1, kinds=None):
    """Build the scratchpad holding the trace's arrays.

    ``kinds`` restricts which array roles get scratchpad storage (cache-based
    designs keep only ``internal`` arrays local).
    """
    specs = [
        ArraySpec(a.name, a.size_bytes, a.word_bytes)
        for a in trace.arrays.values()
        if kinds is None or a.kind in kinds
    ]
    return Scratchpad(specs, partitions, ports_per_partition)


class Accelerator:
    """A fixed-function accelerator: one DDDG plus a datapath configuration."""

    def __init__(self, trace, lanes, partitions, ports_per_partition=1,
                 clock_mhz=ACCEL_CLOCK_MHZ, fu_per_lane=None,
                 round_barriers=True, pipelining=None, ii="auto"):
        self.trace = trace
        self.ddg = DDDG(trace)
        self.lanes = lanes
        self.partitions = partitions
        self.ports_per_partition = ports_per_partition
        self.clock = ClockDomain(clock_mhz)
        self.fu_per_lane = fu_per_lane
        # ``pipelining`` supersedes the legacy ``round_barriers`` boolean
        # (None = derive: True -> "barriers", False -> "off").
        if pipelining is None:
            pipelining = "barriers" if round_barriers else "off"
        self.pipelining = pipelining
        self.round_barriers = pipelining == "barriers"
        self.ii = ii
        self.assignment = assign_lanes(trace, lanes)
        self.ii_plan = None
        if pipelining == "modulo":
            self.ii_plan = plan_ii(
                self.ddg, self.assignment, fu_per_lane=fu_per_lane,
                mem_slots_per_cycle=partitions * ports_per_partition,
                ii=ii)

    def run_isolated(self):
        """Schedule the DDDG with preloaded scratchpads and no system."""
        sim = Simulator()
        spad = make_scratchpad(self.trace, self.partitions,
                               self.ports_per_partition)
        mem_if = SpadInterface(sim, self.clock, spad)
        plan = self.ii_plan
        sched = DatapathScheduler(sim, self.clock, self.ddg, self.assignment,
                                  mem_if, fu_per_lane=self.fu_per_lane,
                                  pipelining=self.pipelining,
                                  ii=plan.ii if plan else 0,
                                  rec_mii=plan.rec_mii if plan else 0,
                                  res_mii=plan.res_mii if plan else 0)
        sim.add_done_dependency(lambda: sched.done)
        sched.start()
        sim.run()
        ticks = sched.done_tick - sched.start_tick
        cycles = self.clock.ticks_to_cycles(ticks)
        model = PowerModel(self.lanes, self.trace.op_histogram())
        energy = model.energy(ticks, spad=spad)
        area = AreaModel.from_power_model(model).area(spad=spad)
        return IsolatedResult(cycles, ticks, energy, spad, sched, area=area)
