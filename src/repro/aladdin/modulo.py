"""Initiation-interval analysis for modulo-scheduled loop pipelining.

Classic modulo scheduling (Rau's iterative modulo scheduling, and
polyphony's ``PipelineScheduler`` with its per-class reservation tables)
bounds the initiation interval from below by two static quantities:

* **RecMII** — the recurrence constraint.  Any dependence cycle that
  crosses iterations forces ``II >= ceil(sum(latency) / sum(distance))``
  over the cycle.  We fold the dynamic trace onto one *round* body
  (a round = ``lanes`` consecutive iterations, the unit our schedulers
  gate on) and find the smallest II admitting no positive cycle under
  edge weights ``latency - II * distance`` (Bellman-Ford feasibility,
  binary-searched).
* **ResMII** — the resource constraint.  A round body with ``n_c`` ops of
  FU class ``c`` on one lane, against a per-lane per-cycle reservation
  width ``cap_c`` (:data:`repro.aladdin.ir.FU_CAPACITY`), needs
  ``II >= ceil(n_c / cap_c)``; memory ops are additionally bounded by the
  aggregate memory slots per cycle (scratchpad ``partitions x ports`` or
  cache ports).

``II = max(RecMII, ResMII)`` is a lower bound, not necessarily
achievable: :func:`plan_ii` searches upward from it, checking each
candidate with a light placement pass (ASAP times folded modulo II into
per-``(lane, fu)`` reservation tables) until the body fits, capped at the
round schedule length — at that II rounds no longer overlap, so the
schedule degenerates to barrier cadence and is trivially feasible.

The numbers here are *planning* quantities: enforcement stays dynamic in
:class:`repro.aladdin.scheduler.DatapathScheduler` (round ``r + 1`` may
not issue before round ``r``'s first issue plus II, and the per-cycle
FU/port budgets bound overlap), so variable-latency memory never
invalidates the schedule — it just stretches it.
"""

from repro.aladdin.ir import FU_LATENCY, OP_INFO, fu_capacities, is_memory

#: Cap on remembered (source-position, source-round) entries per serial
#: node during recurrence folding.  Serial chains between rounds are
#: normally short (reduction tails); dropping the excess only weakens the
#: RecMII lower bound, never the dynamic schedule.
_SERIAL_FANIN_CAP = 32


class IIPlan:
    """Resolved initiation interval (in cycles) plus its lower bounds."""

    __slots__ = ("ii", "rec_mii", "res_mii", "round_length", "num_rounds",
                 "uniform")

    def __init__(self, ii, rec_mii, res_mii, round_length, num_rounds,
                 uniform):
        self.ii = ii                    # enforced II, cycles (0 = no gating)
        self.rec_mii = rec_mii
        self.res_mii = res_mii
        self.round_length = round_length  # one round's schedule length
        self.num_rounds = num_rounds
        self.uniform = uniform          # round bodies identical?

    def __repr__(self):
        return (f"IIPlan(ii={self.ii} rec={self.rec_mii} "
                f"res={self.res_mii} round_len={self.round_length})")


def _fold_round_body(trace, assignment):
    """Positions, uniformity, and folded dependence edges of the round body.

    Returns ``(positions, num_positions, uniform, edges, round_length)``:
    ``positions[node]`` is the node's index within its round (in trace
    order; -1 for serial nodes), ``edges`` maps ``(pu, pv, d)`` to the
    maximum latency of any trace edge folding onto it (``d`` = round
    distance), and ``round_length`` is the latency-weighted critical path
    of the round-0 body over its intra-round edges.
    """
    rounds = assignment.round
    lanes_of = assignment.lane
    node_ops = trace.node_op
    n = trace.num_nodes
    positions = [-1] * n
    counters = [0] * assignment.num_rounds
    # Round-0 signature for the uniformity check: (op, lane) per position.
    signature = []
    uniform = True
    for node in range(n):
        r = rounds[node]
        if r < 0:
            continue
        pos = counters[r]
        counters[r] = pos + 1
        positions[node] = pos
        if r == 0:
            signature.append((node_ops[node], lanes_of[node]))
        elif uniform:
            if pos >= len(signature) and counters[0] == len(signature):
                uniform = False
            elif pos < len(signature) and \
                    signature[pos] != (node_ops[node], lanes_of[node]):
                uniform = False
    body = len(signature)
    if uniform and any(c != body for c in counters):
        # A short trailing round still folds consistently as long as its
        # prefix matches; only flag bodies whose op pattern diverges.
        uniform = all(c <= body for c in counters)
    # Folded edges, plus single-chain contraction through serial nodes:
    # a recurrence that routes through a reduction tail (round -> serial
    # ... serial -> round) still constrains the cadence.
    edges = {}
    serial_in = {}  # serial node -> {(src_pos, src_round): max latency sum}
    op_lat = {op: OP_INFO[op].latency for op in set(node_ops)}
    deps = trace.deps
    for node in range(n):
        r = rounds[node]
        if r < 0:
            lat_s = op_lat[node_ops[node]]
            fanin = {}
            for pred in deps[node]:
                rp = rounds[pred]
                if rp >= 0:
                    key = (positions[pred], rp)
                    w = op_lat[node_ops[pred]] + lat_s
                    if fanin.get(key, -1) < w:
                        fanin[key] = w
                else:
                    for key, w0 in serial_in.get(pred, {}).items():
                        w = w0 + lat_s
                        if fanin.get(key, -1) < w:
                            fanin[key] = w
            if len(fanin) > _SERIAL_FANIN_CAP:
                fanin = dict(sorted(fanin.items(), key=lambda kv: -kv[1])
                             [:_SERIAL_FANIN_CAP])
            if fanin:
                serial_in[node] = fanin
            continue
        pv = positions[node]
        for pred in deps[node]:
            rp = rounds[pred]
            if rp >= 0:
                # Clamp backward (later-round) dependences to distance 0:
                # they only make the fold *more* conservative, and a
                # negative distance would break the II monotonicity the
                # binary search relies on.
                key = (positions[pred], pv, max(r - rp, 0))
                w = op_lat[node_ops[pred]]
                if edges.get(key, -1) < w:
                    edges[key] = w
            else:
                for (pu, ru), w in serial_in.get(pred, {}).items():
                    key = (pu, pv, max(r - ru, 0))
                    if edges.get(key, -1) < w:
                        edges[key] = w
    # Critical path of one round body over intra-round (d == 0) edges.
    finish = [0] * body
    round_length = 0
    for (pu, pv, d), lat in sorted(edges.items(), key=lambda kv: kv[0][1]):
        if d or pu >= body or pv >= body:
            continue
        t = finish[pu] + lat
        if t > finish[pv]:
            finish[pv] = t
    for node in range(n):
        if rounds[node] == 0:
            pos = positions[node]
            t = finish[pos] + op_lat[node_ops[node]]
            if t > round_length:
                round_length = t
    num_positions = max(body, max(counters) if counters else 0)
    return positions, num_positions, uniform, edges, round_length


def _has_positive_cycle(num_positions, edges, ii):
    """Bellman-Ford feasibility: True if some cycle has positive weight
    under ``weight = latency - ii * distance`` (i.e. II is infeasible)."""
    dist = [0.0] * num_positions
    edge_list = [(pu, pv, lat - ii * d) for (pu, pv, d), lat in edges.items()
                 if pu < num_positions and pv < num_positions]
    for _ in range(num_positions):
        changed = False
        for pu, pv, w in edge_list:
            t = dist[pu] + w
            if t > dist[pv]:
                dist[pv] = t
                changed = True
        if not changed:
            return False
    return True


def _rec_mii(num_positions, edges):
    """Smallest II admitting no positive-weight folded cycle."""
    if not any(d for (_pu, _pv, d) in edges):
        return 1
    # Any simple cycle's mean is bounded by the total folded latency
    # (every cycle crosses >= 1 round), so binary search below that.
    hi = max(1, sum(edges.values()))
    if not _has_positive_cycle(num_positions, edges, 1):
        return 1
    lo = 1  # infeasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if _has_positive_cycle(num_positions, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


def _res_mii(trace, assignment, caps, mem_slots_per_cycle):
    """Resource lower bound on the round cadence, in cycles."""
    rounds = assignment.round
    lanes_of = assignment.lane
    node_ops = trace.node_op
    per_round_lane_fu = {}
    per_round_mem = {}
    for node in range(trace.num_nodes):
        r = rounds[node]
        if r < 0:
            continue
        op = node_ops[node]
        fu = OP_INFO[op].fu
        key = (r, lanes_of[node], fu)
        per_round_lane_fu[key] = per_round_lane_fu.get(key, 0) + 1
        if is_memory(op):
            per_round_mem[r] = per_round_mem.get(r, 0) + 1
    res = 1
    for (_r, _lane, fu), count in per_round_lane_fu.items():
        need = -(-count // max(caps[fu], 1))
        if need > res:
            res = need
    if mem_slots_per_cycle:
        for count in per_round_mem.values():
            need = -(-count // mem_slots_per_cycle)
            if need > res:
                res = need
    return res


def _placement_feasible(trace, assignment, positions, edges, caps,
                        mem_slots_per_cycle, ii, round_length):
    """Light modulo-reservation check: can the round body be placed?

    ASAP times under the folded constraints (cross-round edges relaxed by
    ``ii * distance``), then greedy placement of each op into the first of
    ``ii`` candidate slots whose ``(lane, fu)`` reservation row — and the
    aggregate memory row — still has width.  A failed placement means
    this II cannot sustain the cadence statically.
    """
    rounds = assignment.round
    lanes_of = assignment.lane
    node_ops = trace.node_op
    body = [node for node in range(trace.num_nodes) if rounds[node] == 0]
    if not body:
        return True
    asap = {positions[node]: 0 for node in body}
    # Fixpoint over folded edges restricted to body positions; bounded
    # passes — a positive cycle was already excluded by RecMII <= ii.
    for _ in range(len(body)):
        changed = False
        for (pu, pv, d), lat in edges.items():
            if pu not in asap or pv not in asap:
                continue
            t = asap[pu] + lat - ii * d
            if t > asap[pv]:
                asap[pv] = t
                changed = True
        if not changed:
            break
    table = {}   # (lane, fu, slot) -> uses
    mem_table = [0] * ii
    order = sorted(body, key=lambda node: (asap[positions[node]],
                                           positions[node]))
    for node in order:
        op = node_ops[node]
        fu = OP_INFO[op].fu
        lane = lanes_of[node]
        cap = max(caps[fu], 1)
        mem = is_memory(op)
        t0 = max(asap[positions[node]], 0)
        for offset in range(ii):
            slot = (t0 + offset) % ii
            key = (lane, fu, slot)
            if table.get(key, 0) >= cap:
                continue
            if mem and mem_slots_per_cycle and \
                    mem_table[slot] >= mem_slots_per_cycle:
                continue
            table[key] = table.get(key, 0) + 1
            if mem:
                mem_table[slot] += 1
            break
        else:
            return False
    return True


def plan_ii(ddg, assignment, fu_per_lane=None, mem_slots_per_cycle=None,
            ii="auto"):
    """Resolve the initiation interval for one (graph, datapath) pair.

    Returns an :class:`IIPlan` whose ``ii`` is the enforced round cadence
    in accelerator cycles.  Degenerate graphs — a single round, or no
    parallel iterations at all — get ``ii = 0`` (nothing to gate; the
    schedule is serial / single-round and modulo mode reduces to barrier
    behavior).  ``ii="auto"`` searches upward from
    ``max(RecMII, ResMII)`` for the smallest statically placeable II,
    capped at the round length; an explicit integer is enforced verbatim
    (the bounds are still computed and reported).
    """
    trace = ddg.trace
    caps = fu_capacities(fu_per_lane)
    key = ("ii", assignment.lanes, tuple(sorted(caps.items())),
           mem_slots_per_cycle, ii, trace.num_nodes)
    memo = getattr(ddg, "_ii_memo", None)
    if memo is None:
        memo = ddg._ii_memo = {}
    cached = memo.get(key)
    if cached is not None:
        return cached
    num_rounds = assignment.num_rounds
    if num_rounds <= 1:
        plan = IIPlan(0, 0, 0, 0, num_rounds, True)
        memo[key] = plan
        return plan
    positions, num_positions, uniform, edges, round_length = \
        _fold_round_body(trace, assignment)
    rec = _rec_mii(num_positions, edges)
    res = _res_mii(trace, assignment, caps, mem_slots_per_cycle)
    cap_ii = max(round_length, rec, res, 1)
    if ii == "auto":
        candidate = max(rec, res, 1)
        if uniform:
            while candidate < cap_ii and not _placement_feasible(
                    trace, assignment, positions, edges, caps,
                    mem_slots_per_cycle, candidate, round_length):
                candidate += 1
        resolved = candidate
    else:
        resolved = int(ii)
        if resolved < 1:
            raise ValueError(f"ii must be >= 1, got {ii!r}")
    plan = IIPlan(resolved, rec, res, round_length, num_rounds, uniform)
    memo[key] = plan
    return plan
