"""Accelerator power and energy models (TSMC 40 nm class).

The paper reports *accelerator-only* power ("we do not account for CPU power
in any of our results" — Section III-F1), using Aladdin's validated 40 nm
characterization.  We reproduce the model's structure:

* per-operation dynamic energies (see :data:`repro.aladdin.ir.OP_INFO`) plus
  a per-node pipeline-register overhead;
* leakage per instantiated functional unit — an accelerator provisions
  ``lanes`` units of every FU class its kernel uses, so leakage grows with
  parallelism whether or not the units stay busy (this is exactly why
  over-provisioned isolated designs lose EDP once system effects stretch
  runtime);
* an analytic CACTI-style SRAM model: per-access energy grows ~sqrt(bank
  capacity), leakage with total capacity, plus a per-bank overhead so heavy
  partitioning is not free;
* cache overheads on top of the SRAM model: tag reads across ``assoc`` ways,
  per-port wiring overhead, line-wide fill writes, and TLB energy — the
  "tag comparisons, replacements, and address translations" that make
  caches pricier than scratchpads per access (Section IV-A).

Constants are module-level and documented so studies can re-characterize.
"""

import math

from repro.aladdin.ir import OP_INFO, FuClass

# Dynamic energy overhead per scheduled node (pipeline regs + control), pJ.
NODE_OVERHEAD_PJ = 0.05

# Leakage per instantiated functional unit, mW (40 nm, typical corner).
FU_LEAKAGE_MW = {
    FuClass.ALU: 0.006,
    FuClass.IMUL: 0.030,
    FuClass.FADD: 0.045,
    FuClass.FMUL: 0.080,
    FuClass.FDIV: 0.120,
    FuClass.MEM: 0.008,
}

# SRAM analytic model.
SRAM_ACCESS_COEFF_PJ = 0.08       # x sqrt(bank bytes) x word scaling
SRAM_LEAK_MW_PER_KB = 0.020      # 40 nm SRAM leaks ~20 uW/KB
SRAM_BANK_OVERHEAD_MW = 0.004     # per bank: decoders, sense amps
# A line fill/writeback is one wide access: decode and sense amortize, so
# it costs ~2 word accesses rather than line_size/word of them.
LINE_TRANSFER_WORD_EQUIV = 2.0

# Cache overheads.
CACHE_TAG_PJ_PER_WAY = 0.15       # tag read+compare per way probed
CACHE_PORT_LEAK_FACTOR = 0.25     # extra leakage per port beyond the first
CACHE_CONTROL_LEAK_MW = 0.020     # MSHRs, state machines
TLB_ACCESS_PJ = 0.20
TLB_MISS_PJ = 12.0                # page-table walk


def sram_access_energy_pj(bank_bytes, word_bytes=4):
    """Energy of one word access to a bank of ``bank_bytes`` capacity.

    >>> round(sram_access_energy_pj(4096), 2)
    5.12
    """
    return SRAM_ACCESS_COEFF_PJ * math.sqrt(bank_bytes) * (word_bytes / 4.0)


def sram_leakage_mw(total_bytes, banks=1):
    """Static power of ``total_bytes`` of SRAM split across ``banks``."""
    return (SRAM_LEAK_MW_PER_KB * total_bytes / 1024.0
            + SRAM_BANK_OVERHEAD_MW * banks)


class EnergyBreakdown:
    """Per-component accelerator energy (pJ) over one run."""

    def __init__(self):
        self.fu_dynamic = 0.0
        self.fu_leakage = 0.0
        self.spad_dynamic = 0.0
        self.spad_leakage = 0.0
        self.cache_dynamic = 0.0
        self.cache_leakage = 0.0
        self.tlb = 0.0

    @property
    def total_pj(self):
        return (self.fu_dynamic + self.fu_leakage + self.spad_dynamic
                + self.spad_leakage + self.cache_dynamic
                + self.cache_leakage + self.tlb)

    def as_dict(self):
        """Component energies as a plain dict (pJ)."""
        return {
            "fu_dynamic": self.fu_dynamic,
            "fu_leakage": self.fu_leakage,
            "spad_dynamic": self.spad_dynamic,
            "spad_leakage": self.spad_leakage,
            "cache_dynamic": self.cache_dynamic,
            "cache_leakage": self.cache_leakage,
            "tlb": self.tlb,
        }


class PowerModel:
    """Computes an accelerator's energy for one simulated run."""

    def __init__(self, lanes, op_histogram):
        self.lanes = lanes
        self.op_histogram = dict(op_histogram)
        self.fu_classes = self._used_fu_classes()

    def _used_fu_classes(self):
        used = set()
        for op, count in self.op_histogram.items():
            if count > 0:
                used.add(OP_INFO[op].fu)
        # Every accelerator has memory issue logic.
        used.add(FuClass.MEM)
        return used

    # -- dynamic components ---------------------------------------------------

    def fu_dynamic_pj(self):
        """Dynamic FU + pipeline-register energy over the run."""
        total = 0.0
        for op, count in self.op_histogram.items():
            total += count * (OP_INFO[op].energy_pj + NODE_OVERHEAD_PJ)
        return total

    def spad_dynamic_pj(self, spad):
        """Scratchpad access energy, per bank capacity."""
        total = 0.0
        for array, count in spad.access_by_array.items():
            spec = spad.arrays[array]
            total += count * sram_access_energy_pj(
                spad.partition_bytes(array), spec.word_bytes)
        return total

    def cache_dynamic_pj(self, cache):
        """Cache access + tag + fill/writeback energy."""
        accesses = cache.reads + cache.writes
        way_bytes = cache.size_bytes / cache.assoc
        data_pj = sram_access_energy_pj(way_bytes, word_bytes=8)
        tag_pj = CACHE_TAG_PJ_PER_WAY * cache.assoc
        fills = cache.fills + cache.prefetch_fills
        line_pj = LINE_TRANSFER_WORD_EQUIV * sram_access_energy_pj(
            way_bytes, 8)
        return (accesses * (data_pj + tag_pj)
                + (fills + cache.writebacks) * line_pj)

    def tlb_pj(self, tlb):
        """TLB lookup and walk energy."""
        return (tlb.hits + tlb.misses) * TLB_ACCESS_PJ + tlb.misses * TLB_MISS_PJ

    # -- leakage components --------------------------------------------------

    def fu_leakage_mw(self):
        """Leakage of all instantiated FUs (lanes x classes)."""
        per_lane = sum(FU_LEAKAGE_MW[fu] for fu in self.fu_classes)
        return per_lane * self.lanes

    def spad_leakage_mw(self, spad):
        """Scratchpad leakage (capacity + per-bank overhead)."""
        return sram_leakage_mw(spad.total_bytes,
                               banks=spad.partitions * len(spad.arrays))

    def cache_leakage_mw(self, cache, ports):
        """Cache leakage including tags, ports, control."""
        base = sram_leakage_mw(cache.size_bytes, banks=cache.assoc)
        # Tags add ~6% capacity; ports add wiring/decoder copies.
        tags = 0.06 * sram_leakage_mw(cache.size_bytes, banks=1)
        port_factor = 1.0 + CACHE_PORT_LEAK_FACTOR * max(ports - 1, 0)
        return (base + tags) * port_factor + CACHE_CONTROL_LEAK_MW

    # -- full accounting --------------------------------------------------------

    def energy(self, runtime_ticks, spad=None, cache=None, tlb=None,
               cache_ports=1):
        """Energy breakdown for one run of ``runtime_ticks`` duration.

        ``runtime_ticks`` should cover the interval the accelerator exists
        as a powered block (for co-designed runs: the full offload,
        including the time it waits for data — idle silicon still leaks).
        """
        from repro.units import ticks_to_seconds
        bd = EnergyBreakdown()
        seconds = ticks_to_seconds(runtime_ticks)
        mw_to_pj = lambda mw: mw * 1e-3 * seconds * 1e12
        bd.fu_dynamic = self.fu_dynamic_pj()
        bd.fu_leakage = mw_to_pj(self.fu_leakage_mw())
        if spad is not None:
            bd.spad_dynamic = self.spad_dynamic_pj(spad)
            bd.spad_leakage = mw_to_pj(self.spad_leakage_mw(spad))
        if cache is not None:
            bd.cache_dynamic = self.cache_dynamic_pj(cache)
            bd.cache_leakage = mw_to_pj(self.cache_leakage_mw(cache,
                                                              cache_ports))
        if tlb is not None:
            bd.tlb = self.tlb_pj(tlb)
        return bd
