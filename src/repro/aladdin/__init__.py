"""Aladdin: the pre-RTL, trace-based accelerator simulator.

Reimplements the Aladdin flow (Shao et al., ISCA 2014) that gem5-Aladdin
embeds: a kernel's dynamic execution is captured as a trace of operations
(:mod:`trace`), turned into a dynamic data dependence graph
(:mod:`ddg`), mapped onto datapath lanes (:mod:`transforms`), and scheduled
cycle by cycle against hardware constraints inside the SoC's event queue
(:mod:`scheduler`).  :mod:`power` provides the 40 nm energy models.
"""

from repro.aladdin.ir import Op, OP_INFO, FuClass
from repro.aladdin.trace import TraceBuilder, Value
from repro.aladdin.ddg import DDDG
from repro.aladdin.transforms import assign_lanes
from repro.aladdin.scheduler import DatapathScheduler
from repro.aladdin.power import PowerModel
from repro.aladdin.accelerator import Accelerator

__all__ = [
    "Op",
    "OP_INFO",
    "FuClass",
    "TraceBuilder",
    "Value",
    "DDDG",
    "assign_lanes",
    "DatapathScheduler",
    "PowerModel",
    "Accelerator",
]
