"""Trace-to-datapath mapping transforms.

Aladdin applies "common accelerator design optimizations" before scheduling
(Section III-B).  The two that matter for the paper's sweeps are:

* **Loop unrolling -> datapath lanes.**  The kernel's parallel loop is
  unrolled by the lane count: iteration ``i`` executes on lane
  ``i mod lanes``, and iterations are grouped into *rounds* of ``lanes``
  consecutive iterations.  Lanes synchronize at round boundaries
  (Section IV-D: "when lanes are finished executing, they must wait and
  synchronize with all other lanes before the next iteration can begin"),
  but within a round a stalled lane never blocks its peers.
* **Array partitioning** is applied by the scratchpad model itself
  (cyclic word interleaving — :mod:`repro.memory.sram`).

Induction-variable and address-compute elimination is inherent to our trace
format (those nodes are never emitted — see :mod:`repro.aladdin.trace`).
"""


class LaneAssignment:
    """Per-node lane and round for a given lane count.

    Instances may be shared across schedulers (``assign_lanes`` memoizes
    them per trace), so all fields are treated as read-only by consumers.
    In particular ``round_base`` (nodes per round) is a shared template:
    schedulers copy it into their own mutable countdown and must never
    mutate the template itself.
    """

    __slots__ = ("lanes", "lane", "round", "num_rounds", "round_base")

    def __init__(self, lanes, lane, round_, num_rounds, round_base=None):
        self.lanes = lanes
        self.lane = lane        # list: node -> lane index
        self.round = round_     # list: node -> round index (-1 = serial)
        self.num_rounds = num_rounds
        # Nodes per round (shared template for each scheduler's mutable
        # _round_remaining countdown).  Filled eagerly by assign_lanes;
        # hand-built assignments get it on first ensure_round_base().
        self.round_base = round_base

    def ensure_round_base(self):
        """The nodes-per-round template, computed once and idempotent.

        Safe to call from any number of schedulers sharing this
        assignment: the fill is derived purely from ``self.round``, so a
        second call (or a racing pair of construction-time calls) always
        produces the identical list and never invalidates a copy another
        scheduler already took.
        """
        base = self.round_base
        if base is not None and len(base) == self.num_rounds:
            return base
        base = [0] * self.num_rounds
        for r in self.round:
            if r >= 0:
                base[r] += 1
        self.round_base = base
        return base


def assign_lanes(trace, lanes):
    """Map every trace node onto a (lane, round).

    Serial nodes (emitted outside any parallel iteration) run on lane 0 and
    belong to no round (round -1): they are never barrier-blocked, only
    dependence-blocked.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    # Memoized per (lanes, trace length): a design sweep re-runs the same
    # workload at the same lane counts many times, and the assignment is a
    # pure function of the trace.
    memo = getattr(trace, "_lane_memo", None)
    if memo is None:
        memo = trace._lane_memo = {}
    key = (lanes, trace.num_nodes)
    cached = memo.get(key)
    if cached is not None:
        return cached
    lane = [0] * trace.num_nodes
    round_ = [-1] * trace.num_nodes
    num_rounds = 0
    iters = trace.node_iter
    for node in range(trace.num_nodes):
        it = iters[node]
        if it >= 0:
            lane[node] = it % lanes
            r = it // lanes
            round_[node] = r
            if r + 1 > num_rounds:
                num_rounds = r + 1
    assignment = memo[key] = LaneAssignment(lanes, lane, round_, num_rounds)
    # Eager fill: the template is part of the memoized value, so no
    # scheduler ever needs to write into the shared instance later.
    assignment.ensure_round_base()
    return assignment


def validate_assignment(trace, assignment, pipelining="barriers"):
    """Check that round gating cannot deadlock the schedule.

    ``pipelining`` names the round-release discipline being validated:

    * ``"barriers"`` — round ``r + 1`` opens only when round ``r`` has
      fully *completed*.  A node in round ``r`` that depends — directly
      or through serial nodes — on a node in round ``r' > r`` deadlocks.
      Every such node is an error.
    * ``"modulo"`` — round ``r + 1`` opens II cycles after round ``r``
      *first issues*, so a cross-round dependence into a later round is
      legal as long as each round keeps at least one node whose
      transitive dependences stay within rounds ``<= r`` (otherwise the
      round can never issue its first node and the gate chain wedges).
    * ``"off"`` — no gating, nothing to validate.

    Returns normally when safe, raises ValueError otherwise.
    """
    if pipelining == "off":
        return
    if pipelining not in ("barriers", "modulo"):
        raise ValueError(f"unknown pipelining mode {pipelining!r}")
    rounds = assignment.round
    # Effective round: the highest barrier round this node's completion
    # transitively requires.  -1 (the serial sentinel) marks "depends on
    # no round at all"; the array must start there, not at 0 — an init
    # of 0 silently promotes every untouched entry to round 0, which
    # masks forward dependences and (for hand-built traces) lets a
    # would-deadlock schedule validate.
    effective = [-1] * trace.num_nodes
    min_eff = {}
    for node in range(trace.num_nodes):
        eff = rounds[node]
        for pred in trace.deps[node]:
            if pred >= node:
                raise ValueError(
                    f"trace {trace.name!r}: node {node} depends on node "
                    f"{pred}, which is not earlier in the trace; traces "
                    f"must be topologically ordered")
            if effective[pred] > eff:
                eff = effective[pred]
        if rounds[node] >= 0:
            if pipelining == "barriers" and eff > rounds[node]:
                raise ValueError(
                    f"trace {trace.name!r}: node {node} in round "
                    f"{rounds[node]} depends on round {eff}; round "
                    f"barriers would deadlock")
            r = rounds[node]
            if r not in min_eff or eff < min_eff[r]:
                min_eff[r] = eff
        effective[node] = eff
    if pipelining == "modulo":
        for r, eff in sorted(min_eff.items()):
            if eff > r:
                raise ValueError(
                    f"trace {trace.name!r}: every node of round {r} "
                    f"depends on round {eff}; the round can never issue "
                    f"and the modulo gate chain would deadlock")
