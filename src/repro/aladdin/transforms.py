"""Trace-to-datapath mapping transforms.

Aladdin applies "common accelerator design optimizations" before scheduling
(Section III-B).  The two that matter for the paper's sweeps are:

* **Loop unrolling -> datapath lanes.**  The kernel's parallel loop is
  unrolled by the lane count: iteration ``i`` executes on lane
  ``i mod lanes``, and iterations are grouped into *rounds* of ``lanes``
  consecutive iterations.  Lanes synchronize at round boundaries
  (Section IV-D: "when lanes are finished executing, they must wait and
  synchronize with all other lanes before the next iteration can begin"),
  but within a round a stalled lane never blocks its peers.
* **Array partitioning** is applied by the scratchpad model itself
  (cyclic word interleaving — :mod:`repro.memory.sram`).

Induction-variable and address-compute elimination is inherent to our trace
format (those nodes are never emitted — see :mod:`repro.aladdin.trace`).
"""


class LaneAssignment:
    """Per-node lane and round for a given lane count.

    Instances may be shared across schedulers (``assign_lanes`` memoizes
    them per trace), so all fields are treated as read-only by consumers.
    """

    __slots__ = ("lanes", "lane", "round", "num_rounds", "round_base")

    def __init__(self, lanes, lane, round_, num_rounds):
        self.lanes = lanes
        self.lane = lane        # list: node -> lane index
        self.round = round_     # list: node -> round index (-1 = serial)
        self.num_rounds = num_rounds
        # Lazily filled by the scheduler: nodes per round (shared template
        # for each scheduler's mutable _round_remaining countdown).
        self.round_base = None


def assign_lanes(trace, lanes):
    """Map every trace node onto a (lane, round).

    Serial nodes (emitted outside any parallel iteration) run on lane 0 and
    belong to no round (round -1): they are never barrier-blocked, only
    dependence-blocked.
    """
    if lanes < 1:
        raise ValueError(f"lanes must be >= 1, got {lanes}")
    # Memoized per (lanes, trace length): a design sweep re-runs the same
    # workload at the same lane counts many times, and the assignment is a
    # pure function of the trace.
    memo = getattr(trace, "_lane_memo", None)
    if memo is None:
        memo = trace._lane_memo = {}
    key = (lanes, trace.num_nodes)
    cached = memo.get(key)
    if cached is not None:
        return cached
    lane = [0] * trace.num_nodes
    round_ = [-1] * trace.num_nodes
    num_rounds = 0
    iters = trace.node_iter
    for node in range(trace.num_nodes):
        it = iters[node]
        if it >= 0:
            lane[node] = it % lanes
            r = it // lanes
            round_[node] = r
            if r + 1 > num_rounds:
                num_rounds = r + 1
    assignment = memo[key] = LaneAssignment(lanes, lane, round_, num_rounds)
    return assignment


def validate_assignment(trace, assignment):
    """Check that round barriers cannot deadlock the schedule.

    The invariant a trace must satisfy: dependences flow from lower (or
    serial) iterations to higher ones.  A node in round ``r`` that depends
    — directly or through serial nodes — on a node in round ``r' > r``
    would deadlock, because round ``r'`` cannot start until round ``r``
    completes.  Returns normally when safe, raises ValueError otherwise.
    """
    rounds = assignment.round
    # Effective round: the highest barrier round this node's completion
    # transitively requires.  Traces are topologically ordered.
    effective = [0] * trace.num_nodes
    for node in range(trace.num_nodes):
        eff = rounds[node] if rounds[node] >= 0 else -1
        for pred in trace.deps[node]:
            if effective[pred] > eff:
                eff = effective[pred]
        if rounds[node] >= 0 and eff > rounds[node]:
            raise ValueError(
                f"trace {trace.name!r}: node {node} in round {rounds[node]} "
                f"depends on round {eff}; round barriers would deadlock"
            )
        effective[node] = eff

