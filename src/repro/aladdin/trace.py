"""Dynamic trace capture.

Aladdin instruments a program with an LLVM pass and records its dynamic
execution.  Our stand-in (documented in DESIGN.md) is a *trace-builder DSL*:
kernels are ordinary Python functions that perform their real computation
through :class:`TraceBuilder` calls, which simultaneously

* compute the functional result (so workloads are testable end to end), and
* append one trace node per dynamic operation, with true register
  dependences (SSA values) and memory dependences (store->load RAW and
  store->store WAW per word).

The captured trace is design-independent: lanes/partitions are applied
later by :mod:`repro.aladdin.transforms` and the scheduler, so one trace is
reused across an entire design sweep.
"""

import math

from repro.errors import TraceError
from repro.aladdin.ir import Op, OP_INFO


class Value:
    """An SSA value: the functional result plus its producing node."""

    __slots__ = ("node", "value")

    def __init__(self, node, value):
        self.node = node    # producing trace node id, or None for constants
        self.value = value  # concrete Python number

    def __repr__(self):
        return f"Value(node={self.node}, value={self.value!r})"


class ArrayDecl:
    """A kernel-local array: name, geometry, and role.

    ``kind`` is one of ``"input"`` (DMA'd / cached in), ``"output"``
    (DMA'd / cached out), ``"inout"`` (both — e.g. in-place sorts), or
    ``"internal"`` (private scratchpad data that never leaves the
    accelerator — Section IV-D keeps such data in scratchpads even for
    cache-based designs).
    """

    __slots__ = ("name", "length", "word_bytes", "kind", "data")

    def __init__(self, name, length, word_bytes, kind, data):
        self.name = name
        self.length = length
        self.word_bytes = word_bytes
        self.kind = kind
        self.data = data

    @property
    def size_bytes(self):
        return self.length * self.word_bytes


class TraceBuilder:
    """Builds the dynamic trace while executing the kernel functionally."""

    def __init__(self, name=""):
        self.name = name
        # Parallel node arrays (struct-of-arrays keeps big traces cheap).
        self.node_op = []
        self.node_iter = []        # parallel-loop iteration, -1 = serial code
        self.node_array = []       # array name for memory ops, else None
        self.node_index = []       # word index for memory ops, else 0
        self.deps = []             # list of tuples of predecessor node ids
        self.arrays = {}
        self._last_store = {}      # (array, index) -> node id
        self._cur_iter = -1
        self.max_iter = -1

    # -- arrays ---------------------------------------------------------------

    def array(self, name, length, word_bytes=4, kind="input", init=None):
        """Declare an array; ``init`` seeds its functional contents."""
        if name in self.arrays:
            raise TraceError(f"array {name!r} declared twice")
        if kind not in ("input", "output", "inout", "internal"):
            raise TraceError(f"bad array kind {kind!r}")
        data = list(init) if init is not None else [0] * length
        if len(data) != length:
            raise TraceError(
                f"array {name!r}: init has {len(data)} elements, expected {length}")
        decl = ArrayDecl(name, length, word_bytes, kind, data)
        self.arrays[name] = decl
        return decl

    # -- iteration markers ------------------------------------------------------

    def iteration(self, index):
        """Enter parallel-loop iteration ``index`` (the loop whose iterations
        map onto datapath lanes).  Returns a context manager."""
        return _IterationScope(self, index)

    # -- trace node construction --------------------------------------------------

    def _emit(self, op, dep_nodes, array=None, index=0):
        node = len(self.node_op)
        self.node_op.append(op)
        self.node_iter.append(self._cur_iter)
        self.node_array.append(array)
        self.node_index.append(index)
        self.deps.append(tuple(d for d in dep_nodes if d is not None))
        return node

    @staticmethod
    def _operand(value):
        """Accept Values or plain numbers (constants have no producer)."""
        if isinstance(value, Value):
            return value.node, value.value
        return None, value

    def load(self, array, index):
        """Load word ``index`` from ``array``; returns the SSA value."""
        decl = self._check_access(array, index)
        last_store = self._last_store.get((array, index))
        node = self._emit(Op.LOAD, (last_store,), array=array, index=index)
        return Value(node, decl.data[index])

    def store(self, array, index, value):
        """Store ``value`` (a Value or constant) to ``array[index]``."""
        decl = self._check_access(array, index)
        dep, concrete = self._operand(value)
        prev = self._last_store.get((array, index))
        node = self._emit(Op.STORE, (dep, prev), array=array, index=index)
        decl.data[index] = concrete
        self._last_store[(array, index)] = node
        return node

    def _check_access(self, array, index):
        decl = self.arrays.get(array)
        if decl is None:
            raise TraceError(f"access to undeclared array {array!r}")
        if not 0 <= index < decl.length:
            raise TraceError(
                f"{array}[{index}] out of bounds (length {decl.length})")
        return decl

    def op(self, opcode, *operands):
        """Emit a compute op; computes the functional result as well."""
        if opcode not in OP_INFO:
            raise TraceError(f"unknown opcode {opcode!r}")
        dep_values = [self._operand(v) for v in operands]
        node = self._emit(opcode, tuple(d for d, _v in dep_values))
        concrete = _evaluate(opcode, [v for _d, v in dep_values])
        return Value(node, concrete)

    # Arithmetic sugar so kernels read naturally.

    def add(self, a, b):
        """Integer add."""
        return self.op(Op.ADD, a, b)

    def sub(self, a, b):
        """Integer subtract."""
        return self.op(Op.SUB, a, b)

    def mul(self, a, b):
        """Integer multiply."""
        return self.op(Op.MUL, a, b)

    def xor(self, a, b):
        """Bitwise xor."""
        return self.op(Op.XOR, a, b)

    def band(self, a, b):
        """Bitwise and."""
        return self.op(Op.AND, a, b)

    def bor(self, a, b):
        """Bitwise or."""
        return self.op(Op.OR, a, b)

    def shl(self, a, b):
        """Shift left."""
        return self.op(Op.SHL, a, b)

    def shr(self, a, b):
        """Shift right."""
        return self.op(Op.SHR, a, b)

    def icmp(self, a, b):
        """Integer compare: 1 when a > b, else 0."""
        return self.op(Op.ICMP, a, b)

    def select(self, cond, a, b):
        """Conditional select: a when cond is truthy, else b."""
        return self.op(Op.SELECT, cond, a, b)

    def fadd(self, a, b):
        """Floating-point add."""
        return self.op(Op.FADD, a, b)

    def fsub(self, a, b):
        """Floating-point subtract."""
        return self.op(Op.FSUB, a, b)

    def fmul(self, a, b):
        """Floating-point multiply."""
        return self.op(Op.FMUL, a, b)

    def fdiv(self, a, b):
        """Floating-point divide."""
        return self.op(Op.FDIV, a, b)

    def fsqrt(self, a):
        """Floating-point square root of |a|."""
        return self.op(Op.FSQRT, a)

    def fcmp(self, a, b):
        """Floating-point compare: 1 when a > b, else 0."""
        return self.op(Op.FCMP, a, b)

    # -- summary ------------------------------------------------------------------

    @property
    def num_nodes(self):
        return len(self.node_op)

    def op_histogram(self):
        """Dynamic op counts by opcode.

        Memoized per trace length: traces are effectively frozen once built
        (every run of the same workload shares one cached trace), so the
        33k-node scan runs once, not once per design point.  Callers get a
        fresh dict so they may mutate it freely.
        """
        cached = getattr(self, "_op_hist_memo", None)
        if cached is not None and cached[0] == len(self.node_op):
            return dict(cached[1])
        hist = {}
        for op in self.node_op:
            hist[op] = hist.get(op, 0) + 1
        self._op_hist_memo = (len(self.node_op), hist)
        return dict(hist)

    def num_iterations(self):
        """Number of parallel-loop iterations traced."""
        return self.max_iter + 1

    def first_use_order(self):
        """Arrays ordered by the trace position of their first access.

        The SoC issues DMA descriptors in this order, modeling a programmer
        who places ``dmaLoad`` calls in the order the kernel consumes the
        data — the natural way to make DMA-triggered compute effective.
        Arrays never accessed sort last, in declaration order.
        Memoized per trace length (see :meth:`op_histogram`).
        """
        cached = getattr(self, "_first_use_memo", None)
        if cached is not None and cached[0] == len(self.node_array):
            return list(cached[1])
        first = {}
        for node, array in enumerate(self.node_array):
            if array is not None and array not in first:
                first[array] = node
        names = list(self.arrays)
        order = sorted(names,
                       key=lambda n: (first.get(n, len(self.node_array)),
                                      names.index(n)))
        self._first_use_memo = (len(self.node_array), order)
        return list(order)


class _IterationScope:
    def __init__(self, builder, index):
        if index < 0:
            raise TraceError("iteration index must be non-negative")
        self.builder = builder
        self.index = index
        self._prev = None

    def __enter__(self):
        self._prev = self.builder._cur_iter
        self.builder._cur_iter = self.index
        self.builder.max_iter = max(self.builder.max_iter, self.index)
        return self

    def __exit__(self, exc_type, exc, tb):
        self.builder._cur_iter = self._prev
        return False


def _evaluate(opcode, vals):
    """Functional semantics of each opcode."""
    if opcode == Op.ADD:
        return vals[0] + vals[1]
    if opcode == Op.SUB:
        return vals[0] - vals[1]
    if opcode == Op.MUL:
        return vals[0] * vals[1]
    if opcode == Op.DIV:
        return vals[0] // vals[1] if vals[1] else 0
    if opcode == Op.AND:
        return int(vals[0]) & int(vals[1])
    if opcode == Op.OR:
        return int(vals[0]) | int(vals[1])
    if opcode == Op.XOR:
        return int(vals[0]) ^ int(vals[1])
    if opcode == Op.SHL:
        return int(vals[0]) << int(vals[1])
    if opcode == Op.SHR:
        return int(vals[0]) >> int(vals[1])
    if opcode == Op.ICMP:
        return 1 if vals[0] > vals[1] else 0
    if opcode == Op.SELECT:
        return vals[1] if vals[0] else vals[2]
    if opcode == Op.FADD:
        return float(vals[0]) + float(vals[1])
    if opcode == Op.FSUB:
        return float(vals[0]) - float(vals[1])
    if opcode == Op.FMUL:
        return float(vals[0]) * float(vals[1])
    if opcode == Op.FDIV:
        return float(vals[0]) / float(vals[1]) if vals[1] else 0.0
    if opcode == Op.FSQRT:
        return math.sqrt(abs(float(vals[0])))
    if opcode == Op.FCMP:
        return 1 if float(vals[0]) > float(vals[1]) else 0
    raise TraceError(f"no semantics for opcode {opcode!r}")
