"""Dynamic Data Dependence Graph (DDDG).

"The vertices in the DDDG are LLVM IR instructions, and the edges represent
true dependences between operations" (Section III-B).  We build the graph
from a captured trace: successor lists, indegrees (consumed by the
scheduler), and analysis helpers such as the latency-weighted critical path
(the lower bound on compute time with unlimited resources).
"""

from repro.aladdin.ir import OP_INFO, is_memory


class DDDG:
    """Immutable dependence graph over a captured trace."""

    def __init__(self, trace):
        self.trace = trace
        n = trace.num_nodes
        self.num_nodes = n
        self.successors = [[] for _ in range(n)]
        self.indegree = [0] * n
        self.num_edges = 0
        for node, preds in enumerate(trace.deps):
            self.indegree[node] = len(preds)
            for pred in preds:
                self.successors[pred].append(node)
                self.num_edges += 1

    @property
    def roots(self):
        """Nodes with no dependences (ready at time zero).

        Computed once — the graph is immutable and every run of a design
        sweep walks the same root set."""
        cached = getattr(self, "_roots", None)
        if cached is None:
            indegree = self.indegree
            cached = self._roots = [
                i for i in range(self.num_nodes) if indegree[i] == 0
            ]
        return cached

    def latency_of(self, node):
        """Latency (cycles) of one node's opcode."""
        return OP_INFO[self.trace.node_op[node]].latency

    def critical_path(self):
        """Longest latency-weighted path through the graph, in cycles.

        This is the schedule length with infinite lanes, single-cycle
        memory, and no resource conflicts — Aladdin's idealized bound.
        Traces are topologically ordered by construction (a node can only
        depend on earlier nodes), so one forward pass suffices.
        """
        if self.num_nodes == 0:
            return 0
        finish = [0] * self.num_nodes
        best = 0
        for node in range(self.num_nodes):
            start = 0
            for pred in self.trace.deps[node]:
                if finish[pred] > start:
                    start = finish[pred]
            finish[node] = start + self.latency_of(node)
            if finish[node] > best:
                best = finish[node]
        return best

    def memory_nodes(self):
        """Indices of all load/store nodes."""
        ops = self.trace.node_op
        return [i for i in range(self.num_nodes) if is_memory(ops[i])]

    def compute_to_memory_ratio(self):
        """Compute ops per memory op — the paper's key workload property
        deciding whether DMA (high ratio) or caches (low ratio) win."""
        mem = len(self.memory_nodes())
        compute = self.num_nodes - mem
        return compute / mem if mem else float("inf")

    def footprint_bytes(self, kinds=("input", "output", "inout")):
        """Total bytes of arrays with the given kinds (DMA transfer volume)."""
        return sum(a.size_bytes for a in self.trace.arrays.values()
                   if a.kind in kinds)
