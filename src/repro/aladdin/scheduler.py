"""Dynamic, resource-constrained datapath scheduling.

Aladdin schedules the DDDG "through a breadth-first traversal, while
accounting for user-defined hardware constraints" (Section III-B).  Because
gem5-Aladdin must capture *dynamic* interactions — variable-latency cache
accesses, DMA arrival order, bus contention — scheduling here is not a
static pass: the scheduler is an event-driven component that issues ready
nodes on accelerator clock edges and hears back from the memory system.

Constraints modeled per cycle:

* one pipelined functional unit per class per lane (II = 1);
* one memory issue per lane, arbitrating for scratchpad bank ports or
  cache ports;
* round barriers: iteration rounds (see :mod:`transforms`) synchronize, but
  within a round a lane blocked on a cache miss or an unfilled full/empty
  bit stalls alone (Section IV-D's miss-handling scheme).
"""

from collections import deque

from repro.errors import SimulationError
from repro.aladdin.ir import OP_INFO, Op, is_memory
from repro.sim.stats import IntervalTracker


class DatapathScheduler:
    """Executes one DDDG on a configured datapath inside the event queue."""

    def __init__(self, sim, clock, ddg, assignment, mem_if,
                 fu_per_lane=None, on_done=None, name="accel",
                 round_barriers=True):
        self.sim = sim
        self.clock = clock
        self.ddg = ddg
        self.trace = ddg.trace
        self.assign = assignment
        self.mem_if = mem_if
        self.on_done = on_done
        self.name = name
        self.lanes = assignment.lanes
        self.fu_per_lane = dict(fu_per_lane or {})
        # Aladdin's loop pipelining: with barriers off, a node is ready as
        # soon as its dependences complete, letting iteration rounds
        # overlap (at the cost of deeper control logic in real hardware).
        self.round_barriers = round_barriers
        self._indegree = list(ddg.indegree)
        self._ready = [deque() for _ in range(self.lanes)]
        self._round_parked = {}
        self._round_remaining = [0] * assignment.num_rounds
        for node in range(ddg.num_nodes):
            r = assignment.round[node]
            if r >= 0:
                self._round_remaining[r] += 1
        self._current_round = 0
        self._completed = 0
        self._in_flight = 0
        self._started = False
        self.done = False
        self.busy = IntervalTracker(name)
        self.start_tick = None
        self.done_tick = None
        self.issued_loads = 0
        self.issued_stores = 0
        # Per-cycle resource state.
        self._state_cycle = -1
        self._fu_used = None
        self._next_edge = None

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Begin execution (called by the SoC once the accelerator is
        invoked — after DMA completes, or immediately for DMA-triggered
        compute / cache-based designs)."""
        if self._started:
            raise SimulationError(f"{self.name}: started twice")
        self._started = True
        self.start_tick = self.sim.now
        if self.ddg.num_nodes == 0:
            self._finish()
            return
        for node in self.ddg.roots:
            self._make_ready(node)
        self._kick()

    def _finish(self):
        self.done = True
        self.done_tick = self.sim.now
        if self.on_done is not None:
            self.on_done()

    @property
    def compute_ticks(self):
        """Ticks from start to last node completion."""
        if self.start_tick is None or self.done_tick is None:
            return None
        return self.done_tick - self.start_tick

    # -- readiness ------------------------------------------------------------

    def _make_ready(self, node):
        r = self.assign.round[node]
        if self.round_barriers and r > self._current_round:
            self._round_parked.setdefault(r, []).append(node)
            return
        self._ready[self.assign.lane[node]].append(node)

    def resume_parked(self, node):
        """Re-queue a node that was parked on a TLB walk or full/empty bit."""
        self._ready[self.assign.lane[node]].append(node)
        self._kick()

    def _kick(self):
        """Ensure an issue pass is scheduled at the next accelerator edge."""
        if not any(self._ready):
            return
        when = self.clock.next_edge(self.sim.now)
        if self._next_edge is not None and self._next_edge <= when:
            return
        self._next_edge = when
        self.sim.schedule_at(when, self._issue_pass)

    # -- the per-cycle issue pass ----------------------------------------------

    def _cycle_state(self):
        cycle = self.sim.now // self.clock.period
        if cycle != self._state_cycle:
            self._state_cycle = cycle
            self._fu_used = [{} for _ in range(self.lanes)]
            self.mem_if.new_cycle(cycle)
        return cycle

    def _fu_limit(self, fu):
        return self.fu_per_lane.get(fu, 1)

    def _issue_pass(self):
        self._next_edge = None
        cycle = self._cycle_state()
        trace = self.trace
        for lane in range(self.lanes):
            queue = self._ready[lane]
            used = self._fu_used[lane]
            for _ in range(len(queue)):
                node = queue.popleft()
                op = trace.node_op[node]
                fu = OP_INFO[op].fu
                if used.get(fu, 0) >= self._fu_limit(fu):
                    queue.append(node)
                    continue
                if is_memory(op):
                    status = self.mem_if.issue(self, node, cycle)
                    if status == "retry":
                        queue.append(node)
                        continue
                    if status == "parked":
                        used[fu] = used.get(fu, 0) + 1
                        continue
                    # issued
                    used[fu] = used.get(fu, 0) + 1
                    self._node_launched(op)
                else:
                    used[fu] = used.get(fu, 0) + 1
                    self._node_launched(op)
                    delay = self.clock.cycles_to_ticks(OP_INFO[op].latency)
                    self.sim.schedule(delay, self.complete_node, node)
        # Anything still queued retries next cycle.
        if any(self._ready):
            when = self.clock.edge_after(self.sim.now)
            if self._next_edge is None or self._next_edge > when:
                self._next_edge = when
                self.sim.schedule_at(when, self._issue_pass)

    def _node_launched(self, op):
        if self._in_flight == 0:
            self.busy.begin(self.sim.now)
        self._in_flight += 1
        if op == Op.LOAD:
            self.issued_loads += 1
        elif op == Op.STORE:
            self.issued_stores += 1

    # -- completion -----------------------------------------------------------

    def complete_node(self, node):
        """A node's result is available (called by FUs and the memory system)."""
        self._in_flight -= 1
        if self._in_flight == 0:
            self.busy.end(self.sim.now)
        for succ in self.ddg.successors[node]:
            self._indegree[succ] -= 1
            if self._indegree[succ] == 0:
                self._make_ready(succ)
        r = self.assign.round[node]
        if r >= 0 and self.round_barriers:
            self._round_remaining[r] -= 1
            self._advance_rounds()
        self._completed += 1
        if self._completed == self.ddg.num_nodes:
            self._finish()
        else:
            self._kick()

    def _advance_rounds(self):
        while (self._current_round < len(self._round_remaining)
               and self._round_remaining[self._current_round] == 0):
            self._current_round += 1
            for node in self._round_parked.pop(self._current_round, ()):
                self._ready[self.assign.lane[node]].append(node)


class SpadInterface:
    """Memory interface for scratchpad (DMA-based) designs.

    Loads and stores hit partitioned SRAM banks with a fixed 1-cycle access,
    subject to per-bank port arbitration.  Arrays registered with full/empty
    bits gate accesses at cache-line granularity for DMA-triggered compute.
    """

    def __init__(self, sim, clock, spad, ready_bits=None, latency_cycles=1):
        self.sim = sim
        self.clock = clock
        self.spad = spad
        self.ready_bits = ready_bits or {}
        self.latency_cycles = latency_cycles

    def new_cycle(self, cycle):
        """Per-cycle reset hook (banks self-arbitrate)."""
        pass  # the scratchpad tracks per-cycle port use itself

    def issue(self, sched, node, cycle):
        """Try to issue one memory node this cycle; returns issued/retry/parked."""
        trace = sched.trace
        array = trace.node_array[node]
        index = trace.node_index[node]
        bits = self.ready_bits.get(array)
        if bits is not None:
            offset = index * trace.arrays[array].word_bytes
            if not bits.is_ready(offset):
                bits.wait(offset, lambda: sched.resume_parked(node))
                return "parked"
        if not self.spad.try_access(array, index, cycle):
            return "retry"
        delay = self.clock.cycles_to_ticks(self.latency_cycles)
        self.sim.schedule(delay, sched.complete_node, node)
        return "issued"


class CacheInterface:
    """Memory interface for cache-based designs.

    Shared (input/output) arrays go through the TLB and the coherent cache;
    private intermediate arrays stay in scratchpads (Section IV-D).  With
    ``perfect=True`` every shared access is a single-cycle hit — the
    idealized memory used for the Burger-style "processing time" component
    of Figure 7.
    """

    def __init__(self, sim, clock, cache, tlb, addr_map, phys_offset,
                 ports, spad=None, internal_arrays=(), perfect=False):
        self.sim = sim
        self.clock = clock
        self.cache = cache
        self.tlb = tlb
        self.addr_map = addr_map
        self.phys_offset = phys_offset
        self.ports = ports
        self.spad = spad
        self.internal = frozenset(internal_arrays)
        self.perfect = perfect
        self._cycle = -1
        self._ports_used = 0

    def new_cycle(self, cycle):
        """Reset the per-cycle cache-port counter."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._ports_used = 0

    def issue(self, sched, node, cycle):
        """Try to issue one memory node this cycle; returns issued/retry/parked."""
        trace = sched.trace
        array = trace.node_array[node]
        index = trace.node_index[node]
        if array in self.internal:
            if not self.spad.try_access(array, index, cycle):
                return "retry"
            self.sim.schedule(self.clock.period, sched.complete_node, node)
            return "issued"
        if self._ports_used >= self.ports:
            return "retry"
        self._ports_used += 1
        if self.perfect:
            self.sim.schedule(self.clock.period, sched.complete_node, node)
            return "issued"
        decl = trace.arrays[array]
        vaddr = self.addr_map[array] + index * decl.word_bytes
        return self._translated_access(sched, node, vaddr, decl.word_bytes,
                                       array)

    def _translated_access(self, sched, node, vaddr, size, array):
        result = {"sync": True, "paddr": None}

        def on_translated(paddr):
            if result["sync"]:
                result["paddr"] = paddr
            else:
                # Walk finished later: retry the whole access; the TLB now hits.
                sched.resume_parked(node)

        hit = self.tlb.translate(vaddr, self.phys_offset, on_translated)
        result["sync"] = False
        if not hit:
            return "parked"
        trace = sched.trace
        is_write = trace.node_op[node] == Op.STORE
        status = self.cache.access(
            result["paddr"], size, is_write,
            callback=lambda: sched.complete_node(node),
            stream=array,
        )
        if status == "blocked":
            return "retry"
        return "issued"
