"""Dynamic, resource-constrained datapath scheduling.

Aladdin schedules the DDDG "through a breadth-first traversal, while
accounting for user-defined hardware constraints" (Section III-B).  Because
gem5-Aladdin must capture *dynamic* interactions — variable-latency cache
accesses, DMA arrival order, bus contention — scheduling here is not a
static pass: the scheduler is an event-driven component that issues ready
nodes on accelerator clock edges and hears back from the memory system.

Constraints modeled per cycle:

* one pipelined functional unit per class per lane (II = 1);
* one memory issue per lane, arbitrating for scratchpad bank ports or
  cache ports;
* round barriers: iteration rounds (see :mod:`transforms`) synchronize, but
  within a round a lane blocked on a cache miss or an unfilled full/empty
  bit stalls alone (Section IV-D's miss-handling scheme).
"""

from repro.errors import SimulationError
from repro.aladdin.ir import FuClass, OP_INFO, Op, is_memory
from repro.obs import trace
from repro.sim.stats import IntervalTracker

# Functional-unit classes as dense indices, so the per-cycle issue loop
# counts FU use in flat lists instead of dicts.
_FU_INDEX = {fu: i for i, fu in enumerate(FuClass.ALL)}
_NUM_FU = len(FuClass.ALL)


class DatapathScheduler:
    """Executes one DDDG on a configured datapath inside the event queue."""

    def __init__(self, sim, clock, ddg, assignment, mem_if,
                 fu_per_lane=None, on_done=None, name="accel",
                 round_barriers=True, pipelining=None, ii=0,
                 rec_mii=0, res_mii=0):
        self.sim = sim
        self.clock = clock
        self.ddg = ddg
        self.trace = ddg.trace
        self.assign = assignment
        self.mem_if = mem_if
        self.on_done = on_done
        self.name = name
        self.lanes = assignment.lanes
        self.fu_per_lane = dict(fu_per_lane or {})
        # Round-release discipline.  ``pipelining`` names the mode:
        #   "barriers" — rounds synchronize (Section IV-D);
        #   "off"      — free overlap, the classic-Aladdin loop pipelining;
        #   "modulo"   — round r+1 opens II cycles after round r's first
        #                issue, or when round r fully completes, whichever
        #                comes first (see repro.aladdin.modulo).  The
        #                completion fallback makes barriers the degenerate
        #                case: an II at or above the dynamic round duration
        #                reproduces barrier timing instead of throttling
        #                below it, so the gate can only add overlap.
        # ``round_barriers`` remains as the legacy boolean spelling of the
        # first two and is honored when ``pipelining`` is not given.
        if pipelining is None:
            pipelining = "barriers" if round_barriers else "off"
        elif pipelining not in ("off", "barriers", "modulo"):
            raise SimulationError(
                f"{name}: unknown pipelining mode {pipelining!r}")
        self.pipelining = pipelining
        self.round_barriers = pipelining == "barriers"
        self.ii = int(ii or 0)           # enforced II, accelerator cycles
        self.rec_mii = int(rec_mii or 0)
        self.res_mii = int(res_mii or 0)
        if self.ii < 0:
            raise SimulationError(f"{name}: ii must be >= 0, got {ii!r}")
        # A degenerate modulo schedule (single round, no rounds, or II 0)
        # has nothing to gate and behaves like barriers trivially.
        self._ii_gated = (pipelining == "modulo" and self.ii > 0
                          and assignment.num_rounds > 1)
        self._ii_ticks = clock.cycles_to_ticks(self.ii) if self._ii_gated \
            else 0
        # First-issue tick per round (modulo mode): the anchor for the
        # round r+1 gate at first_issue[r] + II.
        self._round_started = ([False] * assignment.num_rounds
                               if self._ii_gated else None)
        self.reservation_conflicts = 0
        self._indegree = list(ddg.indegree)
        # Per-lane ready queues are plain lists: the issue pass rebuilds
        # each scanned lane (preserving order) rather than popping.
        self._ready = [[] for _ in range(self.lanes)]
        self._round_parked = {}
        # Nodes-per-round template: shared read-only on the (memoized)
        # assignment, copied here because the countdown mutates during
        # the run.
        self._round_remaining = list(assignment.ensure_round_base())
        self._current_round = 0
        self._completed = 0
        self._in_flight = 0
        self._started = False
        self.done = False
        self.busy = IntervalTracker(name)
        self.start_tick = None
        self.done_tick = None
        self.issued_loads = 0
        self.issued_stores = 0
        self._obs_trace = trace.tracer("sched", name)
        # Flat per-node arrays precomputed once, so the per-cycle issue
        # pass touches no dicts: FU index, latency in ticks, and kind
        # (0 = compute, 1 = load, 2 = store).
        node_ops = self.trace.node_op
        n = ddg.num_nodes
        # These arrays are pure functions of (trace ops, clock period), so
        # they are shared across every scheduler built on the same graph —
        # a design sweep rebuilds the SoC per point but not these.  They
        # are strictly read-only after construction.
        fu_memo = getattr(ddg, "_fu_memo", None)
        if fu_memo is None:
            fu_memo = ddg._fu_memo = {}
        arrays = fu_memo.get((clock.period, n))
        if arrays is None:
            node_fu = [0] * n
            node_ticks = [0] * n
            node_kind = [0] * n
            fu_index = _FU_INDEX
            op_info = OP_INFO
            to_ticks = clock.cycles_to_ticks
            # Per-op memo: the trace has tens of thousands of nodes but
            # only a handful of distinct ops, so (fu, ticks, kind) is
            # derived once per op rather than once per node.
            op_memo = {}
            for node in range(n):
                op = node_ops[node]
                cached = op_memo.get(op)
                if cached is None:
                    info = op_info[op]
                    kind = 1 if op == Op.LOAD else 2 if op == Op.STORE else 0
                    cached = op_memo[op] = (fu_index[info.fu],
                                            to_ticks(info.latency), kind)
                node_fu[node] = cached[0]
                node_ticks[node] = cached[1]
                node_kind[node] = cached[2]
            arrays = fu_memo[(clock.period, n)] = (node_fu, node_ticks,
                                                   node_kind)
        self._node_fu = arrays[0]
        self._node_ticks = arrays[1]
        self._node_kind = arrays[2]
        self._fu_limits = [self.fu_per_lane.get(fu, 1) for fu in FuClass.ALL]
        self._node_lane = assignment.lane
        self._node_round = assignment.round
        self._successors = ddg.successors
        self._num_nodes = ddg.num_nodes
        # The queue is accessed directly (not through the Simulator
        # wrapper) on every issue/completion.
        self._queue = sim.queue
        self._period = clock.period
        # Per-cycle resource state.
        self._state_cycle = -1
        self._fu_zero = [0] * _NUM_FU
        self._fu_used = [[0] * _NUM_FU for _ in range(self.lanes)]
        # Ready-set bookkeeping: total ready nodes, plus per-lane per-FU
        # counts so an issue pass can skip (or stop scanning) a lane whose
        # queued classes are all saturated — a full scan would only rotate
        # such a queue without issuing anything.
        self._num_ready = 0
        self._ready_counts = [[0] * _NUM_FU for _ in range(self.lanes)]
        # Ticks of pending _issue_pass events.  A pass may be superseded by
        # an earlier-edge kick; tracking every scheduled tick (instead of
        # only the earliest) keeps a pass from being scheduled twice for
        # the same edge, which used to waste an event and an empty pass.
        self._scheduled_passes = set()
        # Let the memory interface precompute its own per-node tables.
        bind = getattr(mem_if, "bind", None)
        if bind is not None:
            bind(self)

    # -- lifecycle ---------------------------------------------------------

    def start(self):
        """Begin execution (called by the SoC once the accelerator is
        invoked — after DMA completes, or immediately for DMA-triggered
        compute / cache-based designs)."""
        if self._started:
            raise SimulationError(f"{self.name}: started twice")
        self._started = True
        self.start_tick = self.sim.now
        if self._obs_trace is not None:
            self._obs_trace(self.sim.now, "start: %d nodes, %d lanes",
                            self.ddg.num_nodes, self.lanes)
        if self.ddg.num_nodes == 0:
            self._finish()
            return
        # Bulk _make_ready: traces with thousands of root loads make this
        # loop worth binding (identical per-node behavior).
        node_round = self._node_round
        node_lane = self._node_lane
        node_fu = self._node_fu
        ready = self._ready
        ready_counts = self._ready_counts
        gated = self.round_barriers or self._ii_gated
        current_round = self._current_round
        parked = self._round_parked
        num_ready = self._num_ready
        for node in self.ddg.roots:
            r = node_round[node]
            if gated and r > current_round:
                if r in parked:
                    parked[r].append(node)
                else:
                    parked[r] = [node]
            else:
                lane = node_lane[node]
                ready[lane].append(node)
                ready_counts[lane][node_fu[node]] += 1
                num_ready += 1
        self._num_ready = num_ready
        self._kick()

    def _finish(self):
        self.done = True
        self.done_tick = self.sim.now
        if self._obs_trace is not None:
            self._obs_trace(self.sim.now,
                            "finish: %d loads, %d stores, %d ticks",
                            self.issued_loads, self.issued_stores,
                            self.done_tick - self.start_tick)
        if self.on_done is not None:
            self.on_done()

    @property
    def compute_ticks(self):
        """Ticks from start to last node completion."""
        if self.start_tick is None or self.done_tick is None:
            return None
        return self.done_tick - self.start_tick

    # -- readiness ------------------------------------------------------------

    def _make_ready(self, node):
        r = self._node_round[node]
        if (self.round_barriers or self._ii_gated) \
                and r > self._current_round:
            self._round_parked.setdefault(r, []).append(node)
            return
        self._enqueue_ready(node)

    def _enqueue_ready(self, node):
        self._ready[self._node_lane[node]].append(node)
        self._ready_counts[self._node_lane[node]][self._node_fu[node]] += 1
        self._num_ready += 1

    def resume_parked(self, node):
        """Re-queue a node that was parked on a TLB walk or full/empty bit."""
        self._enqueue_ready(node)
        self._kick()

    def _kick(self):
        """Ensure an issue pass is scheduled at the next accelerator edge."""
        if not self._num_ready:
            return
        now = self._queue.now
        remainder = now % self._period
        when = now if remainder == 0 else now + (self._period - remainder)
        pending = self._scheduled_passes
        if pending and min(pending) <= when:
            return
        pending.add(when)
        self._queue.schedule_at(when, self._issue_pass)

    # -- the per-cycle issue pass ----------------------------------------------

    def _cycle_state(self):
        cycle = self._queue.now // self._period
        if cycle != self._state_cycle:
            self._state_cycle = cycle
            zero = self._fu_zero
            for used in self._fu_used:
                used[:] = zero
            self.mem_if.new_cycle(cycle)
        return cycle

    def _issue_pass(self):
        now = self._queue.now
        self._scheduled_passes.discard(now)
        # _cycle_state inlined: reset per-cycle FU budgets on a new cycle.
        cycle = now // self._period
        if cycle != self._state_cycle:
            self._state_cycle = cycle
            zero = self._fu_zero
            for used in self._fu_used:
                used[:] = zero
            self.mem_if.new_cycle(cycle)
        # Hot loop: per-node properties come from the flat arrays built in
        # __init__ and every attribute chain is bound to a local.
        node_fu = self._node_fu
        node_ticks = self._node_ticks
        node_kind = self._node_kind
        limits = self._fu_limits
        fu_used = self._fu_used
        ready = self._ready
        ready_counts = self._ready_counts
        mem_if = self.mem_if
        mem_issue = mem_if.issue
        # Scratchpad fast path: when the interface exposes a precomputed
        # per-node plan (SpadInterface.bind), its issue logic is fused into
        # this loop — same operations in the same order, minus ~1 call per
        # memory node per cycle.
        mem_plan = getattr(mem_if, "_node_plan", None)
        if mem_plan is not None:
            spad = mem_if.spad
            spad_ports = mem_if._ports
            access_by_array = mem_if._access_by_array
            lat_ticks = mem_if._latency_ticks
            plan_slots = mem_if._plan_slots
            plan_bits = mem_if._plan_bits
            plan_ready = mem_if._plan_ready
            resume = self.resume_parked
        evq = self._queue
        schedule = evq.schedule
        complete = self.complete_node
        complete_batch = self._complete_batch
        busy_begin = self.busy.begin
        num_fu = _NUM_FU
        # Launch bookkeeping is accumulated in locals and written back once:
        # nothing dispatches events during the pass, so no completion can
        # observe the stale attributes mid-loop.
        in_flight = self._in_flight
        loads = 0
        stores = 0
        # Completion batching: nodes completing at the same future tick
        # share one event carrying a list, instead of one event each.  A
        # batch may only absorb a node while no other event has been
        # scheduled since its last append (tracked via the queue's sequence
        # counter) — otherwise the foreign event could be due at the same
        # tick and batching would reorder it relative to the completions.
        # delay -> [node list, expected queue seq]; the last-touched entry
        # is kept in locals, since consecutive issues usually share a delay.
        batches = {}
        last_delay = -1
        last_entry = None
        num_ready = self._num_ready
        conflicts = 0
        # Modulo gating: the first issue of round r anchors the gate that
        # opens round r+1 at now + II.  ``round_started`` is None outside
        # modulo mode, so the other modes pay one local None test per
        # issued node.
        round_started = self._round_started
        if round_started is not None:
            node_round = self._node_round
            ii_ticks = self._ii_ticks
            open_gate = self._open_gate
            num_rounds = len(round_started)
            schedule_at = evq.schedule_at
        for lane in range(self.lanes):
            queue = ready[lane]
            if not queue:
                continue
            used = fu_used[lane]
            counts = ready_counts[lane]
            # FU classes that can still issue from this lane's queue.  A
            # lane with none would keep its order under a scan anyway, so
            # skipping it is behavior-preserving.
            issuable = 0
            for fu in range(num_fu):
                if counts[fu] and used[fu] < limits[fu]:
                    issuable += 1
            if not issuable:
                continue
            # Rebuild the lane queue instead of pop/push scanning: skipped
            # and retried nodes keep their relative order (the old deque
            # scan popped and re-appended every node, which preserved
            # order — this reproduces that final order without the churn).
            remaining = []
            rem_append = remaining.append
            total = len(queue)
            for i in range(total):
                node = queue[i]
                fu = node_fu[node]
                if used[fu] >= limits[fu]:
                    conflicts += 1
                    rem_append(node)
                    continue
                kind = node_kind[node]
                if kind:
                    if mem_plan is None:
                        status = mem_issue(self, node, cycle)
                    else:
                        # SpadInterface.issue fused inline (see preamble).
                        plan = mem_plan[node]
                        bi = plan[1]
                        if bi > 0:
                            if plan_ready[bi][plan[2]]:
                                bi = 0  # data arrived: fall through
                        elif bi < 0:
                            plan_bits[-bi].is_ready(plan[4])  # raises
                        if bi:
                            plan_bits[bi].wait_bit(
                                plan[2], lambda _n=node: resume(_n))
                            status = "parked"
                        else:
                            slot = plan_slots[plan[0]]
                            if slot is None:
                                # Unknown array: raises ConfigError.
                                spad.try_access(plan[3], 0, cycle)
                            if slot[0] != cycle:
                                slot[0] = cycle
                                slot[1] = 1
                                status = lat_ticks
                            elif slot[1] >= spad_ports:
                                spad.conflicts += 1
                                status = "retry"
                            else:
                                slot[1] += 1
                                status = lat_ticks
                            if status is lat_ticks:
                                spad.accesses += 1
                                access_by_array[plan[3]] += 1
                    if status == "retry":
                        rem_append(node)
                        continue
                    used[fu] += 1
                    counts[fu] -= 1
                    if status != "parked":
                        if in_flight == 0:
                            busy_begin(now)
                        in_flight += 1
                        if round_started is not None:
                            rr = node_round[node]
                            if rr >= 0 and not round_started[rr]:
                                round_started[rr] = True
                                if rr + 1 < num_rounds:
                                    schedule_at(now + ii_ticks, open_gate,
                                                rr + 1)
                        if kind == 1:
                            loads += 1
                        else:
                            stores += 1
                        if type(status) is int:
                            # The interface left scheduling to us: batch.
                            if (status == last_delay
                                    and last_entry[1] == evq._seq):
                                last_entry[0].append(node)
                            else:
                                entry = batches.get(status)
                                if (entry is not None
                                        and entry[1] == evq._seq):
                                    entry[0].append(node)
                                else:
                                    lst = [node]
                                    seq = evq._seq
                                    schedule(status, complete_batch, lst)
                                    for e in batches.values():
                                        if e[1] == seq:
                                            e[1] = seq + 1
                                    entry = batches[status] = [lst, seq + 1]
                                last_delay = status
                                last_entry = entry
                else:
                    used[fu] += 1
                    counts[fu] -= 1
                    if in_flight == 0:
                        busy_begin(now)
                    in_flight += 1
                    if round_started is not None:
                        rr = node_round[node]
                        if rr >= 0 and not round_started[rr]:
                            round_started[rr] = True
                            if rr + 1 < num_rounds:
                                schedule_at(now + ii_ticks, open_gate,
                                            rr + 1)
                    delay = node_ticks[node]
                    if delay == last_delay and last_entry[1] == evq._seq:
                        last_entry[0].append(node)
                    elif delay > 0:
                        entry = batches.get(delay)
                        if entry is not None and entry[1] == evq._seq:
                            entry[0].append(node)
                        else:
                            lst = [node]
                            seq = evq._seq
                            schedule(delay, complete_batch, lst)
                            for e in batches.values():
                                if e[1] == seq:
                                    e[1] = seq + 1
                            entry = batches[delay] = [lst, seq + 1]
                        last_delay = delay
                        last_entry = entry
                    else:
                        # Zero-delay events live in the tick FIFO, which
                        # assigns no sequence numbers — unbatchable.
                        schedule(0, complete, node)
                num_ready -= 1
                if counts[fu] == 0 or used[fu] >= limits[fu]:
                    issuable -= 1
                    if not issuable:
                        # Everything still queued belongs to saturated
                        # classes: keep it, order unchanged.
                        remaining.extend(queue[i + 1:])
                        break
            ready[lane] = remaining
        self._num_ready = num_ready
        self._in_flight = in_flight
        self.issued_loads += loads
        self.issued_stores += stores
        self.reservation_conflicts += conflicts
        # Anything still queued retries next cycle (edge_after inlined).
        if num_ready:
            period = self._period
            nxt = now + 1
            rem = nxt % period
            when = nxt if rem == 0 else nxt + (period - rem)
            pending = self._scheduled_passes
            if when not in pending and (not pending or min(pending) > when):
                pending.add(when)
                self._queue.schedule_at(when, self._issue_pass)

    # -- completion -----------------------------------------------------------

    def _complete_batch(self, nodes):
        """Complete a batch of nodes that share one completion tick.

        Semantically identical to calling :meth:`complete_node` once per
        node in list order, but locals are bound once per batch and the
        trailing kick runs once: per-node kicks after the first were
        no-ops anyway, since the pass for this edge was already pending,
        and no foreign event can be scheduled mid-batch to care about the
        kick's sequence position.
        """
        queue = self._queue
        now = queue.now
        in_flight = self._in_flight
        indegree = self._indegree
        successors = self._successors
        node_round = self._node_round
        node_lane = self._node_lane
        node_fu = self._node_fu
        ready = self._ready
        ready_counts = self._ready_counts
        barriers = self.round_barriers
        gated = barriers or self._ii_gated
        parked = self._round_parked
        remaining = self._round_remaining
        num_rounds = len(remaining)
        completed = self._completed
        num_nodes = self._num_nodes
        finished = False
        for node in nodes:
            in_flight -= 1
            if in_flight == 0:
                self.busy.end(now)
            succs = successors[node]
            if succs:
                current_round = self._current_round
                num_ready = self._num_ready
                for succ in succs:
                    indegree[succ] -= 1
                    if indegree[succ] == 0:
                        r = node_round[succ]
                        if gated and r > current_round:
                            if r in parked:
                                parked[r].append(succ)
                            else:
                                parked[r] = [succ]
                        else:
                            lane = node_lane[succ]
                            ready[lane].append(succ)
                            ready_counts[lane][node_fu[succ]] += 1
                            num_ready += 1
                self._num_ready = num_ready
            r = node_round[node]
            if r >= 0 and gated:
                remaining[r] -= 1
                current = self._current_round
                if current < num_rounds and remaining[current] == 0:
                    self._advance_rounds()
            completed += 1
            if completed == num_nodes:
                finished = True
        self._in_flight = in_flight
        self._completed = completed
        if finished:
            self._finish()
            return
        if self._num_ready:
            remainder = now % self._period
            when = now if remainder == 0 else now + (self._period - remainder)
            pending = self._scheduled_passes
            if not pending or min(pending) > when:
                pending.add(when)
                queue.schedule_at(when, self._issue_pass)

    def complete_node(self, node):
        """A node's result is available (called by FUs and the memory system).

        Runs once per node, so ``_make_ready``/``_enqueue_ready``/``_kick``
        are inlined here — the method versions remain for the cold paths
        (start, parked-node resume, round advancement).
        """
        in_flight = self._in_flight - 1
        self._in_flight = in_flight
        if in_flight == 0:
            self.busy.end(self._queue.now)
        barriers = self.round_barriers
        gated = barriers or self._ii_gated
        current_round = self._current_round
        succs = self._successors[node]
        if succs:
            indegree = self._indegree
            node_round = self._node_round
            node_lane = self._node_lane
            node_fu = self._node_fu
            ready = self._ready
            ready_counts = self._ready_counts
            parked = self._round_parked
            num_ready = self._num_ready
            for succ in succs:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    r = node_round[succ]
                    if gated and r > current_round:
                        if r in parked:
                            parked[r].append(succ)
                        else:
                            parked[r] = [succ]
                    else:
                        lane = node_lane[succ]
                        ready[lane].append(succ)
                        ready_counts[lane][node_fu[succ]] += 1
                        num_ready += 1
            self._num_ready = num_ready
        r = self._node_round[node]
        if r >= 0 and gated:
            remaining = self._round_remaining
            remaining[r] -= 1
            if current_round < len(remaining) and remaining[current_round] == 0:
                self._advance_rounds()
        self._completed += 1
        if self._completed == self._num_nodes:
            self._finish()
            return
        if self._num_ready:
            queue = self._queue
            now = queue.now
            remainder = now % self._period
            when = now if remainder == 0 else now + (self._period - remainder)
            pending = self._scheduled_passes
            if not pending or min(pending) > when:
                pending.add(when)
                queue.schedule_at(when, self._issue_pass)

    def _advance_rounds(self):
        while (self._current_round < len(self._round_remaining)
               and self._round_remaining[self._current_round] == 0):
            self._current_round += 1
            if self._obs_trace is not None:
                self._obs_trace(self._queue.now, "round %d/%d",
                                self._current_round,
                                len(self._round_remaining))
            for node in self._round_parked.pop(self._current_round, ()):
                self._enqueue_ready(node)

    def _open_gate(self, target):
        """Modulo-mode round gate: II cycles elapsed since round
        ``target - 1``'s first issue — open round ``target`` and release
        its parked nodes.  Gates fire in round order (each round schedules
        exactly one, anchored on its own first issue), but completion of
        the previous round releases ``target`` early when it beats the
        gate, in which case the late gate is a no-op."""
        if self._current_round >= target:
            return
        self._current_round = target
        if self._obs_trace is not None:
            self._obs_trace(self._queue.now, "II gate: round %d/%d open",
                            target, len(self._round_remaining))
        parked = self._round_parked.pop(target, None)
        if parked:
            for node in parked:
                self._enqueue_ready(node)
            self._kick()

    def reg_stats(self, stats, prefix="accel0.sched"):
        """Mirror this datapath's counters into a stats registry."""
        stats.scalar(f"{prefix}.nodes", lambda: self._num_nodes,
                     desc="DDG nodes in the trace")
        stats.scalar(f"{prefix}.completed", lambda: self._completed,
                     desc="nodes executed to completion")
        stats.scalar(f"{prefix}.issued_loads", lambda: self.issued_loads,
                     desc="memory loads issued")
        stats.scalar(f"{prefix}.issued_stores", lambda: self.issued_stores,
                     desc="memory stores issued")
        stats.scalar(f"{prefix}.busy_ticks",
                     lambda: self.busy.total_busy(),
                     desc="ticks with at least one node in flight")
        stats.scalar(f"{prefix}.compute_ticks",
                     lambda: self.compute_ticks,
                     desc="ticks from start to last completion")
        stats.scalar(f"{prefix}.ii", lambda: self.ii,
                     desc="enforced initiation interval (cycles; 0 = "
                          "not modulo-gated)")
        stats.scalar(f"{prefix}.rec_mii", lambda: self.rec_mii,
                     desc="recurrence-constrained minimum II (cycles)")
        stats.scalar(f"{prefix}.res_mii", lambda: self.res_mii,
                     desc="resource-constrained minimum II (cycles)")
        stats.scalar(f"{prefix}.reservation_conflicts",
                     lambda: self.reservation_conflicts,
                     desc="issue attempts blocked by a saturated "
                          "per-cycle FU reservation row")


# Issue plan for nodes with no array (never legitimately issued): slot
# index -1 resolves to the trailing ``None`` sentinel of the per-run slot
# table, whose path reproduces the unknown-array ConfigError.
_NULL_PLAN = (-1, 0, 0, None, 0)


class SpadInterface:
    """Memory interface for scratchpad (DMA-based) designs.

    Loads and stores hit partitioned SRAM banks with a fixed 1-cycle access,
    subject to per-bank port arbitration.  Arrays registered with full/empty
    bits gate accesses at cache-line granularity for DMA-triggered compute.
    """

    def __init__(self, sim, clock, spad, ready_bits=None, latency_cycles=1):
        self.sim = sim
        self.clock = clock
        self.spad = spad
        self.ready_bits = ready_bits or {}
        self.latency_cycles = latency_cycles
        self._latency_ticks = clock.cycles_to_ticks(latency_cycles)
        self._ports = spad.ports
        self._access_by_array = spad.access_by_array
        self._node_plan = None
        self._plan_slots = None
        self._plan_bits = None
        self._plan_ready = None

    def _static_plans(self, trace):
        """The pure part of the per-node issue plan, memoized on the trace.

        A plan entry is ``(slot_index, bits_index, bit, array, offset)``:
        every field is a function of the trace and two design scalars
        (partition count, ready-bit layout), so the 30k-node derivation
        runs once per (trace, design shape) instead of once per run.  The
        per-run mutable state — bank slots and ready bytearrays — is
        reached through small tables rebuilt by :meth:`bind`:
        ``slot_index`` indexes the flat per-(array, bank) slot table (-1 =
        unknown array → the trailing ``None`` sentinel), and
        ``bits_index`` is 0 for ungated nodes, ``k > 0`` for full/empty
        gating via table ``k``, and ``-k`` for a gated node whose offset
        is out of range (the bounds error is raised at issue time, as the
        unoptimized path did).
        """
        partitions = self.spad.partitions
        ready_bits = self.ready_bits
        bits_fp = tuple(sorted((name, b.size_bytes, b.granularity)
                               for name, b in ready_bits.items()))
        node_array = trace.node_array
        n = len(node_array)
        key = (partitions, bits_fp, n)
        memo = getattr(trace, "_spad_plan_memo", None)
        if memo is None:
            memo = trace._spad_plan_memo = {}
        cached = memo.get(key)
        if cached is not None:
            return cached
        node_index = trace.node_index
        plans = [_NULL_PLAN] * n
        word_bytes = {name: decl.word_bytes
                      for name, decl in trace.arrays.items()}
        array_order = list(trace.arrays)
        array_pos = {name: i for i, name in enumerate(array_order)}
        bits_order = []   # arrays with ready bits, in bits-table order
        per_array = {}
        # Arrays without full/empty bits have only `partitions` distinct
        # plans (one per bank), memoized in bank_plans.
        bank_plans = {}
        for node in range(n):
            array = node_array[node]
            if array is None:
                continue
            info = per_array.get(array)
            if info is None:
                pos = array_pos.get(array)
                if pos is None:
                    # Traced array missing from the declarations: give it a
                    # slot-table range anyway (resolved per run).
                    pos = array_pos[array] = len(array_order)
                    array_order.append(array)
                bits = ready_bits.get(array)
                bi = 0
                if bits is not None:
                    bits_order.append(array)
                    bi = len(bits_order)
                info = per_array[array] = (pos * partitions, bits, bi,
                                           word_bytes.get(array, 0))
            base, bits, bi, wb = info
            bank = node_index[node] % partitions
            if bits is None:
                slot_idx = base + bank
                plan = bank_plans.get(slot_idx)
                if plan is None:
                    plan = bank_plans[slot_idx] = (slot_idx, 0, 0, array, 0)
                plans[node] = plan
            else:
                offset = node_index[node] * wb
                if 0 <= offset < max(bits.size_bytes, 1):
                    plans[node] = (base + bank, bi,
                                   offset // bits.granularity, array, offset)
                else:
                    plans[node] = (base + bank, -bi, 0, array, offset)
        cached = memo[key] = (plans, array_order, bits_order)
        return cached

    def bind(self, sched):
        """Resolve the static plans against this run's scratchpad (called
        by :class:`DatapathScheduler` at construction).

        Builds the per-run tables the plan indices point at: direct
        references to the scratchpad's per-bank ``[cycle, uses]`` lists
        (arbitration mutates them exactly as ``Scratchpad.try_access``
        would) and to each array's ready bytearray.
        """
        plans, array_order, bits_order = self._static_plans(sched.trace)
        banks = self.spad._banks
        partitions = self.spad.partitions
        slots = []
        for array in array_order:
            arr_banks = banks.get(array)
            if arr_banks is None:
                slots.extend([None] * partitions)
            else:
                slots.extend(arr_banks)
        slots.append(None)   # slot index -1: unknown-array sentinel
        bits_objs = [None]
        ready_arrs = [None]
        for array in bits_order:
            bits = self.ready_bits[array]
            bits_objs.append(bits)
            ready_arrs.append(bits._ready)
        self._plan_slots = slots
        self._plan_bits = bits_objs
        self._plan_ready = ready_arrs
        self._node_plan = plans

    def new_cycle(self, cycle):
        """Per-cycle reset hook (banks self-arbitrate)."""
        pass  # the scratchpad tracks per-cycle port use itself

    def issue(self, sched, node, cycle):
        """Try to issue one memory node this cycle.

        Returns ``"retry"``/``"parked"``, or the completion delay in ticks
        (an int) — the scheduler batches and schedules the completion.
        """
        if self._node_plan is None:
            self.bind(sched)
        slot_idx, bi, bit, array, offset = self._node_plan[node]
        if bi > 0:
            if self._plan_ready[bi][bit]:
                bi = 0  # data arrived: fall through to the access
        elif bi < 0:
            # Out-of-range offset: reproduce the bounds error at issue
            # time, as the unoptimized path did.
            self._plan_bits[-bi].is_ready(offset)
        if bi:
            self._plan_bits[bi].wait_bit(
                bit, lambda: sched.resume_parked(node))
            return "parked"
        spad = self.spad
        slot = self._plan_slots[slot_idx]
        if slot is None:
            # Unknown array: the slow path raises the ConfigError.
            spad.try_access(array, 0, cycle)
        # Scratchpad.try_access inlined against the precomputed bank slot.
        if slot[0] != cycle:
            slot[0] = cycle
            slot[1] = 1
        elif slot[1] >= self._ports:
            spad.conflicts += 1
            return "retry"
        else:
            slot[1] += 1
        spad.accesses += 1
        self._access_by_array[array] += 1
        return self._latency_ticks


class CacheInterface:
    """Memory interface for cache-based designs.

    Shared (input/output) arrays go through the TLB and the coherent cache;
    private intermediate arrays stay in scratchpads (Section IV-D).  With
    ``perfect=True`` every shared access is a single-cycle hit — the
    idealized memory used for the Burger-style "processing time" component
    of Figure 7.
    """

    def __init__(self, sim, clock, cache, tlb, addr_map, phys_offset,
                 ports, spad=None, internal_arrays=(), perfect=False):
        self.sim = sim
        self.clock = clock
        self.cache = cache
        self.tlb = tlb
        self.addr_map = addr_map
        self.phys_offset = phys_offset
        self.ports = ports
        self.spad = spad
        self.internal = frozenset(internal_arrays)
        self.perfect = perfect
        self._period_ticks = clock.period
        self._cycle = -1
        self._ports_used = 0
        self._node_array = None
        self._node_index = None
        self._node_vaddr = None
        self._node_size = None
        self._node_is_write = None

    def bind(self, sched):
        """Precompute per-node tables (virtual address, access size, and
        store flag are all static per trace node) so the per-cycle issue
        path does no dict or declaration lookups.

        The tables are pure functions of the trace, the internal-array
        set, and the address map, so they are memoized on the trace and
        shared (read-only) across runs of the same design shape.
        """
        trace = sched.trace
        self._node_array = node_array = trace.node_array
        self._node_index = node_index = trace.node_index
        n = len(node_array)
        addr_map = self.addr_map
        key = (self.internal, tuple(sorted(addr_map.items())), n)
        memo = getattr(trace, "_cache_plan_memo", None)
        if memo is None:
            memo = trace._cache_plan_memo = {}
        cached = memo.get(key)
        if cached is not None:
            self._node_vaddr = cached[0]
            self._node_size = cached[1]
            self._node_is_write = cached[2]
            return
        node_vaddr = [0] * n
        node_size = [0] * n
        node_is_write = [False] * n
        internal = self.internal
        arrays = trace.arrays
        node_ops = trace.node_op
        for node in range(n):
            array = node_array[node]
            if array is None or array in internal:
                continue
            word_bytes = arrays[array].word_bytes
            node_vaddr[node] = addr_map[array] + node_index[node] * word_bytes
            node_size[node] = word_bytes
            node_is_write[node] = node_ops[node] == Op.STORE
        memo[key] = (node_vaddr, node_size, node_is_write)
        self._node_vaddr = node_vaddr
        self._node_size = node_size
        self._node_is_write = node_is_write

    def new_cycle(self, cycle):
        """Reset the per-cycle cache-port counter."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._ports_used = 0

    def issue(self, sched, node, cycle):
        """Try to issue one memory node this cycle.

        Returns ``"retry"``/``"parked"``, ``"issued"`` (completion event
        owned by the cache), or a completion delay in ticks (an int) for
        fixed-latency paths, which the scheduler batches and schedules.
        """
        if self._node_array is None:
            self.bind(sched)
        array = self._node_array[node]
        if array in self.internal:
            if not self.spad.try_access(array, self._node_index[node], cycle):
                return "retry"
            return self._period_ticks
        if self._ports_used >= self.ports:
            return "retry"
        self._ports_used += 1
        if self.perfect:
            return self._period_ticks
        status = self._translated_access(sched, node, self._node_vaddr[node],
                                         self._node_size[node], array)
        if status == "retry":
            # The cache rejected the access (MSHRs full): refund the port
            # slot, or a blocked lane would starve peers for the whole
            # cycle on a port it never used.
            self._ports_used -= 1
        return status

    def _translated_access(self, sched, node, vaddr, size, array):
        result = {"sync": True, "paddr": None}

        def on_translated(paddr):
            if result["sync"]:
                result["paddr"] = paddr
            else:
                # Walk finished later: retry the whole access; the TLB now hits.
                sched.resume_parked(node)

        hit = self.tlb.translate(vaddr, self.phys_offset, on_translated)
        result["sync"] = False
        if not hit:
            return "parked"
        is_write = self._node_is_write[node]
        status = self.cache.access(
            result["paddr"], size, is_write,
            callback=lambda: sched.complete_node(node),
            stream=array,
        )
        if status == "blocked":
            return "retry"
        return "issued"
