"""Accelerator area models (40 nm class).

Aladdin reports area alongside power and performance; we reproduce that
third axis so design-space studies can weigh silicon cost.  The model
mirrors :mod:`repro.aladdin.power`'s structure:

* functional units: per-class footprints, one unit per class per lane;
* SRAM: an analytic bits-plus-periphery model — per-bank overhead makes
  heavy partitioning pay for its bandwidth in area;
* caches: the SRAM model on data + ~6% tags, multiplied by a per-port
  wiring factor (multi-ported caches grow superlinearly), plus MSHR and
  controller overhead;
* TLB: a small CAM.

Units are square micrometers (um^2); constants are representative of
40 nm standard-cell/compiler-SRAM implementations and documented for
re-characterization.
"""

import math

from repro.aladdin.ir import FuClass

# Functional-unit footprints, um^2 (40 nm).
FU_AREA_UM2 = {
    FuClass.ALU: 320.0,
    FuClass.IMUL: 1800.0,
    FuClass.FADD: 2900.0,
    FuClass.FMUL: 4100.0,
    FuClass.FDIV: 6200.0,
    FuClass.MEM: 450.0,       # load/store queue slice + address path
}

# SRAM model: bit cells plus sqrt-scaling periphery, plus per-bank overhead.
SRAM_UM2_PER_BIT = 0.45
SRAM_PERIPHERY_COEFF = 18.0   # x sqrt(bits)
SRAM_BANK_OVERHEAD_UM2 = 700.0

CACHE_TAG_FRACTION = 0.06
CACHE_PORT_AREA_FACTOR = 0.35     # extra area per port beyond the first
CACHE_MSHR_UM2 = 260.0            # per MSHR entry
CACHE_CONTROL_UM2 = 2400.0
TLB_UM2_PER_ENTRY = 180.0

REGISTER_UM2_PER_LANE = 900.0     # pipeline registers + FSM control


def sram_area_um2(capacity_bytes, banks=1):
    """Area of ``capacity_bytes`` of SRAM split across ``banks``.

    >>> sram_area_um2(0) == 0.0
    True
    """
    if capacity_bytes <= 0:
        return 0.0
    bits = capacity_bytes * 8
    cells = bits * SRAM_UM2_PER_BIT
    periphery = banks * SRAM_PERIPHERY_COEFF * math.sqrt(bits / banks)
    return cells + periphery + banks * SRAM_BANK_OVERHEAD_UM2


class AreaBreakdown:
    """Per-component accelerator area (um^2)."""

    def __init__(self):
        self.fu = 0.0
        self.registers = 0.0
        self.spad = 0.0
        self.cache = 0.0
        self.tlb = 0.0

    @property
    def total_um2(self):
        return self.fu + self.registers + self.spad + self.cache + self.tlb

    @property
    def total_mm2(self):
        return self.total_um2 / 1e6

    def as_dict(self):
        """Component areas as a plain dict (um^2)."""
        return {"fu": self.fu, "registers": self.registers,
                "spad": self.spad, "cache": self.cache, "tlb": self.tlb}


class AreaModel:
    """Computes an accelerator's silicon area for one design point."""

    def __init__(self, lanes, fu_classes):
        self.lanes = lanes
        self.fu_classes = frozenset(fu_classes)

    @classmethod
    def from_power_model(cls, power_model):
        """Share the FU inventory already inferred from the op histogram."""
        return cls(power_model.lanes, power_model.fu_classes)

    def fu_area_um2(self):
        """Area of all instantiated FUs (lanes x classes)."""
        per_lane = sum(FU_AREA_UM2[fu] for fu in self.fu_classes)
        return per_lane * self.lanes

    def spad_area_um2(self, spad):
        """Scratchpad array area including banking overhead."""
        total = 0.0
        for name in spad.arrays:
            total += sram_area_um2(
                spad.partition_bytes(name) * spad.partitions,
                banks=spad.partitions)
        return total

    def cache_area_um2(self, cache, ports=1):
        """Cache area: data + tags, ports, MSHRs, control."""
        data = sram_area_um2(cache.size_bytes, banks=cache.assoc)
        tags = CACHE_TAG_FRACTION * data
        port_factor = 1.0 + CACHE_PORT_AREA_FACTOR * max(ports - 1, 0)
        mshrs = CACHE_MSHR_UM2 * cache.mshrs.num_entries
        return (data + tags) * port_factor + mshrs + CACHE_CONTROL_UM2

    def tlb_area_um2(self, tlb):
        """TLB CAM area."""
        return TLB_UM2_PER_ENTRY * tlb.entries

    def area(self, spad=None, cache=None, tlb=None, cache_ports=1):
        """Full area breakdown for one configured accelerator."""
        bd = AreaBreakdown()
        bd.fu = self.fu_area_um2()
        bd.registers = REGISTER_UM2_PER_LANE * self.lanes
        if spad is not None:
            bd.spad = self.spad_area_um2(spad)
        if cache is not None:
            bd.cache = self.cache_area_um2(cache, cache_ports)
        if tlb is not None:
            bd.tlb = self.tlb_area_um2(tlb)
        return bd
