"""The HTTP/JSON face of the sweep service (``repro serve``).

Stdlib only: :class:`http.server.ThreadingHTTPServer` gives one thread
per connection, and the :class:`~repro.serve.service.SweepService`
underneath deduplicates whatever those threads ask for concurrently.

Endpoints (all bodies JSON):

* ``GET /health`` — liveness + store summary.
* ``GET /stats`` — service counters (hits/joins/dispatches, queue
  depth, latency percentiles) plus the engine-side sweep metrics.
* ``GET /workloads`` — the available workload names (plus a
  ``details`` list tagging each as builtin or frontend).
* ``POST /kernels`` — ``{"source": "<python text>", "filename": ...}``
  → register the ``@kernel`` functions in the source; they become
  sweepable by name immediately (``{"kernels": [{"name", ...}]}``).
* ``POST /query`` — ``{"kind": "sweep"|"pareto"|"edp"|"figure",
  "workload": ..., "space"/"density" or "designs": [...],
  "fidelity": ..., "evaluate": bool}`` →
  :meth:`SweepService.query`.
* ``POST /sweep`` — ``{"workload": ..., "designs": [{...}, ...],
  "fidelity": ...}`` → evaluate (hit/join/dispatch) and return the
  result records plus the provenance report.

Malformed bodies, unknown design fields and unknown workloads are 400s
with a JSON ``{"error": ...}`` body; simulation failures of individual
points are *not* errors — they come back as failure records inside a
200 response (the service collects them).
"""

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.core.config import DesignPoint
from repro.errors import CalibrationError, FrontendError, WorkloadError
from repro.workloads.registry import workload_names, workload_source

#: The exact DesignPoint constructor surface, derived from the class so
#: the whitelist can never drift from it.  ``loop_pipelining`` is a
#: property now (legacy boolean spelling of ``pipelining``) so it no
#: longer appears in the instance dict, but the constructor still
#: accepts it — keep accepting it from clients too.
DESIGN_FIELDS = frozenset(DesignPoint().__dict__) | {"loop_pipelining"}


def design_from_json(doc):
    """Build a DesignPoint from a JSON dict, rejecting unknown fields."""
    if not isinstance(doc, dict):
        raise ValueError(f"design must be a JSON object, got {doc!r}")
    unknown = sorted(set(doc) - DESIGN_FIELDS)
    if unknown:
        raise ValueError(
            f"unknown design field(s) {unknown}; valid fields: "
            f"{sorted(DESIGN_FIELDS)}")
    return DesignPoint(**doc)


class _Handler(BaseHTTPRequestHandler):
    # One log line per request is noise the service metrics already
    # cover; opt back in with server.verbose = True.
    def log_message(self, fmt, *args):
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    @property
    def service(self):
        return self.server.service

    # -- plumbing ------------------------------------------------------------

    def _send(self, status, payload):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status, message):
        self._send(status, {"error": message})

    def _body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        doc = json.loads(raw.decode("utf-8"))
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _workload(self, doc):
        workload = doc.get("workload")
        if workload not in workload_names():
            raise ValueError(
                f"unknown workload {workload!r}; see GET /workloads "
                f"(or register it first via POST /kernels)")
        return workload

    # -- GET -----------------------------------------------------------------

    def do_GET(self):
        if self.path == "/health":
            self._send(200, {
                "status": "ok",
                "cache_dir": self.service.cache_dir,
                "cached_points": len(self.service.cache.index()),
                "fidelity": self.service.fidelity or "per-workload",
            })
        elif self.path == "/stats":
            self._send(200, {
                "service": self.service.metrics.snapshot(),
                "engine": self.service.sweep_metrics.as_dict(),
            })
        elif self.path == "/workloads":
            names = workload_names()
            self._send(200, {
                "workloads": names,
                "details": [{"name": n, "source": workload_source(n)}
                            for n in names],
            })
        else:
            self._error(404, f"no such endpoint: GET {self.path}")

    # -- POST ----------------------------------------------------------------

    def do_POST(self):
        if self.path not in ("/query", "/sweep", "/kernels"):
            self._error(404, f"no such endpoint: POST {self.path}")
            return
        try:
            doc = self._body()
            if self.path == "/kernels":
                source = doc.get("source")
                kernels = self.service.register_kernel(
                    source, filename=doc.get("filename"))
                self._send(200, {"kernels": kernels})
                return
            workload = self._workload(doc)
            designs = doc.get("designs")
            if designs is not None:
                designs = [design_from_json(d) for d in designs]
            if self.path == "/query":
                response = self.service.query(
                    doc.get("kind", "sweep"), workload, designs=designs,
                    space=doc.get("space", "both"),
                    density=doc.get("density", "standard"),
                    fidelity=doc.get("fidelity"),
                    evaluate=doc.get("evaluate", True))
            else:
                if not designs:
                    raise ValueError(
                        'POST /sweep needs a non-empty "designs" list')
                results, report = self.service.submit(
                    workload, designs, fidelity=doc.get("fidelity"))
                records = []
                for result in results:
                    if getattr(result, "is_failure", False):
                        records.append({"failed": True,
                                        **result.as_dict()})
                    else:
                        records.append(self.service._record(result))
                response = {"workload": workload, "results": records,
                            "service": report}
        except (ValueError, KeyError, TypeError, CalibrationError,
                FrontendError, WorkloadError) as exc:
            self._error(400, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 — the server must answer
            self._error(500, repr(exc))
            return
        self._send(200, response)


class ServeHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that owns a :class:`SweepService`."""

    daemon_threads = True

    def __init__(self, addr, service, verbose=False):
        self.service = service
        self.verbose = verbose
        super().__init__(addr, _Handler)


def make_server(service, host="127.0.0.1", port=0, verbose=False):
    """Bind a server around an existing service (port 0 = ephemeral)."""
    return ServeHTTPServer((host, port), service, verbose=verbose)


def serve(cache_dir, host="127.0.0.1", port=8642, jobs=None, fidelity=None,
          batch_window=0.02, verbose=False, out=print, ready=None):
    """Run the sweep service until interrupted (the ``repro serve`` body).

    ``ready`` (if given) is called with the bound server before the
    serve loop starts — tests use it to learn the ephemeral port and to
    arrange shutdown.
    """
    from repro.serve.service import SweepService
    service = SweepService(cache_dir, jobs=jobs, fidelity=fidelity,
                           batch_window=batch_window)
    server = make_server(service, host=host, port=port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    out(f"repro serve: listening on http://{bound_host}:{bound_port} "
        f"(store: {cache_dir}, {len(service.cache.index())} cached points)")
    if ready is not None:
        ready(server)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        out("repro serve: shutting down")
    finally:
        server.server_close()
        service.close()
