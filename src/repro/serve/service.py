"""The sweep service core: coalescing, dedup, and store-backed queries.

:class:`SweepService` sits between any number of concurrent clients and
one sweep engine.  Every requested design point resolves exactly one
way:

* **hit** — the content-addressed cache already holds the result;
* **join** — an identical point (same ``sweep_key``) is already being
  evaluated for another client, so this request attaches to that
  in-flight evaluation instead of starting a second one;
* **dispatch** — the point is genuinely cold and is queued for
  evaluation (at most once fleet-wide).

A dispatcher thread drains the queue, coalescing points that arrive
within ``batch_window`` seconds into per-``(workload, config,
fidelity)`` batches and running them through
:func:`repro.core.sweep.run_sweep` — so they share trace capture, the
worker pool, and (under ``fidelity="auto"``) one triage round — with
``on_error="collect"``: a failing point becomes a
:class:`~repro.core.sweeppool.FailedPoint` for its waiters, never a
dead dispatcher.

Joins are tier-aware: a client that asked for ``"exact"`` results only
joins exact-tier in-flight points (an ``"auto"`` evaluation may resolve
a pruned point with a fast-model prediction, which an exact client must
never receive), while ``"auto"``/``"fast"`` clients happily join an
exact evaluation — it is strictly better than what they asked for.
"""

import hashlib
import os
import re
import threading
import time
import traceback
from collections import deque

from repro.core.config import SoCConfig
from repro.core.export import result_record
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.sweeppool import (
    _BATCH_PROBE_MIN,
    FailedPoint,
    SweepCache,
    SweepMetrics,
    key_payload,
    sweep_key,
)
from repro.errors import CalibrationError
from repro.obs.stats import percentile

#: Sliding window of per-request latencies kept for the percentiles.
LATENCY_WINDOW = 1024

#: Which in-flight tiers a requester of a given tier may join, in
#: preference order.  ``exact`` only joins exact (an auto/fast entry
#: may resolve to a prediction); ``auto``/``fast`` join anything at
#: least as precise as what they asked for.
_JOIN_TIERS = {
    "exact": ("exact",),
    "auto": ("exact", "auto"),
    "fast": ("exact", "auto", "fast"),
}

_TIERS = ("exact", "fast", "auto")


class ServiceMetrics:
    """Fleet-level counters for one :class:`SweepService`.

    ``points`` partitions into ``hits`` + ``joins`` + ``dispatches``;
    ``evaluated``/``failures`` partition the dispatched points by
    outcome.  ``queue_depth`` is a gauge (points queued, not yet handed
    to the engine); per-request latencies feed a bounded sliding window
    summarized as p50/p95.  All mutation goes through :meth:`bump` /
    :meth:`observe_latency`, which take the internal lock — safe from
    any number of client threads plus the dispatcher.
    """

    _COUNTERS = ("requests", "points", "hits", "joins", "dispatches",
                 "evaluated", "failures", "batches")

    def __init__(self):
        self._lock = threading.Lock()
        self.requests = 0
        self.points = 0
        self.hits = 0
        self.joins = 0
        self.dispatches = 0
        self.evaluated = 0
        self.failures = 0
        self.batches = 0
        self.queue_depth = 0
        self.latencies = deque(maxlen=LATENCY_WINDOW)

    def bump(self, **counts):
        with self._lock:
            for name, n in counts.items():
                setattr(self, name, getattr(self, name) + n)

    def set_queue_depth(self, depth):
        with self._lock:
            self.queue_depth = depth

    def observe_latency(self, seconds):
        with self._lock:
            self.latencies.append(seconds)

    @property
    def latency_p50(self):
        with self._lock:
            return percentile(self.latencies, 50)

    @property
    def latency_p95(self):
        with self._lock:
            return percentile(self.latencies, 95)

    def snapshot(self):
        """One consistent JSON-able view of every counter."""
        with self._lock:
            out = {name: getattr(self, name) for name in self._COUNTERS}
            out["queue_depth"] = self.queue_depth
            out["latency_p50"] = percentile(self.latencies, 50)
            out["latency_p95"] = percentile(self.latencies, 95)
        return out

    def reg_stats(self, registry, prefix="serve"):
        """Mirror the counters into an :mod:`repro.obs` stats registry."""
        scalars = [
            ("requests", "client requests served", lambda: self.requests),
            ("points", "design points requested", lambda: self.points),
            ("hits", "points answered from the result store",
             lambda: self.hits),
            ("joins", "points deduplicated onto an in-flight evaluation",
             lambda: self.joins),
            ("dispatches", "points evaluated fresh (at most one per "
             "unique point)", lambda: self.dispatches),
            ("evaluated", "dispatched points that completed",
             lambda: self.evaluated),
            ("failures", "dispatched points that failed",
             lambda: self.failures),
            ("batches", "coalesced engine batches", lambda: self.batches),
            ("queue_depth", "points queued awaiting dispatch",
             lambda: self.queue_depth),
            ("latency_p50", "median request latency (s)",
             lambda: self.latency_p50),
            ("latency_p95", "95th-percentile request latency (s)",
             lambda: self.latency_p95),
        ]
        for name, desc, getter in scalars:
            registry.scalar(f"{prefix}.{name}", getter=getter, desc=desc)


class _Inflight:
    """One design point being evaluated for whoever cares to wait."""

    __slots__ = ("key", "workload", "design", "cfg", "tier", "event",
                 "result")

    def __init__(self, key, workload, design, cfg, tier):
        self.key = key
        self.workload = workload
        self.design = design
        self.cfg = cfg
        self.tier = tier
        self.event = threading.Event()
        self.result = None

    def fulfill(self, result):
        self.result = result
        self.event.set()


class SweepService:
    """Shared sweep front door: submit design points, query the store.

    One service owns one cache directory (the content-addressed result
    store) and one dispatcher thread.  Any number of threads may call
    :meth:`submit` / :meth:`query` concurrently; identical points are
    simulated at most once across all of them.

    ``fidelity=None`` (the default) picks per workload: ``"auto"``
    triage when a persisted calibration exists under ``cache_dir``
    (``repro calibrate``), ``"exact"`` otherwise.  ``jobs`` /
    ``executor`` configure the engine the dispatcher hands batches to
    (see :mod:`repro.core.executors`); ``batch_window`` is how long the
    dispatcher waits after the first queued point for stragglers to
    coalesce into one batch.
    """

    def __init__(self, cache_dir, jobs=None, cfg=None, fidelity=None,
                 batch_window=0.02, executor=None):
        if fidelity is not None and fidelity not in _TIERS:
            raise ValueError(
                f"fidelity must be one of {_TIERS} or None, got {fidelity!r}")
        self.cache_dir = cache_dir
        self.cache = SweepCache(cache_dir)
        self.jobs = jobs
        self.default_cfg = cfg or SoCConfig()
        self.fidelity = fidelity
        self.batch_window = batch_window
        self.executor = executor
        self.metrics = ServiceMetrics()
        self.sweep_metrics = SweepMetrics()  # engine-side aggregate
        self._lock = threading.Lock()
        self._inflight = {}   # key -> {tier: _Inflight}
        self._queue = deque()
        self._wakeup = threading.Event()
        self._closed = False
        self._calibrations = {}  # (workload, cfg_hash) -> Calibration|None
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatcher",
            daemon=True)
        self._dispatcher.start()

    # -- lifecycle -----------------------------------------------------------

    def close(self, timeout=10.0):
        """Stop the dispatcher; queued-but-undispatched points fail."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            leftover = list(self._queue)
            self._queue.clear()
            self.metrics.set_queue_depth(0)
        self._wakeup.set()
        for entry in leftover:
            self._settle(entry, FailedPoint(
                entry.workload, entry.design,
                "RuntimeError('service closed before dispatch')"))
        self._dispatcher.join(timeout)

    def __enter__(self):
        return self

    def __exit__(self, *_exc):
        self.close()

    # -- kernel registration -------------------------------------------------

    def register_kernel(self, source, filename=None):
        """Register the ``@kernel`` functions in ``source`` (Python text).

        The body of ``POST /kernels``: the source is persisted under
        ``<cache_dir>/kernels/`` (content-addressed, so re-submitting
        identical source is idempotent), loaded, and its kernels
        registered — from then on the store sweeps them by name exactly
        like builtin workloads, including through the worker pool
        (loaded kernel files are advertised to spawned workers via
        ``$REPRO_KERNEL_PATHS``).

        Returns ``[{"name", "description", "source"}, ...]`` for the
        registered kernels.  Raises :class:`~repro.errors.FrontendError`
        or :class:`~repro.errors.WorkloadError` on unloadable source or
        a name collision with a builtin — mapped to HTTP 400 upstream.

        **Trust note**: registering a kernel executes the submitted
        Python.  ``repro serve`` binds loopback by default; anyone who
        can POST here can already run code as the service user.
        """
        from repro.frontend import load_kernel_file
        if not source or not isinstance(source, str):
            raise ValueError("kernel source must be a non-empty string")
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
        stem = "kernel"
        if filename:
            safe = re.sub(r"[^A-Za-z0-9_.-]", "_", os.path.basename(filename))
            stem = safe[:-3] if safe.endswith(".py") else safe
        kernels_dir = os.path.join(self.cache_dir, "kernels")
        path = os.path.join(kernels_dir, f"{stem}-{digest}.py")
        with self._lock:
            if not os.path.exists(path):
                os.makedirs(kernels_dir, exist_ok=True)
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(source)
                os.replace(tmp, path)
        loaded = load_kernel_file(path, replace=True)
        return [{"name": wl.name, "description": wl.description,
                 "source": "frontend"} for wl in loaded]

    # -- tier / calibration resolution ---------------------------------------

    def _calibration(self, workload, cfg):
        from repro.core.calibrate import Calibration, config_hash
        cache_key = (workload, config_hash(cfg))
        if cache_key not in self._calibrations:
            self._calibrations[cache_key] = Calibration.load(
                self.cache_dir, workload, cfg)
        return self._calibrations[cache_key]

    def _tier_for(self, workload, cfg, fidelity):
        tier = fidelity if fidelity is not None else self.fidelity
        if tier is None:
            tier = ("auto" if self._calibration(workload, cfg) is not None
                    else "exact")
        elif tier not in _TIERS:
            raise ValueError(
                f"fidelity must be one of {_TIERS}, got {tier!r}")
        if tier != "exact" and self._calibration(workload, cfg) is None:
            raise CalibrationError(
                f"no calibration for {workload!r} under {self.cache_dir!r} "
                f"(fidelity={tier!r}); run `repro calibrate {workload} "
                f"--cache-dir {self.cache_dir}` first")
        return tier

    # -- the front door ------------------------------------------------------

    def submit(self, workload, designs, cfg=None, fidelity=None,
               metrics=None):
        """Evaluate ``designs`` with fleet-wide dedup.

        Blocks until every point resolves and returns ``(results,
        report)``: results in input order (``FailedPoint`` in the slot
        of anything that failed — the service never raises for a bad
        point) and a report dict with the per-request provenance counts
        (``hits`` / ``joins`` / ``dispatches``).

        ``metrics`` (a :class:`~repro.core.sweeppool.SweepMetrics`) is
        filled with this *request's* view: joined points land in
        ``joins`` — they are neither cache hits nor local evaluations,
        so utilisation and per-point timings stay truthful.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SweepService is closed")
        cfg = cfg or self.default_cfg
        tier = self._tier_for(workload, cfg, fidelity)
        start = time.perf_counter()
        keys = [sweep_key(workload, d, cfg) for d in designs]
        payloads = {k: key_payload(workload, d, cfg)
                    for k, d in zip(keys, designs)}
        # Cheap pre-lock snapshot: the index answers big warm queries
        # without holding the service lock across disk reads.
        snapshot = (self.cache.get_many(keys, payloads)
                    if len(designs) >= _BATCH_PROBE_MIN else {})
        slots = [None] * len(designs)
        report = {"points": len(designs), "hits": 0, "joins": 0,
                  "dispatches": 0, "failures": 0, "tier": tier}
        fresh = []
        with self._lock:
            for i, key in enumerate(keys):
                result = snapshot.get(key)
                if result is not None:
                    slots[i] = ("hit", result)
                    continue
                entry = self._join_target(key, tier)
                if entry is not None:
                    slots[i] = ("join", entry)
                    continue
                # Authoritative re-probe under the lock: catches points
                # cached after the snapshot (including the window where
                # a batch has written the cache but not yet retired its
                # in-flight entry) — without it a point could dispatch
                # twice.
                result = self.cache.get(key, payloads[key])
                if result is not None:
                    self.cache.index().add(key)
                    slots[i] = ("hit", result)
                    continue
                entry = _Inflight(key, workload, designs[i], cfg, tier)
                self._inflight.setdefault(key, {})[tier] = entry
                fresh.append(entry)
                slots[i] = ("dispatch", entry)
            if fresh:
                self._queue.extend(fresh)
                self.metrics.set_queue_depth(len(self._queue))
        if fresh:
            self._wakeup.set()

        results = [None] * len(designs)
        for i, (kind, obj) in enumerate(slots):
            if kind == "hit":
                results[i] = obj
                report["hits"] += 1
            else:
                obj.event.wait()
                results[i] = obj.result
                report["joins" if kind == "join" else "dispatches"] += 1
            if getattr(results[i], "is_failure", False):
                report["failures"] += 1

        if metrics is not None:
            metrics.points += len(designs)
            metrics.cache_hits += report["hits"]
            metrics.joins += report["joins"]
            for (kind, _obj), result in zip(slots, results):
                if kind != "dispatch":
                    continue
                if getattr(result, "is_failure", False):
                    metrics.failures += 1
                else:
                    metrics.evaluated += 1
        self.metrics.bump(requests=1, points=len(designs),
                          hits=report["hits"], joins=report["joins"],
                          dispatches=report["dispatches"])
        self.metrics.observe_latency(time.perf_counter() - start)
        return results, report

    def _join_target(self, key, tier):
        """The joinable in-flight entry for ``key``, or None (lock held)."""
        entries = self._inflight.get(key)
        if not entries:
            return None
        for candidate in _JOIN_TIERS[tier]:
            entry = entries.get(candidate)
            if entry is not None:
                return entry
        return None

    # -- the dispatcher ------------------------------------------------------

    def _dispatch_loop(self):
        while True:
            with self._lock:
                have_work = bool(self._queue)
                closed = self._closed
            if not have_work:
                if closed:
                    return
                self._wakeup.wait(0.1)
                self._wakeup.clear()
                continue
            if self.batch_window > 0:
                time.sleep(self.batch_window)  # let stragglers coalesce
            with self._lock:
                batch = list(self._queue)
                self._queue.clear()
                self.metrics.set_queue_depth(0)
            groups = {}
            for entry in batch:
                group_key = (entry.workload, id(entry.cfg), entry.tier)
                groups.setdefault(group_key, []).append(entry)
            for entries in groups.values():
                self._run_batch(entries)

    def _run_batch(self, entries):
        """Evaluate one coalesced (workload, cfg, tier) batch.

        Never raises: an engine-level explosion fails every entry's
        waiters with a :class:`FailedPoint` instead of killing the
        dispatcher thread.
        """
        from repro.core.sweep import run_sweep
        workload = entries[0].workload
        cfg = entries[0].cfg
        tier = entries[0].tier
        designs = [entry.design for entry in entries]
        self.metrics.bump(batches=1)
        try:
            kwargs = {}
            if tier != "exact":
                kwargs["fidelity"] = tier
                kwargs["calibration"] = self._calibration(workload, cfg)
            results = run_sweep(workload, designs, cfg, parallel=self.jobs,
                                cache_dir=self.cache_dir,
                                metrics=self.sweep_metrics,
                                on_error="collect", executor=self.executor,
                                write_manifest=False, **kwargs)
        except Exception as exc:
            tb = traceback.format_exc()
            results = [FailedPoint(workload, design, repr(exc), tb)
                       for design in designs]
        nfailed = 0
        for entry, result in zip(entries, results):
            nfailed += bool(getattr(result, "is_failure", False))
            self._settle(entry, result)
        self.metrics.bump(evaluated=len(entries) - nfailed,
                          failures=nfailed)

    def _settle(self, entry, result):
        """Retire one in-flight entry and wake its waiters.

        The engine cached the result *before* this runs (run_sweep
        flushes per point), so a concurrent submit in the gap either
        still joins the entry or re-probes the cache under the lock —
        both correct, never a double dispatch.
        """
        with self._lock:
            tiers = self._inflight.get(entry.key)
            if tiers is not None and tiers.get(entry.tier) is entry:
                del tiers[entry.tier]
                if not tiers:
                    del self._inflight[entry.key]
            if (not getattr(result, "is_failure", False)
                    and getattr(result, "fidelity", "exact") == "exact"):
                # Teach the service-side index about the engine's write
                # (the engine used its own SweepCache instance).
                self.cache.index().add(entry.key)
        entry.fulfill(result)

    # -- queries over the store ----------------------------------------------

    def query(self, kind, workload, designs=None, cfg=None, space="both",
              density="standard", fidelity=None, evaluate=True):
        """Answer a ``sweep`` / ``pareto`` / ``edp`` / ``figure`` query.

        ``designs`` defaults to the Figure-8 design space named by
        ``space`` (``"dma"`` / ``"cache"`` / ``"both"``) at ``density``.
        Cold points are evaluated through :meth:`submit` (tiered triage
        by default); ``evaluate=False`` makes the query warm-only — it
        answers from the store in O(cache lookup) and reports how many
        points were ``missing`` instead of simulating them.

        Returns a JSON-able dict: the reduction (records via
        :func:`repro.core.export.result_record`, each tagged with its
        ``fidelity``) plus the provenance report.
        """
        if kind not in ("sweep", "pareto", "edp", "figure"):
            raise ValueError(
                f'kind must be "sweep", "pareto", "edp" or "figure", '
                f'got {kind!r}')
        cfg = cfg or self.default_cfg
        if designs is None:
            designs = self._space(space, density)
        missing = 0
        if evaluate:
            results, report = self.submit(workload, designs, cfg,
                                          fidelity=fidelity)
        else:
            keys = [sweep_key(workload, d, cfg) for d in designs]
            payloads = {k: key_payload(workload, d, cfg)
                        for k, d in zip(keys, designs)}
            hits = self.cache.get_many(keys, payloads)
            results = [hits.get(k) for k in keys]
            missing = sum(1 for r in results if r is None)
            report = {"points": len(designs), "hits": len(designs) - missing,
                      "joins": 0, "dispatches": 0, "failures": 0,
                      "tier": "warm"}
            self.metrics.bump(requests=1, points=len(designs),
                              hits=report["hits"])
        ok = [r for r in results
              if r is not None and not getattr(r, "is_failure", False)]
        response = {
            "kind": kind,
            "workload": workload,
            "points": len(designs),
            "missing": missing,
            "service": report,
        }
        if kind == "sweep":
            response["results"] = [self._record(r) for r in ok]
            return response
        # Frontier/EDP reductions are only meaningful over real
        # measurements: unconfirmed fast predictions are excluded (the
        # auto triage guarantees the dropped points are dominated).
        confirmed = [r for r in ok
                     if getattr(r, "fidelity", "exact") == "exact"]
        pool = confirmed if confirmed else ok
        if kind == "pareto":
            response["frontier"] = [self._record(r)
                                    for r in pareto_frontier(pool)]
            response["edp_optimal"] = (self._record(edp_optimal(pool))
                                       if pool else None)
        elif kind == "edp":
            response["edp_optimal"] = (self._record(edp_optimal(pool))
                                       if pool else None)
        else:  # figure: Fig-8 shape, one frontier per memory interface
            response["interfaces"] = {}
            for interface in ("dma", "cache"):
                sub = [r for r in pool
                       if r.design.mem_interface == interface]
                response["interfaces"][interface] = {
                    "frontier": [self._record(r)
                                 for r in pareto_frontier(sub)],
                    "edp_optimal": (self._record(edp_optimal(sub))
                                    if sub else None),
                }
        return response

    @staticmethod
    def _space(space, density):
        from repro.core.sweep import cache_design_space, dma_design_space
        if space == "dma":
            return dma_design_space(density)
        if space == "cache":
            return cache_design_space(density)
        if space == "both":
            return dma_design_space(density) + cache_design_space(density)
        raise ValueError(
            f'space must be "dma", "cache" or "both", got {space!r}')

    @staticmethod
    def _record(result):
        record = result_record(result)
        record["fidelity"] = getattr(result, "fidelity", "exact")
        return record

    def reg_stats(self, registry, prefix="serve"):
        """Mirror service + engine counters into an obs stats registry."""
        self.metrics.reg_stats(registry, prefix=prefix)
        self.sweep_metrics.reg_stats(registry, prefix=f"{prefix}.engine")
