"""A tiny urllib client for a running ``repro serve`` (no dependencies).

Backs ``repro query`` and the test/CI harnesses.  Every method returns
the decoded JSON body; HTTP error statuses raise :class:`ServiceError`
carrying the server's ``{"error": ...}`` message.
"""

import json
import urllib.error
import urllib.request

from repro.errors import ReproError

DEFAULT_TIMEOUT = 300.0


class ServiceError(ReproError):
    """The server answered with an error status."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Client for one ``repro serve`` endpoint (``http://host:port``)."""

    def __init__(self, base_url, timeout=DEFAULT_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path, payload=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 — body may not be JSON
                message = exc.reason
            raise ServiceError(exc.code, message) from exc

    # -- endpoints -----------------------------------------------------------

    def health(self):
        return self._request("/health")

    def stats(self):
        return self._request("/stats")

    def workloads(self):
        return self._request("/workloads")["workloads"]

    def query(self, kind, workload, designs=None, space="both",
              density="standard", fidelity=None, evaluate=True):
        """POST /query — see :meth:`repro.serve.service.SweepService.query`.

        ``designs`` entries may be DesignPoints or plain field dicts.
        """
        payload = {"kind": kind, "workload": workload, "space": space,
                   "density": density, "evaluate": evaluate}
        if fidelity is not None:
            payload["fidelity"] = fidelity
        if designs is not None:
            payload["designs"] = [self._design_doc(d) for d in designs]
        return self._request("/query", payload)

    def submit_kernel(self, source, filename=None):
        """POST /kernels — register ``@kernel`` source on the server.

        Returns the decoded body: ``{"kernels": [{"name", "description",
        "source"}, ...]}``.  After this, the kernel names are valid
        ``workload`` values for :meth:`query` / :meth:`sweep`.
        """
        payload = {"source": source}
        if filename is not None:
            payload["filename"] = filename
        return self._request("/kernels", payload)

    def sweep(self, workload, designs, fidelity=None):
        """POST /sweep — evaluate points (hit / join / dispatch)."""
        payload = {"workload": workload,
                   "designs": [self._design_doc(d) for d in designs]}
        if fidelity is not None:
            payload["fidelity"] = fidelity
        return self._request("/sweep", payload)

    @staticmethod
    def _design_doc(design):
        if isinstance(design, dict):
            return design
        return dict(design.__dict__)
