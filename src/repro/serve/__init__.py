"""Sweep-as-a-service: a queryable front door over the sweep engine.

The package turns the content-addressed sweep cache (PR 1) into a shared
result store that serves concurrent clients:

* :mod:`repro.serve.service` — :class:`SweepService`, the in-process
  core: a batching front door that answers each requested design point
  by **cache hit**, **in-flight join** (someone else is already
  computing it) or **fresh dispatch** (simulated at most once
  fleet-wide), plus Pareto/EDP/figure queries over the store.
* :mod:`repro.serve.httpd` — the stdlib HTTP/JSON face
  (``repro serve``), no dependencies beyond ``http.server``.
* :mod:`repro.serve.client` — a tiny ``urllib`` client
  (``repro query`` and tests).
"""

from repro.serve.service import ServiceMetrics, SweepService

__all__ = ["ServiceMetrics", "SweepService"]
