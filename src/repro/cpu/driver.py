"""Timed CPU driver.

Models the software half of CPU-accelerator communication:

* **flush / invalidate** — per-cache-line software coherence management at
  the paper's measured rates: 84 ns per flushed line, 71 ns per invalidated
  line (Figure 3; characterized as 56 Cortex-A9 cycles/line at 667 MHz).
  Flushed dirty lines generate writeback traffic to DRAM through the CPU's
  own memory port (the Zynq CPU and the accelerator fabric reach DDR through
  separate ports, so flush writebacks do not occupy the accelerator bus).
* **ioctl** — accelerator invocation through the emulated ioctl system call
  (Section III-E), a fixed software latency.
* **spin-wait** — after invocation the CPU polls the shared completion flag;
  coherence makes the accelerator's final write visible.

All actions are sequential on one CPU and report busy intervals so runtime
breakdowns can attribute flush-only time.
"""

from repro.obs import trace
from repro.sim.ports import MemRequest
from repro.sim.stats import IntervalTracker
from repro.units import ns_to_ticks


class DriverTimings:
    """Measured constants for driver-hardware interactions."""

    def __init__(self, flush_ns_per_line=84.0, invalidate_ns_per_line=71.0,
                 ioctl_ns=500.0, poll_interval_ns=100.0):
        self.flush_ns_per_line = flush_ns_per_line
        self.invalidate_ns_per_line = invalidate_ns_per_line
        self.ioctl_ns = ioctl_ns
        self.poll_interval_ns = poll_interval_ns


class CPUDriver:
    """One CPU core running the accelerator's device driver."""

    def __init__(self, sim, clock, cpu_cache=None, dram=None,
                 timings=None, line_size=64, name="cpu0"):
        self.sim = sim
        self.clock = clock
        self.cpu_cache = cpu_cache
        self.dram = dram
        self.timings = timings or DriverTimings()
        self.line_size = line_size
        self.name = name
        self.flush_busy = IntervalTracker(f"{name}-flush")
        self.busy = IntervalTracker(name)
        self.lines_flushed = 0
        self.lines_invalidated = 0
        self.dirty_writebacks = 0
        self.polls = 0
        self._trace = trace.tracer("driver", name)

    # -- software coherence management --------------------------------------

    def flush_region(self, start, size, on_done):
        """Flush [start, start+size) line by line, then call ``on_done()``.

        Serial at ``flush_ns_per_line``; dirty lines in the CPU cache are
        written back to DRAM as they are cleaned.
        """
        lines = self._lines(start, size)
        if self._trace is not None:
            self._trace(self.sim.now, "flush 0x%x..0x%x (%d lines)",
                        start, start + size, len(lines))
        self.flush_busy.begin(self.sim.now)
        self.busy.begin(self.sim.now)
        self._flush_step(lines, 0, on_done)

    def _flush_step(self, lines, index, on_done):
        if index >= len(lines):
            self.flush_busy.end(self.sim.now)
            self.busy.end(self.sim.now)
            on_done()
            return
        line = lines[index]
        self.lines_flushed += 1
        if self.cpu_cache is not None and self.cpu_cache.extract_line(line):
            self.dirty_writebacks += 1
            if self.dram is not None:
                # The CPU's writeback path to DDR is distinct from the
                # accelerator fabric, so flushes do not occupy the system
                # bus (they may still contend for DRAM banks).
                self.dram.handle(MemRequest(line, self.line_size,
                                            is_write=True,
                                            requester=f"{self.name}-flush"))
        self.sim.schedule(ns_to_ticks(self.timings.flush_ns_per_line),
                          self._flush_step, lines, index + 1, on_done)

    def invalidate_region(self, start, size, on_done):
        """Invalidate the CPU's cached copies of a DMA return region."""
        lines = self._lines(start, size)
        self.busy.begin(self.sim.now)

        def step(index):
            if index >= len(lines):
                self.busy.end(self.sim.now)
                on_done()
                return
            self.lines_invalidated += 1
            if self.cpu_cache is not None:
                self.cpu_cache.invalidate_line(lines[index])
            self.sim.schedule(
                ns_to_ticks(self.timings.invalidate_ns_per_line),
                step, index + 1)

        step(0)

    def _lines(self, start, size):
        first = start - (start % self.line_size)
        out = []
        line = first
        while line < start + size:
            out.append(line)
            line += self.line_size
        return out

    # -- invocation and completion ------------------------------------------

    def ioctl_invoke(self, on_done):
        """Invoke the accelerator through the emulated ioctl syscall."""
        if self._trace is not None:
            self._trace(self.sim.now, "ioctl invoke")
        self.busy.begin(self.sim.now)

        def fire():
            self.busy.end(self.sim.now)
            on_done()

        self.sim.schedule(ns_to_ticks(self.timings.ioctl_ns), fire)

    def spin_wait(self, is_done, on_done):
        """Poll the shared completion flag until ``is_done()`` is true."""
        interval = ns_to_ticks(self.timings.poll_interval_ns)

        def poll():
            self.polls += 1
            if is_done():
                if self._trace is not None:
                    self._trace(self.sim.now, "completion seen after %d polls",
                                self.polls)
                on_done()
            else:
                self.sim.schedule(interval, poll)

        self.sim.schedule(interval, poll)

    def reg_stats(self, stats, prefix=None):
        """Mirror this driver's counters into a stats registry."""
        prefix = prefix or f"soc.{self.name}"
        stats.scalar(f"{prefix}.lines_flushed", lambda: self.lines_flushed,
                     desc="cache lines flushed before offload")
        stats.scalar(f"{prefix}.lines_invalidated",
                     lambda: self.lines_invalidated,
                     desc="cache lines invalidated (DMA return regions)")
        stats.scalar(f"{prefix}.dirty_writebacks",
                     lambda: self.dirty_writebacks,
                     desc="flushed lines that were dirty")
        stats.scalar(f"{prefix}.polls", lambda: self.polls,
                     desc="completion-flag polls")
        stats.scalar(f"{prefix}.flush_busy_ticks",
                     lambda: self.flush_busy.total_busy(),
                     desc="ticks spent in flush loops")
        stats.scalar(f"{prefix}.busy_ticks",
                     lambda: self.busy.total_busy(),
                     desc="ticks the CPU driver was busy")
