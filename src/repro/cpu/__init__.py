"""CPU-side driver model.

The paper's CPU work is the accelerator *device driver*: generating data,
flushing/invalidating caches, programming the DMA engine, invoking the
accelerator via ioctl, and spin-waiting on the completion flag (Sections
III-C, III-E).  gem5-Aladdin characterizes these interactions with measured
constants; we do the same, driven by a timed driver component.
"""

from repro.cpu.driver import CPUDriver, DriverTimings

__all__ = ["CPUDriver", "DriverTimings"]
