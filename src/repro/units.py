"""Unit conventions and conversion helpers.

The simulator follows gem5's convention of integer *ticks*; one tick is one
picosecond.  Energies are tracked in picojoules, power in milliwatts.

All public functions are pure and accept/return plain numbers so they are
trivially testable.
"""

# One simulator tick is one picosecond.
TICKS_PER_SECOND = 10**12
TICKS_PER_NS = 1000
TICKS_PER_US = 10**6


def ns_to_ticks(ns):
    """Convert nanoseconds to integer ticks (rounding to nearest)."""
    return int(round(ns * TICKS_PER_NS))


def us_to_ticks(us):
    """Convert microseconds to integer ticks (rounding to nearest)."""
    return int(round(us * TICKS_PER_US))


def ticks_to_ns(ticks):
    """Convert ticks to nanoseconds (float)."""
    return ticks / TICKS_PER_NS


def ticks_to_us(ticks):
    """Convert ticks to microseconds (float)."""
    return ticks / TICKS_PER_US


def ticks_to_seconds(ticks):
    """Convert ticks to seconds (float)."""
    return ticks / TICKS_PER_SECOND


def freq_mhz_to_period_ticks(freq_mhz):
    """Clock period in ticks for a frequency given in MHz.

    >>> freq_mhz_to_period_ticks(100)
    10000
    """
    return int(round(TICKS_PER_SECOND / (freq_mhz * 10**6)))


def pj_to_joules(pj):
    """Convert picojoules to joules."""
    return pj * 1e-12


def power_mw(energy_pj, ticks):
    """Average power in milliwatts of ``energy_pj`` spent over ``ticks``.

    Returns 0.0 for a zero-length interval rather than dividing by zero.
    """
    if ticks <= 0:
        return 0.0
    seconds = ticks_to_seconds(ticks)
    return pj_to_joules(energy_pj) / seconds * 1e3


def edp(energy_pj, ticks):
    """Energy-delay product in joule-seconds.

    EDP is the figure of merit used throughout the paper to pick "optimal"
    design points (lower is better).
    """
    return pj_to_joules(energy_pj) * ticks_to_seconds(ticks)
