"""Observability: statistics registry, debug tracing, timeline export.

gem5 owes much of its usability to three instruments: a hierarchical
statistics framework (``stats.txt``), ``DPRINTF`` debug flags, and event
traces that can be replayed visually.  This package reproduces all three
for the reproduction's SoC:

* :mod:`repro.obs.stats` — ``Scalar`` / ``Vector`` / ``Formula`` /
  ``Distribution`` statistics registered under dotted hierarchical names
  (``soc.dram.row_hits``, ``accel0.tlb.miss_rate``), dumped as
  gem5-style text or structured JSON, resettable per region of interest.
* :mod:`repro.obs.trace` — ``dprintf``-style tracing behind named debug
  flags (``bus``, ``dram``, ``tlb``, ``dma``, ``sched``, ...).  Disabled
  flags cost one ``is None`` check at each instrumented site — the same
  zero-detached-overhead discipline as the event profiler.
* :mod:`repro.obs.timeline` — converts recorded busy intervals and trace
  events into Chrome ``trace_event`` JSON loadable in Perfetto or
  ``chrome://tracing`` (one row per engine: CPU, DMA, bus, per-bank
  DRAM, accelerator datapath).

CLI entry points: ``repro stats <workload>``, ``repro trace <workload>
-o out.json``, ``repro run --debug-flags bus,dram`` and the
``REPRO_DEBUG_FLAGS`` environment variable.
"""

from repro.obs.stats import (
    Distribution,
    Formula,
    Scalar,
    StatRegistry,
    Vector,
)
from repro.obs.timeline import TimelineBuilder, soc_timeline
from repro.obs.trace import dprintf, set_flags, tracer

__all__ = [
    "Distribution",
    "Formula",
    "Scalar",
    "StatRegistry",
    "TimelineBuilder",
    "Vector",
    "dprintf",
    "set_flags",
    "soc_timeline",
    "tracer",
]
