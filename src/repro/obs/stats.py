"""Hierarchical statistics registry (gem5's Stats framework, in miniature).

Components expose their counters through a :class:`StatRegistry` under
dotted names mirroring the SoC topology::

    soc.dram.row_hits            soc.bus.queue_ticks
    accel0.tlb.miss_rate         accel0.dma.bytes_moved

Four stat types cover everything the paper's figures need:

* :class:`Scalar` — one number.  Either *stored* (incremented through the
  stat) or *getter-backed*, mirroring a live component attribute so the
  simulation hot path never touches the registry.
* :class:`Vector` — a fixed-length family of scalars (per-bank, per-lane),
  with optional subnames and an automatic ``::total``.
* :class:`Formula` — derived from other registered stats by name
  (``miss_rate = misses / (hits + misses)``), evaluated at dump time so it
  stays consistent with per-ROI resets.
* :class:`Distribution` — sampled values summarized as count / min / max /
  mean / stdev plus an equal-width histogram.

``dump_text()`` renders a gem5-style ``stats.txt`` block; ``to_json()``
returns a structured dict (flat or nested).  :meth:`StatRegistry.reset`
snapshots every counter so subsequent values are deltas relative to the
reset point — the per-region-of-interest idiom (``m5_reset_stats``).

The registry is strictly *pull*-based for getter-backed stats: attaching
one adds zero work per simulated event, which is what lets the golden
snapshot suite stay bit-identical and the perf gate stay flat.
"""

import json
import math

from repro.errors import ConfigError


def _validate_name(name):
    if not name or any(not part for part in name.split(".")):
        raise ConfigError(f"invalid stat name {name!r}")
    return name


class Stat:
    """Base class: a named, described, resettable statistic."""

    kind = "stat"

    def __init__(self, name, desc=""):
        self.name = _validate_name(name)
        self.desc = desc
        self.registry = None  # set by StatRegistry.add

    def value(self):
        raise NotImplementedError

    def reset(self):
        """Rebase so future values are deltas from this point."""

    # -- rendering -----------------------------------------------------------

    def lines(self):
        """(suffix, value) pairs for the text dump; scalars yield one."""
        return [("", self.value())]

    def json_value(self):
        return self.value()


class Scalar(Stat):
    """One number: a stored counter or a mirror of a live attribute."""

    kind = "scalar"

    def __init__(self, name, getter=None, desc="", value=0):
        super().__init__(name, desc)
        self._getter = getter
        self._value = value
        self._base = 0

    def raw(self):
        return self._getter() if self._getter is not None else self._value

    def value(self):
        raw = self.raw()
        if raw is None:
            return None
        return raw - self._base

    def reset(self):
        self._base = self.raw() or 0

    # Stored-mode mutation (getter-backed scalars are read-only mirrors).

    def inc(self, n=1):
        if self._getter is not None:
            raise ConfigError(f"{self.name}: getter-backed scalar is read-only")
        self._value += n

    def set(self, value):
        if self._getter is not None:
            raise ConfigError(f"{self.name}: getter-backed scalar is read-only")
        self._value = value


class Vector(Stat):
    """A fixed-length family of scalars (per-bank, per-lane, ...)."""

    kind = "vector"

    def __init__(self, name, getter=None, size=None, subnames=None, desc=""):
        super().__init__(name, desc)
        if getter is None and size is None:
            raise ConfigError(f"{self.name}: stored Vector needs size=")
        self._getter = getter
        self._values = [0] * (size or 0)
        self.subnames = list(subnames) if subnames else None
        self._base = None

    def raw(self):
        if self._getter is not None:
            return list(self._getter())
        return list(self._values)

    def value(self):
        raw = self.raw()
        if self._base is None:
            return raw
        base = self._base
        return [v - (base[i] if i < len(base) else 0)
                for i, v in enumerate(raw)]

    def total(self):
        return sum(self.value())

    def reset(self):
        self._base = self.raw()

    def inc(self, index, n=1):
        if self._getter is not None:
            raise ConfigError(f"{self.name}: getter-backed vector is read-only")
        self._values[index] += n

    def _subname(self, i):
        if self.subnames and i < len(self.subnames):
            return self.subnames[i]
        return str(i)

    def lines(self):
        values = self.value()
        out = [(f"::{self._subname(i)}", v) for i, v in enumerate(values)]
        out.append(("::total", sum(values)))
        return out

    def json_value(self):
        values = self.value()
        return {self._subname(i): v for i, v in enumerate(values)}


class Formula(Stat):
    """Derived stat: ``fn`` applied to the current values of ``deps``.

    ``deps`` are names of other stats in the same registry, resolved at
    evaluation time — so a formula over reset counters reflects the ROI,
    not the whole run.  Division by zero yields 0.0 (gem5's convention of
    printing ``nan`` helps nobody downstream).
    """

    kind = "formula"

    def __init__(self, name, fn, deps=(), desc=""):
        super().__init__(name, desc)
        self._fn = fn
        self.deps = tuple(deps)

    def value(self):
        if self.registry is None:
            raise ConfigError(f"{self.name}: formula not registered")
        args = [self.registry.value(dep) for dep in self.deps]
        try:
            return self._fn(*args)
        except ZeroDivisionError:
            return 0.0
        except TypeError:
            # A dep returned None (e.g. a duration not yet measured).
            return None


class Distribution(Stat):
    """Sampled values: summary moments plus an equal-width histogram."""

    kind = "distribution"

    def __init__(self, name, desc="", buckets=8):
        super().__init__(name, desc)
        if buckets < 1:
            raise ConfigError(f"{self.name}: need at least one bucket")
        self.buckets = buckets
        self._samples = []
        self._start = 0  # reset point into _samples

    def sample(self, value):
        self._samples.append(value)

    def reset(self):
        self._start = len(self._samples)

    @property
    def samples(self):
        return self._samples[self._start:]

    def summary(self):
        """count / min / max / mean / stdev plus histogram buckets."""
        data = self.samples
        n = len(data)
        if n == 0:
            return {"count": 0, "min": None, "max": None,
                    "mean": None, "stdev": None, "histogram": []}
        lo, hi = min(data), max(data)
        mean = sum(data) / n
        var = sum((v - mean) ** 2 for v in data) / n
        if hi == lo:
            hist = [{"lo": lo, "hi": hi, "count": n}]
        else:
            width = (hi - lo) / self.buckets
            counts = [0] * self.buckets
            for v in data:
                idx = min(int((v - lo) / width), self.buckets - 1)
                counts[idx] += 1
            hist = [{"lo": lo + i * width, "hi": lo + (i + 1) * width,
                     "count": c} for i, c in enumerate(counts)]
        return {"count": n, "min": lo, "max": hi, "mean": mean,
                "stdev": math.sqrt(var), "histogram": hist}

    def value(self):
        return self.summary()

    def lines(self):
        s = self.summary()
        out = [(f"::{key}", s[key])
               for key in ("count", "min", "max", "mean", "stdev")]
        for b in s["histogram"]:
            out.append((f"::[{_fmt_num(b['lo'])},{_fmt_num(b['hi'])}]",
                        b["count"]))
        return out


class StatRegistry:
    """All stats of one simulation, keyed by dotted hierarchical name."""

    def __init__(self):
        self._stats = {}  # insertion-ordered

    # -- registration --------------------------------------------------------

    def add(self, stat):
        if stat.name in self._stats:
            raise ConfigError(f"duplicate stat {stat.name!r}")
        stat.registry = self
        self._stats[stat.name] = stat
        return stat

    def scalar(self, name, getter=None, desc="", value=0):
        return self.add(Scalar(name, getter=getter, desc=desc, value=value))

    def vector(self, name, getter=None, size=None, subnames=None, desc=""):
        return self.add(Vector(name, getter=getter, size=size,
                               subnames=subnames, desc=desc))

    def formula(self, name, fn, deps=(), desc=""):
        return self.add(Formula(name, fn, deps=deps, desc=desc))

    def distribution(self, name, desc="", buckets=8):
        return self.add(Distribution(name, desc=desc, buckets=buckets))

    # -- lookup --------------------------------------------------------------

    def __contains__(self, name):
        return name in self._stats

    def __getitem__(self, name):
        return self._stats[name]

    def __len__(self):
        return len(self._stats)

    def names(self):
        return list(self._stats)

    def value(self, name):
        return self._stats[name].value()

    def group(self, prefix):
        """{name: value} of every stat under ``prefix.`` (or equal to it)."""
        dotted = prefix + "."
        return {name: stat.value() for name, stat in self._stats.items()
                if name == prefix or name.startswith(dotted)}

    # -- per-ROI reset -------------------------------------------------------

    def reset(self):
        """Rebase every stat: values become deltas from this point.

        The region-of-interest idiom — call at ROI entry, dump at exit.
        """
        for stat in self._stats.values():
            stat.reset()

    # -- dumping -------------------------------------------------------------

    def dump_text(self):
        """A gem5-style ``stats.txt`` block."""
        lines = ["---------- Begin Simulation Statistics ----------"]
        for stat in self._stats.values():
            for suffix, value in stat.lines():
                label = stat.name + suffix
                comment = f"  # {stat.desc}" if stat.desc and not suffix \
                    else ""
                lines.append(f"{label:48s} {_fmt_num(value):>14s}{comment}")
        lines.append("---------- End Simulation Statistics   ----------")
        return "\n".join(lines)

    def to_json(self, nested=False):
        """Structured dump: flat ``{dotted_name: value}`` or a nested tree."""
        flat = {name: stat.json_value() for name, stat in self._stats.items()}
        if not nested:
            return flat
        tree = {}
        for name, value in flat.items():
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                node = node.setdefault(part, {})
            node[parts[-1]] = value
        return tree

    def dump_json(self, path, nested=False):
        """Write :meth:`to_json` to ``path`` (canonical, trailing newline)."""
        with open(path, "w") as fh:
            json.dump(self.to_json(nested=nested), fh, indent=2,
                      sort_keys=True)
            fh.write("\n")


def _fmt_num(value):
    """gem5-ish number formatting: ints plain, floats to 6 significant."""
    if value is None:
        return "n/a"
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.6g}"
    return str(value)


def percentile(values, q):
    """The ``q``-th percentile of ``values`` by linear interpolation.

    ``q`` is in [0, 100].  Returns 0.0 for an empty sequence — service
    latency distributions start empty and dashboards want a number, not
    an exception.  Matches ``numpy.percentile``'s default method without
    importing numpy on the serving path.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    pos = (len(data) - 1) * (q / 100.0)
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return float(data[lo]) + (float(data[hi]) - float(data[lo])) * frac
