"""Debug-flag tracing (gem5's ``DPRINTF``, in miniature).

Every instrumented component asks for a :func:`tracer` bound to its debug
flag and instance name at construction time::

    self._trace = trace.tracer("dram", name)   # None unless "dram" enabled
    ...
    if self._trace is not None:
        self._trace(self.sim.now, "bank %d row %d miss", bank, row)

With the flag disabled the site costs one attribute load and an ``is
None`` check — the same zero-detached-overhead discipline as the event
profiler, so the perf gate stays flat and golden runs stay bit-identical.
Formatting is lazy: ``fmt % args`` only runs for enabled flags.

Flags are process-global and must be set *before* the SoC is built
(components capture their tracer in ``__init__``).  Enable them with
:func:`set_flags`, the CLI's ``--debug-flags bus,dram,...`` or the
``REPRO_DEBUG_FLAGS`` environment variable.  Output lines follow gem5:

    1234567: dma0: transaction 3 done (4096 bytes)

where the first column is the tick.  The sink is pluggable; recording
mode buffers :class:`TraceEvent` objects instead, which the timeline
exporter (:mod:`repro.obs.timeline`) turns into Perfetto instants.
"""

import os
import sys
from contextlib import contextmanager

from repro.errors import ConfigError

#: Known debug flags, one per instrumented subsystem.
FLAGS = ("bus", "cache", "coh", "dma", "dram", "driver", "kernel", "sched",
         "tlb")

ENV_VAR = "REPRO_DEBUG_FLAGS"

_active = frozenset()
_sink = None      # callable(str) or None for sys.stderr
_record = None    # list[TraceEvent] while recording, else None


class TraceEvent:
    """One emitted trace line, kept structured for the timeline export."""

    __slots__ = ("tick", "flag", "name", "text")

    def __init__(self, tick, flag, name, text):
        self.tick = tick
        self.flag = flag
        self.name = name
        self.text = text

    def __repr__(self):
        return f"TraceEvent({self.tick}, {self.flag!r}, {self.name!r}, " \
               f"{self.text!r})"


def parse_flags(spec):
    """Normalize a flag spec (comma string or iterable; ``all`` allowed)."""
    if spec is None:
        return frozenset()
    if isinstance(spec, str):
        parts = [p.strip() for p in spec.split(",") if p.strip()]
    else:
        parts = list(spec)
    if "all" in parts:
        return frozenset(FLAGS)
    unknown = sorted(set(parts) - set(FLAGS))
    if unknown:
        raise ConfigError(
            f"unknown debug flag(s) {', '.join(unknown)}; "
            f"known: {', '.join(FLAGS)} (or 'all')")
    return frozenset(parts)


def set_flags(spec, sink=None):
    """Enable the given debug flags (replacing the current set).

    ``spec`` is a comma-separated string or an iterable of flag names;
    ``"all"`` enables everything, ``None`` / ``""`` disables tracing.
    ``sink`` is a ``callable(line)`` receiving each formatted line
    (default: write to ``sys.stderr``).
    """
    global _active, _sink
    _active = parse_flags(spec)
    _sink = sink


def clear_flags():
    """Disable all tracing and detach any custom sink."""
    global _active, _sink
    _active = frozenset()
    _sink = None


def active_flags():
    """The currently enabled flags, sorted."""
    return sorted(_active)


def enabled(flag):
    """True when ``flag`` is currently enabled."""
    return flag in _active


def flags_from_env(environ=None):
    """Enable flags from ``REPRO_DEBUG_FLAGS`` if set; returns the set."""
    spec = (environ if environ is not None else os.environ).get(ENV_VAR)
    if spec:
        set_flags(spec)
    return active_flags()


@contextmanager
def flags(spec, sink=None):
    """Temporarily enable flags (restores the previous state on exit)."""
    global _active, _sink
    saved = (_active, _sink)
    set_flags(spec, sink=sink)
    try:
        yield
    finally:
        _active, _sink = saved


# -- recording ---------------------------------------------------------------

def start_recording():
    """Buffer every emitted event (for timeline export); returns the list."""
    global _record
    _record = []
    return _record


def stop_recording():
    """Stop buffering; returns the recorded :class:`TraceEvent` list."""
    global _record
    events, _record = _record, None
    return events or []


# -- emission ----------------------------------------------------------------

class Tracer:
    """A bound (flag, component-name) emitter.  Cheap to call; only ever
    handed out while its flag is enabled."""

    __slots__ = ("flag", "name")

    def __init__(self, flag, name):
        self.flag = flag
        self.name = name

    def __call__(self, tick, fmt, *args):
        _emit(tick, self.flag, self.name, fmt % args if args else fmt)


def tracer(flag, name):
    """A :class:`Tracer` for ``flag``, or ``None`` while it is disabled.

    Components store the result once at construction; the ``None`` case is
    the zero-overhead detached path.
    """
    if flag not in FLAGS:
        raise ConfigError(f"unknown debug flag {flag!r}")
    if flag in _active:
        return Tracer(flag, name)
    return None


def dprintf(flag, tick, fmt, *args):
    """One-shot trace emission with an early-out on disabled flags.

    Convenience for cold paths; hot paths should cache :func:`tracer`.
    """
    if flag not in _active:
        return
    _emit(tick, flag, flag, fmt % args if args else fmt)


def _emit(tick, flag, name, text):
    if _record is not None:
        _record.append(TraceEvent(tick, flag, name, text))
        return
    line = f"{tick:>12d}: {name}: {text}\n"
    if _sink is not None:
        _sink(line)
    else:
        sys.stderr.write(line)
