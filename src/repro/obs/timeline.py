"""Chrome ``trace_event`` timeline export.

Converts the busy intervals that components already record through
:class:`~repro.sim.stats.IntervalTracker` — plus any buffered debug-trace
events — into the JSON Object Format consumed by Perfetto and
``chrome://tracing``:

* one *row* (a ``tid`` under one ``pid``) per engine: CPU driver, CPU
  flush engine, DMA, system bus, each DRAM bank, accelerator datapath;
* a complete ``"X"`` event per merged busy interval;
* an instant ``"i"`` event per recorded ``dprintf`` line, on a row per
  debug flag.

Ticks are picoseconds; Chrome timestamps are microseconds, so ``ts =
tick / 1e6``.  Load the file via Perfetto's "Open trace file" or
``chrome://tracing`` to see the Section IV-C flush / DMA / compute
decomposition as an actual timeline.
"""

import json

from repro.units import TICKS_PER_US

_PID = 0


class TimelineBuilder:
    """Accumulates rows and events; serializes to trace_event JSON."""

    def __init__(self, process_name="repro-soc"):
        self._events = []
        self._tids = {}
        self._events.append({
            "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        })

    def _tid(self, row):
        tid = self._tids.get(row)
        if tid is None:
            tid = self._tids[row] = len(self._tids) + 1
            self._events.append({
                "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
                "args": {"name": row},
            })
            self._events.append({
                "ph": "M", "pid": _PID, "tid": tid,
                "name": "thread_sort_index", "args": {"sort_index": tid},
            })
        return tid

    def add_track(self, row, intervals, label=None, cat="engine"):
        """One engine row: a complete event per [start, end) tick interval."""
        tid = self._tid(row)
        name = label or row
        for start, end in intervals:
            self._events.append({
                "ph": "X", "pid": _PID, "tid": tid, "name": name,
                "cat": cat, "ts": start / TICKS_PER_US,
                "dur": (end - start) / TICKS_PER_US,
            })

    def add_instant(self, row, tick, name, cat="trace"):
        """A zero-duration marker on ``row`` at ``tick``."""
        tid = self._tid(row)
        self._events.append({
            "ph": "i", "s": "t", "pid": _PID, "tid": tid, "name": name,
            "cat": cat, "ts": tick / TICKS_PER_US,
        })

    def add_trace_events(self, events):
        """Instants from recorded debug-trace events, one row per flag."""
        for event in events:
            self.add_instant(f"trace.{event.flag}", event.tick,
                             f"{event.name}: {event.text}")

    def rows(self):
        """Row names in display order."""
        return list(self._tids)

    def num_events(self, phase=None):
        if phase is None:
            return sum(1 for e in self._events if e["ph"] != "M")
        return sum(1 for e in self._events if e["ph"] == phase)

    def to_dict(self):
        return {"traceEvents": list(self._events), "displayTimeUnit": "ns"}

    def write(self, path):
        """Serialize to ``path``; returns the number of non-metadata events."""
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=None, separators=(",", ":"))
            fh.write("\n")
        return self.num_events()


def soc_timeline(soc, trace_events=None, process_name=None):
    """A :class:`TimelineBuilder` populated from one finished ``SoC`` run.

    Rows: CPU driver and its flush engine, the DMA engine (DMA designs),
    the system bus, every DRAM bank that saw traffic, and the accelerator
    datapath.  ``trace_events`` (from :func:`repro.obs.trace.
    start_recording`) become instant markers on per-flag rows.
    """
    builder = TimelineBuilder(
        process_name=process_name or f"repro:{soc.workload}")
    accel = f"accel{soc.accel_id}"
    cpu = f"cpu{soc.accel_id}"
    builder.add_track(f"{cpu}.driver", soc.driver.busy.merged(),
                      label="cpu")
    builder.add_track(f"{cpu}.flush", soc.driver.flush_busy.merged(),
                      label="flush")
    if soc.dma is not None:
        builder.add_track(f"{accel}.dma", soc.dma.busy.merged(), label="dma")
    builder.add_track("bus", soc.bus.busy.merged(), label="bus")
    for bank, tracker in enumerate(soc.dram.bank_busy):
        if tracker.intervals:
            builder.add_track(f"dram.bank{bank}", tracker.merged(),
                              label=f"bank{bank}")
    builder.add_track(f"{accel}.datapath", soc.scheduler.busy.merged(),
                      label="compute")
    if trace_events:
        builder.add_trace_events(trace_events)
    return builder


def pipeline_timeline(pipeline, trace_events=None, process_name=None):
    """A :class:`TimelineBuilder` for a finished
    :class:`~repro.core.pipeline.AcceleratorPipeline` run.

    Per stage k: ``stage<k>.<workload>`` cpu / flush / dma / compute rows,
    so the producer-consumer overlap is visible as staggered compute
    windows.  Per handoff link: a ``link<k>.stall`` row (producer waiting
    for buffer credit — back-pressure) and a ``link<k>.park`` row
    (consumer waiting for committed data), plus ``commit``/``drain``
    instants at each chunk's produced/consumed tick.  Shared rows: the
    system bus and every DRAM bank that saw traffic.
    """
    builder = TimelineBuilder(
        process_name=process_name
        or "repro-pipeline:" + "+".join(s.workload for s in pipeline.stages))
    for stage in pipeline.stages:
        row = f"stage{stage.stage_index}.{stage.workload}"
        builder.add_track(f"{row}.cpu", stage.driver.busy.merged(),
                          label="cpu")
        builder.add_track(f"{row}.flush", stage.driver.flush_busy.merged(),
                          label="flush")
        if stage.dma is not None:
            builder.add_track(f"{row}.dma", stage.dma.busy.merged(),
                              label="dma")
        builder.add_track(f"{row}.datapath", stage.scheduler.busy.merged(),
                          label="compute")
    for link in pipeline.links:
        stall_row = f"{link.name}.stall"
        park_row = f"{link.name}.park"
        builder.add_track(stall_row, link.producer_stall.merged(),
                          label="producer stalled (buffer full)",
                          cat="backpressure")
        builder.add_track(park_row, link.consumer_park.merged(),
                          label="consumer parked (buffer empty)",
                          cat="backpressure")
        for j, tick in enumerate(link.produced_tick):
            if tick is not None:
                builder.add_instant(stall_row, tick, f"commit chunk {j}",
                                    cat="handoff")
        for j, tick in enumerate(link.consumed_tick):
            if tick is not None:
                builder.add_instant(park_row, tick, f"drain chunk {j}",
                                    cat="handoff")
    platform = pipeline.platform
    builder.add_track("bus", platform.bus.busy.merged(), label="bus")
    for bank, tracker in enumerate(platform.dram.bank_busy):
        if tracker.intervals:
            builder.add_track(f"dram.bank{bank}", tracker.merged(),
                              label=f"bank{bank}")
    if trace_events:
        builder.add_trace_events(trace_events)
    return builder
