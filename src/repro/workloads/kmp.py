"""kmp: Knuth-Morris-Pratt substring search.

MachSuite's kmp.  The matcher state ``q`` is loop-carried across every text
character, so the main loop is a long serial chain — another data-movement-
bound, parallelism-resistant workload for Figure 2b.
"""

from repro.workloads.registry import Workload, register

TEXT_LEN = 512   # MachSuite scans 32 KB of text; scaled
PATTERN = [0, 1, 0, 2]  # "ABAC" over a 4-letter alphabet
ALPHA = 4


@register
class Kmp(Workload):
    name = "kmp"
    description = f"KMP search of a {len(PATTERN)}-char pattern in "\
                  f"{TEXT_LEN} chars"

    def _text(self):
        rng = self.rng()
        return [rng.randrange(ALPHA) for _ in range(TEXT_LEN)]

    @staticmethod
    def _failure_table():
        k = 0
        table = [0] * len(PATTERN)
        for q in range(1, len(PATTERN)):
            while k > 0 and PATTERN[k] != PATTERN[q]:
                k = table[k - 1]
            if PATTERN[k] == PATTERN[q]:
                k += 1
            table[q] = k
        return table

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        text = self._text()
        tb = TraceBuilder(self.name)
        tb.array("pattern", len(PATTERN), word_bytes=1, kind="input",
                 init=PATTERN)
        tb.array("input", TEXT_LEN, word_bytes=1, kind="input", init=text)
        tb.array("kmpNext", len(PATTERN), word_bytes=4, kind="internal")
        tb.array("n_matches", 1, word_bytes=4, kind="output")

        # Failure-table construction (serial prologue), traced.
        k = 0
        tb.store("kmpNext", 0, 0)
        for q in range(1, len(PATTERN)):
            pq = tb.load("pattern", q)
            while k > 0 and PATTERN[k] != int(pq.value):
                nxt = tb.load("kmpNext", k - 1)
                k = int(nxt.value)
            pk = tb.load("pattern", k)
            tb.icmp(pk, pq)
            if int(pk.value) == int(pq.value):
                k += 1
            tb.store("kmpNext", q, k)

        # Matcher: q is loop-carried; every state update is a traced chain.
        matches = 0
        q = 0
        count = tb.op("add", 0, 0)  # the match counter register
        for i in range(TEXT_LEN):
            with tb.iteration(i):
                c = tb.load("input", i)
                while q > 0 and PATTERN[q] != text[i]:
                    nxt = tb.load("kmpNext", q - 1)
                    pq = tb.load("pattern", q)
                    tb.icmp(pq, c)
                    q = int(nxt.value)
                pq = tb.load("pattern", q)
                tb.icmp(pq, c)
                if PATTERN[q] == text[i]:
                    q += 1
                if q == len(PATTERN):
                    count = tb.add(count, 1)
                    matches += 1
                    nxt = tb.load("kmpNext", q - 1)
                    q = int(nxt.value)
        tb.store("n_matches", 0, count)
        self._expected = matches
        return tb

    def verify(self, trace):
        text = self._text()
        # Reference: naive scan.
        plen = len(PATTERN)
        ref = sum(1 for i in range(TEXT_LEN - plen + 1)
                  if text[i:i + plen] == PATTERN)
        got = trace.arrays["n_matches"].data[0]
        if got != ref:
            raise AssertionError(f"n_matches = {got}, want {ref}")
