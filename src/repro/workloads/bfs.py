"""bfs-bulk: breadth-first search, level-synchronous ("bulk") form.

MachSuite's bfs/bulk: each horizon sweeps all nodes, expanding those at the
current level.  Edge-list indirection and the data-dependent trace length
make this one of the irregular kernels motivating on-demand memory systems
(Section II-B).
"""

from repro.workloads.registry import Workload, register

NODES = 128
AVG_DEGREE = 4
MAX_HORIZON = 16


@register
class BfsBulk(Workload):
    name = "bfs-bulk"
    description = f"level-synchronous BFS, {NODES} nodes"

    def _graph(self):
        rng = self.rng()
        adj = [set() for _ in range(NODES)]
        # A connected backbone plus random extra edges (undirected).
        for n in range(1, NODES):
            other = rng.randrange(n)
            adj[n].add(other)
            adj[other].add(n)
        extra = NODES * AVG_DEGREE // 2 - (NODES - 1)
        for _ in range(max(extra, 0)):
            a = rng.randrange(NODES)
            b = rng.randrange(NODES)
            if a != b:
                adj[a].add(b)
                adj[b].add(a)
        offsets = [0]
        edges = []
        for n in range(NODES):
            edges.extend(sorted(adj[n]))
            offsets.append(len(edges))
        return offsets, edges

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        offsets, edges = self._graph()
        tb = TraceBuilder(self.name)
        tb.array("nodes", NODES + 1, word_bytes=4, kind="input", init=offsets)
        tb.array("edges", len(edges), word_bytes=4, kind="input", init=edges)
        tb.array("level", NODES, word_bytes=4, kind="inout",
                 init=[0] + [127] * (NODES - 1))  # 127 = unvisited sentinel
        it = 0
        for horizon in range(MAX_HORIZON):
            changed = False
            for n in range(NODES):
                with tb.iteration(it):
                    lvl = tb.load("level", n)
                    tb.icmp(lvl, horizon)  # the frontier membership test
                    if int(lvl.value) == horizon:
                        begin = tb.load("nodes", n)
                        end = tb.load("nodes", n + 1)
                        for e in range(int(begin.value), int(end.value)):
                            tgt = tb.load("edges", e)
                            tgt_lvl = tb.load("level", int(tgt.value))
                            tb.icmp(tgt_lvl, 126)  # unvisited test
                            if int(tgt_lvl.value) == 127:
                                tb.store("level", int(tgt.value), horizon + 1)
                                changed = True
                it += 1
            if not changed:
                break
        return tb

    def verify(self, trace):
        offsets, edges = self._graph()
        # Reference BFS from node 0.
        ref = [127] * NODES
        ref[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for n in frontier:
                for e in range(offsets[n], offsets[n + 1]):
                    t = edges[e]
                    if ref[t] == 127:
                        ref[t] = depth
                        nxt.append(t)
            frontier = nxt
        got = trace.arrays["level"].data
        if got != ref:
            bad = [i for i in range(NODES) if got[i] != ref[i]]
            raise AssertionError(f"BFS levels differ at nodes {bad[:10]}")
