"""sort-radix: LSD radix sort.

MachSuite's second sort variant: four passes of 4-bit counting sort.  Pure
data movement plus integer bit manipulation — even lower arithmetic
intensity than merge sort, with scatter writes whose addresses come from
the prefix-summed histogram (data-dependent store indices).
"""

from repro.workloads.registry import Workload, register

SIZE = 256
BITS = 4
PASSES = 16 // BITS
BUCKETS = 1 << BITS
MASK = BUCKETS - 1


@register
class SortRadix(Workload):
    name = "sort-radix"
    description = f"LSD radix sort of {SIZE} 16-bit ints, {BITS}-bit digits"

    def _input(self):
        rng = self.rng()
        return [rng.randrange(1 << 16) for _ in range(SIZE)]

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        data = self._input()
        tb = TraceBuilder(self.name)
        tb.array("a", SIZE, word_bytes=4, kind="inout", init=data)
        tb.array("b", SIZE, word_bytes=4, kind="internal")
        tb.array("bucket", BUCKETS, word_bytes=4, kind="internal")
        it = 0
        for p in range(PASSES):
            src, dst = ("a", "b") if p % 2 == 0 else ("b", "a")
            shift = p * BITS
            # Histogram: clear + count (iteration = chunk of 32 keys).
            for d in range(BUCKETS):
                tb.store("bucket", d, 0)
            for chunk in range(SIZE // 32):
                with tb.iteration(it):
                    for i in range(chunk * 32, (chunk + 1) * 32):
                        v = tb.load(src, i)
                        digit = tb.band(tb.shr(v, shift), MASK)
                        d = int(digit.value)
                        count = tb.load("bucket", d)
                        tb.store("bucket", d, tb.add(count, 1))
                it += 1
            # Exclusive prefix sum over the buckets (serial).
            running = 0
            offsets = []
            for d in range(BUCKETS):
                count = tb.load("bucket", d)
                tb.store("bucket", d, running)
                offsets.append(running)
                running += int(count.value)
            # Scatter (serial pass: each store consumes/updates a bucket).
            for i in range(SIZE):
                v = tb.load(src, i)
                digit = tb.band(tb.shr(v, shift), MASK)
                d = int(digit.value)
                pos = tb.load("bucket", d)
                tb.store(dst, int(pos.value), v)
                tb.store("bucket", d, tb.add(pos, 1))
        # PASSES is even, so the sorted data ends in 'a'.
        return tb

    def verify(self, trace):
        ref = sorted(self._input())
        if trace.arrays["a"].data != ref:
            raise AssertionError("radix sort output is not sorted")
