"""gemm-ncubed: dense matrix-matrix multiply, naive O(n^3).

MachSuite's gemm/ncubed.  Regular streaming access with a high
compute-to-memory ratio; in the paper it matches DMA performance with a
cache but needs more power to do so (Section V-A).  The parallel loop is
the (i, j) output element; each iteration runs the length-n dot product.
"""

from repro.workloads.registry import Workload, register

N = 16  # matrix dimension (MachSuite uses 64; scaled per DESIGN.md)


@register
class Gemm(Workload):
    name = "gemm-ncubed"
    description = f"{N}x{N} double-precision matrix multiply"

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        a = [rng.uniform(-1.0, 1.0) for _ in range(N * N)]
        b = [rng.uniform(-1.0, 1.0) for _ in range(N * N)]
        tb = TraceBuilder(self.name)
        tb.array("m1", N * N, word_bytes=8, kind="input", init=a)
        tb.array("m2", N * N, word_bytes=8, kind="input", init=b)
        tb.array("prod", N * N, word_bytes=8, kind="output")
        for i in range(N):
            for j in range(N):
                with tb.iteration(i * N + j):
                    acc = 0.0
                    for k in range(N):
                        x = tb.load("m1", i * N + k)
                        y = tb.load("m2", k * N + j)
                        mul = tb.fmul(x, y)
                        acc = tb.fadd(acc, mul)
                    tb.store("prod", i * N + j, acc)
        return tb

    def verify(self, trace):
        a = trace.arrays["m1"].data
        b = trace.arrays["m2"].data
        prod = trace.arrays["prod"].data
        for i in range(N):
            for j in range(N):
                ref = sum(a[i * N + k] * b[k * N + j] for k in range(N))
                got = prod[i * N + j]
                if abs(ref - got) > 1e-9:
                    raise AssertionError(
                        f"prod[{i},{j}] = {got}, expected {ref}")
