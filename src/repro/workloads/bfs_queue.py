"""bfs-queue: worklist-driven breadth-first search.

MachSuite's second BFS variant: instead of sweeping all nodes per horizon
(bfs-bulk), a FIFO queue holds the frontier.  The trace is shorter (no
wasted sweeps) but serial — each dequeue depends on queue state — making
it another irregular, latency-sensitive kernel.
"""

from repro.workloads.registry import Workload, register
from repro.workloads.bfs import BfsBulk

NODES = 128


@register
class BfsQueue(Workload):
    name = "bfs-queue"
    description = f"queue-based BFS, {NODES} nodes"

    def _graph(self):
        # Share bfs-bulk's deterministic graph so the two variants are
        # directly comparable (their rngs are seeded per-name, so reuse
        # the bulk generator explicitly).
        return BfsBulk()._graph()

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        offsets, edges = self._graph()
        tb = TraceBuilder(self.name)
        tb.array("nodes", NODES + 1, word_bytes=4, kind="input", init=offsets)
        tb.array("edges", len(edges), word_bytes=4, kind="input", init=edges)
        tb.array("level", NODES, word_bytes=4, kind="inout",
                 init=[0] + [127] * (NODES - 1))
        tb.array("queue", NODES, word_bytes=4, kind="internal")

        tb.store("queue", 0, 0)
        head, tail = 0, 1
        it = 0
        while head < tail:
            with tb.iteration(it):
                n_val = tb.load("queue", head)
                n = int(n_val.value)
                lvl = tb.load("level", n)
                begin = tb.load("nodes", n)
                end = tb.load("nodes", n + 1)
                tb.icmp(end, begin)
                for e in range(int(begin.value), int(end.value)):
                    tgt = tb.load("edges", e)
                    tgt_lvl = tb.load("level", int(tgt.value))
                    tb.icmp(tgt_lvl, 126)
                    if int(tgt_lvl.value) == 127:
                        new_lvl = tb.add(lvl, 1)
                        tb.store("level", int(tgt.value), new_lvl)
                        tb.store("queue", tail, tgt)
                        tail += 1
            head += 1
            it += 1
        return tb

    def verify(self, trace):
        # Same reference as bfs-bulk: levels must match true BFS depths.
        offsets, edges = self._graph()
        ref = [127] * NODES
        ref[0] = 0
        frontier = [0]
        depth = 0
        while frontier:
            depth += 1
            nxt = []
            for n in frontier:
                for e in range(offsets[n], offsets[n + 1]):
                    t = edges[e]
                    if ref[t] == 127:
                        ref[t] = depth
                        nxt.append(t)
            frontier = nxt
        got = trace.arrays["level"].data
        if got != ref:
            bad = [i for i in range(NODES) if got[i] != ref[i]]
            raise AssertionError(f"BFS levels differ at nodes {bad[:10]}")
