"""aes-aes: AES-128 block encryption (SubBytes via an S-box table).

The paper's archetypal DMA-friendly kernel: "very regular access patterns,
and importantly, they only require a small amount of data before computation
can be triggered", so DMA "always both performs better and uses less power"
than a cache, which first eats a TLB miss and cold misses (Section V-A).
The working set is tiny: one 16-byte block, a 16-byte key, and the 256-byte
S-box.

Round keys are computed on the accelerator and kept in an internal
scratchpad; each round's column work is a parallel iteration (AES has
four-way column parallelism per round — rounds themselves are serial).
"""

from repro.workloads.registry import Workload, register

ROUNDS = 10

# Reference S-box (FIPS-197).
SBOX = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
]

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36]


def _xtime_ref(x):
    x <<= 1
    if x & 0x100:
        x ^= 0x11b
    return x & 0xFF


def aes128_encrypt_ref(key, block):
    """Plain-Python AES-128 reference used by verify()."""
    rk = list(key)
    for rnd in range(ROUNDS):
        t = rk[-4:]
        t = [SBOX[t[1]] ^ RCON[rnd], SBOX[t[2]], SBOX[t[3]], SBOX[t[0]]]
        for _ in range(4):
            word = [rk[-16 + j] ^ t[j] for j in range(4)]
            rk.extend(word)
            t = word
    state = [b ^ rk[i] for i, b in enumerate(block)]
    for rnd in range(1, ROUNDS + 1):
        state = [SBOX[b] for b in state]
        # ShiftRows on column-major state (state[c*4 + r]).
        shifted = [0] * 16
        for c in range(4):
            for r in range(4):
                shifted[c * 4 + r] = state[((c + r) % 4) * 4 + r]
        state = shifted
        if rnd != ROUNDS:
            mixed = []
            for c in range(4):
                col = state[c * 4:c * 4 + 4]
                t = col[0] ^ col[1] ^ col[2] ^ col[3]
                mixed.extend(
                    col[r] ^ t ^ _xtime_ref(col[r] ^ col[(r + 1) % 4])
                    for r in range(4)
                )
            state = mixed
        state = [state[i] ^ rk[rnd * 16 + i] for i in range(16)]
    return state


@register
class Aes(Workload):
    name = "aes-aes"
    description = "AES-128 single-block encryption"

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        key = [rng.randrange(256) for _ in range(16)]
        block = [rng.randrange(256) for _ in range(16)]
        tb = TraceBuilder(self.name)
        tb.array("sbox", 256, word_bytes=1, kind="input", init=SBOX)
        tb.array("key", 16, word_bytes=1, kind="input", init=key)
        tb.array("buf", 16, word_bytes=1, kind="inout", init=block)
        tb.array("rkey", 176, word_bytes=1, kind="internal")

        def xtime(v):
            shifted = tb.shl(v, 1)
            overflow = tb.band(shifted, 0x100)
            cond = tb.icmp(overflow, 0)
            reduced = tb.xor(shifted, 0x11b)
            sel = tb.select(cond, reduced, shifted)
            return tb.band(sel, 0xFF)

        # --- key expansion (serial prologue) -------------------------------
        rk = [tb.load("key", i) for i in range(16)]
        for i in range(16):
            tb.store("rkey", i, rk[i])
        for rnd in range(ROUNDS):
            last = rk[-4:]
            t = [
                tb.xor(tb.load("sbox", int(last[1].value)), RCON[rnd]),
                tb.load("sbox", int(last[2].value)),
                tb.load("sbox", int(last[3].value)),
                tb.load("sbox", int(last[0].value)),
            ]
            for i in range(4):
                base = len(rk)
                for b in range(4):
                    prev = rk[base - 16 + b]
                    word = t[b] if i == 0 else rk[base - 4 + b]
                    new = tb.xor(prev, word)
                    rk.append(new)
                    tb.store("rkey", base + b, new)
                t = rk[-4:]

        # --- initial AddRoundKey -------------------------------------------
        state = []
        for i in range(16):
            b = tb.load("buf", i)
            k = tb.load("rkey", i)
            state.append(tb.xor(b, k))

        # --- rounds: two iteration phases per round (SubBytes columns, then
        # MixColumns columns).  MixColumns reads other columns' SubBytes
        # outputs through ShiftRows, so its iterations must be numbered
        # after every SubBytes iteration of the same round: dependences in
        # a trace always flow from lower to higher iteration indices.
        for rnd in range(1, ROUNDS + 1):
            sub_base = (rnd - 1) * 8
            mix_base = sub_base + 4
            subbed = [None] * 16
            for c in range(4):
                with tb.iteration(sub_base + c):
                    for r in range(4):
                        idx = c * 4 + r
                        subbed[idx] = tb.load("sbox", int(state[idx].value))
            # ShiftRows is pure wiring: permute the SSA values.
            shifted = [None] * 16
            for c in range(4):
                for r in range(4):
                    shifted[c * 4 + r] = subbed[((c + r) % 4) * 4 + r]
            state = shifted
            mixed = [None] * 16
            for c in range(4):
                with tb.iteration(mix_base + c):
                    col = state[c * 4:c * 4 + 4]
                    if rnd != ROUNDS:
                        t = tb.xor(tb.xor(col[0], col[1]),
                                   tb.xor(col[2], col[3]))
                        for r in range(4):
                            u = xtime(tb.xor(col[r], col[(r + 1) % 4]))
                            mixed[c * 4 + r] = tb.xor(tb.xor(col[r], t), u)
                    else:
                        for r in range(4):
                            mixed[c * 4 + r] = col[r]
                    for r in range(4):
                        idx = c * 4 + r
                        k = tb.load("rkey", rnd * 16 + idx)
                        mixed[idx] = tb.xor(mixed[idx], k)
                        if rnd == ROUNDS:
                            tb.store("buf", idx, mixed[idx])
            state = mixed
        self._key = key
        self._block = block
        return tb

    def verify(self, trace):
        key = [v for v in trace.arrays["key"].data]
        # 'buf' was overwritten; recompute the original block deterministically.
        rng = self.rng()
        orig_key = [rng.randrange(256) for _ in range(16)]
        block = [rng.randrange(256) for _ in range(16)]
        assert orig_key == key
        ref = aes128_encrypt_ref(key, block)
        got = trace.arrays["buf"].data
        if got != ref:
            raise AssertionError(f"AES output {got} != reference {ref}")
