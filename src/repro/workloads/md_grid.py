"""md-grid: molecular dynamics with cell lists.

MachSuite's second MD variant: space is divided into a 3D grid of cells;
each cell computes LJ interactions against its 27-neighbourhood.  Compared
to md-knn the neighbour structure is positional rather than a precomputed
index list, and work per iteration varies with cell occupancy.
"""

from repro.workloads.registry import Workload, register

CELLS = 3                # 3x3x3 grid (MachSuite: 4x4x4)
ATOMS_PER_CELL = 2
N_CELLS = CELLS ** 3
LJ1 = 1.5
LJ2 = 2.0


def _cell_idx(x, y, z):
    return (x * CELLS + y) * CELLS + z


@register
class MdGrid(Workload):
    name = "md-grid"
    description = (f"cell-list LJ forces, {CELLS}^3 cells x "
                   f"{ATOMS_PER_CELL} atoms")

    def _positions(self):
        rng = self.rng()
        pos = []
        for cx in range(CELLS):
            for cy in range(CELLS):
                for cz in range(CELLS):
                    for _a in range(ATOMS_PER_CELL):
                        pos.append((cx + rng.random(),
                                    cy + rng.random(),
                                    cz + rng.random()))
        return pos

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        pos = self._positions()
        n_atoms = len(pos)
        tb = TraceBuilder(self.name)
        for axis, idx in (("x", 0), ("y", 1), ("z", 2)):
            tb.array(f"p_{axis}", n_atoms, word_bytes=8, kind="input",
                     init=[p[idx] for p in pos])
            tb.array(f"f_{axis}", n_atoms, word_bytes=8, kind="output")

        it = 0
        for cx in range(CELLS):
            for cy in range(CELLS):
                for cz in range(CELLS):
                    cell = _cell_idx(cx, cy, cz)
                    with tb.iteration(it):
                        self._cell_forces(tb, cell, cx, cy, cz)
                    it += 1
        return tb

    def _cell_forces(self, tb, cell, cx, cy, cz):
        base = cell * ATOMS_PER_CELL
        for a in range(ATOMS_PER_CELL):
            i = base + a
            xi = tb.load("p_x", i)
            yi = tb.load("p_y", i)
            zi = tb.load("p_z", i)
            fx = 0.0
            fy = 0.0
            fz = 0.0
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    for dz in (-1, 0, 1):
                        nx, ny, nz = cx + dx, cy + dy, cz + dz
                        if not (0 <= nx < CELLS and 0 <= ny < CELLS
                                and 0 <= nz < CELLS):
                            continue
                        nbase = _cell_idx(nx, ny, nz) * ATOMS_PER_CELL
                        for b in range(ATOMS_PER_CELL):
                            j = nbase + b
                            if j == i:
                                continue
                            xj = tb.load("p_x", j)
                            yj = tb.load("p_y", j)
                            zj = tb.load("p_z", j)
                            rx = tb.fsub(xi, xj)
                            ry = tb.fsub(yi, yj)
                            rz = tb.fsub(zi, zj)
                            r2 = tb.fadd(
                                tb.fadd(tb.fmul(rx, rx), tb.fmul(ry, ry)),
                                tb.fmul(rz, rz))
                            r2inv = tb.fdiv(1.0, r2)
                            r6inv = tb.fmul(tb.fmul(r2inv, r2inv), r2inv)
                            pot = tb.fmul(
                                r6inv, tb.fsub(tb.fmul(LJ1, r6inv), LJ2))
                            force = tb.fmul(r2inv, pot)
                            fx = tb.fadd(fx, tb.fmul(force, rx))
                            fy = tb.fadd(fy, tb.fmul(force, ry))
                            fz = tb.fadd(fz, tb.fmul(force, rz))
            tb.store("f_x", i, fx)
            tb.store("f_y", i, fy)
            tb.store("f_z", i, fz)

    def verify(self, trace):
        pos = self._positions()
        for cx in range(CELLS):
            for cy in range(CELLS):
                for cz in range(CELLS):
                    cell = _cell_idx(cx, cy, cz)
                    for a in range(ATOMS_PER_CELL):
                        i = cell * ATOMS_PER_CELL + a
                        fx = fy = fz = 0.0
                        for dx in (-1, 0, 1):
                            for dy in (-1, 0, 1):
                                for dz in (-1, 0, 1):
                                    nx, ny, nz = cx + dx, cy + dy, cz + dz
                                    if not (0 <= nx < CELLS
                                            and 0 <= ny < CELLS
                                            and 0 <= nz < CELLS):
                                        continue
                                    nb = _cell_idx(nx, ny, nz) \
                                        * ATOMS_PER_CELL
                                    for b in range(ATOMS_PER_CELL):
                                        j = nb + b
                                        if j == i:
                                            continue
                                        rx = pos[i][0] - pos[j][0]
                                        ry = pos[i][1] - pos[j][1]
                                        rz = pos[i][2] - pos[j][2]
                                        r2 = rx * rx + ry * ry + rz * rz
                                        r2inv = 1.0 / r2
                                        r6inv = r2inv ** 3
                                        force = r2inv * (
                                            r6inv * (LJ1 * r6inv - LJ2))
                                        fx += force * rx
                                        fy += force * ry
                                        fz += force * rz
                        for name, ref in (("f_x", fx), ("f_y", fy),
                                          ("f_z", fz)):
                            got = trace.arrays[name].data[i]
                            if abs(ref - got) > 1e-6 * max(1.0, abs(ref)):
                                raise AssertionError(
                                    f"{name}[{i}] = {got}, want {ref}")
