"""nw-nw: Needleman-Wunsch DNA sequence alignment.

The paper's archetypal serial kernel: the score-matrix wavefront carries a
dependence from every cell to its left neighbour, so nw is "so serial that
[it doesn't] benefit from data parallelism in the first place" (Section
IV-C2).  The score matrix is private intermediate data and stays in a local
scratchpad even for cache-based designs (Section IV-D); only the sequences
(in) and alignments (out) cross the system interface.
"""

from repro.workloads.registry import Workload, register

SEQ_LEN = 40  # MachSuite aligns 128-char sequences; scaled per DESIGN.md
MATCH = 1
MISMATCH = -1
GAP = -1
ALPHABET = "ACGT"

M = SEQ_LEN + 1  # score matrix dimension


@register
class NeedlemanWunsch(Workload):
    name = "nw-nw"
    description = f"Needleman-Wunsch alignment of two {SEQ_LEN}-char sequences"

    def _sequences(self):
        rng = self.rng()
        seqa = [ALPHABET.index(rng.choice(ALPHABET)) for _ in range(SEQ_LEN)]
        seqb = [ALPHABET.index(rng.choice(ALPHABET)) for _ in range(SEQ_LEN)]
        return seqa, seqb

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        seqa, seqb = self._sequences()
        tb = TraceBuilder(self.name)
        tb.array("seqA", SEQ_LEN, word_bytes=1, kind="input", init=seqa)
        tb.array("seqB", SEQ_LEN, word_bytes=1, kind="input", init=seqb)
        tb.array("matrix", M * M, word_bytes=4, kind="internal")
        tb.array("alignedA", 2 * SEQ_LEN, word_bytes=1, kind="output")
        tb.array("alignedB", 2 * SEQ_LEN, word_bytes=1, kind="output")

        # Boundary conditions (serial prologue).
        for j in range(M):
            tb.store("matrix", j, tb.op("mul", j, GAP))
        for i in range(1, M):
            tb.store("matrix", i * M, tb.op("mul", i, GAP))

        # Wavefront fill: iteration = row-major cell index; the dependence
        # on the left neighbour serializes cells within a row.
        it = 0
        for i in range(1, M):
            for j in range(1, M):
                with tb.iteration(it):
                    a = tb.load("seqA", i - 1)
                    b = tb.load("seqB", j - 1)
                    diff = tb.xor(a, b)
                    is_match = tb.icmp(1, diff)  # 1 if diff < 1, i.e. equal
                    score = tb.select(is_match, MATCH, MISMATCH)
                    diag = tb.add(tb.load("matrix", (i - 1) * M + (j - 1)),
                                  score)
                    up = tb.add(tb.load("matrix", (i - 1) * M + j), GAP)
                    left = tb.add(tb.load("matrix", i * M + (j - 1)), GAP)
                    best = tb.select(tb.icmp(up, diag), up, diag)
                    best = tb.select(tb.icmp(left, best), left, best)
                    tb.store("matrix", i * M + j, best)
                it += 1

        # Traceback (serial epilogue): control flow is resolved functionally,
        # and the compares/loads it performs are traced.
        i, j = SEQ_LEN, SEQ_LEN
        pos = 0
        while i > 0 and j > 0:
            here = tb.load("matrix", i * M + j)
            diag = tb.load("matrix", (i - 1) * M + (j - 1))
            a = tb.load("seqA", i - 1)
            b = tb.load("seqB", j - 1)
            score = MATCH if seqa[i - 1] == seqb[j - 1] else MISMATCH
            tb.icmp(here, diag)  # the hardware's direction compare
            if here.value == diag.value + score:
                tb.store("alignedA", pos, a)
                tb.store("alignedB", pos, b)
                i -= 1
                j -= 1
            elif here.value == tb.arrays["matrix"].data[(i - 1) * M + j] + GAP:
                tb.store("alignedA", pos, a)
                tb.store("alignedB", pos, 4)  # gap symbol
                i -= 1
            else:
                tb.store("alignedA", pos, 4)
                tb.store("alignedB", pos, b)
                j -= 1
            pos += 1
        while i > 0:
            tb.store("alignedA", pos, tb.load("seqA", i - 1))
            tb.store("alignedB", pos, 4)
            i -= 1
            pos += 1
        while j > 0:
            tb.store("alignedA", pos, 4)
            tb.store("alignedB", pos, tb.load("seqB", j - 1))
            j -= 1
            pos += 1
        return tb

    def _reference_matrix(self, seqa, seqb):
        mat = [[0] * M for _ in range(M)]
        for j in range(M):
            mat[0][j] = j * GAP
        for i in range(M):
            mat[i][0] = i * GAP
        for i in range(1, M):
            for j in range(1, M):
                score = MATCH if seqa[i - 1] == seqb[j - 1] else MISMATCH
                mat[i][j] = max(mat[i - 1][j - 1] + score,
                                mat[i - 1][j] + GAP,
                                mat[i][j - 1] + GAP)
        return mat

    def verify(self, trace):
        seqa, seqb = self._sequences()
        ref = self._reference_matrix(seqa, seqb)
        got = trace.arrays["matrix"].data
        for i in range(M):
            for j in range(M):
                if got[i * M + j] != ref[i][j]:
                    raise AssertionError(
                        f"matrix[{i},{j}] = {got[i * M + j]}, want {ref[i][j]}")
        # The traceback must describe a valid alignment of the two sequences.
        aligned_a = trace.arrays["alignedA"].data
        aligned_b = trace.arrays["alignedB"].data
        recovered_a = [c for c in aligned_a if c != 4][::-1]
        recovered_b = [c for c in aligned_b if c != 4][::-1]
        if recovered_a[-len(seqa):] != seqa and recovered_a[:len(seqa)] != seqa:
            # Alignment is emitted back-to-front; non-gap symbols must be
            # exactly the input sequence.
            raise AssertionError("alignedA does not reproduce seqA")
