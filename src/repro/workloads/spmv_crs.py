"""spmv-crs: sparse matrix-vector multiply, compressed row storage.

The paper's archetypal cache-friendly kernel: "the indirect memory accesses
inherent to sparse matrix multiply algorithms, where the first set of loads
provide the memory addresses for the next set" defeat full/empty bits (the
pointed-to data may not have arrived yet, since DMA fills sequentially) but
suit a cache's arbitrary on-demand fetches (Section V-A).
"""

from repro.workloads.registry import Workload, register

ROWS = 128          # MachSuite uses 494x494 with 1666 nnz; scaled
MIN_NNZ = 4
MAX_NNZ = 12


@register
class SpmvCrs(Workload):
    name = "spmv-crs"
    description = f"CRS sparse matrix-vector multiply, {ROWS} rows"

    def _matrix(self):
        rng = self.rng()
        vals, cols, row_delims = [], [], [0]
        for _r in range(ROWS):
            nnz = rng.randint(MIN_NNZ, MAX_NNZ)
            row_cols = sorted(rng.sample(range(ROWS), nnz))
            for c in row_cols:
                vals.append(rng.uniform(-1.0, 1.0))
                cols.append(c)
            row_delims.append(len(vals))
        vec = [rng.uniform(-1.0, 1.0) for _ in range(ROWS)]
        return vals, cols, row_delims, vec

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        vals, cols, row_delims, vec = self._matrix()
        nnz = len(vals)
        tb = TraceBuilder(self.name)
        tb.array("val", nnz, word_bytes=8, kind="input", init=vals)
        tb.array("cols", nnz, word_bytes=4, kind="input", init=cols)
        tb.array("rowDelimiters", ROWS + 1, word_bytes=4, kind="input",
                 init=row_delims)
        tb.array("vec", ROWS, word_bytes=8, kind="input", init=vec)
        tb.array("out", ROWS, word_bytes=8, kind="output")
        for r in range(ROWS):
            with tb.iteration(r):
                begin = tb.load("rowDelimiters", r)
                end = tb.load("rowDelimiters", r + 1)
                tb.icmp(end, begin)  # loop-bound compare
                acc = 0.0
                for k in range(int(begin.value), int(end.value)):
                    v = tb.load("val", k)
                    c = tb.load("cols", k)
                    x = tb.load("vec", int(c.value))  # indirect load
                    acc = tb.fadd(acc, tb.fmul(v, x))
                tb.store("out", r, acc)
        return tb

    def verify(self, trace):
        vals, cols, row_delims, vec = self._matrix()
        out = trace.arrays["out"].data
        for r in range(ROWS):
            ref = sum(vals[k] * vec[cols[k]]
                      for k in range(row_delims[r], row_delims[r + 1]))
            if abs(ref - out[r]) > 1e-9:
                raise AssertionError(f"out[{r}] = {out[r]}, want {ref}")
