"""gemm-blocked: cache-blocked matrix multiply.

MachSuite's second gemm variant.  Same arithmetic as gemm-ncubed but
iterating over BxB tiles, which changes the reuse pattern the local memory
sees: each tile of the output accumulates across the k-blocks, so partial
sums live in memory rather than in registers.
"""

from repro.workloads.registry import Workload, register

N = 16
B = 4  # tile edge


@register
class GemmBlocked(Workload):
    name = "gemm-blocked"
    description = f"{N}x{N} blocked matrix multiply, {B}x{B} tiles"

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        a = [rng.uniform(-1.0, 1.0) for _ in range(N * N)]
        b = [rng.uniform(-1.0, 1.0) for _ in range(N * N)]
        tb = TraceBuilder(self.name)
        tb.array("m1", N * N, word_bytes=8, kind="input", init=a)
        tb.array("m2", N * N, word_bytes=8, kind="input", init=b)
        tb.array("prod", N * N, word_bytes=8, kind="output",
                 init=[0.0] * (N * N))
        blocks = N // B
        it = 0
        # jj/kk tile loops outside; the parallel iteration is one (i, j-tile)
        # strip of the k-block, numbered so accumulation into prod[i][j]
        # always flows from lower to higher iterations.
        for jj in range(blocks):
            for kk in range(blocks):
                for i in range(N):
                    with tb.iteration(it):
                        for j in range(jj * B, (jj + 1) * B):
                            acc = tb.load("prod", i * N + j)
                            for k in range(kk * B, (kk + 1) * B):
                                x = tb.load("m1", i * N + k)
                                y = tb.load("m2", k * N + j)
                                acc = tb.fadd(acc, tb.fmul(x, y))
                            tb.store("prod", i * N + j, acc)
                    it += 1
        return tb

    def verify(self, trace):
        a = trace.arrays["m1"].data
        b = trace.arrays["m2"].data
        prod = trace.arrays["prod"].data
        for i in range(N):
            for j in range(N):
                ref = sum(a[i * N + k] * b[k * N + j] for k in range(N))
                if abs(ref - prod[i * N + j]) > 1e-9:
                    raise AssertionError(
                        f"prod[{i},{j}] = {prod[i * N + j]}, want {ref}")
