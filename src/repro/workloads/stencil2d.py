"""stencil-stencil2d: 3x3 convolution filter over a 2D grid.

Row-major streaming: "stencil2d uses a 3x3 kernel and thus only requires the
first three rows of the input matrix to arrive before it can start
computation, so ready bits recover a significant amount of performance"
(Section IV-C1).  The parallel loop is the output cell in row-major order,
which preserves exactly that property.
"""

from repro.workloads.registry import Workload, register

ROWS = 32
COLS = 32  # MachSuite uses 64x128; scaled per DESIGN.md


@register
class Stencil2D(Workload):
    name = "stencil-stencil2d"
    description = f"3x3 stencil over a {ROWS}x{COLS} grid"

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        orig = [rng.uniform(0.0, 1.0) for _ in range(ROWS * COLS)]
        filt = [rng.uniform(-1.0, 1.0) for _ in range(9)]
        tb = TraceBuilder(self.name)
        tb.array("orig", ROWS * COLS, word_bytes=4, kind="input", init=orig)
        tb.array("filter", 9, word_bytes=4, kind="input", init=filt)
        tb.array("sol", ROWS * COLS, word_bytes=4, kind="output")
        it = 0
        for r in range(ROWS - 2):
            for c in range(COLS - 2):
                with tb.iteration(it):
                    acc = 0.0
                    for k1 in range(3):
                        for k2 in range(3):
                            f = tb.load("filter", k1 * 3 + k2)
                            x = tb.load("orig", (r + k1) * COLS + (c + k2))
                            mul = tb.fmul(f, x)
                            acc = tb.fadd(acc, mul)
                    tb.store("sol", r * COLS + c, acc)
                it += 1
        return tb

    def verify(self, trace):
        orig = trace.arrays["orig"].data
        filt = trace.arrays["filter"].data
        sol = trace.arrays["sol"].data
        for r in range(ROWS - 2):
            for c in range(COLS - 2):
                ref = sum(
                    filt[k1 * 3 + k2] * orig[(r + k1) * COLS + (c + k2)]
                    for k1 in range(3) for k2 in range(3)
                )
                got = sol[r * COLS + c]
                if abs(ref - got) > 1e-6:
                    raise AssertionError(f"sol[{r},{c}] = {got}, want {ref}")
