"""fft-strided: iterative radix-2 FFT with strided butterflies.

MachSuite's first FFT variant: log2(N) stages over the whole array, the
butterfly span doubling each stage.  Early stages touch neighbours; late
stages stride half the array — a progressively worsening access pattern
for line-granularity memory systems.
"""

import cmath

from repro.workloads.registry import Workload, register

POINTS = 256  # MachSuite uses 1024; scaled per DESIGN.md
STAGES = POINTS.bit_length() - 1  # 8


def _bit_reverse(i, bits):
    out = 0
    for _ in range(bits):
        out = (out << 1) | (i & 1)
        i >>= 1
    return out


@register
class FftStrided(Workload):
    name = "fft-strided"
    description = f"iterative radix-2 FFT, {POINTS} points"

    def _input(self):
        rng = self.rng()
        return ([rng.uniform(-1.0, 1.0) for _ in range(POINTS)],
                [rng.uniform(-1.0, 1.0) for _ in range(POINTS)])

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        re, im = self._input()
        # Twiddle table: W_N^k for k in [0, N/2).
        tw = [cmath.exp(-2j * cmath.pi * k / POINTS)
              for k in range(POINTS // 2)]
        tb = TraceBuilder(self.name)
        tb.array("real", POINTS, word_bytes=8, kind="inout", init=re)
        tb.array("img", POINTS, word_bytes=8, kind="inout", init=im)
        tb.array("real_twid", POINTS // 2, word_bytes=8, kind="input",
                 init=[t.real for t in tw])
        tb.array("img_twid", POINTS // 2, word_bytes=8, kind="input",
                 init=[t.imag for t in tw])

        # Bit-reversal permutation (serial prologue), swap via registers.
        for i in range(POINTS):
            j = _bit_reverse(i, STAGES)
            if i < j:
                xr = tb.load("real", i)
                xi = tb.load("img", i)
                yr = tb.load("real", j)
                yi = tb.load("img", j)
                tb.store("real", i, yr)
                tb.store("img", i, yi)
                tb.store("real", j, xr)
                tb.store("img", j, xi)

        # Stages: iteration = (stage, butterfly index).
        it = 0
        for stage in range(1, STAGES + 1):
            span = 1 << stage          # butterfly group size
            half = span >> 1
            tw_stride = POINTS // span
            for base in range(0, POINTS, span):
                with tb.iteration(it):
                    for t in range(half):
                        idx_a = base + t
                        idx_b = base + t + half
                        wr = tb.load("real_twid", t * tw_stride)
                        wi = tb.load("img_twid", t * tw_stride)
                        ar = tb.load("real", idx_a)
                        ai = tb.load("img", idx_a)
                        br = tb.load("real", idx_b)
                        bi = tb.load("img", idx_b)
                        # t = W * b
                        tr = tb.fsub(tb.fmul(wr, br), tb.fmul(wi, bi))
                        ti = tb.fadd(tb.fmul(wr, bi), tb.fmul(wi, br))
                        tb.store("real", idx_a, tb.fadd(ar, tr))
                        tb.store("img", idx_a, tb.fadd(ai, ti))
                        tb.store("real", idx_b, tb.fsub(ar, tr))
                        tb.store("img", idx_b, tb.fsub(ai, ti))
                it += 1
        return tb

    def verify(self, trace):
        re, im = self._input()
        x = [complex(r, i) for r, i in zip(re, im)]
        # O(n^2) DFT reference.
        ref = [sum(x[n] * cmath.exp(-2j * cmath.pi * k * n / POINTS)
                   for n in range(POINTS)) for k in range(POINTS)]
        got_r = trace.arrays["real"].data
        got_i = trace.arrays["img"].data
        for k in range(POINTS):
            got = complex(got_r[k], got_i[k])
            if abs(got - ref[k]) > 1e-6 * max(1.0, abs(ref[k])):
                raise AssertionError(f"X[{k}] = {got}, want {ref[k]}")
