"""sort-merge: bottom-up merge sort.

MachSuite's sort/merge.  Pure data movement with almost no arithmetic — the
canonical low compute-to-memory-ratio workload.  The array is sorted in
place (``inout``); the merge buffer is private scratchpad data.
"""

from repro.workloads.registry import Workload, register

SIZE = 256  # MachSuite sorts 2048 ints; scaled per DESIGN.md


@register
class SortMerge(Workload):
    name = "sort-merge"
    description = f"bottom-up merge sort of {SIZE} ints"

    def _input(self):
        rng = self.rng()
        return [rng.randrange(1 << 16) for _ in range(SIZE)]

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        data = self._input()
        tb = TraceBuilder(self.name)
        tb.array("a", SIZE, word_bytes=4, kind="inout", init=data)
        tb.array("temp", SIZE, word_bytes=4, kind="internal")

        it = 0
        width = 1
        while width < SIZE:
            for start in range(0, SIZE, 2 * width):
                with tb.iteration(it):
                    mid = min(start + width, SIZE)
                    end = min(start + 2 * width, SIZE)
                    i, j = start, mid
                    # Merge [start, mid) and [mid, end) into temp.
                    for k in range(start, end):
                        if i < mid and (j >= end or
                                        tb.arrays["a"].data[i]
                                        <= tb.arrays["a"].data[j]):
                            v = tb.load("a", i)
                            if j < end:
                                w = tb.load("a", j)
                                tb.icmp(w, v)  # the hardware compare
                            i += 1
                        else:
                            v = tb.load("a", j)
                            if i < mid:
                                w = tb.load("a", i)
                                tb.icmp(w, v)
                            j += 1
                        tb.store("temp", k, v)
                    for k in range(start, end):
                        tb.store("a", k, tb.load("temp", k))
                it += 1
            width *= 2
        return tb

    def verify(self, trace):
        ref = sorted(self._input())
        got = trace.arrays["a"].data
        if got != ref:
            raise AssertionError("array not sorted correctly")
