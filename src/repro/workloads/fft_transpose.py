"""fft-transpose: the strided radix-8 stage of a 512-point transposed FFT.

"The parallel implementation of this benchmark possesses a stride length of
512 bytes, meaning that each loop iteration (aka datapath lane) only reads
eight bytes per 512 bytes of data.  As a result, even with full/empty bits,
a DMA system must supply nearly all of the data before the computation can
begin, whereas this is not a problem for the cache system" (Section V-A).

Each of the 64 work items loads 8 complex doubles at stride 64 elements
(64 x 8 B = 512 B), runs an 8-point DIT FFT, applies per-element twiddles
from a precomputed table, and stores back in the same strided layout.
"""

import cmath

from repro.workloads.registry import Workload, register

POINTS = 512
RADIX = 8
GROUPS = POINTS // RADIX  # 64 work items, stride 64 elements

_SQ2 = 0.7071067811865476
# W8^k for k = 0..7.
_W8 = [cmath.exp(-2j * cmath.pi * k / 8) for k in range(8)]


def _twiddles():
    """W512^(g*k) table, laid out [group * 8 + k]."""
    out = []
    for g in range(GROUPS):
        for k in range(RADIX):
            out.append(cmath.exp(-2j * cmath.pi * g * k / POINTS))
    return out


def _fft8_ref(x):
    """Direct 8-point DFT (reference)."""
    return [sum(x[n] * cmath.exp(-2j * cmath.pi * k * n / 8)
                for n in range(8)) for k in range(8)]


@register
class FftTranspose(Workload):
    name = "fft-transpose"
    description = "strided radix-8 stage of a 512-point transposed FFT"

    def _input(self):
        rng = self.rng()
        return ([rng.uniform(-1.0, 1.0) for _ in range(POINTS)],
                [rng.uniform(-1.0, 1.0) for _ in range(POINTS)])

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        re, im = self._input()
        tw = _twiddles()
        tb = TraceBuilder(self.name)
        tb.array("work_x", POINTS, word_bytes=8, kind="inout", init=re)
        tb.array("work_y", POINTS, word_bytes=8, kind="inout", init=im)
        tb.array("tw_x", POINTS, word_bytes=8, kind="input",
                 init=[t.real for t in tw])
        tb.array("tw_y", POINTS, word_bytes=8, kind="input",
                 init=[t.imag for t in tw])

        def cadd(a, b):
            return (tb.fadd(a[0], b[0]), tb.fadd(a[1], b[1]))

        def csub(a, b):
            return (tb.fsub(a[0], b[0]), tb.fsub(a[1], b[1]))

        def cmul(a, b):
            real = tb.fsub(tb.fmul(a[0], b[0]), tb.fmul(a[1], b[1]))
            imag = tb.fadd(tb.fmul(a[0], b[1]), tb.fmul(a[1], b[0]))
            return (real, imag)

        def cmul_w8(a, k):
            """Multiply by W8^k, exploiting the trivial constants."""
            k %= 8
            if k == 0:
                return a
            if k == 2:  # -j
                return (a[1], tb.fsub(0.0, a[0]))
            if k == 4:  # -1
                return (tb.fsub(0.0, a[0]), tb.fsub(0.0, a[1]))
            if k == 6:  # +j
                return (tb.fsub(0.0, a[1]), a[0])
            w = _W8[k]
            return cmul(a, (w.real, w.imag))

        for g in range(GROUPS):
            with tb.iteration(g):
                x = [(tb.load("work_x", g + s * GROUPS),
                      tb.load("work_y", g + s * GROUPS))
                     for s in range(RADIX)]
                # Radix-2 DIT, 3 stages, inputs in bit-reversed order.
                order = [0, 4, 2, 6, 1, 5, 3, 7]
                v = [x[i] for i in order]
                for stage, half in ((1, 1), (2, 2), (3, 4)):
                    step = 8 >> stage          # twiddle stride for W8
                    out = [None] * 8
                    for base in range(0, 8, half * 2):
                        for t in range(half):
                            a = v[base + t]
                            b = cmul_w8(v[base + half + t], t * step)
                            out[base + t] = cadd(a, b)
                            out[base + half + t] = csub(a, b)
                    v = out
                for k in range(RADIX):
                    twr = tb.load("tw_x", g * RADIX + k)
                    twi = tb.load("tw_y", g * RADIX + k)
                    res = cmul(v[k], (twr, twi))
                    tb.store("work_x", g + k * GROUPS, res[0])
                    tb.store("work_y", g + k * GROUPS, res[1])
        return tb

    def verify(self, trace):
        re, im = self._input()
        tw = _twiddles()
        got_x = trace.arrays["work_x"].data
        got_y = trace.arrays["work_y"].data
        for g in range(GROUPS):
            x = [complex(re[g + s * GROUPS], im[g + s * GROUPS])
                 for s in range(RADIX)]
            ref = _fft8_ref(x)
            for k in range(RADIX):
                expect = ref[k] * tw[g * RADIX + k]
                got = complex(got_x[g + k * GROUPS], got_y[g + k * GROUPS])
                if abs(expect - got) > 1e-9 * max(1.0, abs(expect)):
                    raise AssertionError(
                        f"group {g}, k={k}: got {got}, want {expect}")
