"""spmv-ellpack: sparse matrix-vector multiply, ELLPACK storage.

MachSuite's second spmv variant: rows are padded to a fixed number of
non-zeros, so the traversal is perfectly regular — only the ``vec`` loads
remain indirect.  Contrasted with spmv-crs it isolates how much of the
cache win comes from indirection vs from the row-pointer chasing.
"""

from repro.workloads.registry import Workload, register

ROWS = 128
L = 10  # padded non-zeros per row (MachSuite: 4940x10 scaled down)


@register
class SpmvEllpack(Workload):
    name = "spmv-ellpack"
    description = f"ELLPACK sparse matrix-vector multiply, {ROWS}x{L}"

    def _matrix(self):
        rng = self.rng()
        nzval, cols = [], []
        for _r in range(ROWS):
            row_cols = sorted(rng.sample(range(ROWS), L))
            for c in row_cols:
                nzval.append(rng.uniform(-1.0, 1.0))
                cols.append(c)
        vec = [rng.uniform(-1.0, 1.0) for _ in range(ROWS)]
        return nzval, cols, vec

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        nzval, cols, vec = self._matrix()
        tb = TraceBuilder(self.name)
        tb.array("nzval", ROWS * L, word_bytes=8, kind="input", init=nzval)
        tb.array("cols", ROWS * L, word_bytes=4, kind="input", init=cols)
        tb.array("vec", ROWS, word_bytes=8, kind="input", init=vec)
        tb.array("out", ROWS, word_bytes=8, kind="output")
        for r in range(ROWS):
            with tb.iteration(r):
                acc = 0.0
                for j in range(L):
                    v = tb.load("nzval", r * L + j)
                    c = tb.load("cols", r * L + j)
                    x = tb.load("vec", int(c.value))  # the indirect load
                    acc = tb.fadd(acc, tb.fmul(v, x))
                tb.store("out", r, acc)
        return tb

    def verify(self, trace):
        nzval, cols, vec = self._matrix()
        out = trace.arrays["out"].data
        for r in range(ROWS):
            ref = sum(nzval[r * L + j] * vec[cols[r * L + j]]
                      for j in range(L))
            if abs(ref - out[r]) > 1e-9:
                raise AssertionError(f"out[{r}] = {out[r]}, want {ref}")
