"""Workload registry with trace caching.

Traces are design-independent (lanes and partitions are applied at schedule
time), so one captured trace per kernel is reused across every design point
of a sweep — this is what keeps full Figure 8 sweeps tractable in Python.
"""

import random

from repro.errors import WorkloadError
from repro.aladdin.ddg import DDDG


class Workload:
    """Base class: a named kernel that builds (and can verify) its trace."""

    name = None
    description = ""

    def rng(self):
        """Deterministic per-workload random source."""
        return random.Random(f"repro-{self.name}")

    def build(self):
        """Execute the kernel through a TraceBuilder; returns the builder."""
        raise NotImplementedError

    def verify(self, trace):
        """Check the functional outputs captured in ``trace`` against a
        plain-Python reference computation.  Raises on mismatch."""
        raise NotImplementedError


_REGISTRY = {}


def register(cls):
    """Class decorator adding a workload to the registry."""
    if cls.name is None:
        raise WorkloadError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_loaded():
    # Import kernel modules lazily to avoid import cycles; each module
    # registers its workload class at import time.
    from repro.workloads import (  # noqa: F401
        aes, backprop, bfs, bfs_queue, fft_strided, fft_transpose, gemm,
        gemm_blocked, kmp, md_grid, md_knn, nw, sort_merge, sort_radix,
        spmv_crs, spmv_ellpack, stencil2d, stencil3d, viterbi,
    )


def get_workload(name):
    """Instantiate a workload by registry name."""
    _ensure_loaded()
    cls = _REGISTRY.get(name)
    if cls is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}")
    return cls()


def workload_names():
    """Sorted names of every registered workload."""
    _ensure_loaded()
    return sorted(_REGISTRY)


_TRACE_CACHE = {}
_DDG_CACHE = {}


def cached_trace(name):
    """The workload's captured trace (built once per process)."""
    if name not in _TRACE_CACHE:
        _TRACE_CACHE[name] = get_workload(name).build()
    return _TRACE_CACHE[name]


def cached_ddg(name):
    """The workload's DDDG over the cached trace."""
    if name not in _DDG_CACHE:
        _DDG_CACHE[name] = DDDG(cached_trace(name))
    return _DDG_CACHE[name]


CORE_EIGHT = [
    "aes-aes",
    "nw-nw",
    "gemm-ncubed",
    "stencil-stencil2d",
    "stencil-stencil3d",
    "md-knn",
    "spmv-crs",
    "fft-transpose",
]

# The full 19-kernel MachSuite sweep (Figure 2b runs "all the MachSuite
# benchmarks"); CORE_EIGHT are the ones Figures 6-10 analyze in depth.
ALL_WORKLOADS = CORE_EIGHT + [
    "backprop", "bfs-bulk", "bfs-queue", "fft-strided", "gemm-blocked",
    "kmp", "md-grid", "sort-merge", "sort-radix", "spmv-ellpack", "viterbi",
]
