"""Workload registry with trace caching.

Traces are design-independent (lanes and partitions are applied at schedule
time), so one captured trace per kernel is reused across every design point
of a sweep — this is what keeps full Figure 8 sweeps tractable in Python.

Two registration populations live here:

* **builtin** — the 19 MachSuite kernels, registered as classes at import
  time via the :func:`register` decorator;
* **dynamic** — :class:`Workload` *instances* registered at runtime via
  :func:`register_workload` (the public API behind the Python kernel
  frontend, :mod:`repro.frontend`, and :meth:`Workload.from_builder`).

Dynamic registrations made from a kernel *file* (``repro trace-kernel``,
``repro sweep --kernel``, ``POST /kernels``) also record their source path
in ``$REPRO_KERNEL_PATHS`` so spawn-context sweep workers — fresh
interpreters that only ever see a workload *name* — can re-load the file
and resolve the same workload (see :mod:`repro.frontend.loader`).
"""

import os
import random

from repro.errors import WorkloadError
from repro.aladdin.ddg import DDDG

#: ``os.pathsep``-separated kernel files auto-loaded into the registry on
#: first use.  Set by the CLI/service when a kernel file is registered, so
#: spawned sweep workers inherit the registrations by name.
ENV_KERNEL_PATHS = "REPRO_KERNEL_PATHS"


class Workload:
    """Base class: a named kernel that builds (and can verify) its trace."""

    name = None
    description = ""

    def rng(self):
        """Deterministic per-workload random source.

        The stream is seeded by the workload *name*, so two workloads
        registered under different names can never share a seed stream.
        An unnamed workload has no identity to seed from — seeding it
        ``"repro-None"`` would silently alias every other unnamed kernel —
        so this raises instead.
        """
        if not self.name:
            raise WorkloadError(
                f"{type(self).__name__} has no name; set .name (or register "
                f"it) before drawing from its rng — unnamed workloads would "
                f"all share the same seed stream")
        return random.Random(f"repro-{self.name}")

    def build(self):
        """Execute the kernel through a TraceBuilder; returns the builder."""
        raise NotImplementedError

    def verify(self, trace):
        """Check the functional outputs captured in ``trace`` against a
        plain-Python reference computation.  Raises on mismatch."""
        raise NotImplementedError

    @classmethod
    def from_builder(cls, name, build, verify=None, description=""):
        """A dynamic :class:`Workload` from plain callables.

        ``build()`` must return a captured
        :class:`~repro.aladdin.trace.TraceBuilder`; ``verify(trace)``
        checks its functional outputs (required for registration — a
        workload that cannot self-check is not a workload, it is a bug
        generator).  The returned instance is *not* registered; pass it
        to :func:`register_workload`.
        """
        if not name or not isinstance(name, str):
            raise WorkloadError(f"workload name must be a non-empty string, "
                                f"got {name!r}")
        if not callable(build):
            raise WorkloadError(f"build must be callable, got {build!r}")
        if verify is not None and not callable(verify):
            raise WorkloadError(f"verify must be callable, got {verify!r}")
        wl = _BuilderWorkload()
        wl.name = name
        wl.description = description
        wl._build_fn = build
        wl._verify_fn = verify
        return wl


class _BuilderWorkload(Workload):
    """Instance-level workload wrapping ``build``/``verify`` callables."""

    _build_fn = None
    _verify_fn = None

    def build(self):
        return self._build_fn()

    def verify(self, trace):
        if self._verify_fn is None:
            raise WorkloadError(
                f"workload {self.name!r} has no verify function")
        return self._verify_fn(trace)


_REGISTRY = {}    # name -> Workload subclass (builtin, import-time)
_INSTANCES = {}   # name -> Workload instance (dynamic, runtime)


def register(cls):
    """Class decorator adding a builtin workload to the registry."""
    if cls.name is None:
        raise WorkloadError(f"{cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate workload {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def _check_registrable(instance):
    """Validate a dynamic registration candidate; raises WorkloadError."""
    if not isinstance(instance, Workload):
        raise WorkloadError(
            f"register_workload needs a Workload instance, got "
            f"{instance!r}; subclass Workload or use Workload.from_builder")
    name = instance.name
    if not name or not isinstance(name, str):
        raise WorkloadError(
            f"workload has no usable name ({name!r}); set a non-empty "
            f"string .name before registering")
    # A workload that cannot verify its own trace is unusable: the
    # functional check is what separates "simulated something" from
    # "simulated the kernel you meant".
    verify = type(instance).verify
    if verify is Workload.verify and not isinstance(
            instance, _BuilderWorkload):
        raise WorkloadError(
            f"workload {name!r} does not override verify(); a registered "
            f"workload must be able to self-check its trace")
    if isinstance(instance, _BuilderWorkload) and instance._verify_fn is None:
        raise WorkloadError(
            f"workload {name!r} has no verify function; pass verify= to "
            f"Workload.from_builder")


def register_workload(instance, replace=False):
    """Register a :class:`Workload` *instance* under its ``.name``.

    The public dynamic-registration API: frontend kernels, example
    scripts and services use this instead of poking the private trace
    caches.  Raises :class:`WorkloadError` when the instance has no
    name, does not override :meth:`Workload.verify`, or the name is
    already taken (builtin names can never be replaced; dynamic ones
    only with ``replace=True``).  Any cached trace/DDG for the name is
    dropped, so a replacement can never serve a stale trace.

    Returns the instance, so it can be used as a decorator-style call.
    """
    _ensure_loaded()
    _check_registrable(instance)
    name = instance.name
    if name in _REGISTRY:
        raise WorkloadError(
            f"workload name {name!r} collides with a builtin workload; "
            f"pick a different name (builtins are never replaceable)")
    if name in _INSTANCES and not replace:
        raise WorkloadError(
            f"workload {name!r} is already registered; unregister it or "
            f"pass replace=True to overwrite")
    _INSTANCES[name] = instance
    _TRACE_CACHE.pop(name, None)
    _DDG_CACHE.pop(name, None)
    return instance


def unregister_workload(name):
    """Remove a dynamic registration (builtins cannot be removed)."""
    if name in _REGISTRY:
        raise WorkloadError(f"cannot unregister builtin workload {name!r}")
    if name not in _INSTANCES:
        raise WorkloadError(f"workload {name!r} is not registered")
    del _INSTANCES[name]
    _TRACE_CACHE.pop(name, None)
    _DDG_CACHE.pop(name, None)


def workload_source(name):
    """Where a workload comes from: ``"builtin"`` or ``"frontend"``."""
    _ensure_loaded()
    if name in _REGISTRY:
        return "builtin"
    if name in _INSTANCES:
        return "frontend"
    raise WorkloadError(
        f"unknown workload {name!r}; available: {sorted(_all_names())}")


_LOADED_KERNEL_PATHS = set()


def _ensure_loaded():
    # Import kernel modules lazily to avoid import cycles; each module
    # registers its workload class at import time.
    from repro.workloads import (  # noqa: F401
        aes, backprop, bfs, bfs_queue, fft_strided, fft_transpose, gemm,
        gemm_blocked, kmp, md_grid, md_knn, nw, sort_merge, sort_radix,
        spmv_crs, spmv_ellpack, stencil2d, stencil3d, viterbi,
    )
    # Kernel files advertised by the environment (set by the CLI/service
    # in the parent process) register here too, so spawn-context sweep
    # workers resolve dynamically registered workloads by name.
    spec = os.environ.get(ENV_KERNEL_PATHS, "")
    if spec:
        from repro.frontend.loader import load_kernel_file
        for path in spec.split(os.pathsep):
            if not path or path in _LOADED_KERNEL_PATHS:
                continue
            _LOADED_KERNEL_PATHS.add(path)
            load_kernel_file(path, register=True, replace=True,
                             advertise=False)


def _all_names():
    return set(_REGISTRY) | set(_INSTANCES)


def get_workload(name):
    """Instantiate (builtin) or fetch (dynamic) a workload by name."""
    _ensure_loaded()
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    cls = _REGISTRY.get(name)
    if cls is None:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(_all_names())}")
    return cls()


def workload_names():
    """Sorted names of every registered workload (builtin + dynamic)."""
    _ensure_loaded()
    return sorted(_all_names())


_TRACE_CACHE = {}
_DDG_CACHE = {}


def cached_trace(name):
    """The workload's captured trace (built once per process)."""
    if name not in _TRACE_CACHE:
        _TRACE_CACHE[name] = get_workload(name).build()
    return _TRACE_CACHE[name]


def cached_ddg(name):
    """The workload's DDDG over the cached trace."""
    if name not in _DDG_CACHE:
        _DDG_CACHE[name] = DDDG(cached_trace(name))
    return _DDG_CACHE[name]


CORE_EIGHT = [
    "aes-aes",
    "nw-nw",
    "gemm-ncubed",
    "stencil-stencil2d",
    "stencil-stencil3d",
    "md-knn",
    "spmv-crs",
    "fft-transpose",
]

# The full 19-kernel MachSuite sweep (Figure 2b runs "all the MachSuite
# benchmarks"); CORE_EIGHT are the ones Figures 6-10 analyze in depth.
ALL_WORKLOADS = CORE_EIGHT + [
    "backprop", "bfs-bulk", "bfs-queue", "fft-strided", "gemm-blocked",
    "kmp", "md-grid", "sort-merge", "sort-radix", "spmv-ellpack", "viterbi",
]
