"""backprop: one epoch of stochastic gradient descent on a small MLP.

MachSuite's backprop kernel.  Sequential SGD creates a dependence chain
through the weight arrays across samples, while the per-layer neuron
updates within a sample are parallel — a mixed-parallelism workload with a
moderate working set (weights + activations).

The activation is the softsign x / (1 + |x|), whose derivative
1 / (1 + |x|)^2 the backward pass recomputes — matching MachSuite's style
of keeping the math on the accelerator.
"""

from repro.workloads.registry import Workload, register

IN = 8
HID = 8
OUT = 4
SAMPLES = 6
LR = 0.05


@register
class Backprop(Workload):
    name = "backprop"
    description = f"MLP {IN}-{HID}-{OUT} SGD, {SAMPLES} samples"

    def _data(self):
        rng = self.rng()
        w1 = [rng.uniform(-0.5, 0.5) for _ in range(IN * HID)]
        w2 = [rng.uniform(-0.5, 0.5) for _ in range(HID * OUT)]
        xs = [[rng.uniform(-1, 1) for _ in range(IN)]
              for _ in range(SAMPLES)]
        ys = [[rng.uniform(0, 1) for _ in range(OUT)]
              for _ in range(SAMPLES)]
        return w1, w2, xs, ys

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        w1, w2, xs, ys = self._data()
        tb = TraceBuilder(self.name)
        tb.array("w1", IN * HID, word_bytes=8, kind="inout", init=w1)
        tb.array("w2", HID * OUT, word_bytes=8, kind="inout", init=w2)
        tb.array("samples", SAMPLES * IN, word_bytes=8, kind="input",
                 init=[v for row in xs for v in row])
        tb.array("targets", SAMPLES * OUT, word_bytes=8, kind="input",
                 init=[v for row in ys for v in row])
        tb.array("hidden", HID, word_bytes=8, kind="internal")
        tb.array("delta_h", HID, word_bytes=8, kind="internal")

        def softsign(v):
            mag = tb.select(tb.fcmp(v, 0.0), v, tb.fsub(0.0, v))
            return tb.fdiv(v, tb.fadd(1.0, mag))

        def softsign_deriv(v):
            mag = tb.select(tb.fcmp(v, 0.0), v, tb.fsub(0.0, v))
            denom = tb.fadd(1.0, mag)
            return tb.fdiv(1.0, tb.fmul(denom, denom))

        # Iteration numbering: each sample gets a contiguous band of
        # phases so all dependences flow forward.
        phases_per_sample = HID + OUT + HID
        for s in range(SAMPLES):
            band = s * phases_per_sample
            x = [tb.load("samples", s * IN + i) for i in range(IN)]
            # Forward hidden layer (parallel over hidden neurons).
            h_pre = [None] * HID
            h_act = [None] * HID
            for hn in range(HID):
                with tb.iteration(band + hn):
                    acc = 0.0
                    for i in range(IN):
                        w = tb.load("w1", i * HID + hn)
                        acc = tb.fadd(acc, tb.fmul(w, x[i]))
                    h_pre[hn] = acc
                    h_act[hn] = softsign(acc)
                    tb.store("hidden", hn, h_act[hn])
            # Forward output + output delta + w2 update (parallel over
            # output neurons; each owns its column of w2).
            deltas = [None] * OUT
            for on in range(OUT):
                with tb.iteration(band + HID + on):
                    acc = 0.0
                    for hn in range(HID):
                        w = tb.load("w2", hn * OUT + on)
                        acc = tb.fadd(acc, tb.fmul(w, h_act[hn]))
                    out = softsign(acc)
                    target = tb.load("targets", s * OUT + on)
                    err = tb.fsub(out, target)
                    deltas[on] = tb.fmul(err, softsign_deriv(acc))
                    for hn in range(HID):
                        w = tb.load("w2", hn * OUT + on)
                        grad = tb.fmul(deltas[on], h_act[hn])
                        tb.store("w2", hn * OUT + on,
                                 tb.fsub(w, tb.fmul(LR, grad)))
            # Backward hidden + w1 update (parallel over hidden neurons).
            # Note: uses the *pre-update* w2 values via SSA registers —
            # matching the reference, which computes all deltas before
            # applying updates would; MachSuite updates w2 first, so we
            # reload the updated weights to match it exactly.
            for hn in range(HID):
                with tb.iteration(band + HID + OUT + hn):
                    acc = 0.0
                    for on in range(OUT):
                        w = tb.load("w2", hn * OUT + on)
                        acc = tb.fadd(acc, tb.fmul(w, deltas[on]))
                    dh = tb.fmul(acc, softsign_deriv(h_pre[hn]))
                    tb.store("delta_h", hn, dh)
                    for i in range(IN):
                        w = tb.load("w1", i * HID + hn)
                        grad = tb.fmul(dh, x[i])
                        tb.store("w1", i * HID + hn,
                                 tb.fsub(w, tb.fmul(LR, grad)))
        return tb

    def _reference(self):
        w1, w2, xs, ys = self._data()
        w1 = list(w1)
        w2 = list(w2)

        def act(v):
            return v / (1.0 + abs(v))

        def deriv(v):
            return 1.0 / (1.0 + abs(v)) ** 2

        for s in range(SAMPLES):
            x, y = xs[s], ys[s]
            h_pre = [sum(w1[i * HID + hn] * x[i] for i in range(IN))
                     for hn in range(HID)]
            h_act = [act(v) for v in h_pre]
            o_pre = [sum(w2[hn * OUT + on] * h_act[hn]
                         for hn in range(HID)) for on in range(OUT)]
            deltas = [(act(o_pre[on]) - y[on]) * deriv(o_pre[on])
                      for on in range(OUT)]
            for on in range(OUT):
                for hn in range(HID):
                    w2[hn * OUT + on] -= LR * deltas[on] * h_act[hn]
            for hn in range(HID):
                acc = sum(w2[hn * OUT + on] * deltas[on]
                          for on in range(OUT))
                dh = acc * deriv(h_pre[hn])
                for i in range(IN):
                    w1[i * HID + hn] -= LR * dh * x[i]
        return w1, w2

    def verify(self, trace):
        ref_w1, ref_w2 = self._reference()
        for name, ref in (("w1", ref_w1), ("w2", ref_w2)):
            got = trace.arrays[name].data
            for k, (r, g) in enumerate(zip(ref, got)):
                if abs(r - g) > 1e-9 * max(1.0, abs(r)):
                    raise AssertionError(f"{name}[{k}] = {g}, want {r}")
