"""stencil-stencil3d: 7-point stencil over a 3D grid.

The paper's motivating kernel (Figure 1).  "The kernel's three-dimensional
memory access pattern creates nonuniform stride lengths, which are
gracefully handled by the on-demand nature of a cache" (Section V-A): every
cell touches neighbours one k-plane away (a stride of ROWS*COLS words), so
full/empty bits must wait for a whole plane before an iteration can start.
"""

from repro.workloads.registry import Workload, register

NX = 12
NY = 12
NZ = 12  # MachSuite uses 32x32x16; scaled per DESIGN.md

C0 = 0.5
C1 = 0.25


def _idx(i, j, k):
    return (i * NY + j) * NZ + k


@register
class Stencil3D(Workload):
    name = "stencil-stencil3d"
    description = f"7-point stencil over a {NX}x{NY}x{NZ} grid"

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        orig = [rng.uniform(0.0, 1.0) for _ in range(NX * NY * NZ)]
        tb = TraceBuilder(self.name)
        tb.array("orig", NX * NY * NZ, word_bytes=4, kind="input", init=orig)
        tb.array("sol", NX * NY * NZ, word_bytes=4, kind="output")
        it = 0
        for i in range(1, NX - 1):
            for j in range(1, NY - 1):
                for k in range(1, NZ - 1):
                    with tb.iteration(it):
                        center = tb.load("orig", _idx(i, j, k))
                        acc = 0.0
                        for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                           (0, -1, 0), (0, 0, 1), (0, 0, -1)):
                            nb = tb.load("orig", _idx(i + di, j + dj, k + dk))
                            acc = tb.fadd(acc, nb)
                        term0 = tb.fmul(center, C0)
                        term1 = tb.fmul(acc, C1)
                        result = tb.fadd(term0, term1)
                        tb.store("sol", _idx(i, j, k), result)
                    it += 1
        return tb

    def verify(self, trace):
        orig = trace.arrays["orig"].data
        sol = trace.arrays["sol"].data
        for i in range(1, NX - 1):
            for j in range(1, NY - 1):
                for k in range(1, NZ - 1):
                    nbsum = sum(
                        orig[_idx(i + di, j + dj, k + dk)]
                        for di, dj, dk in ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                                           (0, -1, 0), (0, 0, 1), (0, 0, -1))
                    )
                    ref = C0 * orig[_idx(i, j, k)] + C1 * nbsum
                    got = sol[_idx(i, j, k)]
                    if abs(ref - got) > 1e-6:
                        raise AssertionError(
                            f"sol[{i},{j},{k}] = {got}, want {ref}")
