"""viterbi: Viterbi decoding of a hidden Markov model.

MachSuite's viterbi (min-sum form over negative log-likelihoods).  The
per-step, per-state minimum over predecessors gives moderate parallelism
within a time step, with a serial dependence across steps.
"""

from repro.workloads.registry import Workload, register

STATES = 12
STEPS = 24
ALPHABET = 8


@register
class Viterbi(Workload):
    name = "viterbi"
    description = f"Viterbi decode, {STATES} states x {STEPS} steps"

    def _model(self):
        rng = self.rng()
        obs = [rng.randrange(ALPHABET) for _ in range(STEPS)]
        init = [rng.uniform(0.1, 2.0) for _ in range(STATES)]
        transition = [rng.uniform(0.1, 2.0) for _ in range(STATES * STATES)]
        emission = [rng.uniform(0.1, 2.0) for _ in range(STATES * ALPHABET)]
        return obs, init, transition, emission

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        obs, init, transition, emission = self._model()
        tb = TraceBuilder(self.name)
        tb.array("obs", STEPS, word_bytes=4, kind="input", init=obs)
        tb.array("init", STATES, word_bytes=8, kind="input", init=init)
        tb.array("transition", STATES * STATES, word_bytes=8, kind="input",
                 init=transition)
        tb.array("emission", STATES * ALPHABET, word_bytes=8, kind="input",
                 init=emission)
        tb.array("llike", STEPS * STATES, word_bytes=8, kind="internal")
        tb.array("path", STEPS, word_bytes=4, kind="output")

        # t = 0 (serial prologue).
        o0 = tb.load("obs", 0)
        for s in range(STATES):
            pi = tb.load("init", s)
            em = tb.load("emission", s * ALPHABET + int(o0.value))
            tb.store("llike", s, tb.fadd(pi, em))

        # Forward pass: iteration = (t-1) * STATES + s.
        for t in range(1, STEPS):
            for s in range(STATES):
                with tb.iteration((t - 1) * STATES + s):
                    ot = tb.load("obs", t)
                    em = tb.load("emission",
                                 s * ALPHABET + int(ot.value))
                    best = None
                    for p in range(STATES):
                        prev = tb.load("llike", (t - 1) * STATES + p)
                        tr = tb.load("transition", p * STATES + s)
                        cand = tb.fadd(prev, tr)
                        if best is None:
                            best = cand
                        else:
                            worse = tb.fcmp(best, cand)  # 1 if best > cand
                            best = tb.select(worse, cand, best)
                    tb.store("llike", t * STATES + s,
                             tb.fadd(best, em))

        # Backtrack (serial epilogue): pick argmin at the last step, then
        # trace the minimizing predecessor chain.
        last = [tb.load("llike", (STEPS - 1) * STATES + s)
                for s in range(STATES)]
        best_state = min(range(STATES), key=lambda s: last[s].value)
        for s in range(1, STATES):
            tb.fcmp(last[s - 1], last[s])
        tb.store("path", STEPS - 1, best_state)
        state = best_state
        for t in range(STEPS - 1, 0, -1):
            cands = []
            for p in range(STATES):
                prev = tb.load("llike", (t - 1) * STATES + p)
                tr = tb.load("transition", p * STATES + state)
                cands.append(tb.fadd(prev, tr))
                if p > 0:
                    tb.fcmp(cands[p - 1], cands[p])
            state = min(range(STATES), key=lambda p: cands[p].value)
            tb.store("path", t - 1, state)
        return tb

    def _reference(self):
        obs, init, transition, emission = self._model()
        llike = [[0.0] * STATES for _ in range(STEPS)]
        for s in range(STATES):
            llike[0][s] = init[s] + emission[s * ALPHABET + obs[0]]
        for t in range(1, STEPS):
            for s in range(STATES):
                best = min(llike[t - 1][p] + transition[p * STATES + s]
                           for p in range(STATES))
                llike[t][s] = best + emission[s * ALPHABET + obs[t]]
        path = [0] * STEPS
        path[-1] = min(range(STATES), key=lambda s: llike[-1][s])
        for t in range(STEPS - 1, 0, -1):
            s = path[t]
            path[t - 1] = min(
                range(STATES),
                key=lambda p: llike[t - 1][p] + transition[p * STATES + s])
        return llike, path

    def verify(self, trace):
        llike_ref, path_ref = self._reference()
        got_llike = trace.arrays["llike"].data
        for t in range(STEPS):
            for s in range(STATES):
                ref = llike_ref[t][s]
                got = got_llike[t * STATES + s]
                if abs(ref - got) > 1e-9 * max(1.0, abs(ref)):
                    raise AssertionError(
                        f"llike[{t},{s}] = {got}, want {ref}")
        if trace.arrays["path"].data != path_ref:
            raise AssertionError("decoded path differs from reference")
