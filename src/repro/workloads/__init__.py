"""MachSuite workloads, re-implemented against the trace-builder DSL.

MachSuite (Reagen et al., IISWC 2014) is the benchmark suite used throughout
the paper.  Each kernel here preserves the original's memory access pattern
(strides, indirection, loop-carried dependences) and compute mix at reduced
problem sizes (see DESIGN.md substitution #4).

The eight kernels of Figures 6-10 are: aes-aes, nw-nw, gemm-ncubed,
stencil-stencil2d, stencil-stencil3d, md-knn, spmv-crs, fft-transpose.
Four more (bfs-bulk, kmp, sort-merge, viterbi) provide Figure 2b's breadth.
"""

from repro.workloads.registry import (
    Workload,
    get_workload,
    register_workload,
    unregister_workload,
    workload_names,
    workload_source,
    cached_trace,
    cached_ddg,
    CORE_EIGHT,
    ALL_WORKLOADS,
)

__all__ = [
    "Workload",
    "get_workload",
    "register_workload",
    "unregister_workload",
    "workload_names",
    "workload_source",
    "cached_trace",
    "cached_ddg",
    "CORE_EIGHT",
    "ALL_WORKLOADS",
]
