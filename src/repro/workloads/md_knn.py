"""md-knn: k-nearest-neighbour molecular dynamics (Lennard-Jones forces).

The paper's running example (Figures 2a, 6, 8, 9).  "There are 12 FP
multiplies per atom-to-atom interaction, so the power consumption of this
benchmark is dominated by functional units rather than memory"
(Section V-A).  Positions stream in atom order, so full/empty bits overlap
nearly all DMA with compute; the neighbour list adds indirection on the
position loads.
"""

from repro.workloads.registry import Workload, register

ATOMS = 64
NEIGHBOURS = 16  # MachSuite uses 256 atoms x 16 neighbours; scaled

LJ1 = 1.5
LJ2 = 2.0


@register
class MdKnn(Workload):
    name = "md-knn"
    description = f"LJ force kernel, {ATOMS} atoms x {NEIGHBOURS} neighbours"

    def _neighbour_list(self, rng, positions):
        """k nearest neighbours by actual distance (as MachSuite's input
        generator does), flattened to ATOMS*NEIGHBOURS."""
        nl = []
        for i in range(ATOMS):
            xi, yi, zi = positions[i]
            dist = sorted(
                (((positions[j][0] - xi) ** 2 + (positions[j][1] - yi) ** 2
                  + (positions[j][2] - zi) ** 2), j)
                for j in range(ATOMS) if j != i
            )
            nl.extend(j for _d, j in dist[:NEIGHBOURS])
        return nl

    def build(self):
        from repro.aladdin.trace import TraceBuilder

        rng = self.rng()
        positions = [(rng.uniform(0, 10), rng.uniform(0, 10),
                      rng.uniform(0, 10)) for _ in range(ATOMS)]
        nl = self._neighbour_list(rng, positions)
        tb = TraceBuilder(self.name)
        tb.array("x", ATOMS, word_bytes=8, kind="input",
                 init=[p[0] for p in positions])
        tb.array("y", ATOMS, word_bytes=8, kind="input",
                 init=[p[1] for p in positions])
        tb.array("z", ATOMS, word_bytes=8, kind="input",
                 init=[p[2] for p in positions])
        tb.array("nl", ATOMS * NEIGHBOURS, word_bytes=4, kind="input", init=nl)
        tb.array("fx", ATOMS, word_bytes=8, kind="output")
        tb.array("fy", ATOMS, word_bytes=8, kind="output")
        tb.array("fz", ATOMS, word_bytes=8, kind="output")
        for i in range(ATOMS):
            with tb.iteration(i):
                xi = tb.load("x", i)
                yi = tb.load("y", i)
                zi = tb.load("z", i)
                fx = 0.0
                fy = 0.0
                fz = 0.0
                for k in range(NEIGHBOURS):
                    jv = tb.load("nl", i * NEIGHBOURS + k)
                    j = int(jv.value)
                    xj = tb.load("x", j)
                    yj = tb.load("y", j)
                    zj = tb.load("z", j)
                    dx = tb.fsub(xi, xj)
                    dy = tb.fsub(yi, yj)
                    dz = tb.fsub(zi, zj)
                    r2 = tb.fadd(tb.fadd(tb.fmul(dx, dx), tb.fmul(dy, dy)),
                                 tb.fmul(dz, dz))
                    r2inv = tb.fdiv(1.0, r2)
                    r6inv = tb.fmul(tb.fmul(r2inv, r2inv), r2inv)
                    pot = tb.fmul(r6inv,
                                  tb.fsub(tb.fmul(LJ1, r6inv), LJ2))
                    force = tb.fmul(r2inv, pot)
                    fx = tb.fadd(fx, tb.fmul(force, dx))
                    fy = tb.fadd(fy, tb.fmul(force, dy))
                    fz = tb.fadd(fz, tb.fmul(force, dz))
                tb.store("fx", i, fx)
                tb.store("fy", i, fy)
                tb.store("fz", i, fz)
        return tb

    def verify(self, trace):
        x = trace.arrays["x"].data
        y = trace.arrays["y"].data
        z = trace.arrays["z"].data
        nl = trace.arrays["nl"].data
        for i in range(ATOMS):
            fx = fy = fz = 0.0
            for k in range(NEIGHBOURS):
                j = nl[i * NEIGHBOURS + k]
                dx, dy, dz = x[i] - x[j], y[i] - y[j], z[i] - z[j]
                r2 = dx * dx + dy * dy + dz * dz
                r2inv = 1.0 / r2
                r6inv = r2inv ** 3
                force = r2inv * (r6inv * (LJ1 * r6inv - LJ2))
                fx += force * dx
                fy += force * dy
                fz += force * dz
            for name, ref in (("fx", fx), ("fy", fy), ("fz", fz)):
                got = trace.arrays[name].data[i]
                if abs(ref - got) > 1e-6 * max(1.0, abs(ref)):
                    raise AssertionError(f"{name}[{i}] = {got}, want {ref}")
