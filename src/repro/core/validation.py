"""Figure 4: performance-model validation.

The paper validates gem5-Aladdin against the Zynq Zedboard and reports
average errors of 6.4% (DMA model), 5% (Aladdin compute), and 5% (the
flush/invalidate analytic model).  With no FPGA available, we run the same
*model-vs-reference* experiment with the detailed event-driven co-simulation
as the reference (DESIGN.md substitution #2): the closed-form phase model of
:mod:`repro.core.analytic` plays the role of the performance model under
test, per benchmark and per component.

The paper's measured errors are recorded here for side-by-side reporting in
EXPERIMENTS.md.
"""

from repro.core.analytic import predict_phases, predict_total
from repro.core.config import DesignPoint, SoCConfig
from repro.sim.stats import total_covered

# Reported in Section III-F.
PAPER_ERRORS = {
    "dma_model_avg": 0.064,
    "aladdin_avg": 0.05,
    "flush_model_avg": 0.05,
    "validated_against": "Xilinx Zynq Zedboard, Vivado HLS 2015.1",
}


class ValidationRow:
    """Per-benchmark model-vs-simulation comparison."""

    def __init__(self, workload, predicted_ticks, measured_ticks,
                 component_errors):
        self.workload = workload
        self.predicted_ticks = predicted_ticks
        self.measured_ticks = measured_ticks
        self.component_errors = component_errors

    @property
    def total_error(self):
        if self.measured_ticks == 0:
            return 0.0
        return abs(self.predicted_ticks - self.measured_ticks) \
            / self.measured_ticks


def validate_workload(workload, design=None, cfg=None):
    """Compare the analytic model against detailed simulation for one
    benchmark, total and per phase (flush, DMA, compute)."""
    design = design or DesignPoint(lanes=4, partitions=4,
                                   mem_interface="dma",
                                   pipelined_dma=False,
                                   dma_triggered_compute=False)
    cfg = cfg or SoCConfig()
    soc_result = _detailed_run(workload, design, cfg)
    phases = predict_phases(workload, design, cfg)
    predicted = predict_total(workload, design, cfg)

    measured_flush = soc_result["flush_ticks"]
    measured_dma = soc_result["dma_ticks"]
    measured_compute = soc_result["compute_ticks"]

    def err(pred, meas):
        return abs(pred - meas) / meas if meas else 0.0

    component_errors = {
        "flush": err(phases.flush, measured_flush),
        "dma": err(phases.dma_in + phases.dma_out, measured_dma),
        "compute": err(phases.compute, measured_compute),
    }
    return ValidationRow(workload, predicted, soc_result["total_ticks"],
                         component_errors)


def _detailed_run(workload, design, cfg):
    from repro.core.soc import SoC  # local import to avoid cycle at import

    soc = SoC(workload, design, cfg)
    result = soc.run()
    return {
        "total_ticks": result.total_ticks,
        "flush_ticks": total_covered(soc.driver.flush_busy.intervals),
        "dma_ticks": total_covered(soc.dma.busy.intervals),
        "compute_ticks": soc.scheduler.compute_ticks,
        "result": result,
    }


def validate_suite(workloads, design=None, cfg=None):
    """Run Figure 4 for a set of benchmarks; returns rows + averages."""
    rows = [validate_workload(w, design, cfg) for w in workloads]
    avg_total = sum(r.total_error for r in rows) / len(rows)
    avg_components = {
        key: sum(r.component_errors[key] for r in rows) / len(rows)
        for key in ("flush", "dma", "compute")
    }
    return {
        "rows": rows,
        "avg_total_error": avg_total,
        "avg_component_errors": avg_components,
        "paper_errors": PAPER_ERRORS,
    }
