"""Figure 4: performance-model validation.

The paper validates gem5-Aladdin against the Zynq Zedboard and reports
average errors of 6.4% (DMA model), 5% (Aladdin compute), and 5% (the
flush/invalidate analytic model).  With no FPGA available, we run the same
*model-vs-reference* experiment with the detailed event-driven co-simulation
as the reference (DESIGN.md substitution #2): the closed-form phase model of
:mod:`repro.core.analytic` plays the role of the performance model under
test, per benchmark and per component.

The paper's measured errors are recorded here for side-by-side reporting in
EXPERIMENTS.md.
"""

import math

from repro.core.analytic import predict_phases, predict_total
from repro.core.config import DesignPoint, SoCConfig
from repro.sim.stats import total_covered

# Reported in Section III-F.
PAPER_ERRORS = {
    "dma_model_avg": 0.064,
    "aladdin_avg": 0.05,
    "flush_model_avg": 0.05,
    "validated_against": "Xilinx Zynq Zedboard, Vivado HLS 2015.1",
}


def relative_error(predicted, measured):
    """``|predicted - measured| / measured`` with honest zero handling.

    A zero measurement with a nonzero prediction is *unbounded* model
    error, not perfect agreement: it reports ``float("inf")`` so callers
    must treat such rows distinctly (see :func:`validate_suite`, which
    flags and excludes them from averages).  Only the 0-vs-0 case is a
    true 0.0.
    """
    if measured == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - measured) / measured


class ValidationRow:
    """Per-benchmark model-vs-simulation comparison."""

    def __init__(self, workload, predicted_ticks, measured_ticks,
                 component_errors):
        self.workload = workload
        self.predicted_ticks = predicted_ticks
        self.measured_ticks = measured_ticks
        self.component_errors = component_errors

    @property
    def total_error(self):
        return relative_error(self.predicted_ticks, self.measured_ticks)

    @property
    def degenerate(self):
        """True when any comparison divided by a zero measurement while
        the model predicted nonzero time (error is unbounded, not 0%)."""
        return math.isinf(self.total_error) or any(
            math.isinf(e) for e in self.component_errors.values())


def validate_workload(workload, design=None, cfg=None):
    """Compare the analytic model against detailed simulation for one
    benchmark, total and per phase (flush, DMA, compute)."""
    design = design or DesignPoint(lanes=4, partitions=4,
                                   mem_interface="dma",
                                   pipelined_dma=False,
                                   dma_triggered_compute=False)
    cfg = cfg or SoCConfig()
    soc_result = _detailed_run(workload, design, cfg)
    phases = predict_phases(workload, design, cfg)
    predicted = predict_total(workload, design, cfg)

    measured_flush = soc_result["flush_ticks"]
    measured_dma = soc_result["dma_ticks"]
    measured_compute = soc_result["compute_ticks"]

    component_errors = {
        "flush": relative_error(phases.flush, measured_flush),
        "dma": relative_error(phases.dma_in + phases.dma_out, measured_dma),
        "compute": relative_error(phases.compute, measured_compute),
    }
    return ValidationRow(workload, predicted, soc_result["total_ticks"],
                         component_errors)


def _detailed_run(workload, design, cfg):
    from repro.core.soc import SoC  # local import to avoid cycle at import

    soc = SoC(workload, design, cfg)
    result = soc.run()
    return {
        "total_ticks": result.total_ticks,
        "flush_ticks": total_covered(soc.driver.flush_busy.intervals),
        "dma_ticks": total_covered(soc.dma.busy.intervals),
        "compute_ticks": soc.scheduler.compute_ticks,
        "result": result,
    }


def _finite_average(values):
    """Mean over the finite entries; ``inf`` when none are finite.

    Degenerate comparisons (zero measurement, nonzero prediction) carry
    unbounded error — averaging them in would poison the suite metric,
    and silently dropping them to 0.0 would mask broken models, so they
    are excluded here and reported separately by :func:`validate_suite`.
    """
    finite = [v for v in values if not math.isinf(v)]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)


def validate_suite(workloads, design=None, cfg=None):
    """Run Figure 4 for a set of benchmarks; returns rows + averages.

    Rows whose total error is degenerate (a zero-length measured phase
    against a nonzero prediction reads as ``inf``, never as 0%) are
    listed under ``degenerate_rows`` and excluded from the averages.
    """
    workloads = list(workloads)
    if not workloads:
        raise ValueError("no workloads")
    rows = [validate_workload(w, design, cfg) for w in workloads]
    avg_total = _finite_average([r.total_error for r in rows])
    avg_components = {
        key: _finite_average([r.component_errors[key] for r in rows])
        for key in ("flush", "dma", "compute")
    }
    return {
        "rows": rows,
        "avg_total_error": avg_total,
        "avg_component_errors": avg_components,
        "degenerate_rows": [r.workload for r in rows if r.degenerate],
        "paper_errors": PAPER_ERRORS,
    }
