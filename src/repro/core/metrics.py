"""Run metrics: cycle-class breakdowns, energy, EDP.

Implements the paper's two runtime decompositions:

* Section IV-C (DMA designs): every cycle of the offload is classified as
  flush-only, DMA/flush (DMA running, no compute), compute/DMA (both
  overlapped), compute-only, or other (driver setup, invalidates,
  completion signalling).
* Section IV-E (cache designs): the Burger-style processing / latency /
  bandwidth decomposition, produced by differencing three runs
  (:func:`repro.core.figures` drives those).
"""

from repro.sim.stats import intersect, merge_intervals, subtract, total_covered
from repro.units import edp, power_mw, ticks_to_us


def classify_breakdown(total_span, flush_intervals, dma_intervals,
                       compute_intervals):
    """Partition [0, total_span) ticks into the paper's cycle classes.

    Returns a dict of tick totals:
      ``flush_only``  - flush active, neither DMA nor compute
      ``dma_flush``   - DMA active (flush may overlap), no compute
      ``compute_dma`` - compute and DMA overlapped
      ``compute_only``- compute active, no DMA
      ``other``       - none of the engines active (driver setup, ioctl,
                        invalidates, completion polling)
    """
    flush = merge_intervals(flush_intervals)
    dma = merge_intervals(dma_intervals)
    compute = merge_intervals(compute_intervals)
    compute_dma = total_covered(intersect(compute, dma))
    compute_only = total_covered(subtract(compute, dma))
    dma_flush = total_covered(subtract(dma, compute))
    flush_only = total_covered(subtract(subtract(flush, dma), compute))
    covered = (compute_dma + compute_only + dma_flush + flush_only)
    return {
        "flush_only": flush_only,
        "dma_flush": dma_flush,
        "compute_dma": compute_dma,
        "compute_only": compute_only,
        "other": max(total_span - covered, 0),
    }


class RunResult:
    """Everything measured from one co-designed (or isolated) run."""

    #: How this result was obtained: ``"exact"`` for the event-driven
    #: co-simulation; the calibrated analytic tier overrides this with
    #: ``"fast"`` (see :class:`repro.core.calibrate.FastResult`).
    fidelity = "exact"

    def __init__(self, workload, design, total_ticks, accel_cycles,
                 breakdown, energy, stats=None, area=None):
        self.workload = workload
        self.design = design
        self.total_ticks = total_ticks
        self.accel_cycles = accel_cycles
        self.breakdown = breakdown                # tick totals per class
        self.energy = energy                      # EnergyBreakdown
        self.energy_pj = energy.total_pj
        self.power_mw = power_mw(self.energy_pj, total_ticks)
        self.edp = edp(self.energy_pj, total_ticks)
        self.stats = stats or {}
        self.area = area                          # AreaBreakdown or None

    @property
    def area_mm2(self):
        return self.area.total_mm2 if self.area is not None else None

    @property
    def time_us(self):
        return ticks_to_us(self.total_ticks)

    def breakdown_fractions(self):
        """Cycle-class fractions of total runtime (sums to 1.0)."""
        if self.total_ticks == 0:
            return {k: 0.0 for k in self.breakdown}
        return {k: v / self.total_ticks for k, v in self.breakdown.items()}

    @property
    def compute_fraction(self):
        """Fraction of the offload during which the datapath was computing
        (Figure 2a reports ~25% for md-knn at 16 lanes, baseline DMA)."""
        frac = self.breakdown_fractions()
        return frac["compute_dma"] + frac["compute_only"]

    def summary(self):
        """One-line human-readable summary."""
        return (f"{self.workload:18s} {self.design!r:60s} "
                f"t={self.time_us:9.2f}us p={self.power_mw:7.3f}mW "
                f"edp={self.edp:.3e}")
