"""SoC composition and end-to-end offload flows.

Builds the system of Figure 3 and runs complete offloads:

**DMA flow** (Section II-B, with Section IV-B's optimizations):
CPU flushes the input regions from its caches (per line, writing dirty data
back to DRAM), invalidates the return region, programs the DMA engine, and
the accelerator computes out of scratchpads — starting after the full
transfer (baseline), or per 4 KB block behind the pipelined flush, or
immediately with full/empty-bit gating (DMA-triggered compute).  Results
stream back via DMA and the accelerator signals completion through a shared
flag the CPU spin-waits on.

**Cache flow** (Sections III-D/E): the CPU invokes the accelerator via
ioctl with no flushes at all; the accelerator's coherent cache pulls data on
demand — dirty input lines are forwarded cache-to-cache from the CPU's
cache under MOESI — with address translation through the accelerator TLB.
A fence orders the final stores before the completion signal.

All engines run in one event queue, so DMA bursts, cache fills, flush
writebacks, and background traffic genuinely contend on the bus and DRAM.

The platform (bus, DRAM, coherence domain, CPU cache) is factored into
:class:`Platform` so several accelerators can share it — Figure 3 draws
ACCEL0 and ACCEL1 on one bus; see :mod:`repro.core.multi`.
"""

from repro.aladdin.area import AreaModel
from repro.aladdin.power import PowerModel
from repro.check import resolve_check
from repro.aladdin.modulo import plan_ii
from repro.aladdin.scheduler import (
    CacheInterface,
    DatapathScheduler,
    SpadInterface,
)
from repro.aladdin.transforms import assign_lanes
from repro.core.config import DesignPoint, SoCConfig
from repro.core.metrics import RunResult, classify_breakdown
from repro.cpu.driver import CPUDriver, DriverTimings
from repro.dma.descriptor import DMADescriptor
from repro.dma.engine import DMAEngine
from repro.errors import SimulationError
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.memory.sram import ArraySpec, Scratchpad
from repro.memory.tlb import AcceleratorTLB
from repro.memory.traffic import TrafficGenerator
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator
from repro.sim.ports import MemRequest
from repro.units import ns_to_ticks
from repro.workloads import cached_ddg, cached_trace

PHYS_BASE = 0x1000_0000
VIRT_BASE = 0x0010_0000
PAGE = 4096
SIGNAL_BASE = 0x0FFF_0000  # shared completion flags, one line per accel

INPUT_KINDS = ("input", "inout")
OUTPUT_KINDS = ("output", "inout")


def _page_align(n):
    return (n + PAGE - 1) // PAGE * PAGE


class Platform:
    """The shared half of the SoC: clocks, bus, DRAM, coherence, CPU cache.

    One platform can host several accelerators (each an :class:`SoC`
    instance built with ``platform=``); they contend on the same bus and
    DRAM banks, which is exactly the shared-resource scenario of
    Section IV-A.
    """

    def __init__(self, cfg=None, check=None):
        self.cfg = cfg or SoCConfig()
        self.sim = Simulator()
        self.accel_clock = ClockDomain(self.cfg.accel_clock_mhz)
        self.bus_clock = ClockDomain(self.cfg.accel_clock_mhz)
        self.cpu_clock = ClockDomain(self.cfg.cpu_clock_mhz)
        self.dram = DRAM(self.sim, banks=self.cfg.dram_banks,
                         row_bytes=self.cfg.dram_row_bytes,
                         row_hit_ns=self.cfg.dram_row_hit_ns,
                         row_miss_ns=self.cfg.dram_row_miss_ns)
        self.bus = SystemBus(self.sim, self.bus_clock,
                             self.cfg.bus_width_bits, downstream=self.dram)
        self.domain = CoherenceDomain(self.sim, self.bus)
        self.cpu_cache = Cache(self.sim, self.cpu_clock, "cpu-l2",
                               self.cfg.cpu_cache_kb * 1024,
                               self.cfg.cpu_cache_line,
                               assoc=8, mshrs=self.cfg.mshrs)
        self.domain.register(self.cpu_cache)
        self._next_offset = 0
        self._num_accels = 0
        self.socs = []  # every SoC built on this platform registers here
        # Streaming handoff buffers between pipeline stages
        # (repro.core.pipeline); the leak audit walks these too.
        self.handoff_links = []
        # Runtime correctness checking (repro.check): ``check`` may be a
        # Checker, a bool, or None (= honor $REPRO_CHECK).  Detached, the
        # per-transition hooks cost one ``is None`` test.
        self.checker = resolve_check(check)
        if self.checker is not None:
            self.checker.attach(self)

    def alloc_region(self, size_bytes):
        """Reserve a page-aligned window of the shared address space."""
        offset = self._next_offset
        self._next_offset += _page_align(size_bytes)
        return offset

    def next_accel_id(self):
        """Allocate the next accelerator slot on this platform."""
        accel_id = self._num_accels
        self._num_accels += 1
        return accel_id

    def make_driver(self, name):
        """A CPU driver bound to this platform's shared CPU cache."""
        cfg = self.cfg
        return CPUDriver(
            self.sim, self.cpu_clock, cpu_cache=self.cpu_cache,
            dram=self.dram,
            timings=DriverTimings(cfg.flush_ns_per_line,
                                  cfg.invalidate_ns_per_line,
                                  cfg.ioctl_ns, cfg.poll_interval_ns),
            line_size=cfg.cpu_cache_line, name=name)

    def reg_stats(self, stats):
        """Register the shared platform's counters under ``soc.*``.

        Idempotent per registry: several SoCs sharing one platform (the
        multi-accelerator scenario) register the shared half only once.
        """
        if "soc.sim.events" in stats:
            return
        self.sim.reg_stats(stats, "soc.sim")
        self.bus.reg_stats(stats, "soc.bus")
        self.dram.reg_stats(stats, "soc.dram")
        self.domain.reg_stats(stats, "soc.coherence")
        self.cpu_cache.reg_stats(stats, "soc.cpu_cache")
        if self.checker is not None:
            self.checker.reg_stats(stats, "check")


class SoC:
    """One accelerator plus its platform, wired for a single offload.

    Standalone use builds a private :class:`Platform`; pass ``platform=``
    to share one between accelerators (see :class:`repro.core.multi.
    MultiAcceleratorSoC`).
    """

    def __init__(self, workload, design=None, cfg=None, platform=None,
                 check=None):
        self.workload = workload
        self.design = design or DesignPoint()
        if platform is not None:
            if cfg is not None:
                raise SimulationError(
                    "pass cfg via the shared Platform, not per-SoC")
            if check is not None:
                raise SimulationError(
                    "pass check via the shared Platform, not per-SoC")
        self.platform = platform or Platform(cfg, check=check)
        self.cfg = self.platform.cfg
        self.trace = cached_trace(workload)
        self.ddg = cached_ddg(workload)
        self.accel_id = self.platform.next_accel_id()
        self.platform.socs.append(self)
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self):
        design, cfg, plat = self.design, self.cfg, self.platform
        self.sim = plat.sim
        self.accel_clock = plat.accel_clock
        self.bus = plat.bus
        self.dram = plat.dram
        self.domain = plat.domain
        self.cpu_cache = plat.cpu_cache

        self._map_shared_regions()

        self.driver = plat.make_driver(f"cpu{self.accel_id}")
        self.assignment = assign_lanes(self.trace, design.lanes)
        self.accel_cache = None
        self.tlb = None
        self.dma = None
        self.ready_bits = {}

        if design.is_dma:
            self.spad = self._make_spad(kinds=None)
            self.dma = DMAEngine(self.sim, self.accel_clock, self.bus,
                                 setup_cycles=cfg.dma_setup_cycles,
                                 burst_bytes=cfg.dma_burst_bytes,
                                 max_outstanding=cfg.dma_max_outstanding,
                                 name=f"dma{self.accel_id}")
            if design.dma_triggered_compute:
                granularity = cfg.cpu_cache_line
                if design.double_buffer:
                    # Double buffering: track readiness at half-array
                    # granularity instead of cache lines (Section IV-B2).
                    granularity = None
                for name, decl in self.trace.arrays.items():
                    if decl.kind in INPUT_KINDS:
                        g = granularity or max(decl.size_bytes // 2,
                                               cfg.cpu_cache_line)
                        bits = ReadyBits(name, decl.size_bytes,
                                         granularity=g)
                        self.ready_bits[name] = bits
                self.dma.ready_bits = self.ready_bits
            mem_if = SpadInterface(self.sim, self.accel_clock, self.spad,
                                   ready_bits=self.ready_bits)
        else:
            self.spad = self._make_spad(kinds=("internal",))
            self.accel_cache = Cache(
                self.sim, self.accel_clock, f"accel{self.accel_id}-cache",
                design.cache_size_kb * 1024, design.cache_line,
                design.cache_assoc, mshrs=cfg.mshrs,
                prefetcher=design.prefetcher)
            self.domain.register(self.accel_cache)
            self.tlb = AcceleratorTLB(self.sim, entries=cfg.tlb_entries,
                                      miss_latency_ns=cfg.tlb_miss_ns,
                                      name=f"accel{self.accel_id}-tlb")
            internal = [n for n, d in self.trace.arrays.items()
                        if d.kind == "internal"]
            mem_if = CacheInterface(
                self.sim, self.accel_clock, self.accel_cache, self.tlb,
                addr_map=self.virt_base, phys_offset=PHYS_BASE - VIRT_BASE,
                ports=design.cache_ports, spad=self.spad,
                internal_arrays=internal, perfect=design.perfect_memory)

        self.ii_plan = None
        if design.pipelining == "modulo":
            # Memory issue bandwidth seen by the datapath: scratchpad
            # ports for DMA designs, cache ports for cache designs.
            if design.is_dma:
                mem_slots = design.partitions * design.spad_ports
            else:
                mem_slots = design.cache_ports
            self.ii_plan = plan_ii(self.ddg, self.assignment,
                                   mem_slots_per_cycle=mem_slots,
                                   ii=design.ii)
        plan = self.ii_plan
        self.scheduler = DatapathScheduler(
            self.sim, self.accel_clock, self.ddg, self.assignment, mem_if,
            on_done=self._on_compute_done,
            name=f"{self.workload}-accel{self.accel_id}",
            pipelining=design.pipelining,
            ii=plan.ii if plan else 0,
            rec_mii=plan.rec_mii if plan else 0,
            res_mii=plan.res_mii if plan else 0)

        self.traffic = None
        if cfg.background_traffic:
            self.traffic = TrafficGenerator(
                self.sim, self.bus, plat.bus_clock,
                burst_bytes=cfg.traffic_burst_bytes,
                interval_cycles=cfg.traffic_interval_cycles)

        self._signaled = False
        self._flow_done = False
        self._end_tick = None

    def _map_shared_regions(self):
        """Lay out this accelerator's shared-memory windows.

        One page-aligned physical region per non-internal array, then the
        CPU side: cache full of the (dirty) input data it just generated,
        plus stale copies of the return region.  Pipeline stages override
        :meth:`_cpu_generated` — arrays fed by an upstream accelerator
        were never touched by the CPU, so they must not be preloaded.
        """
        plat = self.platform
        self.phys_base = {}
        self.virt_base = {}
        for name, decl in self.trace.arrays.items():
            if decl.kind == "internal":
                continue
            offset = plat.alloc_region(decl.size_bytes)
            self.phys_base[name] = PHYS_BASE + offset
            self.virt_base[name] = VIRT_BASE + offset
        for name, decl in self.trace.arrays.items():
            if decl.kind != "internal" and self._cpu_generated(name):
                self.cpu_cache.preload(self.phys_base[name], decl.size_bytes)

    def _cpu_generated(self, _array):
        """True when the CPU's cache holds (stale or dirty) copies of the
        array before the offload.  Standalone offloads: every shared
        array."""
        return True

    def _make_spad(self, kinds):
        design = self.design
        specs = [ArraySpec(d.name, d.size_bytes, d.word_bytes)
                 for d in self.trace.arrays.values()
                 if kinds is None or d.kind in kinds]
        if not specs:
            # Cache-based design with no private arrays: a minimal stub bank
            # keeps the interfaces uniform.
            specs = [ArraySpec("__none__", 64, 4)]
        return Scratchpad(specs, design.partitions, design.spad_ports)

    # -- flow helpers -------------------------------------------------------

    def _input_regions(self):
        """Input regions in first-use order (the order of the kernel's
        dmaLoad calls), so DMA-triggered compute unblocks early."""
        order = self.trace.first_use_order()
        return [(name, self.phys_base[name],
                 self.trace.arrays[name].size_bytes)
                for name in order
                if self.trace.arrays[name].kind in INPUT_KINDS]

    def _output_regions(self):
        return [(name, self.phys_base[name], d.size_bytes)
                for name, d in self.trace.arrays.items()
                if d.kind in OUTPUT_KINDS]

    def _input_blocks(self):
        """Page-sized (flush block, DMA descriptor) units, in address order."""
        blocks = []
        block_bytes = self.cfg.dma_block_bytes
        for name, phys, size in self._input_regions():
            offset = 0
            while offset < size:
                chunk = min(block_bytes, size - offset)
                blocks.append((name, phys + offset, offset, chunk))
                offset += chunk
        return blocks

    # -- the offload flows ----------------------------------------------------

    def launch(self):
        """Start this accelerator's offload (does not run the simulator)."""
        if self.design.is_dma:
            self._start_dma_flow()
        else:
            self._start_cache_flow()
        if self.traffic is not None:
            self.traffic.start(lambda: self._flow_done)
        self.sim.add_done_dependency(lambda: self._flow_done)

    def run(self):
        """Execute the offload to completion; returns a :class:`RunResult`.

        With checking enabled (``check=`` / ``$REPRO_CHECK``) the
        end-of-run leak audit runs before results are collected, so a run
        that leaked resources raises instead of reporting optimistic
        numbers.
        """
        self.launch()
        self.sim.run()
        checker = self.platform.checker
        if checker is not None:
            checker.audit(self.platform)
        return self.collect()

    # DMA mode ---------------------------------------------------------------

    def _start_dma_flow(self):
        design = self.design
        if design.pipelined_dma:
            blocks = self._input_blocks()
            if design.dma_triggered_compute:
                self.scheduler.start()
            self._flush_block(blocks, 0)
        else:
            regions = self._input_regions()
            self._flush_region_seq(regions, 0)

    def _flush_block(self, blocks, idx):
        """Pipelined DMA: flush block b, then DMA it while flushing b+1."""
        if idx >= len(blocks):
            self._after_input_flushes()
            return
        name, phys, offset, size = blocks[idx]

        def flushed():
            desc = DMADescriptor(phys, name, offset, size, to_accel=True)
            self.dma.enqueue([desc], on_done=(
                self._dma_in_done if idx == len(blocks) - 1 else None))
            self._flush_block(blocks, idx + 1)

        self.driver.flush_region(phys, size, flushed)

    def _flush_region_seq(self, regions, idx):
        """Baseline DMA: flush everything first."""
        if idx >= len(regions):
            self._after_input_flushes()
            return
        _name, phys, size = regions[idx]
        self.driver.flush_region(
            phys, size, lambda: self._flush_region_seq(regions, idx + 1))

    def _after_input_flushes(self):
        self._invalidate_outputs(0)

    def _invalidate_outputs(self, idx):
        outputs = [r for r in self._output_regions()]
        if idx >= len(outputs):
            self._after_output_invalidates()
            return
        _name, phys, size = outputs[idx]
        self.driver.invalidate_region(
            phys, size, lambda: self._invalidate_outputs(idx + 1))

    def _after_output_invalidates(self):
        """CPU-side setup finished.  Non-pipelined DMA invokes the
        accelerator now; pipelined DMA already has per-block transfers in
        flight (the last one signals :meth:`_dma_in_done`)."""
        if not self.design.pipelined_dma:
            self.driver.ioctl_invoke(self._program_bulk_dma)

    def _program_bulk_dma(self):
        descs = [DMADescriptor(phys, name, 0, size, to_accel=True)
                 for name, phys, size in self._input_regions()]
        if self.design.dma_triggered_compute:
            self.scheduler.start()
        self.dma.enqueue(descs, on_done=self._dma_in_done)

    def _dma_in_done(self):
        if not self.design.dma_triggered_compute:
            self.scheduler.start()

    def _on_compute_done(self):
        if self.design.is_dma:
            self._start_output_dma()
        else:
            # mfence: order the final stores, then signal.
            self.sim.schedule(ns_to_ticks(self.cfg.fence_ns),
                              self._after_fence)

    def _start_output_dma(self):
        """DMA the return regions back to shared memory, then signal.
        Pipeline stages interpose chunked, credit-gated pushes here."""
        descs = [DMADescriptor(phys, name, 0, size, to_accel=False)
                 for name, phys, size in self._output_regions()]
        if descs:
            self.dma.enqueue(descs, on_done=self._signal_completion)
        else:
            self._signal_completion()

    def _after_fence(self):
        """The cache flow's mfence retired; the final stores are ordered.
        Pipeline stages commit their handoff flags here."""
        self._signal_completion()

    # Cache mode ------------------------------------------------------------

    def _start_cache_flow(self):
        self.driver.ioctl_invoke(self.scheduler.start)

    # Completion --------------------------------------------------------------

    def _signal_completion(self):
        req = MemRequest(SIGNAL_BASE + 64 * self.accel_id, 8, is_write=True,
                         requester=f"accel{self.accel_id}-signal",
                         callback=self._flag_written)
        self.bus.request(req)
        self.driver.spin_wait(lambda: self._signaled, self._cpu_saw_done)

    def _flag_written(self, _req):
        self._signaled = True

    def _cpu_saw_done(self):
        self._flow_done = True
        self._end_tick = self.sim.now

    # -- results ---------------------------------------------------------------

    def collect(self):
        """Build the :class:`RunResult` after the simulation has finished."""
        if self._end_tick is None:
            raise SimulationError("offload flow never completed")
        total = self._end_tick
        breakdown = classify_breakdown(
            total,
            self.driver.flush_busy.intervals,
            self.dma.busy.intervals if self.dma else [],
            self.scheduler.busy.intervals,
        )
        model = PowerModel(self.design.lanes, self.trace.op_histogram())
        energy = model.energy(
            total,
            spad=self.spad,
            cache=self.accel_cache,
            tlb=self.tlb,
            cache_ports=self.design.cache_ports,
        )
        area = AreaModel.from_power_model(model).area(
            spad=self.spad, cache=self.accel_cache, tlb=self.tlb,
            cache_ports=self.design.cache_ports)
        stats = {
            "bus_utilization": self.bus.utilization(0, total),
            "bus_bytes": self.bus.bytes_transferred,
            "dram_row_hit_rate": self.dram.row_hit_rate(),
            "spad_conflicts": self.spad.conflicts,
            "lines_flushed": self.driver.lines_flushed,
            "lines_invalidated": self.driver.lines_invalidated,
            "compute_ticks": self.scheduler.compute_ticks,
        }
        if self.ii_plan is not None:
            stats["ii"] = self.ii_plan.ii
            stats["rec_mii"] = self.ii_plan.rec_mii
            stats["res_mii"] = self.ii_plan.res_mii
            stats["reservation_conflicts"] = \
                self.scheduler.reservation_conflicts
        if self.dma is not None:
            stats["dma_bytes"] = self.dma.bytes_moved
            stats["dma_transactions"] = self.dma.transactions
        if self.accel_cache is not None:
            stats["cache_miss_rate"] = self.accel_cache.miss_rate()
            stats["cache_hits"] = self.accel_cache.hits
            stats["cache_misses"] = self.accel_cache.misses
            stats["c2c_transfers"] = self.domain.cache_to_cache_transfers
        if self.tlb is not None:
            stats["tlb_miss_rate"] = self.tlb.miss_rate()
        return RunResult(self.workload, self.design, total,
                         self.accel_clock.ticks_to_cycles(total),
                         breakdown, energy, stats, area=area)

    # Backwards-compatible alias used by older tests/examples.
    def _result(self):
        return self.collect()

    # -- observability ---------------------------------------------------------

    def reg_stats(self, stats):
        """Register every counter of this SoC in ``stats``.

        Shared platform components land under ``soc.*`` (once per
        registry); this accelerator's own engines land under
        ``accel<id>.*`` and its CPU driver under ``cpu<id>.*``.  All stats
        are getter-backed mirrors of the live counters, so registration
        adds no per-event work — attach before or after :meth:`run`, the
        dumped values are identical.
        """
        self.platform.reg_stats(stats)
        accel = f"accel{self.accel_id}"
        self.driver.reg_stats(stats, f"cpu{self.accel_id}")
        self.scheduler.reg_stats(stats, f"{accel}.sched")
        self.spad.reg_stats(stats, f"{accel}.spad")
        if self.dma is not None:
            self.dma.reg_stats(stats, f"{accel}.dma")
        if self.accel_cache is not None:
            self.accel_cache.reg_stats(stats, f"{accel}.cache")
        if self.tlb is not None:
            self.tlb.reg_stats(stats, f"{accel}.tlb")
        return stats


def run_design(workload, design=None, cfg=None, profiler=None,
               registry=None, check=None):
    """Convenience wrapper: build an SoC and run one offload.

    ``profiler`` — an :class:`repro.sim.profiling.EventProfiler` — attaches
    to the run's event queue, attributing event counts and callback wall
    time per component.  When ``None`` (the default) the event loop takes
    its unprofiled path and pays no per-event overhead.

    ``registry`` — a :class:`repro.obs.stats.StatRegistry` — receives
    every component counter of the run under ``soc.*`` / ``accel0.*``
    names (see :meth:`SoC.reg_stats`); dump it afterwards with
    ``registry.dump_text()`` / ``registry.to_json()``.

    ``check`` — a :class:`repro.check.Checker`, ``True`` for a fresh one,
    ``False`` to force checking off, or ``None`` to honor ``$REPRO_CHECK``
    — enables MOESI invariant checking, the end-of-run leak audit, and
    deadlock diagnosis for this run.
    """
    soc = SoC(workload, design, cfg, check=check)
    if profiler is not None:
        soc.sim.queue.set_profiler(profiler)
    if registry is not None:
        soc.reg_stats(registry)
    return soc.run()
