"""Tiered-fidelity sweep backend: a calibrated analytic fast model.

The gem5 ecosystem wins order-of-magnitude sweep throughput from a
fidelity hierarchy (Atomic vs Timing vs O3 CPU models); gem5-Aladdin
itself validates a closed-form phase model against hardware at ~5-6%
error (Section III-F).  This module cashes that in for our sweeps:

* **Calibration** (:func:`calibrate_workload`): run a small sample of
  exact simulations per workload and design class, tabulate the isolated
  compute schedule over the sweep's (lanes, partitions, spad_ports)
  combinations, and least-squares-fit per-class correction coefficients
  over analytic phase features — flush/invalidate and DMA streaming terms
  for DMA designs (:mod:`repro.core.analytic`), functional cache-miss
  counts for cache designs.  The fitted factors persist as JSON in the
  sweep cache directory together with an in-sample error bound (computed
  with :func:`repro.core.validation.relative_error`).

* **Fast evaluation** (:meth:`Calibration.predict`): one design point
  becomes a table lookup plus a dot product — no event simulation — and
  returns a :class:`FastResult` (a :class:`~repro.core.metrics.RunResult`
  with ``fidelity == "fast"``).

* **Triage** (:func:`run_sweep_tiered` with ``fidelity="auto"``): sweep
  the whole space with the fast model, then run confirm-and-prune rounds:
  evaluate the predicted Pareto frontier exactly, prune every candidate
  whose *optimistic* prediction (``pred / (1 + b)``, with ``b`` the
  calibrated per-axis error bound) is dominated by a confirmed exact
  point, and
  repeat until no candidates remain.  Pruning only ever compares an
  exact measurement against an optimistic bound, so — as long as ``b``
  truly bounds the fast model's relative error — every true-frontier
  point gets confirmed and the exact-confirmed frontier equals the full
  exact sweep's frontier; dominance implies strictly better EDP, so the
  EDP optimum is preserved too.  Measured fast-vs-exact errors and
  pruned/confirmed counts are reported through
  :class:`~repro.core.sweeppool.SweepMetrics`.
"""

import hashlib
import json
import math
import os
import tempfile
import time

from repro.aladdin.accelerator import Accelerator
from repro.aladdin.area import AreaModel
from repro.aladdin.ir import Op
from repro.aladdin.power import PowerModel
from repro.core.analytic import INPUT_KINDS, OUTPUT_KINDS, dma_transfer_ticks
from repro.core.config import SoCConfig
from repro.core.metrics import RunResult
from repro.core.validation import relative_error
from repro.errors import CalibrationError
from repro.memory.sram import ArraySpec, Scratchpad
from repro.units import (
    freq_mhz_to_period_ticks,
    ns_to_ticks,
    ticks_to_seconds,
)
from repro.workloads import cached_trace

#: Bump when fit features or the persisted schema change.
CALIBRATION_VERSION = 3

#: Subdirectory of the sweep cache root holding calibration files.
CALIBRATION_DIR = "calibrations"

#: The persisted error bound is the in-sample maximum times this margin.
SAFETY_FACTOR = 1.5

#: Floor / ceiling on the persisted relative error bound.
MIN_ERROR_BOUND = 0.02
MAX_ERROR_BOUND = 0.95

#: Classes whose in-sample error exceeds this are rejected outright:
#: the analytic features demonstrably cannot express the class's
#: behaviour (fft-transpose's cache runtime, for one), so no guard band
#: derived from the fit can be trusted.  Rejected classes predict
#: ``None`` and the auto triage evaluates them exactly — correctness is
#: preserved, only the speedup is lost for that slice of the space.
MAX_FIT_ERROR = 0.5

_PAGE = 4096

FIDELITIES = ("exact", "fast", "auto")


def config_hash(cfg=None):
    """Short stable digest of a platform configuration.

    Calibrations are per (workload, SoCConfig): any platform parameter
    change (bus width, DRAM timing, driver constants) invalidates them.
    """
    cfg = cfg or SoCConfig()
    text = json.dumps(dict(cfg.__dict__), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def design_class(design):
    """The correction-factor bucket a design point falls into.

    DMA designs with different transfer optimizations have genuinely
    different phase composition (serial vs overlapped), so each
    (pipelined, triggered, double_buffer) combination is fitted
    separately.  Cache designs split by line size: the line sets both the
    miss penalty shape and the per-access energy, and one pooled fit
    across lines roughly doubles the in-sample error (measured on
    bfs-bulk: pooled 0.19, split 0.08).
    """
    # The pipelining mode changes the compute-phase shape wholesale
    # (barrier-synchronized vs II-overlapped rounds), so non-default
    # modes get their own buckets.  Barrier-mode class names keep the
    # historic spelling so existing calibrations map over unchanged.
    suffix = "" if design.pipelining == "barriers" \
        else f":{design.pipelining}"
    if design.is_dma:
        return (f"dma:p{int(design.pipelined_dma)}"
                f"t{int(design.dma_triggered_compute)}"
                f"b{int(design.double_buffer)}{suffix}")
    return f"cache:l{design.cache_line}{suffix}"


# -- workload profiles (trace-derived, design-independent) --------------------

_PROFILE_MEMO = {}


def _workload_profile(workload):
    """Design-independent facts about one workload's trace."""
    cached = _PROFILE_MEMO.get(workload)
    if cached is not None:
        return cached
    trace = cached_trace(workload)
    in_bytes = out_bytes = 0
    input_sizes = []
    output_sizes = []
    shared_pages = 0
    internal = set()
    for name, decl in trace.arrays.items():
        if decl.kind == "internal":
            internal.add(name)
            continue
        shared_pages += -(-decl.size_bytes // _PAGE)
        if decl.kind in INPUT_KINDS:
            in_bytes += decl.size_bytes
            input_sizes.append(decl.size_bytes)
        if decl.kind in OUTPUT_KINDS:
            out_bytes += decl.size_bytes
            output_sizes.append(decl.size_bytes)
    internal_access = {}
    shared_accesses = 0
    for node, array in enumerate(trace.node_array):
        if array is None:
            continue
        if array in internal:
            internal_access[array] = internal_access.get(array, 0) + 1
        else:
            shared_accesses += 1
    model = PowerModel(1, trace.op_histogram())
    profile = {
        "in_bytes": in_bytes,
        "out_bytes": out_bytes,
        "input_sizes": tuple(input_sizes),
        "output_sizes": tuple(output_sizes),
        "shared_pages": shared_pages,
        "shared_accesses": shared_accesses,
        "internal_access": internal_access,
        "internal_arrays": tuple(sorted(internal)),
        "fu_dynamic_pj": model.fu_dynamic_pj(),
        "fu_leak_mw_per_lane": model.fu_leakage_mw(),  # lanes=1
        "fu_classes": model.fu_classes,
    }
    _PROFILE_MEMO[workload] = profile
    return profile


# -- functional cache model ---------------------------------------------------

_CACHE_PROFILE_MEMO = {}


def functional_cache_profile(workload, size_bytes, line, assoc,
                             prefetcher="none", prefetch_degree=2):
    """One-pass LRU set-associative simulation of the shared access stream.

    Replays the trace's static memory stream (shared arrays only, laid out
    page-aligned in declaration order exactly like
    :meth:`repro.core.soc.Platform.alloc_region`) against an idealized
    cache — including the strided prefetcher when the design enables it,
    since prefetch fills shift both the demand-miss count and pollution
    writebacks — yielding hit/miss/writeback *counts*: the structural
    inputs of the cache-design time and energy fits.  Memoized per
    geometry.
    """
    key = (workload, size_bytes, line, assoc, prefetcher, prefetch_degree)
    cached = _CACHE_PROFILE_MEMO.get(key)
    if cached is not None:
        return cached
    from repro.memory.prefetch import NullPrefetcher, StridePrefetcher
    trace = cached_trace(workload)
    base = {}
    word_bytes = {}
    offset = 0
    for name, decl in trace.arrays.items():
        if decl.kind == "internal":
            continue
        base[name] = offset
        word_bytes[name] = decl.word_bytes
        offset += -(-decl.size_bytes // _PAGE) * _PAGE
    if prefetcher == "stride":
        pf = StridePrefetcher(degree=prefetch_degree)
    else:
        pf = NullPrefetcher()
    num_sets = max(size_bytes // (line * assoc), 1)
    sets = [dict() for _ in range(num_sets)]  # tag -> dirty, LRU by order
    hits = misses = writebacks = prefetch_fills = reads = writes = 0

    def install(lineno, dirty):
        nonlocal writebacks
        s = sets[lineno % num_sets]
        tag = lineno // num_sets
        if len(s) >= assoc:
            victim = next(iter(s))
            if s.pop(victim):
                writebacks += 1
        s[tag] = dirty

    node_array = trace.node_array
    node_index = trace.node_index
    node_op = trace.node_op
    for node in range(len(node_array)):
        array = node_array[node]
        if array is None:
            continue
        b = base.get(array)
        if b is None:  # internal array: served by the scratchpad
            continue
        addr = b + node_index[node] * word_bytes[array]
        is_write = node_op[node] == Op.STORE
        if is_write:
            writes += 1
        else:
            reads += 1
        lineno = addr // line
        s = sets[lineno % num_sets]
        tag = lineno // num_sets
        if tag in s:
            hits += 1
            s[tag] = s.pop(tag) or is_write  # refresh LRU position
        else:
            misses += 1
            install(lineno, is_write)
        for target in pf.observe(array, addr, line):
            t_lineno = target // line
            t_set = sets[t_lineno % num_sets]
            if t_lineno // num_sets not in t_set:
                prefetch_fills += 1
                install(t_lineno, False)
    counts = {"hits": hits, "misses": misses, "writebacks": writebacks,
              "prefetch_fills": prefetch_fills,
              "reads": reads, "writes": writes}
    _CACHE_PROFILE_MEMO[key] = counts
    return counts


# -- isolated-compute tabulation ----------------------------------------------

def _cache_counts(workload, design):
    """(time, energy) functional count pairs for one cache design.

    Time features use the pure demand stream (``prefetcher="none"``): the
    fitted coefficients absorb average prefetch benefit, and emulated
    prefetch misses overstate serial cost because MSHRs overlap them.
    Energy counts emulate the design's actual prefetcher — every fill and
    pollution writeback costs a line transfer regardless of overlap.
    """
    size = design.cache_size_kb * 1024
    return (functional_cache_profile(workload, size, design.cache_line,
                                     design.cache_assoc),
            functional_cache_profile(workload, size, design.cache_line,
                                     design.cache_assoc,
                                     prefetcher=design.prefetcher))


def _combo_key(lanes, partitions, spad_ports,
               pipelining="barriers", ii="auto"):
    # Barrier-mode keys keep the historic "LxPxS" spelling so persisted
    # calibrations stay readable; other modes append ":mode:ii".
    key = f"{lanes}x{partitions}x{spad_ports}"
    if pipelining != "barriers":
        key += f":{pipelining}:{ii}"
    return key


def _norm_combo(combo):
    """Normalize a combo to (lanes, partitions, ports, pipelining, ii)."""
    combo = tuple(combo)
    if len(combo) == 3:
        combo += ("barriers", "auto")
    return combo


def tabulate_compute(workload, combos, progress=None):
    """Isolated-run table over the distinct datapath combinations.

    A combination is (lanes, partitions, spad_ports) — optionally
    extended with (pipelining, ii) for non-barrier designs.  The fast
    tier's compute phase is a lookup into this table — an isolated run
    costs a sizable fraction of an exact co-simulation, so paying it
    once per combination at calibration time (instead of per design
    point per sweep) is what makes fast predictions cheap.
    """
    trace = cached_trace(workload)
    hist = trace.op_histogram()
    table = {}
    combos = sorted({_norm_combo(c) for c in combos})
    for i, combo in enumerate(combos):
        lanes, partitions, spad_ports, pipelining, ii = combo
        ii_val = ii if ii == "auto" else int(ii)
        res = Accelerator(trace, lanes, partitions, spad_ports,
                          pipelining=pipelining, ii=ii_val).run_isolated()
        model = PowerModel(lanes, hist)
        table[_combo_key(*combo)] = {
            "ticks": res.ticks,
            "spad_dynamic_pj": model.spad_dynamic_pj(res.spad),
            "spad_leak_mw": model.spad_leakage_mw(res.spad),
            "area_mm2": res.area_mm2,
        }
        if progress is not None:
            progress(i + 1, len(combos))
    return table


# -- pure-python least squares ------------------------------------------------

def _solve(A, b):
    """Gaussian elimination with partial pivoting (small dense systems)."""
    n = len(A)
    M = [row[:] + [b[i]] for i, row in enumerate(A)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(M[r][col]))
        if abs(M[pivot][col]) < 1e-300:
            raise CalibrationError("singular normal equations in fit")
        M[col], M[pivot] = M[pivot], M[col]
        inv = 1.0 / M[col][col]
        for r in range(n):
            if r == col:
                continue
            f = M[r][col] * inv
            if f:
                for c in range(col, n + 1):
                    M[r][c] -= f * M[col][c]
    return [M[i][n] / M[i][i] for i in range(n)]


def _lstsq(rows, y, ridge=1e-8):
    """Ridge least squares with column normalization (conditioning)."""
    n, k = len(rows), len(rows[0])
    scale = [max(abs(rows[i][j]) for i in range(n)) or 1.0 for j in range(k)]
    X = [[rows[i][j] / scale[j] for j in range(k)] for i in range(n)]
    A = [[sum(X[i][a] * X[i][b] for i in range(n)) for b in range(k)]
         for a in range(k)]
    trace_a = sum(A[j][j] for j in range(k))
    lam = ridge * (trace_a / k if trace_a > 0 else 1.0)
    for j in range(k):
        A[j][j] += lam
    B = [sum(X[i][a] * y[i] for i in range(n)) for a in range(k)]
    beta = _solve(A, B)
    return [beta[j] / scale[j] for j in range(k)]


def nonneg_lstsq(rows, y, free=(0,)):
    """Least squares with nonnegative coefficients (clamp-and-refit).

    Physical correction factors scale phase durations and energies, so a
    negative coefficient is a sign of collinearity, not physics: the most
    negative constrained coefficient is dropped (pinned to zero) and the
    remainder refitted.  Columns in ``free`` (the intercept) may go
    negative.
    """
    k = len(rows[0])
    active = list(range(k))
    free = set(free)
    while True:
        sub = [[row[j] for j in active] for row in rows]
        beta = _lstsq(sub, y)
        worst = None
        for pos, j in enumerate(active):
            if j in free or beta[pos] >= 0.0:
                continue
            if worst is None or beta[pos] < beta[worst]:
                worst = pos
        if worst is None:
            out = [0.0] * k
            for pos, j in enumerate(active):
                out[j] = beta[pos]
            return out
        del active[worst]
        if not active:
            return [0.0] * k


def _rel_lstsq(rows, y, free=(0,)):
    """Nonnegative least squares on *relative* residuals.

    The calibration's contract is a bound on relative error, and exact
    runtimes span orders of magnitude across a class's grid, so fitting
    absolute residuals lets the large samples buy accuracy at the small
    samples' expense — up to negative predictions for the small ones
    (measured on fft-transpose).  Scaling each row by ``1/y`` makes
    least squares minimize the quantity the bound actually measures.
    """
    w = [1.0 / max(abs(v), 1e-12) for v in y]
    rows = [[f * wi for f in row] for row, wi in zip(rows, w)]
    return nonneg_lstsq(rows, [v * wi for v, wi in zip(y, w)], free=free)


def _dot(coeffs, features):
    return sum(c * f for c, f in zip(coeffs, features))


# -- feature builders ---------------------------------------------------------

def _dma_phase_terms(profile, design, cfg):
    """Cheap analytic phase terms (no isolated run, unlike predict_phases)."""
    line = cfg.cpu_cache_line
    flush_lines = sum(-(-size // line) for size in profile["input_sizes"])
    inval_lines = sum(-(-size // line) for size in profile["output_sizes"])
    in_bytes = profile["in_bytes"]
    if design.pipelined_dma:
        txns = max(1, -(-in_bytes // cfg.dma_block_bytes))
    else:
        txns = 1
    return {
        "flush": ns_to_ticks(flush_lines * cfg.flush_ns_per_line),
        "invalidate": ns_to_ticks(inval_lines * cfg.invalidate_ns_per_line),
        "dma_in": dma_transfer_ticks(in_bytes, cfg, transactions=txns),
        "dma_out": dma_transfer_ticks(profile["out_bytes"], cfg,
                                      transactions=1),
        "driver": ns_to_ticks(cfg.ioctl_ns + cfg.poll_interval_ns),
    }


def _time_features(profile, design, cfg, compute_ticks, cache_counts=None):
    """Structural time features; the fitted coefficients compose them.

    DMA: ``[1, compute, max(dma_in, compute)]`` — within one DMA class the
    flush/invalidate/driver/DMA terms are design-invariant (they fold into
    the intercept); what varies is the compute schedule and how much of
    the transfer it hides.  Cache: ``[1, compute, hit-service, miss-
    service, max(compute, hits), max(compute, hits + misses)]`` — port-
    serialized hits, DRAM-latency misses, and two bottleneck alternatives,
    because runtime is bottleneck-shaped (compute-bound at low lanes,
    port-bound at high), which no purely additive combination can
    express.  Which bottleneck applies depends on how well the workload's
    MSHRs overlap misses: the nonnegative fit picks per class, keeping
    misses additive where they overlap (gemm-ncubed) and folded into the
    bottleneck where they serialize (bfs-bulk).
    """
    if design.is_dma:
        t = _dma_phase_terms(profile, design, cfg)
        return [1.0, float(compute_ticks),
                float(max(t["dma_in"], compute_ticks))]
    period = freq_mhz_to_period_ticks(cfg.accel_clock_mhz)
    bus_bytes = cfg.bus_width_bits // 8
    penalty = (ns_to_ticks(cfg.dram_row_hit_ns)
               + -(-design.cache_line // bus_bytes) * period)
    hit_service = cache_counts["hits"] * period / design.cache_ports
    miss_service = float(cache_counts["misses"] * penalty)
    return [1.0, float(compute_ticks), hit_service, miss_service,
            float(max(compute_ticks, hit_service)),
            float(max(compute_ticks, hit_service + miss_service))]


class _Entries:
    def __init__(self, num_entries):
        self.num_entries = num_entries


class _CacheShim:
    """Just enough cache geometry + counts for the power/area models."""

    def __init__(self, design, cfg, counts):
        self.size_bytes = design.cache_size_kb * 1024
        self.assoc = design.cache_assoc
        self.reads = counts["reads"]
        self.writes = counts["writes"]
        self.fills = counts["misses"]
        self.prefetch_fills = counts.get("prefetch_fills", 0)
        self.writebacks = counts["writebacks"]
        self.mshrs = _Entries(cfg.mshrs)


class _TLBShim:
    def __init__(self, entries, hits, misses):
        self.entries = entries
        self.hits = hits
        self.misses = misses


_INTERNAL_SPAD_MEMO = {}


def _internal_spad(workload, partitions, spad_ports):
    """The internal-arrays-only scratchpad of a cache design, with its
    static access counts installed (for closed-form energy/area)."""
    key = (workload, partitions, spad_ports)
    cached = _INTERNAL_SPAD_MEMO.get(key)
    if cached is not None:
        return cached
    profile = _workload_profile(workload)
    trace = cached_trace(workload)
    specs = [ArraySpec(name, trace.arrays[name].size_bytes,
                       trace.arrays[name].word_bytes)
             for name in profile["internal_arrays"]]
    if not specs:  # mirror SoC._make_spad's uniform stub bank
        specs = [ArraySpec("__none__", 64, 4)]
    spad = Scratchpad(specs, partitions, spad_ports)
    spad.access_by_array.update(profile["internal_access"])
    _INTERNAL_SPAD_MEMO[key] = spad
    return spad


def _energy_features(workload, design, cfg, t_pred_ticks, combo_entry,
                     cache_counts=None):
    """``[1, dynamic_pj_estimate, leakage_pj_over_predicted_runtime]``."""
    profile = _workload_profile(workload)
    model = PowerModel(design.lanes, {})  # only used for closed-form parts
    dyn = profile["fu_dynamic_pj"]
    leak_mw = profile["fu_leak_mw_per_lane"] * design.lanes
    if design.is_dma:
        dyn += combo_entry["spad_dynamic_pj"]
        leak_mw += combo_entry["spad_leak_mw"]
    else:
        spad = _internal_spad(workload, design.partitions, design.spad_ports)
        dyn += model.spad_dynamic_pj(spad)
        leak_mw += model.spad_leakage_mw(spad)
        shim = _CacheShim(design, cfg, cache_counts)
        dyn += model.cache_dynamic_pj(shim)
        leak_mw += model.cache_leakage_mw(shim, design.cache_ports)
        misses = min(profile["shared_pages"], profile["shared_accesses"])
        tlb = _TLBShim(cfg.tlb_entries,
                       profile["shared_accesses"] - misses, misses)
        dyn += model.tlb_pj(tlb)
    leak_pj = leak_mw * 1e-3 * ticks_to_seconds(t_pred_ticks) * 1e12
    return [1.0, dyn, leak_pj]


# -- fast results -------------------------------------------------------------

class _FastEnergy:
    """Closed-form energy total standing in for an EnergyBreakdown."""

    def __init__(self, total_pj):
        self.total_pj = total_pj

    def as_dict(self):
        return {"fast_total": self.total_pj}


class _FastArea:
    def __init__(self, total_mm2):
        self.total_mm2 = total_mm2

    def as_dict(self):
        return {"fast_total_mm2": self.total_mm2}


class FastResult(RunResult):
    """A design point evaluated by the calibrated analytic model.

    Interchangeable with an exact :class:`RunResult` everywhere results
    flow (Pareto, EDP, export, reporting); distinguished by
    ``fidelity == "fast"``.
    """

    fidelity = "fast"


# -- the calibration artifact -------------------------------------------------

class ClassFit:
    """Fitted correction coefficients for one design class."""

    def __init__(self, time_coeffs, energy_coeffs, time_error_max,
                 power_error_max, samples):
        self.time_coeffs = list(time_coeffs)
        self.energy_coeffs = list(energy_coeffs)
        self.time_error_max = time_error_max
        self.power_error_max = power_error_max
        self.samples = samples

    def as_dict(self):
        return {
            "time_coeffs": self.time_coeffs,
            "energy_coeffs": self.energy_coeffs,
            "time_error_max": self.time_error_max,
            "power_error_max": self.power_error_max,
            "samples": self.samples,
        }

    @classmethod
    def from_dict(cls, doc):
        return cls(doc["time_coeffs"], doc["energy_coeffs"],
                   doc["time_error_max"], doc["power_error_max"],
                   doc["samples"])


class Calibration:
    """Per-(workload, platform) fast-model correction factors.

    Holds the isolated-compute table, per-class fitted coefficients, and
    the validated error bounds.  ``time_bound`` / ``power_bound`` bound
    the fast model's relative error per axis (time predicts tighter than
    power or vice versa, and the triage prunes per axis, so keeping them
    separate prunes strictly more than one pooled bound);
    ``error_bound`` / ``guard_band`` keep the pooled maximum for scalar
    consumers.  Persisted as JSON under
    ``<cache_dir>/calibrations/<workload>-<config_hash>.json``.
    """

    def __init__(self, workload, cfg_hash, density, compute_table, classes,
                 error_bound, guard_band, time_bound=None, power_bound=None,
                 rejected=None):
        self.workload = workload
        self.cfg_hash = cfg_hash
        self.density = density
        self.compute_table = dict(compute_table)
        self.classes = dict(classes)
        self.error_bound = error_bound
        self.guard_band = guard_band
        self.time_bound = error_bound if time_bound is None else time_bound
        self.power_bound = error_bound if power_bound is None else power_bound
        #: Classes whose fit failed validation (see ``MAX_FIT_ERROR``);
        #: they predict ``None`` and are always simulated exactly.
        self.rejected = dict(rejected or {})
        self._fallback = None

    # -- compute-table access ------------------------------------------------

    def _fallback_coeffs(self):
        """Hyperbolic ``[1, 1/l, 1/p, 1/(l*p)]`` fits for off-table combos."""
        if self._fallback is None:
            rows, targets = [], {"ticks": [], "spad_dynamic_pj": [],
                                 "spad_leak_mw": [], "area_mm2": []}
            for key, entry in self.compute_table.items():
                if ":" in key:
                    # Non-barrier entries have their own compute shape;
                    # pooling them would corrupt the hyperbolic fit.
                    continue
                lanes, parts, _ports = (int(v) for v in key.split("x"))
                rows.append([1.0, 1.0 / lanes, 1.0 / parts,
                             1.0 / (lanes * parts)])
                for field in targets:
                    targets[field].append(float(entry[field]))
            if not rows:
                return None
            self._fallback = {
                field: _rel_lstsq(rows, ys, free=(0,))
                for field, ys in targets.items()
            }
        return self._fallback

    def compute_entry(self, design):
        """Tabulated (or interpolated) isolated-run quantities.

        ``None`` for an uncovered non-barrier combination: the
        hyperbolic interpolation is fitted on barrier-mode schedules
        only, so extrapolating it to a pipelined compute shape would be
        silently wrong — the caller falls back to exact simulation.
        """
        entry = self.compute_table.get(
            _combo_key(design.lanes, design.partitions, design.spad_ports,
                       design.pipelining, str(design.ii)))
        if entry is not None:
            return entry
        if design.pipelining != "barriers":
            return None
        coeffs = self._fallback_coeffs()
        if coeffs is None:
            return None
        feats = [1.0, 1.0 / design.lanes, 1.0 / design.partitions,
                 1.0 / (design.lanes * design.partitions)]
        return {field: max(_dot(c, feats), 0.0)
                for field, c in coeffs.items()}

    # -- prediction ----------------------------------------------------------

    def predict(self, design, cfg=None):
        """Fast-evaluate one design point; ``None`` for uncovered classes."""
        cfg = cfg or SoCConfig()
        fit = self.classes.get(design_class(design))
        if fit is None:
            return None
        profile = _workload_profile(self.workload)
        entry = self.compute_entry(design)
        if entry is None:
            return None
        compute = max(int(round(entry["ticks"])), 1)
        time_counts = energy_counts = None
        if not design.is_dma:
            time_counts, energy_counts = _cache_counts(self.workload, design)
        tf = _time_features(profile, design, cfg, compute, time_counts)
        total = max(int(round(_dot(fit.time_coeffs, tf))), 1)
        ef = _energy_features(self.workload, design, cfg, total, entry,
                              energy_counts)
        energy_pj = max(_dot(fit.energy_coeffs, ef), 0.0)
        return FastResult(
            self.workload, design, total,
            total // freq_mhz_to_period_ticks(cfg.accel_clock_mhz),
            self._breakdown(profile, design, cfg, total, compute),
            _FastEnergy(energy_pj),
            stats={"fidelity": "fast"},
            area=self._area(design, cfg, entry, energy_counts))

    def _breakdown(self, profile, design, cfg, total, compute):
        """Approximate cycle classes that still sum to ``total``."""
        compute_only = min(compute, total)
        rest = total - compute_only
        if design.is_dma:
            t = _dma_phase_terms(profile, design, cfg)
            dma_flush = min(t["dma_in"] + t["dma_out"], rest)
            rest -= dma_flush
            flush_only = min(t["flush"], rest)
        else:
            dma_flush = flush_only = 0
        return {
            "flush_only": flush_only,
            "dma_flush": dma_flush,
            "compute_dma": 0,
            "compute_only": compute_only,
            "other": total - compute_only - dma_flush - flush_only,
        }

    def _area(self, design, cfg, entry, counts):
        if design.is_dma:
            return _FastArea(entry["area_mm2"])
        profile = _workload_profile(self.workload)
        spad = _internal_spad(self.workload, design.partitions,
                              design.spad_ports)
        shim = _CacheShim(design, cfg, counts)
        model = AreaModel(design.lanes, profile["fu_classes"])
        return model.area(spad=spad, cache=shim,
                          tlb=_TLBShim(cfg.tlb_entries, 0, 0),
                          cache_ports=design.cache_ports)

    # -- persistence ---------------------------------------------------------

    @staticmethod
    def path_for(cache_dir, workload, cfg=None):
        return os.path.join(cache_dir, CALIBRATION_DIR,
                            f"{workload}-{config_hash(cfg)}.json")

    def to_json(self):
        return {
            "version": CALIBRATION_VERSION,
            "workload": self.workload,
            "config_hash": self.cfg_hash,
            "density": self.density,
            "compute_table": self.compute_table,
            "classes": {key: fit.as_dict()
                        for key, fit in self.classes.items()},
            "error_bound": self.error_bound,
            "guard_band": self.guard_band,
            "time_bound": self.time_bound,
            "power_bound": self.power_bound,
            "rejected": {key: fit.as_dict()
                         for key, fit in self.rejected.items()},
        }

    @classmethod
    def from_json(cls, doc):
        if doc.get("version") != CALIBRATION_VERSION:
            raise CalibrationError(
                f"calibration version {doc.get('version')!r} != "
                f"{CALIBRATION_VERSION}")
        return cls(doc["workload"], doc["config_hash"], doc.get("density"),
                   doc["compute_table"],
                   {key: ClassFit.from_dict(fit)
                    for key, fit in doc["classes"].items()},
                   doc["error_bound"], doc["guard_band"],
                   time_bound=doc.get("time_bound"),
                   power_bound=doc.get("power_bound"),
                   rejected={key: ClassFit.from_dict(fit)
                             for key, fit in doc.get("rejected",
                                                     {}).items()})

    def save(self, cache_dir):
        """Atomically persist next to the sweep result cache."""
        path = self.path_for(cache_dir, self.workload)
        # path_for hashes a default config; self covers a specific one.
        path = os.path.join(cache_dir, CALIBRATION_DIR,
                            f"{self.workload}-{self.cfg_hash}.json")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(self.to_json(), f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    @classmethod
    def load(cls, cache_dir, workload, cfg=None):
        """The persisted calibration for (workload, cfg), or ``None``."""
        path = cls.path_for(cache_dir, workload, cfg)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            return None
        try:
            cal = cls.from_json(doc)
        except (CalibrationError, KeyError, TypeError):
            return None
        if cal.workload != workload or cal.cfg_hash != config_hash(cfg):
            return None
        return cal


# -- calibration --------------------------------------------------------------

def _mid(values):
    return values[len(values) // 2]


def _sample_designs(class_key, designs):
    """A small corner-plus-midpoint sample of one class's grid."""
    if class_key.startswith("dma"):
        lanes = sorted({d.lanes for d in designs})
        parts = sorted({d.partitions for d in designs})
        # Corners, centre, and the mid-edges: the DMA/compute overlap
        # regime flips in the middle of the lane range (compute-bound at
        # few lanes, transfer-bound at many), so corner-only sampling
        # underestimates the error right where the crossover sits.
        wanted = {(lanes[0], parts[0]), (lanes[0], parts[-1]),
                  (lanes[-1], parts[0]), (lanes[-1], parts[-1]),
                  (_mid(lanes), _mid(parts)),
                  (_mid(lanes), parts[0]), (_mid(lanes), parts[-1]),
                  (lanes[0], _mid(parts)), (lanes[-1], _mid(parts))}
        picks = []
        for pair in sorted(wanted):
            match = next((d for d in designs
                          if (d.lanes, d.partitions) == pair), None)
            if match is not None:
                picks.append(match)
    else:
        lanes = sorted({d.lanes for d in designs})
        sizes = sorted({d.cache_size_kb for d in designs})
        ports = sorted({d.cache_ports for d in designs})
        assoc = sorted({d.cache_assoc for d in designs})
        lines = sorted({d.cache_line for d in designs})
        wanted = {(l, s, p, assoc[0], ln)
                  for l in (lanes[0], lanes[-1])
                  for s in (sizes[0], sizes[-1])
                  for p in (ports[0], ports[-1])
                  for ln in (lines[0], lines[-1])}
        wanted.add((_mid(lanes), _mid(sizes), _mid(ports), assoc[-1],
                    _mid(lines)))
        # Port contention is worst at mid lane counts (enough parallelism
        # to saturate a port, not enough to be corner-sampled): cover both
        # port extremes there so the fit and the bound see that regime.
        wanted.add((_mid(lanes), sizes[0], ports[0], assoc[0], lines[-1]))
        wanted.add((_mid(lanes), sizes[0], ports[-1], assoc[0], lines[-1]))
        picks = []
        for combo in sorted(wanted):
            match = next((d for d in designs
                          if (d.lanes, d.cache_size_kb, d.cache_ports,
                              d.cache_assoc, d.cache_line) == combo), None)
            if match is not None:
                picks.append(match)
    seen, out = set(), []
    for d in picks:
        if d.key() not in seen:
            seen.add(d.key())
            out.append(d)
    return out


def _fit_class(workload, class_key, samples, results, cfg, table, cal_like):
    """Least-squares-fit one class's correction coefficients + errors."""
    profile = _workload_profile(workload)
    feats_t, y_t = [], []
    computes, counts_list = [], []
    for design, result in zip(samples, results):
        entry = cal_like.compute_entry(design)
        compute = max(int(round(entry["ticks"])), 1)
        time_counts = energy_counts = None
        if not design.is_dma:
            time_counts, energy_counts = _cache_counts(workload, design)
        computes.append((entry, compute))
        counts_list.append(energy_counts)
        feats_t.append(_time_features(profile, design, cfg, compute,
                                      time_counts))
        y_t.append(float(result.total_ticks))
    time_coeffs = _rel_lstsq(feats_t, y_t, free=(0,))
    t_preds = [max(int(round(_dot(time_coeffs, f))), 1) for f in feats_t]
    feats_e = [
        _energy_features(workload, design, cfg, t_pred, entry, counts)
        for design, t_pred, (entry, _c), counts
        in zip(samples, t_preds, computes, counts_list)
    ]
    energy_coeffs = _rel_lstsq(feats_e, [float(r.energy_pj)
                                         for r in results], free=(0,))
    time_err = 0.0
    power_err = 0.0
    from repro.units import power_mw as _power_mw
    for t_pred, f_e, result in zip(t_preds, feats_e, results):
        e_pred = max(_dot(energy_coeffs, f_e), 0.0)
        time_err = max(time_err,
                       relative_error(t_pred, result.total_ticks))
        power_err = max(power_err,
                        relative_error(_power_mw(e_pred, t_pred),
                                       result.power_mw))
    return ClassFit(time_coeffs, energy_coeffs, time_err, power_err,
                    len(samples))


def calibrate_workload(workload, cfg=None, density="standard",
                       designs=None, cache_dir=None, parallel=None,
                       metrics=None, progress=None, save=True,
                       executor=None):
    """Calibrate the fast model for one workload against exact simulation.

    Samples a handful of exact runs per design class (corners, centre and
    mid-edges of the grid), tabulates the isolated compute schedule over
    every (lanes, partitions, spad_ports) combination the grid sweeps,
    fits per-class correction coefficients, and derives the per-axis
    error bounds from the worst in-sample error times a safety margin.
    A class whose in-sample error exceeds :data:`MAX_FIT_ERROR` is
    rejected rather than trusted — its designs fall back to exact
    simulation — and does not inflate the surviving classes' bounds.

    ``designs`` names the grid to calibrate against — pass the exact
    design list a later fast/auto sweep will evaluate so every design
    class it touches gets a fit.  The default is the Figure-8 space at
    ``density``: all four DMA transfer-optimisation classes (pipelined x
    triggered, the paper's Section IV knobs) plus the cache space.

    The exact samples run through :func:`repro.core.sweep.run_sweep`, so
    with a ``cache_dir`` they land in the regular sweep result cache —
    a subsequent ``auto`` sweep confirms those points for free.  Returns
    the :class:`Calibration` (persisted under ``cache_dir`` when ``save``).
    """
    from repro.core.sweep import cache_design_space, dma_design_space
    from repro.core.sweep import run_sweep
    cfg = cfg or SoCConfig()
    if designs is None:
        designs = [d
                   for pipelined in (False, True)
                   for triggered in (False, True)
                   for d in dma_design_space(density, pipelined=pipelined,
                                             triggered=triggered)]
        designs += cache_design_space(density)
    class_grids = {}
    for design in designs:
        class_grids.setdefault(design_class(design), []).append(design)
    combos = {(d.lanes, d.partitions, d.spad_ports,
               d.pipelining, str(d.ii))
              for designs in class_grids.values() for d in designs}
    table = tabulate_compute(workload, combos, progress=progress)
    cal = Calibration(workload, config_hash(cfg), density, table, {},
                      MIN_ERROR_BOUND, MIN_ERROR_BOUND)
    classes = {}
    rejected = {}
    for class_key in sorted(class_grids):
        samples = _sample_designs(class_key, class_grids[class_key])
        results = run_sweep(workload, samples, cfg, parallel=parallel,
                            cache_dir=cache_dir, metrics=metrics,
                            executor=executor)
        fit = _fit_class(workload, class_key, samples, results, cfg,
                         table, cal)
        if max(fit.time_error_max, fit.power_error_max) > MAX_FIT_ERROR:
            rejected[class_key] = fit
        else:
            classes[class_key] = fit

    def _bound(worst):
        return min(max(worst * SAFETY_FACTOR, MIN_ERROR_BOUND),
                   MAX_ERROR_BOUND)

    if classes:
        time_bound = _bound(max(f.time_error_max for f in classes.values()))
        power_bound = _bound(max(f.power_error_max
                                 for f in classes.values()))
    else:  # nothing fitted: the fast tier is vacuous, bounds maximal
        time_bound = power_bound = MAX_ERROR_BOUND
    cal.classes = classes
    cal.rejected = rejected
    cal.error_bound = max(time_bound, power_bound)
    cal.guard_band = cal.error_bound
    cal.time_bound = time_bound
    cal.power_bound = power_bound
    if save and cache_dir:
        cal.save(cache_dir)
    return cal


# -- triage -------------------------------------------------------------------

def predicted_frontier(fast_results, candidates):
    """Candidate indices on the Pareto frontier of the *predictions*.

    Indices whose entry is ``None`` (uncalibrated or rejected class) are
    always included — they can only be resolved exactly.
    """
    batch = [i for i in candidates if fast_results[i] is None]
    pts = sorted((fast_results[i].total_ticks, fast_results[i].power_mw, i)
                 for i in candidates if fast_results[i] is not None)
    best_y = float("inf")
    for _x, y, i in pts:
        if y < best_y:
            best_y = y
            batch.append(i)
    return sorted(batch)


def prune_dominated(fast_results, candidates, exact_points, guard_band):
    """Candidates whose *optimistic* prediction survives exact dominance.

    With relative error at most ``b`` on an axis, the true value of a
    prediction ``p`` is at least ``p / (1 + b)``.  A candidate is pruned
    only when some exactly-measured point beats that optimistic bound on
    both axes — which proves the candidate is truly dominated and
    therefore off the true Pareto frontier (and, since dominance implies
    strictly better EDP, not the EDP optimum either).  ``guard_band`` is
    either one scalar or a ``(time_band, power_band)`` pair — per-axis
    bands prune strictly more when one axis predicts tighter than the
    other.  ``None`` entries are never pruned.
    """
    try:
        band_t, band_p = guard_band
    except TypeError:
        band_t = band_p = guard_band
    shrink_x = 1.0 / (1.0 + float(band_t))
    shrink_y = 1.0 / (1.0 + float(band_p))
    survivors = []
    for i in candidates:
        r = fast_results[i]
        if r is None:
            survivors.append(i)
            continue
        opt_x = r.total_ticks * shrink_x
        opt_y = r.power_mw * shrink_y
        if not any(x < opt_x and y < opt_y for x, y in exact_points):
            survivors.append(i)
    return survivors


def run_sweep_tiered(workload, designs, cfg=None, fidelity="auto",
                     calibration=None, guard_band=None, progress=None,
                     parallel=None, cache_dir=None, metrics=None,
                     on_error="raise", retries=0, retry_backoff=0.0,
                     timeout=None, resume=False, fault=None, executor=None,
                     write_manifest=True):
    """Evaluate a design space with the calibrated fast tier.

    ``fidelity="fast"`` predicts every point analytically (no simulation).
    ``"auto"`` runs confirm-and-prune rounds: each round evaluates the
    predicted Pareto frontier of the remaining candidates exactly (via
    :func:`repro.core.sweep.run_sweep`, honouring the parallel/cache/
    robustness knobs), then prunes every candidate whose optimistic
    prediction (``pred / (1 + guard_band)``) is dominated by a confirmed
    exact point.  Exact results replace the fast predictions for
    confirmed points, so the returned list mixes fidelities but keeps
    input order.  Measured fast-vs-exact errors and pruned/confirmed
    counts land in ``metrics``.

    ``guard_band`` is the assumed maximum relative error of the fast
    model — a scalar or a ``(time_band, power_band)`` pair (default: the
    calibration's validated per-axis ``(time_bound, power_bound)``); as
    long as it really bounds the error, the exact-confirmed frontier and
    EDP optimum are identical to a full exact sweep's.
    """
    from repro.core.sweep import run_sweep
    from repro.core.sweeppool import SweepMetrics
    cfg = cfg or SoCConfig()
    if fidelity not in ("fast", "auto"):
        raise ValueError(f'fidelity must be "fast" or "auto" here, '
                         f'got {fidelity!r}')
    if calibration is None and cache_dir:
        calibration = Calibration.load(cache_dir, workload, cfg)
    if calibration is None:
        raise CalibrationError(
            f"no calibration for {workload!r} (fidelity={fidelity!r}); "
            f"run `repro calibrate {workload}` or pass calibration=")
    if calibration.workload != workload:
        raise CalibrationError(
            f"calibration is for {calibration.workload!r}, not {workload!r}")
    if calibration.cfg_hash != config_hash(cfg):
        raise CalibrationError(
            "calibration was fitted against a different SoCConfig; "
            "re-run `repro calibrate` for this platform")
    metrics = metrics if metrics is not None else SweepMetrics()
    if guard_band is None:
        band = (calibration.time_bound, calibration.power_bound)
    else:
        band = guard_band
    start = time.perf_counter()
    fast = [calibration.predict(d, cfg) for d in designs]
    metrics.fast_points += len(fast)

    if fidelity == "fast":
        missing = sorted({design_class(d)
                          for d, r in zip(designs, fast) if r is None})
        if missing:
            bad = [k for k in missing if k in calibration.rejected]
            detail = (f" (fit rejected at calibration: {bad})"
                      if bad else "")
            raise CalibrationError(
                f"calibration for {workload!r} does not cover design "
                f"class(es) {missing}{detail}; re-calibrate or use "
                f"fidelity='auto'/'exact'")
        metrics.points += len(designs)
        metrics.wall_seconds += time.perf_counter() - start
        if progress is not None:
            progress(len(designs), len(designs))
        return fast

    metrics.wall_seconds += time.perf_counter() - start
    results = list(fast)
    remaining = list(range(len(designs)))
    exact_points = []
    confirmed = 0
    while remaining:
        batch = predicted_frontier(fast, remaining)
        exact = run_sweep(workload, [designs[i] for i in batch], cfg,
                          parallel=parallel, cache_dir=cache_dir,
                          metrics=metrics, on_error=on_error,
                          retries=retries, retry_backoff=retry_backoff,
                          timeout=timeout, resume=resume, fault=fault,
                          executor=executor, write_manifest=write_manifest)
        start = time.perf_counter()
        for i, result in zip(batch, exact):
            results[i] = result
            confirmed += 1
            if not getattr(result, "is_failure", False):
                exact_points.append((result.total_ticks, result.power_mw))
                if fast[i] is not None:
                    metrics.fast_time_errors.append(relative_error(
                        fast[i].total_ticks, result.total_ticks))
                    metrics.fast_power_errors.append(relative_error(
                        fast[i].power_mw, result.power_mw))
        in_batch = set(batch)
        remaining = prune_dominated(
            fast, [i for i in remaining if i not in in_batch],
            exact_points, band)
        metrics.wall_seconds += time.perf_counter() - start
        if progress is not None:
            progress(len(designs) - len(remaining), len(designs))
    pruned = len(designs) - confirmed
    metrics.points += pruned
    metrics.pruned += pruned
    metrics.confirmed += confirmed
    return results
