"""The paper's primary contribution: accelerator-SoC co-design.

This package composes the substrates (Aladdin datapaths, the gem5-like
memory system, DMA, the CPU driver) into end-to-end offload flows, sweeps
the design space of Figure 3, and reproduces every figure of the paper's
evaluation (see DESIGN.md section 3 for the experiment index).
"""

from repro.core.config import DesignPoint, SoCConfig, PARAMETER_TABLE
from repro.core.soc import Platform, SoC, run_design
from repro.core.multi import MultiAcceleratorSoC
from repro.core.pipeline import AcceleratorPipeline, PipelineStage
from repro.core.metrics import RunResult, classify_breakdown
from repro.core.sweep import (
    dma_design_space,
    cache_design_space,
    run_sweep,
)
from repro.core.pareto import pareto_frontier, edp_optimal
from repro.core.scenarios import (
    Scenario,
    SCENARIOS,
    run_scenario_optimum,
    edp_improvement,
)

__all__ = [
    "DesignPoint",
    "SoCConfig",
    "PARAMETER_TABLE",
    "Platform",
    "SoC",
    "MultiAcceleratorSoC",
    "AcceleratorPipeline",
    "PipelineStage",
    "run_design",
    "RunResult",
    "classify_breakdown",
    "dma_design_space",
    "cache_design_space",
    "run_sweep",
    "pareto_frontier",
    "edp_optimal",
    "Scenario",
    "SCENARIOS",
    "run_scenario_optimum",
    "edp_improvement",
]
