"""Design-space sweeps (the engine behind Figures 1, 8, 9, 10).

Generators produce the DMA-side and cache-side design spaces of Figure 3;
:func:`run_sweep` evaluates each point end to end.  Traces are cached per
workload (see :mod:`repro.workloads.registry`), so a sweep pays the trace
capture once and the scheduling per point.

``density`` trades sweep resolution for runtime: ``"full"`` is the paper's
complete cross-product, ``"standard"`` a representative subset (default),
``"quick"`` a coarse grid for tests.

Sweeps can run in parallel and/or memoized on disk — pass ``parallel=`` /
``cache_dir=`` to :func:`run_sweep` (engine: :mod:`repro.core.sweeppool`).
"""

import json
import os

from repro.core.config import DesignPoint, PARAMETER_TABLE
from repro.core.soc import run_design

_LANES = PARAMETER_TABLE["datapath_lanes"]
_PARTS = PARAMETER_TABLE["scratchpad_partitions"]
_SIZES = PARAMETER_TABLE["cache_size_kb"]
_PORTS = PARAMETER_TABLE["cache_ports"]
_ASSOC = PARAMETER_TABLE["cache_assoc"]

_DENSITIES = {
    "quick": dict(lanes=(1, 4, 16), parts=(1, 4, 16), sizes=(4, 16),
                  ports=(1, 4), assoc=(4,)),
    "standard": dict(lanes=_LANES, parts=(1, 4, 16), sizes=(2, 8, 16, 32),
                     ports=(1, 4), assoc=(4,)),
    "full": dict(lanes=_LANES, parts=_PARTS, sizes=_SIZES, ports=_PORTS,
                 assoc=_ASSOC),
}


def _grid(density):
    try:
        return _DENSITIES[density]
    except KeyError:
        raise ValueError(
            f"density must be one of {sorted(_DENSITIES)}, got {density!r}")


def dma_design_space(density="standard", pipelined=True, triggered=True):
    """DMA/scratchpad design points: lanes x partitions."""
    g = _grid(density)
    return [
        DesignPoint(lanes=lanes, partitions=parts, mem_interface="dma",
                    pipelined_dma=pipelined, dma_triggered_compute=triggered)
        for lanes in g["lanes"]
        for parts in g["parts"]
    ]


def ii_design_space(base_design=None, iis=("auto", 1, 2, 4, 8, 16)):
    """Modulo-pipelining II axis around one base design.

    One barrier-mode anchor, one free-overlap ("off") anchor, then the
    base design under modulo scheduling at each requested initiation
    interval (``"auto"`` = the searched minimum).  This is the sweep
    behind the II-vs-EDP Pareto study: the anchors bound the axis (ii ->
    round length degenerates to barriers; unconstrained overlap is the
    throughput ceiling) and the forced IIs trace the trade-off between
    them.
    """
    base = base_design or DesignPoint()
    points = [base.replace(pipelining="barriers"),
              base.replace(pipelining="off")]
    seen = {p.key() for p in points}
    for ii in iis:
        d = base.replace(pipelining="modulo", ii=ii)
        if d.key() not in seen:
            seen.add(d.key())
            points.append(d)
    return points


def cache_design_space(density="standard"):
    """Cache design points: lanes x size x ports x assoc."""
    g = _grid(density)
    return [
        DesignPoint(lanes=lanes, partitions=min(lanes, 4),
                    mem_interface="cache", cache_size_kb=size,
                    cache_ports=ports, cache_assoc=assoc)
        for lanes in g["lanes"]
        for size in g["sizes"]
        for ports in g["ports"]
        for assoc in g["assoc"]
    ]


def run_sweep(workload, designs, cfg=None, progress=None, parallel=None,
              cache_dir=None, metrics=None, profiler=None, dump_stats=None,
              check=None, on_error="raise", retries=0, retry_backoff=0.0,
              timeout=None, resume=False, fault=None, fidelity="exact",
              calibration=None, guard_band=None, executor=None,
              write_manifest=True):
    """Evaluate every design point; returns the list of RunResults.

    ``parallel`` fans the evaluations out over a worker pool (``N`` workers;
    ``0`` means one per CPU), ``cache_dir`` memoizes results on disk, and
    ``metrics`` (a :class:`repro.core.sweeppool.SweepMetrics`) collects
    evaluated/cached counts and wall times — see :mod:`repro.core.sweeppool`.
    Results are always in the order of ``designs``, and the parallel/cached
    paths produce results identical to the serial one.

    Robustness (see :func:`repro.core.sweeppool.run_sweep_pool` for the
    full semantics): ``on_error="collect"`` turns a failing point into a
    :class:`~repro.core.sweeppool.FailedPoint` result instead of aborting
    the sweep, ``retries``/``retry_backoff`` re-issue transient failures,
    ``timeout`` bounds each point's wall-clock seconds (worker-process
    engines only), and ``resume`` re-evaluates only the missing/failed
    points of a previously interrupted cached sweep.  ``fault`` is the
    deterministic fault-injection spec (default ``$REPRO_SWEEP_FAULT``).

    ``profiler`` (an :class:`repro.sim.profiling.EventProfiler`) accumulates
    per-component event costs over every design point.  ``dump_stats``
    names a directory that receives one full stats-registry JSON per
    design point (``<workload>-NNNN.json``; see :mod:`repro.obs.stats`).
    Either option forces the serial, uncached engine: worker processes
    could not report into the caller's profiler or registry, and cached
    points run no events at all.  The serial engine still fills
    ``metrics`` and honours ``on_error``/``retries`` (not ``timeout``).

    ``check`` enables runtime correctness checking per point (see
    :mod:`repro.check`).  An explicit checker likewise forces the serial
    engine — its accumulated counters live in this process.  ``None``
    defers to ``$REPRO_CHECK``, which worker processes inherit, so the
    parallel engine still checks every point when the variable is set.

    ``fidelity`` selects the simulation tier (see
    :mod:`repro.core.calibrate`): ``"exact"`` (default) is the
    event-driven co-simulation for every point; ``"fast"`` predicts every
    point with the calibrated analytic model and runs no simulation;
    ``"auto"`` triages — fast predictions prune the space and only the
    candidate Pareto frontier is confirmed exactly.  The fast tiers need
    a :class:`~repro.core.calibrate.Calibration` — pass ``calibration=``
    or a ``cache_dir`` holding a persisted one (``repro calibrate``).
    ``guard_band`` overrides the calibration's validated error bound in
    ``auto`` pruning.

    ``executor`` overrides *where* pending points evaluate (any
    :class:`repro.core.executors.Executor`); sweeps route through the
    executor interface by default (see
    :func:`repro.core.executors.resolve_executor`), except the
    profiled / stats-dumping / checked paths, which must stay in this
    process and therefore reject an explicit executor.
    ``write_manifest=False`` skips the per-sweep checkpoint manifest
    (results still flush through the cache; see
    :func:`repro.core.sweeppool.run_sweep_pool`).
    """
    if fidelity not in ("exact", "fast", "auto"):
        raise ValueError(f'fidelity must be "exact", "fast" or "auto", '
                         f'got {fidelity!r}')
    diagnostic = profiler is not None or dump_stats is not None or check
    if diagnostic and executor is not None:
        raise ValueError(
            "profiler/dump_stats/check sweeps run in-process (their "
            "accumulators live in this interpreter) and cannot be "
            "dispatched through an executor")
    if fidelity != "exact":
        if diagnostic:
            raise ValueError(
                "profiler/dump_stats/check require fidelity='exact': the "
                "fast tier runs no events to profile, dump or check")
        from repro.core.calibrate import run_sweep_tiered
        return run_sweep_tiered(workload, designs, cfg, fidelity=fidelity,
                                calibration=calibration,
                                guard_band=guard_band, progress=progress,
                                parallel=parallel, cache_dir=cache_dir,
                                metrics=metrics, on_error=on_error,
                                retries=retries,
                                retry_backoff=retry_backoff,
                                timeout=timeout, resume=resume, fault=fault,
                                executor=executor,
                                write_manifest=write_manifest)
    if not diagnostic:
        from repro.core.sweeppool import run_sweep_pool
        return run_sweep_pool(workload, designs, cfg,
                              jobs=1 if parallel is None else parallel,
                              cache_dir=cache_dir, progress=progress,
                              metrics=metrics, on_error=on_error,
                              retries=retries, retry_backoff=retry_backoff,
                              timeout=timeout, resume=resume, fault=fault,
                              executor=executor,
                              write_manifest=write_manifest)
    return _run_sweep_serial(workload, designs, cfg, progress=progress,
                             metrics=metrics, profiler=profiler,
                             dump_stats=dump_stats, check=check,
                             on_error=on_error, retries=retries,
                             retry_backoff=retry_backoff, fault=fault)


def _run_sweep_serial(workload, designs, cfg=None, progress=None,
                      metrics=None, profiler=None, dump_stats=None,
                      check=None, on_error="raise", retries=0,
                      retry_backoff=0.0, fault=None):
    """The in-process engine behind profiled / stats-dumping / checked
    sweeps: one ``run_design`` per point, with the same metrics filling
    and fault capture as the pooled engine (minus timeout enforcement)."""
    import time

    from repro.core.sweeppool import (
        ENV_FAULT,
        FailedPoint,
        SweepMetrics,
        inject_fault,
        parse_fault_spec,
    )
    from repro.errors import SweepError
    robust = on_error == "collect" or retries > 0
    faults = parse_fault_spec(
        fault if fault is not None else os.environ.get(ENV_FAULT, ""))
    metrics = metrics if metrics is not None else SweepMetrics()
    metrics.points += len(designs)
    metrics.jobs = max(metrics.jobs, 1)
    sweep_start = time.perf_counter()
    if dump_stats is not None:
        os.makedirs(dump_stats, exist_ok=True)
    results = []
    try:
        for i, design in enumerate(designs):
            registry = None
            if dump_stats is not None:
                from repro.obs.stats import StatRegistry
                registry = StatRegistry()
            attempt = 1
            while True:
                start = time.perf_counter()
                try:
                    if faults:
                        inject_fault(faults, i, attempt)
                    result = run_design(workload, design, cfg,
                                        profiler=profiler,
                                        registry=registry, check=check)
                except Exception as exc:
                    if not robust:
                        raise
                    if attempt <= retries:
                        metrics.retries += 1
                        if retry_backoff > 0.0:
                            time.sleep(retry_backoff * attempt)
                        attempt += 1
                        continue
                    metrics.failures += 1
                    import traceback as _traceback
                    failure = FailedPoint(workload, design, repr(exc),
                                          traceback=_traceback.format_exc(),
                                          attempts=attempt)
                    if on_error == "raise":
                        raise SweepError(
                            f"design point {i} ({design!r}) failed after "
                            f"{attempt} attempt(s) [error]: {exc!r}",
                            failure=failure) from exc
                    results.append(failure)
                    break
                metrics.evaluated += 1
                metrics.point_seconds.append(time.perf_counter() - start)
                results.append(result)
                break
            if registry is not None:
                path = os.path.join(dump_stats, f"{workload}-{i:04d}.json")
                payload = registry.to_json()
                payload["design"] = repr(design)
                with open(path, "w") as fh:
                    json.dump(payload, fh, indent=2, sort_keys=True)
                    fh.write("\n")
            if progress is not None:
                progress(i + 1, len(designs))
    finally:
        metrics.wall_seconds += time.perf_counter() - sweep_start
    return results
