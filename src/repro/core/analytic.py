"""Closed-form model of the DMA offload (the validation reference).

gem5-Aladdin's validation (Section III-F) decomposes the offload into the
pieces it measured on the Zynq Zedboard: cache flush/invalidate time, DMA
transfer time, and accelerator compute time.  This module predicts each
phase analytically from first principles:

* flush / invalidate: measured per-line constants (84 / 71 ns);
* DMA: per-transaction setup (40 accelerator cycles) plus bus-bandwidth-
  limited streaming, with per-burst arbitration beats;
* compute: the standalone Aladdin schedule (isolated run) of the same
  datapath configuration.

:mod:`repro.core.validation` compares these predictions against the
detailed event-driven co-simulation — our stand-in for the paper's
model-vs-hardware comparison (DESIGN.md substitution #2).
"""

import math

from repro.aladdin.accelerator import Accelerator
from repro.core.config import SoCConfig
from repro.sim.clock import ClockDomain
from repro.units import ns_to_ticks
from repro.workloads import cached_trace

INPUT_KINDS = ("input", "inout")
OUTPUT_KINDS = ("output", "inout")


class AnalyticPhases:
    """Predicted per-phase durations in ticks.

    ``blocks`` is the number of pipelined-DMA blocks the input region
    splits into (1 for baseline DMA); it is an instance attribute so two
    predictions never share state through the class.
    """

    def __init__(self, flush, invalidate, dma_in, compute, dma_out, driver,
                 blocks=1):
        self.flush = flush
        self.invalidate = invalidate
        self.dma_in = dma_in
        self.compute = compute
        self.dma_out = dma_out
        self.driver = driver
        self._blocks = max(1, blocks)

    @property
    def blocks(self):
        return self._blocks

    @property
    def total_baseline(self):
        """Serial composition: the baseline DMA flow."""
        return (self.flush + self.invalidate + self.driver + self.dma_in
                + self.compute + self.dma_out)

    def total_pipelined(self):
        """Pipelined DMA: flush of block b+1 hides behind DMA of block b,
        so the data-in phase is bounded by the slower stream plus one
        exposed leading flush block (``ceil(flush / blocks)``)."""
        lead = -(-self.flush // self._blocks)
        overlap = max(self.flush, self.dma_in)
        return (lead + overlap + self.invalidate + self.compute
                + self.dma_out)


def _region_lines(trace, kinds, line_size):
    lines = 0
    for decl in trace.arrays.values():
        if decl.kind in kinds:
            lines += math.ceil(decl.size_bytes / line_size)
    return lines


def _region_bytes(trace, kinds):
    return sum(d.size_bytes for d in trace.arrays.values()
               if d.kind in kinds)


def dma_transfer_ticks(bytes_, cfg, transactions=1):
    """Setup + streaming time for moving ``bytes_`` over the system bus."""
    clock = ClockDomain(cfg.accel_clock_mhz)
    width = cfg.bus_width_bits // 8
    beats = math.ceil(bytes_ / width)
    bursts = math.ceil(bytes_ / cfg.dma_burst_bytes)
    setup = transactions * cfg.dma_setup_cycles
    return clock.cycles_to_ticks(setup + beats + bursts)  # 1 arb beat/burst


def predict_phases(workload, design, cfg=None):
    """Analytic phase model for one DMA design point."""
    cfg = cfg or SoCConfig()
    trace = cached_trace(workload)
    flush_lines = _region_lines(trace, INPUT_KINDS, cfg.cpu_cache_line)
    inval_lines = _region_lines(trace, OUTPUT_KINDS, cfg.cpu_cache_line)
    in_bytes = _region_bytes(trace, INPUT_KINDS)
    out_bytes = _region_bytes(trace, OUTPUT_KINDS)
    if design.pipelined_dma:
        txns = max(1, math.ceil(in_bytes / cfg.dma_block_bytes))
    else:
        txns = 1
    accel = Accelerator(trace, design.lanes, design.partitions,
                        design.spad_ports,
                        pipelining=design.pipelining, ii=design.ii)
    compute = accel.run_isolated().ticks
    return AnalyticPhases(
        flush=ns_to_ticks(flush_lines * cfg.flush_ns_per_line),
        invalidate=ns_to_ticks(inval_lines * cfg.invalidate_ns_per_line),
        dma_in=dma_transfer_ticks(in_bytes, cfg, transactions=txns),
        compute=compute,
        dma_out=dma_transfer_ticks(out_bytes, cfg, transactions=1),
        driver=ns_to_ticks(cfg.ioctl_ns + cfg.poll_interval_ns),
        blocks=txns,
    )


def predict_total(workload, design, cfg=None):
    """End-to-end predicted offload time in ticks."""
    phases = predict_phases(workload, design, cfg)
    if design.pipelined_dma:
        return phases.total_pipelined()
    return phases.total_baseline
