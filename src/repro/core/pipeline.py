"""Streaming accelerator pipelines: back-pressured producer→consumer chains.

The paper stops at independent accelerators contending on one shared bus
(Figure 11 / Section IV-A).  Real SoCs chain accelerators into dataflows:
stage k's output array *is* stage k+1's input, handed off through a shared
buffer instead of bouncing through the CPU.  This module composes that
scenario out of the existing pieces:

* **Scratchpad (DMA) handoff** — the producer's ``dmaStore`` is split into
  chunk-sized descriptors targeting a small ring buffer in shared memory;
  the consumer's ``dmaLoad`` pulls each chunk into its own scratchpad.
  Full/empty bits (:class:`~repro.memory.fullempty.ReadyBits`) track the
  buffer at chunk granularity and gate both engines' descriptor starts
  (:class:`~repro.memory.fullempty.DescriptorGate`): a chunk's pull parks
  until the producer committed it, and a push parks until the consumer
  drained the slot it would overwrite — genuine back-pressure.  A full
  buffer stalls the producer; an empty one parks the consumer.
* **Coherent cache handoff** — both stages use coherent caches; the
  consumer's input region is aliased onto the producer's output region
  (zero-copy), the producer's mfence commits the handoff flags, and the
  consumer's invocation is gated on them.  Data moves on demand through
  MOESI cache-to-cache transfers; the "buffer" is the memory system
  itself, so there is no credit-based back-pressure to model.

``double_buffer=True`` splits the DMA ring into two half-sized slots so the
producer fills one while the consumer drains the other (Section IV-B2's
double-buffering, applied to the handoff instead of the offload).

Every handoff records per-chunk (produced, consume-start, consumed) ticks,
so the ordering invariant — a consumer never reads a word its producer has
not written — is checkable after the run, and the pipeline's buffers join
the end-of-run leak audit (:mod:`repro.check.audit`): unconsumed committed
chunks, stalled producers, and parked consumers are leaks.

Typical use::

    from repro.core.pipeline import AcceleratorPipeline
    pipe = AcceleratorPipeline(
        ["stencil-stencil2d", "gemm-ncubed", "kmp"],
        handoff="dma", buffer_bytes=2048, double_buffer=True)
    result = pipe.run()
    result.makespan_ticks, result.links[0]["producer_stalls"]
"""

from repro.core.config import DesignPoint, SoCConfig
from repro.core.soc import (
    INPUT_KINDS,
    OUTPUT_KINDS,
    PHYS_BASE,
    VIRT_BASE,
    Platform,
    SoC,
    run_design,
)
from repro.dma.descriptor import DMADescriptor
from repro.errors import ConfigError
from repro.memory.fullempty import DescriptorGate, ReadyBits
from repro.sim.stats import IntervalTracker
from repro.workloads import cached_trace

HANDOFF_MODES = ("dma", "cache")
_LINE = 64  # chunk alignment: one cache line


def _linked_arrays(trace, kinds):
    """Shared arrays of the given kinds, in declaration order."""
    return [name for name, decl in trace.arrays.items()
            if decl.kind in kinds]


class PipelineStage:
    """One stage spec: a workload plus its accelerator design point."""

    def __init__(self, workload, design=None, in_array=None, out_array=None):
        self.workload = workload
        self.design = design
        # Optional explicit link endpoints; default: first input / first
        # output array of the stage's trace.
        self.in_array = in_array
        self.out_array = out_array

    @classmethod
    def normalize(cls, spec):
        if isinstance(spec, cls):
            return spec
        if isinstance(spec, str):
            return cls(spec)
        workload, design = spec
        return cls(workload, design)


class HandoffLink:
    """The shared buffer between two adjacent pipeline stages.

    Owns the full/empty bits that sequence the handoff, the buffer
    geometry (chunk size, ring slots), the per-chunk tick accounting, and
    the stall/park interval trackers the timeline export renders.
    """

    def __init__(self, index, producer, consumer, mode, buffer_bytes,
                 double_buffer):
        self.index = index
        self.name = f"link{index}"
        self.producer = producer
        self.consumer = consumer
        self.mode = mode
        self.buffer_bytes = buffer_bytes
        self.double_buffer = double_buffer

        self.out_array = producer._linked_out
        self.in_array = consumer._linked_in
        out_size = producer.trace.arrays[self.out_array].size_bytes
        in_size = consumer.trace.arrays[self.in_array].size_bytes
        self.link_bytes = min(out_size, in_size)
        if self.link_bytes <= 0:
            raise ConfigError(
                f"{self.name}: {producer.workload}.{self.out_array} -> "
                f"{consumer.workload}.{self.in_array} moves no data")

        self.slots = 2 if (mode == "dma" and double_buffer) else 1
        if mode == "dma":
            raw = buffer_bytes // self.slots
            chunk = max(_LINE, raw - raw % _LINE)
        else:
            # Cache handoff: memory is the buffer.  Chunks only granulate
            # the accounting; commit happens wholesale at the fence.
            chunk = buffer_bytes
        self.chunk_bytes = min(chunk, self.link_bytes)
        self.num_chunks = -(-self.link_bytes // self.chunk_bytes)

        # Full bit = chunk committed by the producer, not yet drained by
        # the consumer.
        self.bits = ReadyBits(self.name, self.link_bytes,
                              granularity=self.chunk_bytes)

        self.buf_base = None
        if mode == "dma":
            offset = producer.platform.alloc_region(
                self.slots * self.chunk_bytes)
            self.buf_base = PHYS_BASE + offset

        self.handoffs = 0
        self.producer_stalls = 0
        self.consumer_parks = 0
        self.producer_stall = IntervalTracker(f"{self.name}-stall")
        self.consumer_park = IntervalTracker(f"{self.name}-park")
        self.produced_tick = [None] * self.num_chunks
        self.consume_start_tick = [None] * self.num_chunks
        self.consumed_tick = [None] * self.num_chunks
        self._pull_gates = {}

    # -- geometry helpers ---------------------------------------------------

    def _chunk(self, j):
        offset = j * self.chunk_bytes
        return offset, min(self.chunk_bytes, self.link_bytes - offset)

    def _slot_addr(self, j):
        """Physical address of chunk ``j``'s ring slot (DMA mode)."""
        return self.buf_base + (j % self.slots) * self.chunk_bytes

    @property
    def sim(self):
        return self.producer.sim

    # -- DMA-mode producer: chunked, credit-gated pushes --------------------

    def start_producing(self, on_done):
        """Producer compute finished: stream the linked output through the
        ring buffer, then call ``on_done`` (which sends any remaining
        non-linked outputs and signals completion)."""
        self._produce_done = on_done
        self._push(0)

    def _push(self, j):
        if j >= self.num_chunks:
            self._produce_done()
            return
        offset, size = self._chunk(j)
        gate = None
        if j >= self.slots:
            # Back-pressure: the slot this chunk reuses must be drained.
            prev_offset, prev_size = self._chunk(j - self.slots)
            gate = DescriptorGate(self.bits, prev_offset, prev_size,
                                  until="empty",
                                  tracker=self.producer_stall)
        desc = DMADescriptor(self._slot_addr(j), self.out_array, offset,
                             size, to_accel=False)
        self.producer.dma.enqueue(
            [desc], on_done=lambda: self._pushed(j, gate),
            label=f"{self.name}.push{j}", gate=gate)

    def _pushed(self, j, gate):
        offset, size = self._chunk(j)
        self.produced_tick[j] = self.sim.now
        self.handoffs += 1
        if gate is not None and gate.waited:
            self.producer_stalls += 1
        self.bits.set_range(offset, size)  # wakes a parked consumer pull
        self._push(j + 1)

    # -- DMA-mode consumer: chunked, ready-gated pulls ----------------------

    def start_consuming(self, on_done):
        """Stage launch: chain ready-gated pulls of every chunk, then call
        ``on_done`` (the stage's input-arrival accounting)."""
        self._consume_done = on_done
        # The consumer's linked array may be larger than the link window;
        # the tail holds preinitialized data, so its own triggered-compute
        # ready bits must not wait for a DMA that will never come.
        own_bits = self.consumer.ready_bits.get(self.in_array)
        if own_bits is not None:
            in_size = self.consumer.trace.arrays[self.in_array].size_bytes
            if in_size > self.link_bytes:
                own_bits.set_range(self.link_bytes,
                                   in_size - self.link_bytes)
        self._pull(0)

    def _pull(self, j):
        if j >= self.num_chunks:
            self._consume_done()
            return
        offset, size = self._chunk(j)
        gate = DescriptorGate(self.bits, offset, size, until="full",
                              tracker=self.consumer_park)
        self._pull_gates[j] = gate
        desc = DMADescriptor(self._slot_addr(j), self.in_array, offset,
                             size, to_accel=True)
        self.consumer.dma.enqueue(
            [desc], on_done=lambda: self._pulled(j),
            label=f"{self.name}.pull{j}", gate=gate)

    def _pulled(self, j):
        offset, size = self._chunk(j)
        gate = self._pull_gates.pop(j)
        self.consume_start_tick[j] = gate.opened_tick
        self.consumed_tick[j] = self.sim.now
        if gate.waited:
            self.consumer_parks += 1
        self.bits.clear_range(offset, size)  # credit back: wakes producer
        self._pull(j + 1)

    # -- cache-mode handoff: fence-committed flags, gated invocation --------

    def commit_all(self):
        """Producer's mfence retired: every chunk of the aliased region is
        globally visible; set the handoff flags."""
        now = self.sim.now
        for j in range(self.num_chunks):
            self.produced_tick[j] = now
        self.handoffs += self.num_chunks
        self.bits.set_range(0, self.link_bytes)

    def gate_consumer_launch(self, proceed):
        """Hold the consumer's ioctl until the producer committed."""
        if self.bits.range_ready(0, self.link_bytes):
            self._consumer_released()
            proceed()
            return
        self.consumer_park.begin(self.sim.now)
        self.consumer_parks += 1

        def released():
            self.consumer_park.end(self.sim.now)
            self._consumer_released()
            proceed()

        self.bits.wait_range(0, self.link_bytes, released)

    def _consumer_released(self):
        now = self.sim.now
        for j in range(self.num_chunks):
            self.consume_start_tick[j] = now

    def consume_all(self):
        """Consumer compute finished: the region was read; drain the
        flags so the end-of-run audit sees an empty buffer."""
        now = self.sim.now
        for j in range(self.num_chunks):
            self.consumed_tick[j] = now
        self.bits.clear_range(0, self.link_bytes)

    # -- reporting ----------------------------------------------------------

    def ordering_clean(self):
        """True when no chunk was consumed before its producer committed
        it — the handoff correctness invariant, checked from the recorded
        ReadyBits ordering."""
        for produced, started in zip(self.produced_tick,
                                     self.consume_start_tick):
            if produced is None or started is None or started < produced:
                return False
        return True

    def report(self):
        return {
            "link": self.index,
            "producer": self.producer.workload,
            "consumer": self.consumer.workload,
            "mode": self.mode,
            "link_bytes": self.link_bytes,
            "chunk_bytes": self.chunk_bytes,
            "slots": self.slots,
            "chunks": self.num_chunks,
            "handoffs": self.handoffs,
            "producer_stalls": self.producer_stalls,
            "consumer_parks": self.consumer_parks,
            "producer_stall_ticks": self.producer_stall.total_busy(),
            "consumer_park_ticks": self.consumer_park.total_busy(),
            "produced_ticks": list(self.produced_tick),
            "consume_start_ticks": list(self.consume_start_tick),
            "consumed_ticks": list(self.consumed_tick),
            "ordering_clean": self.ordering_clean(),
        }

    def reg_stats(self, stats, prefix=None):
        prefix = prefix or f"pipeline.{self.name}"
        stats.scalar(f"{prefix}.handoffs", lambda: self.handoffs,
                     desc="chunks handed producer -> consumer")
        stats.scalar(f"{prefix}.producer_stalls",
                     lambda: self.producer_stalls,
                     desc="pushes that parked on a full buffer")
        stats.scalar(f"{prefix}.consumer_parks",
                     lambda: self.consumer_parks,
                     desc="pulls/launches that parked on an empty buffer")
        stats.scalar(f"{prefix}.producer_stall_ticks",
                     lambda: self.producer_stall.total_busy(),
                     desc="ticks the producer waited for buffer credit")
        stats.scalar(f"{prefix}.consumer_park_ticks",
                     lambda: self.consumer_park.total_busy(),
                     desc="ticks the consumer waited for committed data")


class _StageSoC(SoC):
    """One pipeline stage: an :class:`SoC` whose linked input arrives from
    the upstream accelerator instead of the CPU, and whose linked output
    streams into the downstream handoff buffer."""

    def __init__(self, workload, design, platform, stage_index,
                 linked_in=None, linked_out=None, alias=None):
        self.stage_index = stage_index
        self._linked_in = linked_in
        self._linked_out = linked_out
        self._alias = alias
        self.link_in = None   # wired by AcceleratorPipeline after build
        self.link_out = None
        self._inputs_pending = 0
        super().__init__(workload, design, platform=platform)

    # -- construction hooks -------------------------------------------------

    def _map_shared_regions(self):
        super()._map_shared_regions()
        if self._alias is not None:
            # Coherent-cache handoff: the linked input *is* the producer's
            # output region (zero-copy); re-point the mapping.
            phys, virt = self._alias
            self.phys_base[self._linked_in] = phys
            self.virt_base[self._linked_in] = virt

    def _cpu_generated(self, array):
        # Handoff arrays never pass through the CPU: the producer writes
        # them, so the CPU cache holds no dirty input data and no stale
        # return copies to preload.
        return array not in (self._linked_in, self._linked_out)

    # -- flow hooks ----------------------------------------------------------

    def _input_regions(self):
        regions = super()._input_regions()
        if self.link_in is not None and self.design.is_dma:
            regions = [r for r in regions if r[0] != self._linked_in]
        return regions

    def _output_regions(self):
        regions = super()._output_regions()
        if self.link_out is not None and self.design.is_dma:
            regions = [r for r in regions if r[0] != self._linked_out]
        return regions

    def launch(self):
        if self.design.is_dma:
            self._inputs_pending = 1  # the CPU-side flush+DMA flow
            if self.link_in is not None:
                self._inputs_pending += 1
                self.link_in.start_consuming(self._input_source_done)
        super().launch()

    def _dma_in_done(self):
        self._input_source_done()

    def _input_source_done(self):
        self._inputs_pending -= 1
        if self._inputs_pending == 0 and \
                not self.design.dma_triggered_compute:
            self.scheduler.start()

    def _after_output_invalidates(self):
        super()._after_output_invalidates()
        if (self.design.pipelined_dma and self.design.is_dma
                and not self._input_blocks()):
            # Every input is linked: there are no CPU-side blocks whose
            # last DMA would signal input arrival.  The flow is done now.
            self._dma_in_done()

    def _on_compute_done(self):
        if self.design.is_dma and self.link_out is not None:
            self.link_out.start_producing(self._start_output_dma)
        else:
            super()._on_compute_done()

    def _start_cache_flow(self):
        if self.link_in is not None:
            self.link_in.gate_consumer_launch(
                lambda: SoC._start_cache_flow(self))
        else:
            super()._start_cache_flow()

    def _after_fence(self):
        if self.link_in is not None:
            self.link_in.consume_all()
        if self.link_out is not None:
            self.link_out.commit_all()
        super()._after_fence()


class PipelineResult:
    """Everything one finished pipeline run measured."""

    def __init__(self, pipeline, stage_results):
        self.workloads = [s.workload for s in pipeline.stages]
        self.handoff = pipeline.handoff
        self.buffer_bytes = pipeline.buffer_bytes
        self.double_buffer = pipeline.double_buffer
        self.stage_results = stage_results
        self.links = [link.report() for link in pipeline.links]
        self.makespan_ticks = max(r.total_ticks for r in stage_results)

    @property
    def depth(self):
        return len(self.workloads)

    def ordering_clean(self):
        return all(link["ordering_clean"] for link in self.links)

    def to_dict(self):
        return {
            "workloads": self.workloads,
            "handoff": self.handoff,
            "buffer_bytes": self.buffer_bytes,
            "double_buffer": self.double_buffer,
            "depth": self.depth,
            "makespan_ticks": self.makespan_ticks,
            "stages": [
                {"workload": r.workload, "total_ticks": r.total_ticks,
                 "time_us": r.time_us, "power_mw": r.power_mw,
                 "breakdown": dict(r.breakdown)}
                for r in self.stage_results
            ],
            "links": self.links,
        }


class AcceleratorPipeline:
    """N accelerators chained producer→consumer on one shared platform."""

    def __init__(self, stages, handoff="dma", buffer_bytes=4096,
                 double_buffer=False, cfg=None, check=None):
        """``stages`` is a list of workload names, (workload, DesignPoint)
        pairs, or :class:`PipelineStage` specs, upstream first.

        ``handoff`` picks the buffer kind: ``"dma"`` streams chunks
        through a ``buffer_bytes`` shared ring with credit back-pressure
        (``double_buffer`` splits it into two slots); ``"cache"`` aliases
        the regions and hands off through the coherence protocol.  All
        stage designs must match the handoff's memory interface.
        ``check`` enables runtime correctness checking on the shared
        platform; ``None`` honors ``$REPRO_CHECK``.
        """
        specs = [PipelineStage.normalize(s) for s in stages]
        if len(specs) < 2:
            raise ConfigError("a pipeline chains at least 2 stages")
        if handoff not in HANDOFF_MODES:
            raise ConfigError(f"handoff must be one of {HANDOFF_MODES}, "
                              f"got {handoff!r}")
        self.handoff = handoff
        self.double_buffer = bool(double_buffer)
        min_buffer = _LINE * (2 if self.double_buffer else 1)
        if handoff == "dma" and buffer_bytes < min_buffer:
            raise ConfigError(
                f"buffer_bytes must be >= {min_buffer} "
                f"({'two ring slots' if self.double_buffer else 'one line'}"
                f"), got {buffer_bytes}")
        self.buffer_bytes = buffer_bytes
        self.cfg = cfg or SoCConfig()
        self.platform = Platform(self.cfg, check=check)

        want = "dma" if handoff == "dma" else "cache"
        default = DesignPoint(mem_interface=want)
        self.specs = specs
        for spec in specs:
            spec.design = spec.design or default
            if spec.design.mem_interface != want:
                raise ConfigError(
                    f"stage {spec.workload!r} uses "
                    f"mem_interface={spec.design.mem_interface!r}; a "
                    f"{handoff!r} handoff needs every stage on "
                    f"{want!r} (coherent-DMA mixing would need a flush "
                    f"protocol the model does not have)")

        self.stages = []
        self.links = []
        last = len(specs) - 1
        for k, spec in enumerate(specs):
            linked_in = linked_out = alias = None
            if k > 0:
                linked_in = self._pick_array(spec, "in")
                if handoff == "cache":
                    producer = self.stages[k - 1]
                    out = producer._linked_out
                    alias = (producer.phys_base[out],
                             producer.virt_base[out])
            if k < last:
                linked_out = self._pick_array(spec, "out")
            stage = _StageSoC(spec.workload, spec.design, self.platform,
                              k, linked_in=linked_in,
                              linked_out=linked_out, alias=alias)
            self.stages.append(stage)
        for k in range(1, len(self.stages)):
            link = HandoffLink(k - 1, self.stages[k - 1], self.stages[k],
                               handoff, buffer_bytes, self.double_buffer)
            self.stages[k - 1].link_out = link
            self.stages[k].link_in = link
            self.links.append(link)
        self.platform.handoff_links.extend(self.links)
        self._results = None
        self._solo_results = None

    @staticmethod
    def _pick_array(spec, direction):
        trace = cached_trace(spec.workload)
        explicit = spec.in_array if direction == "in" else spec.out_array
        kinds = INPUT_KINDS if direction == "in" else OUTPUT_KINDS
        candidates = _linked_arrays(trace, kinds)
        if explicit is not None:
            if explicit not in candidates:
                raise ConfigError(
                    f"{spec.workload!r} has no {direction}put array "
                    f"{explicit!r} (candidates: {candidates})")
            return explicit
        if not candidates:
            raise ConfigError(f"{spec.workload!r} has no shared "
                              f"{direction}put array to link")
        return candidates[0]

    # -- execution -----------------------------------------------------------

    def run(self):
        """Launch every stage at tick 0 and run the chain to completion.

        Stage k>0 starts its CPU-side work immediately but its linked
        input only flows as stage k-1 commits chunks; the makespan is the
        completion of the last stage.  With checking enabled the leak
        audit (including the handoff buffers) runs before collection.
        """
        for stage in self.stages:
            stage.launch()
        self.platform.sim.run()
        if self.platform.checker is not None:
            self.platform.checker.audit(self.platform)
        self._results = PipelineResult(
            self, [stage.collect() for stage in self.stages])
        return self._results

    @property
    def results(self):
        if self._results is None:
            raise RuntimeError("call run() first")
        return self._results

    def makespan_ticks(self):
        return self.results.makespan_ticks

    def solo_results(self):
        """Each stage re-run alone on a private platform (memoized)."""
        if self._solo_results is None:
            self._solo_results = [
                run_design(spec.workload, spec.design, self.cfg)
                for spec in self.specs]
        return self._solo_results

    def speedup_vs_serial(self):
        """Serial-offload time / pipeline makespan (> 1: streaming wins).

        The serial baseline runs the same stages back to back through the
        CPU (each offload's input flushed and DMA'd the classic way), so
        this is the direct measurement of what the handoff buys.
        """
        serial = sum(r.total_ticks for r in self.solo_results())
        return serial / self.results.makespan_ticks

    def bus_utilization(self):
        return self.platform.bus.utilization(
            0, self.results.makespan_ticks)

    def reg_stats(self, stats):
        """Register every stage's and link's counters in ``stats``."""
        for stage in self.stages:
            stage.reg_stats(stats)
        for link in self.links:
            link.reg_stats(stats)
        return stats
