"""Figure 9: microarchitectural resource comparison (Kiviat plots).

The paper's Kiviat axes are datapath lanes, local SRAM size, and local
memory bandwidth, normalized to the isolated-optimal design.  This module
extracts those three resources from any design point and normalizes
scenario optima against the isolated baseline.
"""

from repro.workloads import cached_trace


def design_resources(workload, design):
    """(lanes, sram_bytes, local_bandwidth) provisioned by ``design``.

    * Scratchpad designs hold every kernel array locally; bandwidth is
      partitions x ports (words/cycle).
    * Cache designs hold private arrays in scratchpads plus the cache
      itself; bandwidth is the cache port count.
    """
    trace = cached_trace(workload)
    if design.mem_interface == "dma":
        sram = sum(d.size_bytes for d in trace.arrays.values())
        bandwidth = design.partitions * design.spad_ports
    else:
        internal = sum(d.size_bytes for d in trace.arrays.values()
                       if d.kind == "internal")
        sram = design.cache_size_kb * 1024 + internal
        bandwidth = design.cache_ports
    return {
        "lanes": design.lanes,
        "sram_bytes": sram,
        "local_bandwidth": bandwidth,
    }


def kiviat_normalized(workload, optima):
    """Normalize each scenario optimum's resources to the isolated design.

    ``optima`` maps scenario key -> RunResult; must include ``"isolated"``.
    Returns {scenario: {axis: value_normalized_to_isolated}}.
    """
    base = design_resources(workload, optima["isolated"].design)
    out = {}
    for key, result in optima.items():
        res = design_resources(workload, result.design)
        out[key] = {
            axis: (res[axis] / base[axis] if base[axis] else float("nan"))
            for axis in ("lanes", "sram_bytes", "local_bandwidth")
        }
    return out


def overprovision_summary(normalized):
    """Fraction of co-designed axes at or below the isolated provisioning —
    the paper's 'almost every colored triangle is smaller than the baseline
    triangle' observation."""
    total = 0
    leaner = 0
    for key, axes in normalized.items():
        if key == "isolated":
            continue
        for value in axes.values():
            total += 1
            if value <= 1.0 + 1e-9:
                leaner += 1
    return leaner / total if total else 0.0
