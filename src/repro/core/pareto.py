"""Pareto frontiers and EDP-optimal selection (Figures 1 and 8).

The paper plots power-vs-execution-time design spaces and stars the
energy-delay-product optimum of each memory system.  Lower is better on
both axes.
"""


def pareto_frontier(results, x=lambda r: r.total_ticks,
                    y=lambda r: r.power_mw):
    """The non-dominated subset of ``results``, sorted by ``x``.

    A point is dominated when another point is no worse on both axes and
    strictly better on at least one.
    """
    pts = sorted(results, key=lambda r: (x(r), y(r)))
    frontier = []
    best_y = float("inf")
    for r in pts:
        if y(r) < best_y:
            frontier.append(r)
            best_y = y(r)
    return frontier


def edp_optimal(results):
    """The design with minimum energy-delay product."""
    if not results:
        raise ValueError("no results to select from")
    return min(results, key=lambda r: r.edp)


def dominates(a, b, x=lambda r: r.total_ticks, y=lambda r: r.power_mw):
    """True when ``a`` Pareto-dominates ``b``."""
    return (x(a) <= x(b) and y(a) <= y(b)
            and (x(a) < x(b) or y(a) < y(b)))


def sweep_pareto(workload, designs, cfg=None, parallel=None, cache_dir=None,
                 metrics=None, on_error="raise", retries=0, timeout=None,
                 resume=False, fidelity="exact", calibration=None,
                 guard_band=None, executor=None):
    """Sweep a design space and reduce it to its Pareto view.

    Runs the sweep through :func:`repro.core.sweep.run_sweep` (parallel
    and/or memoized when ``parallel``/``cache_dir`` are given; robust when
    ``on_error``/``retries``/``timeout``/``resume`` are) and returns
    ``(frontier, edp_optimum, all_results)`` — the shape Figures 1 and 8
    and the CLI's sweep command consume.  Under ``on_error="collect"``
    the frontier and optimum are computed over the successful points only;
    ``all_results`` keeps the :class:`~repro.core.sweeppool.FailedPoint`
    entries in input order, and a sweep with zero successes raises
    ``ValueError``.

    ``fidelity`` picks the simulation tier (see
    :mod:`repro.core.calibrate`).  Under ``"auto"`` the frontier and the
    EDP optimum are computed over the exact-confirmed points only — the
    triage guarantees those match a full exact sweep's as long as the
    guard band really bounds the fast model's error — while
    ``all_results`` keeps the pruned points' fast predictions (their
    ``.fidelity`` is ``"fast"``).  Under ``"fast"`` everything is a
    prediction, frontier included.
    """
    from repro.core.sweep import run_sweep
    from repro.core.sweeppool import partition_results
    results = run_sweep(workload, designs, cfg, parallel=parallel,
                        cache_dir=cache_dir, metrics=metrics,
                        on_error=on_error, retries=retries, timeout=timeout,
                        resume=resume, fidelity=fidelity,
                        calibration=calibration, guard_band=guard_band,
                        executor=executor)
    ok, _failed = partition_results(results)
    if fidelity == "auto":
        ok = [r for r in ok if getattr(r, "fidelity", "exact") == "exact"]
    return pareto_frontier(ok), edp_optimal(ok), results
