"""Plain-text rendering of experiment results.

Every figure's bench target prints the same rows/series the paper plots;
these helpers keep that output consistent and diff-friendly.
"""


def format_table(headers, rows, precision=3):
    """Render a list-of-lists as an aligned text table."""
    def fmt(cell):
        if isinstance(cell, float):
            return f"{cell:.{precision}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def breakdown_table(results, title=""):
    """Cycle-class breakdown rows (Figures 2b / 6a style)."""
    headers = ["workload", "design", "flush_only", "dma_flush",
               "compute_dma", "compute_only", "other", "time_us"]
    rows = []
    for r in results:
        frac = r.breakdown_fractions()
        rows.append([
            r.workload, _short_design(r.design),
            frac["flush_only"], frac["dma_flush"], frac["compute_dma"],
            frac["compute_only"], frac["other"], r.time_us,
        ])
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def pareto_table(results, title=""):
    """Time/power/EDP rows for a set of results (Figure 8 style)."""
    headers = ["design", "time_us", "power_mw", "edp_Js"]
    rows = [[_short_design(r.design), r.time_us, r.power_mw,
             f"{r.edp:.3e}"] for r in results]
    table = format_table(headers, rows)
    return f"{title}\n{table}" if title else table


def _short_design(design):
    if design.mem_interface == "dma":
        opts = ""
        if design.pipelined_dma:
            opts += "P"
        if design.dma_triggered_compute:
            opts += "T"
        return f"dma L{design.lanes} x{design.partitions} {opts or 'base'}"
    return (f"cache L{design.lanes} {design.cache_size_kb}KB "
            f"p{design.cache_ports}")


def percent(value):
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
