"""Pluggable sweep executors: where design-point evaluations actually run.

:func:`repro.core.sweeppool.run_sweep_pool` owns the *bookkeeping* of a
sweep — cache probes, manifests, metrics, retry accounting — but the
question of *where* each pending point executes is delegated to an
:class:`Executor`:

* :class:`InlineExecutor` — serial, in-process.  The reference engine:
  every other executor must be bit-identical to it.
* :class:`LocalPoolExecutor` — worker processes on this machine.  Wraps
  both the fast ``multiprocessing.Pool`` path (fault-intolerant, lowest
  overhead) and the robust pipe-per-worker pool (retries, per-point
  timeouts, dead-worker recovery) and picks per plan.
* :class:`RemoteExecutor` — the seam for distributing points across
  machines.  Transport-agnostic: anything that can turn ``(workload,
  design, cfg)`` into a ``RunResult`` — an RPC stub, an HTTP client
  around another host's ``repro serve`` — plugs in as a callable.

Executors are deliberately dumb: they receive an :class:`ExecutionPlan`
(the pending ``(index, attempt)`` pairs plus the ``finish``/``fail``
callbacks of the orchestrating sweep) and report every point through
those callbacks.  Ordering, caching, manifests and metrics stay the
orchestrator's problem, so a new backend only has to answer "evaluate
this point, maybe retry it".  ``execute`` returns the list of
``(index, attempt)`` pairs it had to abandon (a collapsed pool); the
orchestrator falls back to :class:`InlineExecutor` for those.

The low-level worker machinery (spawn-safe task runner, pipe-per-worker
pool) lives in :mod:`repro.core.sweeppool` and is looked up through the
module at call time, so tests that stub ``sweeppool._start_worker`` or
``sweeppool._spawn_can_reimport_main`` keep working.
"""

import time
import traceback as _traceback
import warnings


class ExecutionPlan:
    """One sweep's pending work plus the callbacks that settle each point.

    ``pending`` is a list of ``(index, first_attempt)`` pairs into
    ``designs``; ``finish(index, result, elapsed)`` and ``fail(index,
    attempts, kind, error, traceback)`` are supplied by the orchestrator
    (they update results/cache/manifest/metrics and raise under
    ``on_error="raise"``).  ``robust`` selects capture-and-retry
    semantics; without it the first evaluation error propagates raw.

    ``evaluate`` optionally overrides the task runner for in-process
    executors (signature of ``sweeppool._evaluate_task``); process-pool
    executors reject it because a closure cannot cross a spawn boundary.
    """

    __slots__ = ("workload", "designs", "cfg", "pending", "faults",
                 "retries", "retry_backoff", "timeout", "robust",
                 "metrics", "finish", "fail", "evaluate")

    def __init__(self, workload, designs, cfg=None, pending=None,
                 faults=None, retries=0, retry_backoff=0.0, timeout=None,
                 robust=False, metrics=None, finish=None, fail=None,
                 evaluate=None):
        if metrics is None:
            from repro.core.sweeppool import SweepMetrics
            metrics = SweepMetrics()
        self.workload = workload
        self.designs = designs
        self.cfg = cfg
        self.pending = (list(pending) if pending is not None
                        else [(i, 1) for i in range(len(designs))])
        self.faults = faults or {}
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.timeout = timeout
        self.robust = robust
        self.metrics = metrics
        self.finish = finish if finish is not None else lambda *a: None
        self.fail = fail if fail is not None else lambda *a: None
        self.evaluate = evaluate

    def task(self, index, attempt):
        """The picklable task tuple for one pending point."""
        return (index, self.workload, self.designs[index], self.cfg,
                attempt, self.faults)


class Executor:
    """Evaluates an :class:`ExecutionPlan`'s pending design points."""

    kind = "abstract"

    def available(self):
        """Whether this executor can run in the current process context."""
        return True

    def effective_jobs(self, npending):
        """The worker count this executor would actually use."""
        return 1

    def execute(self, plan):
        """Settle every pending point through ``plan.finish``/``plan.fail``.

        Returns the ``(index, attempt)`` pairs left unsettled (an
        executor that lost its workers); the orchestrator completes
        those inline.
        """
        raise NotImplementedError

    def close(self):
        """Release any long-lived resources (pools, connections)."""

    def __repr__(self):
        return f"<{type(self).__name__} kind={self.kind!r}>"


def _run_serial(plan, evaluate):
    """Shared in-process loop: evaluate in order, retry/capture per plan."""
    for index, first_attempt in plan.pending:
        attempt = first_attempt
        while True:
            try:
                _idx, result, elapsed = evaluate(plan.task(index, attempt))
            except Exception as exc:
                if not plan.robust:
                    raise
                if attempt <= plan.retries:
                    plan.metrics.retries += 1
                    if plan.retry_backoff > 0.0:
                        time.sleep(plan.retry_backoff * attempt)
                    attempt += 1
                    continue
                plan.fail(index, attempt, "error", repr(exc),
                          _traceback.format_exc())
                break
            plan.finish(index, result, elapsed)
            break
    return []


class InlineExecutor(Executor):
    """Serial in-process evaluation — the reference engine.

    Honours ``retries``/``on_error`` but cannot enforce a per-point
    wall-clock ``timeout`` (there is no worker process to kill); a robust
    plan that asks for one gets a RuntimeWarning and runs unbounded.
    """

    kind = "inline"

    def execute(self, plan):
        from repro.core import sweeppool
        if plan.timeout is not None and plan.robust:
            warnings.warn(
                "per-point sweep timeout needs worker processes; "
                "evaluating inline without timeout enforcement",
                RuntimeWarning, stacklevel=2)
        return _run_serial(plan, plan.evaluate or sweeppool._evaluate_task)


class LocalPoolExecutor(Executor):
    """Worker processes on this machine (today's pool, behind the seam).

    A non-robust plan runs on a plain ``multiprocessing.Pool`` (lowest
    overhead, first failure propagates); a robust plan runs on the
    pipe-per-worker pool that survives crashed/hung/OOM-killed workers
    (see :func:`repro.core.sweeppool._run_robust_pool`).  ``jobs=None``
    or ``0`` means one worker per CPU.
    """

    kind = "local-pool"

    def __init__(self, jobs=None, mp_context="spawn"):
        from repro.core.sweeppool import resolve_jobs
        self.jobs = resolve_jobs(jobs)
        self.mp_context = mp_context

    def available(self):
        from repro.core import sweeppool
        return (self.mp_context != "spawn"
                or sweeppool._spawn_can_reimport_main())

    def effective_jobs(self, npending):
        return min(self.jobs, npending) if npending else 1

    def execute(self, plan):
        from multiprocessing import get_context

        from repro.core import sweeppool
        if plan.evaluate is not None:
            raise ValueError(
                "LocalPoolExecutor evaluates through the module-level "
                "task runner; a custom evaluate callable cannot cross "
                "the process boundary — use InlineExecutor")
        if not plan.pending:
            return []
        ctx = get_context(self.mp_context)
        if not plan.robust:
            tasks = [plan.task(index, attempt)
                     for index, attempt in plan.pending]
            with ctx.Pool(processes=min(self.jobs, len(tasks))) as pool:
                for index, result, elapsed in pool.imap(
                        sweeppool._evaluate_task, tasks):
                    plan.finish(index, result, elapsed)
            return []
        return sweeppool._run_robust_pool(
            ctx=ctx, nworkers=min(self.jobs, len(plan.pending)),
            pending=plan.pending, workload=plan.workload,
            designs=plan.designs, cfg=plan.cfg, faults=plan.faults,
            retries=plan.retries, retry_backoff=plan.retry_backoff,
            timeout=plan.timeout, metrics=plan.metrics,
            finish=plan.finish, fail=plan.fail)


class RemoteExecutor(Executor):
    """Hook for fanning design points out across machines.

    The executor contract is transport-agnostic, so "remote" reduces to
    one callable: ``transport(workload, design, cfg) -> RunResult``.
    Wire it to an RPC client, a batch queue, or
    :meth:`repro.serve.client.ServiceClient.evaluate` pointed at another
    host's ``repro serve`` — every pending point is shipped through it
    with the plan's retry/capture semantics (``kind="error"`` failures;
    remote wall-clock timeouts are the transport's job).  Without a
    transport the executor refuses to run, loudly: this class is the
    documented seam, not a silent no-op.
    """

    kind = "remote"

    def __init__(self, transport=None, label="remote"):
        self.transport = transport
        self.label = label

    def effective_jobs(self, npending):
        # One in-flight request at a time from this process; the far end
        # may fan out further, but that parallelism is not observable here.
        return 1

    def execute(self, plan):
        if self.transport is None:
            raise NotImplementedError(
                "RemoteExecutor has no transport configured; pass "
                "transport=callable(workload, design, cfg) -> RunResult "
                "(e.g. an HTTP client around another host's 'repro serve')")
        from repro.core import sweeppool

        def evaluate(task):
            index, workload, design, cfg, attempt, faults = task
            if faults:
                sweeppool.inject_fault(faults, index, attempt)
            start = time.perf_counter()
            result = self.transport(workload, design, cfg)
            return index, result, time.perf_counter() - start

        return _run_serial(plan, evaluate)


def resolve_executor(jobs=None, mp_context="spawn", robust=False,
                     timeout=None, npending=0):
    """The default executor for one sweep's pending points.

    Mirrors the historical engine selection exactly: a pool when more
    than one worker was requested (or a robust plan needs worker
    processes to enforce ``timeout``) *and* the current interpreter can
    spawn re-importable workers and there is pending work; inline
    otherwise.
    """
    pool = LocalPoolExecutor(jobs=jobs, mp_context=mp_context)
    want_pool = pool.jobs > 1 or (robust and timeout is not None)
    if npending and want_pool and pool.available():
        return pool
    return InlineExecutor()
