"""The four design scenarios of Section V-B.

1. **Baseline (isolated)**: classic Aladdin — optimize the accelerator with
   preloaded scratchpads, no system attached.
2. **Co-designed DMA**: scratchpads + fully-optimized DMA over a 32-bit bus.
3. **Co-designed cache**: hardware-managed coherent cache, 32-bit bus.
4. **Co-designed cache, 64-bit bus**: same, with doubled bus bandwidth.

For each scenario we sweep the design space and take the EDP optimum.  The
paper's Figure 10 then asks: how much better is the co-designed optimum
than *the isolated-optimal design dropped into the same realistic system*?
That naive design keeps the isolated optimum's parallelism and local-memory
provisioning; for cache scenarios its cache must hold the whole footprint
(a scratchpad-equivalent sizing) with port count matching the isolated
memory bandwidth.
"""

from repro.aladdin.accelerator import Accelerator
from repro.core.config import DesignPoint, PARAMETER_TABLE, SoCConfig
from repro.core.metrics import RunResult
from repro.core.pareto import edp_optimal
from repro.core.soc import run_design
from repro.core.sweep import (
    cache_design_space,
    dma_design_space,
    run_sweep,
)
from repro.workloads import cached_ddg, cached_trace


class Scenario:
    """One named design scenario: a design space plus a platform config."""

    def __init__(self, key, label, mem_interface, bus_width_bits=32):
        self.key = key
        self.label = label
        self.mem_interface = mem_interface  # "isolated" | "dma" | "cache"
        self.bus_width_bits = bus_width_bits

    def soc_config(self, base_cfg=None):
        """Platform config with this scenario's bus width."""
        cfg = base_cfg or SoCConfig()
        return cfg.replace(bus_width_bits=self.bus_width_bits)

    def design_space(self, density="standard"):
        """The design points this scenario sweeps."""
        if self.mem_interface == "cache":
            return cache_design_space(density)
        return dma_design_space(density)

    def __repr__(self):
        return f"Scenario({self.key})"


SCENARIOS = {
    "isolated": Scenario("isolated", "Baseline (isolated)", "isolated"),
    "dma32": Scenario("dma32", "Co-designed DMA, 32-bit bus", "dma", 32),
    "cache32": Scenario("cache32", "Co-designed cache, 32-bit bus",
                        "cache", 32),
    "cache64": Scenario("cache64", "Co-designed cache, 64-bit bus",
                        "cache", 64),
}


def run_isolated(workload, design):
    """Evaluate one design in isolation (classic Aladdin) as a RunResult."""
    trace = cached_trace(workload)
    accel = Accelerator(trace, design.lanes, design.partitions,
                        design.spad_ports,
                        pipelining=design.pipelining, ii=design.ii)
    res = accel.run_isolated()
    breakdown = {
        "flush_only": 0, "dma_flush": 0, "compute_dma": 0,
        "compute_only": res.ticks, "other": 0,
    }
    stats = {"isolated": True}
    if accel.ii_plan is not None:
        stats["ii"] = accel.ii_plan.ii
        stats["rec_mii"] = accel.ii_plan.rec_mii
        stats["res_mii"] = accel.ii_plan.res_mii
        stats["reservation_conflicts"] = res.scheduler.reservation_conflicts
    return RunResult(workload, design, res.ticks,
                     accel.clock.ticks_to_cycles(res.ticks),
                     breakdown, res.energy,
                     stats=stats)


def isolated_sweep(workload, density="standard"):
    """Isolated (classic-Aladdin) runs over the DMA design space."""
    designs = dma_design_space(density)
    return [run_isolated(workload, d) for d in designs]


def run_scenario_optimum(workload, scenario, density="standard",
                         base_cfg=None, parallel=None, cache_dir=None,
                         on_error="raise", retries=0, timeout=None,
                         fidelity="exact", calibration=None,
                         guard_band=None):
    """Sweep the scenario's design space; return (optimum, all results).

    ``parallel``/``cache_dir`` select the pooled / memoized sweep engine
    (:mod:`repro.core.sweeppool`) for the detailed-simulation scenarios;
    ``on_error``/``retries``/``timeout`` its robustness layer.  Under
    ``on_error="collect"`` the optimum is taken over the successful points
    (the returned results list still carries the
    :class:`~repro.core.sweeppool.FailedPoint` entries in input order).

    ``fidelity`` selects the simulation tier for the detailed-simulation
    scenarios (see :mod:`repro.core.calibrate`; the isolated scenario is
    already analytic and ignores it).  Under ``"auto"`` the optimum is
    taken over the exact-confirmed points only — dominance implies
    strictly better EDP, so the triage preserves the true EDP optimum.
    """
    if scenario.mem_interface == "isolated":
        results = isolated_sweep(workload, density)
    else:
        cfg = scenario.soc_config(base_cfg)
        results = run_sweep(workload, scenario.design_space(density), cfg,
                            parallel=parallel, cache_dir=cache_dir,
                            on_error=on_error, retries=retries,
                            timeout=timeout, fidelity=fidelity,
                            calibration=calibration, guard_band=guard_band)
    from repro.core.sweeppool import partition_results
    ok, _failed = partition_results(results)
    if fidelity == "auto":
        ok = [r for r in ok if getattr(r, "fidelity", "exact") == "exact"]
    return edp_optimal(ok), results


def naive_design_for(workload, isolated_design, scenario):
    """The isolated-optimal design transplanted into ``scenario``.

    DMA scenarios keep lanes/partitions (with the DMA optimizations on —
    the comparison is about provisioning, not about crippling the
    transfer).  Cache scenarios get a scratchpad-equivalent cache: sized to
    hold the whole shared footprint, with ports matching the isolated
    design's local memory bandwidth.
    """
    if scenario.mem_interface == "dma":
        return isolated_design.replace(mem_interface="dma",
                                       pipelined_dma=True,
                                       dma_triggered_compute=True)
    ddg = cached_ddg(workload)
    footprint_kb = max(ddg.footprint_bytes() / 1024.0, 1.0)
    sizes = [s for s in PARAMETER_TABLE["cache_size_kb"]
             if s >= footprint_kb]
    size = sizes[0] if sizes else PARAMETER_TABLE["cache_size_kb"][-1]
    ports = max(p for p in PARAMETER_TABLE["cache_ports"]
                if p <= max(isolated_design.partitions, 1))
    return isolated_design.replace(mem_interface="cache",
                                   cache_size_kb=size, cache_ports=ports)


def edp_improvement(workload, scenario, density="standard", base_cfg=None,
                    isolated_optimum=None, codesigned_optimum=None,
                    parallel=None, cache_dir=None, on_error="raise",
                    retries=0, timeout=None, fidelity="exact",
                    calibration=None, guard_band=None):
    """Figure 10's metric for one (workload, scenario) pair.

    Returns a dict with the naive EDP (isolated-optimal design under the
    scenario's system), the co-designed EDP (scenario optimum), and their
    ratio (improvement; > 1 means co-design wins).  Precomputed optima can
    be passed in to reuse sweep work; ``parallel``/``cache_dir`` select
    the pooled / memoized sweep engine when a sweep is needed, and
    ``on_error``/``retries``/``timeout`` its robustness layer.
    ``fidelity`` selects the sweep's simulation tier (the naive point is
    always simulated exactly — it is a single run).
    """
    if isolated_optimum is None:
        isolated_optimum, _ = run_scenario_optimum(
            workload, SCENARIOS["isolated"], density)
    cfg = scenario.soc_config(base_cfg)
    naive = naive_design_for(workload, isolated_optimum.design, scenario)
    naive_result = run_design(workload, naive, cfg)
    if codesigned_optimum is not None:
        codesigned, results = codesigned_optimum, []
    else:
        codesigned, results = run_scenario_optimum(
            workload, scenario, density, base_cfg,
            parallel=parallel, cache_dir=cache_dir, on_error=on_error,
            retries=retries, timeout=timeout, fidelity=fidelity,
            calibration=calibration, guard_band=guard_band)
    # The co-design space is a superset of the naive point, but a
    # sub-sampled sweep grid may miss it; the optimum over the union keeps
    # the metric well defined (improvement >= 1 by construction).
    if naive_result.edp < codesigned.edp:
        codesigned = naive_result
    return {
        "workload": workload,
        "scenario": scenario.key,
        "naive_design": naive,
        "naive_edp": naive_result.edp,
        "codesigned_design": codesigned.design,
        "codesigned_edp": codesigned.edp,
        "improvement": naive_result.edp / codesigned.edp,
        "codesigned_result": codesigned,
        "naive_result": naive_result,
        "sweep": results,
    }


def run_pipeline_family(workloads, depths=(2, 3), buffer_bytes=(512, 4096),
                        handoffs=("dma", "cache"), traffic=(False,),
                        double_buffer=(False,), base_cfg=None, check=None,
                        progress=None):
    """The streaming-pipeline design-space family.

    Chains the first ``depth`` entries of ``workloads`` for every
    combination of chain depth × handoff buffer size × handoff mode
    (scratchpad-DMA vs coherent cache) × background traffic ×
    double-buffering, and records per-combination makespan, back-pressure
    behaviour, and speedup over running the same stages serially through
    the CPU.  Buffer size is a DMA-handoff knob; cache handoffs collapse
    it (memory is the buffer), so those rows are generated once per
    (depth, traffic, ...) with ``buffer_bytes=None``.

    Returns a list of plain dicts, one per combination, ready for
    tabulation or JSON dumping.
    """
    from repro.core.pipeline import AcceleratorPipeline

    base_cfg = base_cfg or SoCConfig()
    rows = []
    combos = []
    for depth in depths:
        if depth > len(workloads):
            continue
        for traf in traffic:
            for dbuf in double_buffer:
                for handoff in handoffs:
                    if handoff == "cache":
                        if dbuf:
                            continue  # double buffering is a DMA-ring knob
                        combos.append((depth, traf, dbuf, handoff, None))
                    else:
                        for buf in buffer_bytes:
                            combos.append((depth, traf, dbuf, handoff, buf))

    solo_cache = {}
    for idx, (depth, traf, dbuf, handoff, buf) in enumerate(combos):
        chain = list(workloads[:depth])
        cfg = base_cfg.replace(background_traffic=traf)
        pipe = AcceleratorPipeline(
            chain, handoff=handoff,
            buffer_bytes=buf if buf is not None else 4096,
            double_buffer=dbuf, cfg=cfg, check=check)
        result = pipe.run()
        # Serial baseline: memoized per (workload, handoff, traffic) —
        # identical across the buffer-size axis.
        serial = 0
        for spec in pipe.specs:
            key = (spec.workload, handoff, traf)
            if key not in solo_cache:
                solo_cache[key] = run_design(spec.workload, spec.design,
                                             cfg)
            serial += solo_cache[key].total_ticks
        rows.append({
            "depth": depth,
            "workloads": list(chain),
            "handoff": handoff,
            "buffer_bytes": buf,
            "double_buffer": dbuf,
            "background_traffic": traf,
            "makespan_ticks": result.makespan_ticks,
            "serial_ticks": serial,
            "speedup_vs_serial": serial / result.makespan_ticks,
            "stage_ticks": [r.total_ticks for r in result.stage_results],
            "handoffs": sum(l["handoffs"] for l in result.links),
            "producer_stalls": sum(l["producer_stalls"]
                                   for l in result.links),
            "consumer_parks": sum(l["consumer_parks"]
                                  for l in result.links),
            "producer_stall_ticks": sum(l["producer_stall_ticks"]
                                        for l in result.links),
            "consumer_park_ticks": sum(l["consumer_park_ticks"]
                                       for l in result.links),
            "ordering_clean": result.ordering_clean(),
        })
        if progress is not None:
            progress(idx + 1, len(combos), rows[-1])
    return rows
