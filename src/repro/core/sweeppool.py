"""Parallel, memoized design-space sweep execution.

Every figure of the paper is a cross-product of ``run_design`` calls
(:mod:`repro.core.sweep`); this module is the engine that makes those
sweeps run as fast as the hardware allows:

* **Parallelism** — design points are independent simulations, so they fan
  out over a ``multiprocessing`` pool.  Workers are spawn-safe (the worker
  function is a module-level callable taking only picklable arguments) and
  results are returned in the exact order of the input design list, so a
  parallel sweep is a drop-in replacement for the serial one.

* **Memoization** — an on-disk :class:`SweepCache` keyed by a stable
  SHA-256 hash of ``(workload, DesignPoint, SoCConfig)`` stores every
  evaluated :class:`~repro.core.metrics.RunResult` (pickled).  Repeated
  figure or benchmark runs pay each design point exactly once; a warm
  cache evaluates zero new points.

* **Metrics** — a :class:`SweepMetrics` record (in the spirit of
  :mod:`repro.sim.stats` counters) reports points evaluated vs. cache
  hits, wall time per point, and worker utilization, so sweep time is
  observable rather than guessed at.

Cache format (see :data:`CACHE_FORMAT_VERSION`):

``<cache_dir>/<key[:2]>/<key>.pkl`` where ``key`` is the hex SHA-256 of
the canonical JSON ``{"version", "workload", "design", "config"}``
payload; ``design`` and ``config`` are the complete ``__dict__`` of the
:class:`DesignPoint` / :class:`SoCConfig`, so *any* parameter change —
including ones not on the sweep grid — invalidates the entry.  Each file
pickles ``{"key": payload, "result": RunResult}``; the embedded payload
guards against hash collisions and lets tooling inspect entries without
re-deriving keys.  Corrupt or unreadable entries are treated as misses
and rewritten.
"""

import hashlib
import json
import os
import pickle
import sys
import tempfile
import time
from multiprocessing import get_context

from repro.core.config import SoCConfig
from repro.core.soc import run_design

#: Bump when the simulator's timing/energy models change in ways that make
#: previously cached RunResults stale.
CACHE_FORMAT_VERSION = 1

#: Conventional cache location (the CLI default; gitignored).
DEFAULT_CACHE_DIR = ".sweep-cache"


# -- cache keys ---------------------------------------------------------------

def key_payload(workload, design, cfg=None):
    """The canonical, JSON-able identity of one design-point evaluation."""
    cfg = cfg or SoCConfig()
    return {
        "version": CACHE_FORMAT_VERSION,
        "workload": workload,
        "design": dict(design.__dict__),
        "config": dict(cfg.__dict__),
    }


def sweep_key(workload, design, cfg=None):
    """Stable hex digest identifying one ``(workload, design, cfg)`` run."""
    text = json.dumps(key_payload(workload, design, cfg),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- the on-disk cache --------------------------------------------------------

class SweepCache:
    """Pickle-per-point result cache under one root directory.

    Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
    sharing a cache directory never observe torn entries; unreadable or
    mismatched entries read as misses.
    """

    def __init__(self, root):
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    def get(self, key, payload=None):
        """The cached RunResult for ``key``, or None on a miss."""
        try:
            with open(self._path(key), "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if payload is not None and entry.get("key") != payload:
            return None  # hash collision or stale format: treat as miss
        return entry.get("result")

    def put(self, key, result, payload=None):
        """Atomically store ``result`` under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump({"key": payload, "result": result}, f,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self):
        count = 0
        for _dir, _subdirs, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".pkl"))
        return count

    def clear(self):
        """Drop every cached entry (keeps the directory)."""
        for dirpath, _subdirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".pkl"):
                    os.unlink(os.path.join(dirpath, name))


# -- sweep metrics ------------------------------------------------------------

class SweepMetrics:
    """Counters describing where one sweep's time went.

    ``points`` partitions into ``cache_hits`` + ``evaluated``; per-point
    wall times accumulate in ``point_seconds`` (evaluated points only).
    ``worker_utilization`` is total simulation time over total pool
    capacity (jobs x wall-clock span) — near 1.0 means the pool stayed
    busy, near 1/jobs means the sweep was effectively serial.
    """

    def __init__(self):
        self.points = 0
        self.cache_hits = 0
        self.evaluated = 0
        self.jobs = 1
        self.wall_seconds = 0.0
        self.point_seconds = []

    @property
    def seconds_per_point(self):
        if not self.point_seconds:
            return 0.0
        return sum(self.point_seconds) / len(self.point_seconds)

    @property
    def worker_utilization(self):
        if self.wall_seconds <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(sum(self.point_seconds)
                   / (self.wall_seconds * self.jobs), 1.0)

    def merge(self, other):
        """Fold another sweep's counters into this one (multi-sweep runs)."""
        self.points += other.points
        self.cache_hits += other.cache_hits
        self.evaluated += other.evaluated
        self.jobs = max(self.jobs, other.jobs)
        self.wall_seconds += other.wall_seconds
        self.point_seconds.extend(other.point_seconds)
        return self

    def as_dict(self):
        return {
            "points": self.points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "seconds_per_point": self.seconds_per_point,
            "worker_utilization": self.worker_utilization,
        }

    def report(self):
        """Human-readable multi-line summary."""
        return "\n".join([
            "sweep metrics:",
            f"  points       : {self.points}",
            f"  evaluated    : {self.evaluated}",
            f"  cache hits   : {self.cache_hits}",
            f"  wall time    : {self.wall_seconds:.2f} s "
            f"({self.seconds_per_point:.3f} s/point evaluated)",
            f"  worker util  : {self.worker_utilization:.2f} "
            f"(jobs={self.jobs})",
        ])


# -- execution ----------------------------------------------------------------

def _evaluate_task(task):
    """Pool worker: evaluate one design point (module-level => spawn-safe)."""
    index, workload, design, cfg = task
    start = time.perf_counter()
    result = run_design(workload, design, cfg)
    return index, result, time.perf_counter() - start


def _spawn_can_reimport_main():
    """Whether a ``spawn``-context worker can re-import ``__main__``.

    Spawn workers re-run the parent's main module during bootstrap.  When
    the parent is interactive (REPL, ``python -`` / stdin, notebooks
    without a file) there is nothing to re-import; the pool would respawn
    crashing workers forever.  Those parents must run inline instead.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return False
    if getattr(main, "__spec__", None) is not None:  # python -m ...
        return True
    path = getattr(main, "__file__", None)
    return bool(path) and os.path.exists(path)


def resolve_jobs(jobs):
    """Normalize a worker count: None/0 means one worker per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def run_sweep_pool(workload, designs, cfg=None, jobs=1, cache_dir=None,
                   progress=None, metrics=None, mp_context="spawn"):
    """Evaluate every design point, in parallel and/or memoized.

    Drop-in compatible with :func:`repro.core.sweep.run_sweep`: returns
    the :class:`RunResult` list in the order of ``designs`` regardless of
    worker scheduling.  ``jobs=None`` or ``0`` uses every CPU; ``jobs=1``
    evaluates inline (no pool).  ``cache_dir`` enables the on-disk memo
    cache; ``metrics`` (a :class:`SweepMetrics`) is filled in place.
    """
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else SweepMetrics()
    metrics.points += len(designs)
    metrics.jobs = max(metrics.jobs, jobs)
    sweep_start = time.perf_counter()
    cache = SweepCache(cache_dir) if cache_dir else None

    results = [None] * len(designs)
    completed = 0
    pending = []
    payloads = {}
    for i, design in enumerate(designs):
        if cache is not None:
            payload = key_payload(workload, design, cfg)
            key = sweep_key(workload, design, cfg)
            payloads[i] = (key, payload)
            hit = cache.get(key, payload)
            if hit is not None:
                results[i] = hit
                metrics.cache_hits += 1
                completed += 1
                if progress is not None:
                    progress(completed, len(designs))
                continue
        pending.append(i)

    def finish(index, result, elapsed):
        nonlocal completed
        results[index] = result
        metrics.evaluated += 1
        metrics.point_seconds.append(elapsed)
        if cache is not None:
            key, payload = payloads[index]
            cache.put(key, result, payload)
        completed += 1
        if progress is not None:
            progress(completed, len(designs))

    if jobs > 1 and mp_context == "spawn" and not _spawn_can_reimport_main():
        jobs = 1

    tasks = [(i, workload, designs[i], cfg) for i in pending]
    if len(tasks) > 0 and jobs > 1:
        ctx = get_context(mp_context)
        with ctx.Pool(processes=min(jobs, len(tasks))) as pool:
            for index, result, elapsed in pool.imap(_evaluate_task, tasks):
                finish(index, result, elapsed)
    else:
        for task in tasks:
            finish(*_evaluate_task(task))

    metrics.wall_seconds += time.perf_counter() - sweep_start
    return results
