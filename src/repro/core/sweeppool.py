"""Parallel, memoized design-space sweep execution.

Every figure of the paper is a cross-product of ``run_design`` calls
(:mod:`repro.core.sweep`); this module is the engine that makes those
sweeps run as fast as the hardware allows:

* **Parallelism** — design points are independent simulations, so they fan
  out over a ``multiprocessing`` pool.  Workers are spawn-safe (the worker
  function is a module-level callable taking only picklable arguments) and
  results are returned in the exact order of the input design list, so a
  parallel sweep is a drop-in replacement for the serial one.

* **Memoization** — an on-disk :class:`SweepCache` keyed by a stable
  SHA-256 hash of ``(workload, DesignPoint, SoCConfig)`` stores every
  evaluated :class:`~repro.core.metrics.RunResult` (pickled).  Repeated
  figure or benchmark runs pay each design point exactly once; a warm
  cache evaluates zero new points.

* **Metrics** — a :class:`SweepMetrics` record (in the spirit of
  :mod:`repro.sim.stats` counters) reports points evaluated vs. cache
  hits, wall time per point, and worker utilization, so sweep time is
  observable rather than guessed at.

* **Robustness** — long sweeps treat per-point failure as routine, not
  fatal (in the tradition of gem5 batch infrastructure): a raising design
  point becomes a structured :class:`FailedPoint` under
  ``on_error="collect"``, transient failures retry with backoff, a
  per-point wall-clock ``timeout`` and dead-worker detection keep the pool
  from ever hanging, evaluated results flush incrementally through the
  cache plus a sweep-level :class:`SweepManifest` so interrupted sweeps
  resume where they left off, and repeated pool-level failure degrades
  gracefully to serial evaluation.

Cache format (see :data:`CACHE_FORMAT_VERSION`):

``<cache_dir>/<key[:2]>/<key>.pkl`` where ``key`` is the hex SHA-256 of
the canonical JSON ``{"version", "workload", "design", "config"}``
payload; ``design`` and ``config`` are the *canonicalized* ``__dict__``
of the :class:`DesignPoint` / :class:`SoCConfig` (see
:func:`canonical_design_fields`), so any parameter change that can
influence the simulation — including ones not on the sweep grid —
invalidates the entry, while two clients describing the same point
differently (``8`` vs ``8.0``, a DMA design dragging along unused cache
geometry) hash identically.  Each file pickles ``{"key": payload,
"result": RunResult}``; the embedded payload guards against hash
collisions and lets tooling inspect entries without re-deriving keys
(entries written without a payload skip the guard).  Corrupt or
unreadable entries are treated as misses and rewritten.  Failed points
are never cached, so a resumed sweep re-evaluates exactly the missing
and failed points.

Where evaluations *run* is delegated to the pluggable executor layer
(:mod:`repro.core.executors`): inline, local worker pool, or a remote
transport.  ``run_sweep_pool(executor=...)`` accepts any
:class:`~repro.core.executors.Executor`; by default the historical
selection (pool when it pays, inline otherwise) is preserved exactly.
"""

import hashlib
import json
import os
import pickle
import sys
import tempfile
import time
import traceback as _traceback
import warnings
from collections import deque

from repro.core.config import DesignPoint, SoCConfig
from repro.core.soc import run_design
from repro.errors import SweepError

#: Bump when the simulator's timing/energy models change in ways that make
#: previously cached RunResults stale.  v2: canonicalized key payloads
#: (numeric normalization + interface-irrelevant field masking).
#: v3: ``loop_pipelining`` replaced by the ``pipelining``/``ii`` fields.
CACHE_FORMAT_VERSION = 3

#: Conventional cache location (the CLI default; gitignored).
DEFAULT_CACHE_DIR = ".sweep-cache"


# -- cache keys ---------------------------------------------------------------

#: DesignPoint fields with no influence on a DMA-interface simulation
#: (verified by the regression suite: varying any of them leaves every
#: measured metric bit-identical).  Masked to their defaults in the key
#: payload so two clients describing the same DMA design — one dragging
#: along cache geometry, one not — hash to the same cache entry.
DMA_IRRELEVANT_FIELDS = ("cache_size_kb", "cache_line", "cache_ports",
                         "cache_assoc", "prefetcher", "perfect_memory")

#: DesignPoint fields with no influence on a cache-interface simulation.
#: Note ``spad_ports`` is *not* here: cache designs still exercise the
#: scratchpad port arbitration, so it stays a hash input.
CACHE_IRRELEVANT_FIELDS = ("pipelined_dma", "dma_triggered_compute",
                           "double_buffer")

_DESIGN_DEFAULTS = None


def _canon_value(value):
    """JSON-stable scalar: integral floats collapse to ints (8.0 -> 8)."""
    if (isinstance(value, float) and not isinstance(value, bool)
            and value.is_integer()):
        return int(value)
    return value


def canonical_design_fields(design):
    """The hashed identity of a DesignPoint: complete, canonical fields.

    Starts from the full ``__dict__`` (so fields off the sweep grid still
    invalidate), then (1) normalizes numerics so ``8`` and ``8.0``
    serialize identically and (2) masks the fields the selected memory
    interface provably ignores to their defaults — two non-canonical
    descriptions of the same design point must hash identically, or
    concurrent clients pay double evaluation for nothing.
    """
    global _DESIGN_DEFAULTS
    if _DESIGN_DEFAULTS is None:
        _DESIGN_DEFAULTS = dict(DesignPoint().__dict__)
    fields = {name: _canon_value(value)
              for name, value in design.__dict__.items()}
    masked = (DMA_IRRELEVANT_FIELDS if design.is_dma
              else CACHE_IRRELEVANT_FIELDS)
    for name in masked:
        if name in fields:
            fields[name] = _canon_value(_DESIGN_DEFAULTS[name])
    return fields


def canonical_config_fields(cfg):
    """The hashed identity of an SoCConfig (numeric-normalized)."""
    return {name: _canon_value(value)
            for name, value in cfg.__dict__.items()}


def key_payload(workload, design, cfg=None):
    """The canonical, JSON-able identity of one design-point evaluation."""
    cfg = cfg or SoCConfig()
    return {
        "version": CACHE_FORMAT_VERSION,
        "workload": workload,
        "design": canonical_design_fields(design),
        "config": canonical_config_fields(cfg),
    }


def sweep_key(workload, design, cfg=None):
    """Stable hex digest identifying one ``(workload, design, cfg)`` run."""
    text = json.dumps(key_payload(workload, design, cfg),
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- the on-disk cache --------------------------------------------------------

#: Sweep size from which the cache probe switches to the batch path
#: (one directory scan via the key index) instead of per-point probes.
_BATCH_PROBE_MIN = 64


class SweepCache:
    """Pickle-per-point result cache under one root directory.

    Writes are atomic (temp file + ``os.replace``) so concurrent sweeps
    sharing a cache directory never observe torn entries; unreadable or
    mismatched entries read as misses.

    Batch reads go through :meth:`get_many`, backed by a lazily built
    in-memory key index (one directory scan): probing a large, mostly
    warm query then costs one ``os.walk`` plus a read per *present*
    entry instead of a failed ``open`` per point.  The index is a
    fast-path hint, not a source of truth — a key another process adds
    after the scan reads as a miss until :meth:`refresh_index` (or a
    local :meth:`put`, which updates the index) catches up, which only
    ever costs a redundant re-evaluation, never a wrong answer.
    """

    def __init__(self, root):
        self.root = root
        self._index = None  # lazy set of known-present keys
        os.makedirs(root, exist_ok=True)

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + ".pkl")

    # -- in-memory key index (batch fast path) -------------------------------

    def index(self):
        """The set of cached keys, scanned lazily from the directory."""
        if self._index is None:
            index = set()
            for _dirpath, _subdirs, files in os.walk(self.root):
                for name in files:
                    if name.endswith(".pkl"):
                        index.add(name[:-4])
            self._index = index
        return self._index

    def refresh_index(self):
        """Drop and rebuild the key index (pick up other writers)."""
        self._index = None
        return self.index()

    def get_many(self, keys, payloads=None):
        """Batch lookup: ``{key: RunResult}`` for the cached subset.

        ``payloads`` optionally maps keys to their expected payload for
        the hash-collision guard (same semantics as :meth:`get`).  Keys
        absent from the index are skipped without touching the disk —
        the point of this method; an indexed key whose entry turns out
        unreadable is dropped from the index and reported as a miss.
        """
        index = self.index()
        out = {}
        for key in keys:
            if key not in index:
                continue
            result = self.get(
                key, payloads.get(key) if payloads is not None else None)
            if result is None:
                index.discard(key)
            else:
                out[key] = result
        return out

    def get(self, key, payload=None):
        """The cached RunResult for ``key``, or None on a miss.

        When both the caller and the stored entry carry a payload, they
        must match (hash-collision guard).  An entry stored *without* a
        payload cannot be verified, so it is accepted on the key alone —
        a ``put(key, result)`` followed by a payload-verifying ``get``
        must round-trip, not read as a permanent collision miss.
        """
        try:
            with open(self._path(key), "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        stored = entry.get("key")
        if payload is not None and stored is not None and stored != payload:
            return None  # hash collision or stale format: treat as miss
        return entry.get("result")

    def put(self, key, result, payload=None):
        """Atomically store ``result`` under ``key``."""
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as f:
                pickle.dump({"key": payload, "result": result}, f,
                            protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self._index is not None:
            self._index.add(key)

    def __len__(self):
        count = 0
        for _dir, _subdirs, files in os.walk(self.root):
            count += sum(1 for name in files if name.endswith(".pkl"))
        return count

    def clear(self):
        """Drop every cached entry (keeps the directory)."""
        for dirpath, _subdirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".pkl"):
                    os.unlink(os.path.join(dirpath, name))
        self._index = None


# -- sweep metrics ------------------------------------------------------------

class SweepMetrics:
    """Counters describing where one sweep's time went.

    ``points`` partitions into ``cache_hits`` + ``evaluated`` +
    ``failures``; per-point wall times accumulate in ``point_seconds``
    (successfully evaluated points only).  ``worker_utilization`` is total
    simulation time over total pool capacity (jobs x wall-clock span) —
    near 1.0 means the pool stayed busy, near 1/jobs means the sweep was
    effectively serial.  ``jobs`` records the worker count the engine
    *actually* used (after any spawn-safety fallback to inline
    evaluation), not merely the one requested.

    Robustness counters (see the robust engine knobs on
    :func:`run_sweep_pool`): ``failures`` points that exhausted their
    retry budget, ``retries`` re-issued attempts, ``timeouts`` the subset
    of failed attempts killed by the per-point wall-clock limit.

    ``joins`` counts points satisfied by *someone else's* in-flight
    evaluation (the service front door's dedup — see
    :mod:`repro.serve.service`).  A joined point is neither a cache hit
    nor a local evaluation, so ``points`` partitions into ``cache_hits``
    + ``joins`` + ``evaluated`` + ``failures`` wherever the service is
    involved and joins stay out of ``point_seconds`` / utilization.

    Tiered-fidelity counters (see :mod:`repro.core.calibrate`):
    ``fast_points`` analytic predictions made, ``pruned`` points the
    triage skipped exactly, ``confirmed`` points re-evaluated exactly
    after triage; ``fast_time_errors`` / ``fast_power_errors`` collect the
    measured fast-vs-exact relative error for every confirmed pair.
    """

    def __init__(self):
        self.points = 0
        self.cache_hits = 0
        self.joins = 0
        self.evaluated = 0
        self.failures = 0
        self.retries = 0
        self.timeouts = 0
        self.jobs = 1
        self.wall_seconds = 0.0
        self.point_seconds = []
        self.fast_points = 0
        self.pruned = 0
        self.confirmed = 0
        self.fast_time_errors = []
        self.fast_power_errors = []

    @property
    def seconds_per_point(self):
        if not self.point_seconds:
            return 0.0
        return sum(self.point_seconds) / len(self.point_seconds)

    @property
    def worker_utilization(self):
        if self.wall_seconds <= 0.0 or self.jobs <= 0:
            return 0.0
        return min(sum(self.point_seconds)
                   / (self.wall_seconds * self.jobs), 1.0)

    @staticmethod
    def _finite_max(values):
        finite = [v for v in values if v == v and v != float("inf")]
        return max(finite) if finite else 0.0

    @staticmethod
    def _finite_mean(values):
        finite = [v for v in values if v == v and v != float("inf")]
        return sum(finite) / len(finite) if finite else 0.0

    @property
    def fast_time_error_max(self):
        return self._finite_max(self.fast_time_errors)

    @property
    def fast_time_error_mean(self):
        return self._finite_mean(self.fast_time_errors)

    @property
    def fast_power_error_max(self):
        return self._finite_max(self.fast_power_errors)

    @property
    def fast_power_error_mean(self):
        return self._finite_mean(self.fast_power_errors)

    def merge(self, other):
        """Fold another sweep's counters into this one (multi-sweep runs)."""
        self.points += other.points
        self.cache_hits += other.cache_hits
        self.joins += other.joins
        self.evaluated += other.evaluated
        self.failures += other.failures
        self.retries += other.retries
        self.timeouts += other.timeouts
        self.jobs = max(self.jobs, other.jobs)
        self.wall_seconds += other.wall_seconds
        self.point_seconds.extend(other.point_seconds)
        self.fast_points += other.fast_points
        self.pruned += other.pruned
        self.confirmed += other.confirmed
        self.fast_time_errors.extend(other.fast_time_errors)
        self.fast_power_errors.extend(other.fast_power_errors)
        return self

    def as_dict(self):
        return {
            "points": self.points,
            "evaluated": self.evaluated,
            "cache_hits": self.cache_hits,
            "joins": self.joins,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "jobs": self.jobs,
            "wall_seconds": self.wall_seconds,
            "seconds_per_point": self.seconds_per_point,
            "worker_utilization": self.worker_utilization,
            "fast_points": self.fast_points,
            "pruned": self.pruned,
            "confirmed": self.confirmed,
            "fast_time_error_max": self.fast_time_error_max,
            "fast_time_error_mean": self.fast_time_error_mean,
            "fast_power_error_max": self.fast_power_error_max,
            "fast_power_error_mean": self.fast_power_error_mean,
        }

    def reg_stats(self, registry, prefix="sweep"):
        """Mirror these counters into an :mod:`repro.obs` stats registry."""
        scalars = [
            ("points", "design points requested", lambda: self.points),
            ("evaluated", "points evaluated exactly", lambda: self.evaluated),
            ("cache_hits", "points served from cache",
             lambda: self.cache_hits),
            ("joins", "points satisfied by joining an in-flight "
             "evaluation", lambda: self.joins),
            ("failures", "points that exhausted retries",
             lambda: self.failures),
            ("retries", "re-issued attempts", lambda: self.retries),
            ("timeouts", "attempts killed by the per-point timeout",
             lambda: self.timeouts),
            ("fast_points", "analytic fast-model predictions",
             lambda: self.fast_points),
            ("pruned", "points pruned by fast-model triage",
             lambda: self.pruned),
            ("confirmed", "triaged points confirmed exactly",
             lambda: self.confirmed),
            ("fast_time_error_max", "max fast-vs-exact time error",
             lambda: self.fast_time_error_max),
            ("fast_power_error_max", "max fast-vs-exact power error",
             lambda: self.fast_power_error_max),
        ]
        for name, desc, getter in scalars:
            registry.scalar(f"{prefix}.{name}", getter=getter, desc=desc)

    def report(self):
        """Human-readable multi-line summary."""
        lines = [
            "sweep metrics:",
            f"  points       : {self.points}",
            f"  evaluated    : {self.evaluated}",
            f"  cache hits   : {self.cache_hits}",
        ]
        if self.joins:
            lines.append(f"  joins        : {self.joins} "
                         f"(in-flight dedup)")
        if self.failures or self.retries or self.timeouts:
            lines.append(f"  failures     : {self.failures} "
                         f"({self.timeouts} timed out, "
                         f"{self.retries} retries)")
        if self.fast_points:
            lines.append(f"  fast points  : {self.fast_points} "
                         f"({self.pruned} pruned, "
                         f"{self.confirmed} confirmed exactly)")
        if self.fast_time_errors or self.fast_power_errors:
            lines.append(
                f"  fast error   : time max {self.fast_time_error_max:.1%} "
                f"mean {self.fast_time_error_mean:.1%}; "
                f"power max {self.fast_power_error_max:.1%} "
                f"mean {self.fast_power_error_mean:.1%}")
        lines.extend([
            f"  wall time    : {self.wall_seconds:.2f} s "
            f"({self.seconds_per_point:.3f} s/point evaluated)",
            f"  worker util  : {self.worker_utilization:.2f} "
            f"(jobs={self.jobs})",
        ])
        return "\n".join(lines)


# -- structured failures ------------------------------------------------------

class FailedPoint:
    """Structured record of one design point that could not be evaluated.

    Takes a :class:`~repro.core.metrics.RunResult` slot in the results
    list under ``on_error="collect"`` so ordering is preserved; filter
    with :func:`partition_results` before Pareto/EDP analyses.  ``kind``
    is ``"error"`` (the evaluation raised), ``"timeout"`` (killed by the
    per-point wall-clock limit) or ``"worker-lost"`` (the worker process
    died — crashed or OOM-killed).
    """

    is_failure = True

    def __init__(self, workload, design, error, traceback="", attempts=1,
                 kind="error"):
        self.workload = workload
        self.design = design
        self.error = error            # repr() of the exception
        self.traceback = traceback    # formatted text ("" if unavailable)
        self.attempts = attempts
        self.kind = kind

    def as_dict(self):
        return {
            "workload": self.workload,
            "design": repr(self.design),
            "error": self.error,
            "attempts": self.attempts,
            "kind": self.kind,
        }

    def __repr__(self):
        return (f"FailedPoint({self.workload!r}, {self.design!r}, "
                f"kind={self.kind!r}, attempts={self.attempts}, "
                f"error={self.error!r})")


def partition_results(results):
    """Split a sweep's results into ``(successes, failures)``.

    ``on_error="collect"`` sweeps interleave :class:`FailedPoint` entries
    with RunResults (in input order); every numeric consumer (Pareto
    frontiers, EDP optima, export) wants only the successes.
    """
    ok = [r for r in results if not getattr(r, "is_failure", False)]
    failed = [r for r in results if getattr(r, "is_failure", False)]
    return ok, failed


# -- deterministic fault injection (testing hook) -----------------------------

#: Fault-injection spec consulted by every sweep when no explicit
#: ``fault=`` argument is given; see :func:`parse_fault_spec`.
ENV_FAULT = "REPRO_SWEEP_FAULT"


def parse_fault_spec(spec):
    """Parse ``"raise@2,exit@0,hang@1*2"`` into ``{index: (kind, n)}``.

    Each comma-separated entry is ``kind@index`` or ``kind@index*n``:
    design point ``index`` misbehaves on its first ``n`` attempts
    (default: every attempt).  Kinds: ``raise`` (the evaluation raises),
    ``exit`` (the worker process hard-exits, as an OOM kill would),
    ``hang`` (the evaluation blocks until the per-point timeout fires).
    """
    faults = {}
    if not spec:
        return faults
    for part in str(spec).split(","):
        part = part.strip()
        if not part:
            continue
        kind, sep, rest = part.partition("@")
        kind = kind.strip()
        if not sep or kind not in ("raise", "exit", "hang"):
            raise ValueError(
                f"bad fault entry {part!r}: want raise@i, exit@i or "
                f"hang@i (optionally *n)")
        index_text, _sep, count = rest.partition("*")
        faults[int(index_text)] = (kind, int(count) if count else sys.maxsize)
    return faults


def inject_fault(faults, index, attempt):
    """Misbehave per the parsed fault spec (no-op for unlisted points)."""
    kind, failing_attempts = faults.get(index, (None, 0))
    if kind is None or attempt > failing_attempts:
        return
    if kind == "raise":
        raise RuntimeError(
            f"injected fault: point {index} attempt {attempt}")
    if kind == "exit":
        os._exit(17)
    if kind == "hang":
        time.sleep(3600.0)


# -- sweep manifest (checkpoint / resume) -------------------------------------

#: Subdirectory of the cache root holding sweep-level manifests.
MANIFEST_DIR = "manifests"
MANIFEST_VERSION = 2  # v2: canonical design/config fields in the id


def sweep_id(workload, designs, cfg=None):
    """Stable hex digest identifying one (workload, design list, cfg) sweep.

    Built from the same canonical field dicts as the per-point cache key
    (:func:`canonical_design_fields` / :func:`canonical_config_fields`),
    so two clients describing the same sweep with differently-spelled
    but simulation-equivalent specs (``8.0`` vs ``8``, irrelevant
    cross-interface knobs left at odd values) share one manifest.
    """
    cfg = cfg or SoCConfig()
    payload = {
        "version": MANIFEST_VERSION,
        "workload": workload,
        "config": canonical_config_fields(cfg),
        "designs": [canonical_design_fields(d) for d in designs],
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


class SweepManifest:
    """Sweep-level checkpoint: per-point done/failed/pending status.

    Lives at ``<cache_dir>/manifests/<sweep_id>.json`` next to the result
    cache; rewritten atomically on every status change, so a crashed or
    interrupted sweep leaves an accurate record behind and
    ``repro sweep --resume`` can report (and re-evaluate) exactly the
    missing and failed points.
    """

    def __init__(self, cache_dir, workload, designs, cfg=None, keys=None):
        self.id = sweep_id(workload, designs, cfg)
        self.path = os.path.join(cache_dir, MANIFEST_DIR, self.id + ".json")
        self.workload = workload
        self.entries = [
            {
                "index": i,
                "key": keys[i] if keys else None,
                "design": repr(design),
                "status": "pending",
                "attempts": 0,
                "kind": None,
                "error": None,
            }
            for i, design in enumerate(designs)
        ]

    def mark(self, index, status, attempts=0, kind=None, error=None,
             save=True):
        entry = self.entries[index]
        entry["status"] = status
        entry["attempts"] = attempts
        entry["kind"] = kind
        entry["error"] = error
        if save:
            self.save()

    def counts(self):
        out = {"done": 0, "failed": 0, "pending": 0}
        for entry in self.entries:
            out[entry["status"]] = out.get(entry["status"], 0) + 1
        return out

    def as_dict(self):
        counts = self.counts()
        return {
            "version": MANIFEST_VERSION,
            "sweep_id": self.id,
            "workload": self.workload,
            "points": len(self.entries),
            "done": counts["done"],
            "failed": counts["failed"],
            "pending": counts["pending"],
            "entries": self.entries,
        }

    def save(self):
        """Atomically write the manifest (temp file + ``os.replace``)."""
        os.makedirs(os.path.dirname(self.path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(self.path),
                                   suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                json.dump(self.as_dict(), f, indent=2, sort_keys=True)
                f.write("\n")
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def peek(cls, cache_dir, workload, designs, cfg=None):
        """The previously saved manifest dict for this sweep, or None."""
        path = os.path.join(cache_dir, MANIFEST_DIR,
                            sweep_id(workload, designs, cfg) + ".json")
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            return None
        return doc if doc.get("version") == MANIFEST_VERSION else None


# -- execution ----------------------------------------------------------------

def _evaluate_task(task):
    """Pool worker: evaluate one design point (module-level => spawn-safe)."""
    index, workload, design, cfg, attempt, faults = task
    if faults:
        inject_fault(faults, index, attempt)
    start = time.perf_counter()
    result = run_design(workload, design, cfg)
    return index, result, time.perf_counter() - start


def _spawn_can_reimport_main():
    """Whether a ``spawn``-context worker can re-import ``__main__``.

    Spawn workers re-run the parent's main module during bootstrap.  When
    the parent is interactive (REPL, ``python -`` / stdin, notebooks
    without a file) there is nothing to re-import; the pool would respawn
    crashing workers forever.  Those parents must run inline instead.
    """
    main = sys.modules.get("__main__")
    if main is None:
        return False
    if getattr(main, "__spec__", None) is not None:  # python -m ...
        return True
    path = getattr(main, "__file__", None)
    return bool(path) and os.path.exists(path)


def resolve_jobs(jobs):
    """Normalize a worker count: None/0 means one worker per CPU."""
    if not jobs:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _robust_worker_main(conn):
    """Robust-pool worker: one task per message over a private pipe.

    Replies ``("ok", index, result, elapsed)`` or ``("err", index,
    error_repr, traceback_text)``; exits on ``None`` or a closed pipe.
    Module-level and argument-picklable, so it is spawn-safe like
    :func:`_evaluate_task`.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index = task[0]
        try:
            _idx, result, elapsed = _evaluate_task(task)
            msg = ("ok", index, result, elapsed)
        except Exception as exc:
            msg = ("err", index, repr(exc), _traceback.format_exc())
        try:
            conn.send(msg)
        except Exception as exc:  # e.g. unpicklable result
            try:
                conn.send(("err", index, repr(exc),
                           _traceback.format_exc()))
            except Exception:
                return


class _WorkerHandle:
    """One robust-pool worker process plus its duplex pipe and task slot."""

    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.task = None        # (index, attempt) while busy
        self.deadline = None    # monotonic deadline while busy (or None)

    def close(self, kill=False):
        if kill and self.proc.is_alive():
            self.proc.terminate()
        else:
            try:
                self.conn.send(None)
            except (OSError, BrokenPipeError, ValueError):
                pass
        try:
            self.conn.close()
        except OSError:
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)


def _start_worker(ctx):
    """Spawn one robust-pool worker (module-level so tests can stub it)."""
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(target=_robust_worker_main, args=(child_conn,),
                       daemon=True)
    proc.start()
    child_conn.close()
    return _WorkerHandle(proc, parent_conn)


#: Consecutive dead workers (with no completion in between) before the
#: robust pool gives up and falls back to serial evaluation.
_POOL_FAILURE_LIMIT = 4


def run_sweep_pool(workload, designs, cfg=None, jobs=1, cache_dir=None,
                   progress=None, metrics=None, mp_context="spawn",
                   on_error="raise", retries=0, retry_backoff=0.0,
                   timeout=None, resume=False, fault=None, executor=None,
                   write_manifest=True):
    """Evaluate every design point, in parallel and/or memoized.

    Drop-in compatible with :func:`repro.core.sweep.run_sweep`: returns
    the :class:`RunResult` list in the order of ``designs`` regardless of
    worker scheduling.  ``jobs=None`` or ``0`` uses every CPU; ``jobs=1``
    evaluates inline (no pool).  ``cache_dir`` enables the on-disk memo
    cache; ``metrics`` (a :class:`SweepMetrics`) is filled in place.

    ``executor`` overrides *where* the pending points evaluate (any
    :class:`repro.core.executors.Executor`); by default
    :func:`~repro.core.executors.resolve_executor` reproduces the
    historical engine selection (pool when requested/needed, inline
    otherwise).  ``write_manifest=False`` skips the per-sweep
    checkpoint manifest — results still flush through the cache, but no
    ``manifests/<sweep_id>.json`` is written.  The service front door
    uses this for its coalesced ad-hoc batches, which are not resumable
    sweeps and would otherwise litter the manifest directory with
    one-off entries.

    Robustness knobs (all default to today's fail-fast behaviour):

    * ``on_error`` — ``"raise"`` propagates the first point failure (after
      retries) as a :class:`~repro.errors.SweepError`; ``"collect"``
      records a :class:`FailedPoint` in that point's result slot and keeps
      sweeping.
    * ``retries`` — re-issue a failing point up to this many extra
      attempts; ``retry_backoff`` seconds (scaled by the attempt number)
      separate attempts.
    * ``timeout`` — per-point wall-clock seconds; an overdue point's
      worker is killed and the point retried or failed (``kind=
      "timeout"``).  Enforced via worker processes, so ``timeout`` with
      ``jobs=1`` still runs one worker; inline fallback paths cannot
      enforce it and say so.
    * ``resume`` — informational: the sweep always re-uses cached results;
      with ``resume=True`` the sweep additionally requires ``cache_dir``
      (resume without a cache cannot skip anything).
    * ``fault`` — deterministic fault-injection spec (see
      :func:`parse_fault_spec`); defaults to ``$REPRO_SWEEP_FAULT``.

    Evaluated results flush through the cache (and a
    :class:`SweepManifest` when caching) as they complete, so a
    ``KeyboardInterrupt`` or crash loses nothing already evaluated.  A
    worker that *dies* (crash, OOM kill) is detected, replaced, and its
    point retried or failed (``kind="worker-lost"``) — a dead worker
    never hangs the sweep.  If workers die repeatedly with no progress,
    the sweep falls back to serial in-process evaluation with a warning.
    """
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f'on_error must be "raise" or "collect", got {on_error!r}')
    if resume and not cache_dir:
        raise ValueError("resume=True requires cache_dir")
    jobs = resolve_jobs(jobs)
    metrics = metrics if metrics is not None else SweepMetrics()
    metrics.points += len(designs)
    sweep_start = time.perf_counter()
    cache = SweepCache(cache_dir) if cache_dir else None
    faults = parse_fault_spec(
        fault if fault is not None else os.environ.get(ENV_FAULT, ""))
    robust = on_error == "collect" or retries > 0 or timeout is not None

    results = [None] * len(designs)
    completed = 0
    pending = []
    payloads = {}
    if cache is not None:
        for i, design in enumerate(designs):
            payloads[i] = (sweep_key(workload, design, cfg),
                           key_payload(workload, design, cfg))
        if len(designs) >= _BATCH_PROBE_MIN:
            # Batch probe: one index scan answers every miss for free;
            # only present entries pay a read (SweepCache.get_many).
            hits = cache.get_many([kp[0] for kp in payloads.values()],
                                  payloads={kp[0]: kp[1]
                                            for kp in payloads.values()})
        else:
            # Small sweeps: per-point probes beat walking a cache
            # directory that may hold orders of magnitude more entries.
            hits = {}
            for key, payload in payloads.values():
                result = cache.get(key, payload)
                if result is not None:
                    hits[key] = result
        for i in range(len(designs)):
            hit = hits.get(payloads[i][0])
            if hit is not None:
                results[i] = hit
                metrics.cache_hits += 1
                completed += 1
                if progress is not None:
                    progress(completed, len(designs))
            else:
                pending.append(i)
    else:
        pending = list(range(len(designs)))

    manifest = None
    if cache is not None and write_manifest:
        manifest = SweepManifest(cache_dir, workload, designs, cfg,
                                 keys={i: kp[0]
                                       for i, kp in payloads.items()})
        for i in range(len(designs)):
            if results[i] is not None:
                manifest.mark(i, "done", save=False)
        manifest.save()

    def finish(index, result, elapsed):
        nonlocal completed
        results[index] = result
        metrics.evaluated += 1
        metrics.point_seconds.append(elapsed)
        if cache is not None:
            key, payload = payloads[index]
            cache.put(key, result, payload)
        if manifest is not None:
            manifest.mark(index, "done")
        completed += 1
        if progress is not None:
            progress(completed, len(designs))

    def fail(index, attempts, kind, error, tb):
        """Record one exhausted point; raises under ``on_error="raise"``."""
        nonlocal completed
        metrics.failures += 1
        if kind == "timeout":
            metrics.timeouts += 1
        if manifest is not None:
            manifest.mark(index, "failed", attempts=attempts, kind=kind,
                          error=error)
        failure = FailedPoint(workload, designs[index], error, tb,
                              attempts, kind)
        if on_error == "raise":
            raise SweepError(
                f"design point {index} ({designs[index]!r}) failed after "
                f"{attempts} attempt(s) [{kind}]: {error}",
                failure=failure)
        results[index] = failure
        completed += 1
        if progress is not None:
            progress(completed, len(designs))

    from repro.core.executors import (
        ExecutionPlan,
        InlineExecutor,
        resolve_executor,
    )
    if executor is None:
        executor = resolve_executor(jobs=jobs, mp_context=mp_context,
                                    robust=robust, timeout=timeout,
                                    npending=len(pending))
    # Satellite fix (PR 5): record the worker count actually used, *after*
    # the spawn-safety fallback decision — a sweep downgraded to inline
    # must not report a parallel job count (and a bogus utilization).
    metrics.jobs = max(metrics.jobs,
                       executor.effective_jobs(len(pending)))

    plan = ExecutionPlan(workload, designs, cfg,
                         pending=[(i, 1) for i in pending], faults=faults,
                         retries=retries, retry_backoff=retry_backoff,
                         timeout=timeout, robust=robust, metrics=metrics,
                         finish=finish, fail=fail)
    try:
        if pending:
            leftover = executor.execute(plan)
            if leftover:
                warnings.warn(
                    "sweep worker pool failed repeatedly; falling back to "
                    "serial evaluation for the remaining "
                    f"{len(leftover)} point(s)", RuntimeWarning,
                    stacklevel=2)
                plan.pending = leftover
                InlineExecutor().execute(plan)
    finally:
        if manifest is not None:
            manifest.save()
        metrics.wall_seconds += time.perf_counter() - sweep_start
    return results


def _run_robust_pool(ctx, nworkers, pending, workload, designs, cfg, faults,
                     retries, retry_backoff, timeout, metrics, finish, fail):
    """Apply-async-style dispatch over private per-worker pipes.

    One in-flight task per worker, so a dead worker (crashed / OOM-killed
    process) identifies exactly the point it was evaluating: the worker is
    reaped and replaced, the point retried or failed with
    ``kind="worker-lost"``.  A per-point ``timeout`` kills the overdue
    worker the same way (``kind="timeout"``).  ``pending`` is a list of
    ``(index, first_attempt)`` pairs (the :class:`ExecutionPlan` format).
    Returns the list of ``(index, attempt)`` pairs still outstanding if
    the pool collapsed (repeated worker deaths with no completions, or no
    spawnable workers) — the caller falls back to inline evaluation.
    """
    from multiprocessing.connection import wait as conn_wait

    # (index, attempt, not_before)
    queue = deque((i, a, 0.0) for i, a in pending)
    workers = []
    consecutive_losses = 0

    def spawn():
        try:
            return _start_worker(ctx)
        except (OSError, RuntimeError, ValueError):
            return None

    def reap(worker, kill):
        workers.remove(worker)
        worker.close(kill=kill)
        replacement = spawn()
        if replacement is not None:
            workers.append(replacement)

    def requeue_or_fail(index, attempt, kind, error, tb):
        if attempt <= retries:
            metrics.retries += 1
            not_before = (time.monotonic() + retry_backoff * attempt
                          if retry_backoff > 0.0 else 0.0)
            queue.append((index, attempt + 1, not_before))
        else:
            fail(index, attempt, kind, error, tb)

    def next_ready(now):
        for _ in range(len(queue)):
            if queue[0][2] <= now:
                return queue.popleft()
            queue.rotate(-1)
        return None

    def abandoned():
        """Tasks still queued or in flight when the pool collapses."""
        out = [(index, attempt) for index, attempt, _nb in queue]
        for worker in workers:
            if worker.task is not None:
                out.append(worker.task)
        out.sort()
        return out

    try:
        for _ in range(nworkers):
            worker = spawn()
            if worker is not None:
                workers.append(worker)
        if not workers:
            return abandoned()

        while queue or any(w.task is not None for w in workers):
            now = time.monotonic()
            # Replace idle workers that died between tasks.
            for worker in list(workers):
                if worker.task is None and not worker.proc.is_alive():
                    reap(worker, kill=True)
            if not workers:
                return abandoned()
            # Dispatch to idle workers.
            for worker in list(workers):
                if worker.task is not None:
                    continue
                item = next_ready(now)
                if item is None:
                    break
                index, attempt, _nb = item
                try:
                    worker.conn.send((index, workload, designs[index], cfg,
                                      attempt, faults))
                except (OSError, BrokenPipeError, ValueError):
                    queue.appendleft((index, attempt, 0.0))
                    consecutive_losses += 1
                    reap(worker, kill=True)
                    if consecutive_losses >= _POOL_FAILURE_LIMIT:
                        return abandoned()
                    continue
                worker.task = (index, attempt)
                worker.deadline = (now + timeout
                                   if timeout is not None else None)
            busy = [w for w in workers if w.task is not None]
            if not busy:
                if queue:
                    # Only backoff-delayed retries remain: wait them out.
                    soonest = min(nb for _i, _a, nb in queue)
                    time.sleep(max(0.0, min(soonest - now, 0.05)))
                    continue
                break
            # Wait for a reply or the nearest deadline.
            poll = 0.05
            deadlines = [w.deadline for w in busy if w.deadline is not None]
            if deadlines:
                poll = max(0.0, min(min(deadlines) - now, poll))
            ready = conn_wait([w.conn for w in busy], timeout=poll)
            ready_set = set(ready)
            for worker in busy:
                if worker.conn not in ready_set:
                    continue
                index, attempt = worker.task
                try:
                    msg = worker.conn.recv()
                except (EOFError, OSError):
                    # Worker died mid-task: replace it, blame its point.
                    worker.task = worker.deadline = None
                    consecutive_losses += 1
                    reap(worker, kill=True)
                    requeue_or_fail(index, attempt, "worker-lost",
                                    "worker process died "
                                    "(crashed or killed)", "")
                    if consecutive_losses >= _POOL_FAILURE_LIMIT:
                        return abandoned()
                    continue
                worker.task = worker.deadline = None
                consecutive_losses = 0
                if msg[0] == "ok":
                    _tag, idx, result, elapsed = msg
                    finish(idx, result, elapsed)
                else:
                    _tag, idx, error, tb = msg
                    requeue_or_fail(idx, attempt, "error", error, tb)
            # Enforce per-point deadlines on workers that stayed silent.
            now = time.monotonic()
            for worker in list(workers):
                if (worker.task is None or worker.deadline is None
                        or now < worker.deadline):
                    continue
                index, attempt = worker.task
                worker.task = worker.deadline = None
                reap(worker, kill=True)
                requeue_or_fail(
                    index, attempt, "timeout",
                    f"design point exceeded the per-point timeout "
                    f"({timeout:g} s)", "")
        return []
    finally:
        for worker in workers:
            worker.close(kill=worker.task is not None)
