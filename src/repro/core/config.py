"""Design-point and SoC configuration (the parameter table of Figure 3).

A :class:`DesignPoint` holds the per-accelerator microarchitecture knobs
(datapath lanes, scratchpad partitioning, memory interface, cache geometry,
DMA optimizations); a :class:`SoCConfig` holds platform-wide parameters
(bus width, clocks, DRAM, driver timing constants).  Both validate their
values against the swept ranges the paper reports.
"""

from repro.errors import ConfigError

# Figure 3's table, verbatim: the design space swept in this work.
PARAMETER_TABLE = {
    "datapath_lanes": (1, 2, 4, 8, 16),
    "scratchpad_partitions": (1, 2, 4, 8, 16),
    "data_transfer_mechanism": ("dma", "cache"),
    "pipelined_dma": (False, True),
    "dma_triggered_compute": (False, True),
    "cache_size_kb": (2, 4, 8, 16, 32, 64),
    "cache_line_bytes": (16, 32, 64),
    "cache_ports": (1, 2, 4, 8),
    "cache_assoc": (4, 8),
    "cache_line_flush_ns": 84.0,
    "cache_line_invalidate_ns": 71.0,
    "hardware_prefetcher": ("none", "stride"),
    "mshrs": 16,
    "accelerator_tlb_entries": 8,
    "tlb_miss_latency_ns": 200.0,
    "system_bus_width_bits": (32, 64),
}


class DesignPoint:
    """One accelerator microarchitecture configuration."""

    def __init__(self, lanes=4, partitions=4, mem_interface="dma",
                 pipelined_dma=True, dma_triggered_compute=True,
                 double_buffer=False, loop_pipelining=False,
                 cache_size_kb=8, cache_line=64,
                 cache_ports=2, cache_assoc=4, prefetcher="stride",
                 spad_ports=1, perfect_memory=False,
                 pipelining=None, ii="auto"):
        self.lanes = lanes
        self.partitions = partitions
        self.mem_interface = mem_interface
        self.pipelined_dma = pipelined_dma
        self.dma_triggered_compute = dma_triggered_compute
        # Section IV-B2: double buffering = full/empty bits tracked at
        # half-array granularity instead of cache-line granularity.
        self.double_buffer = double_buffer
        # Loop-pipelining discipline of the datapath (Section IV-D
        # describes the synchronizing variant):
        #   "barriers" — iteration rounds synchronize (default);
        #   "off"      — rounds overlap freely (classic Aladdin);
        #   "modulo"   — rounds overlap at a modulo-scheduled initiation
        #                interval (see repro.aladdin.modulo); ``ii`` is
        #                "auto" (search for the minimal feasible II) or a
        #                forced cycle count.
        # ``loop_pipelining`` is the legacy boolean spelling (True ->
        # "off"); it is honored when ``pipelining`` is not given and
        # remains readable as a property.
        if pipelining is None:
            pipelining = "off" if loop_pipelining else "barriers"
        self.pipelining = pipelining
        # ``ii`` only means something under modulo; canonicalize it away
        # otherwise so design keys/caches never split on a dead knob.
        self.ii = ii if pipelining == "modulo" else "auto"
        self.cache_size_kb = cache_size_kb
        self.cache_line = cache_line
        self.cache_ports = cache_ports
        self.cache_assoc = cache_assoc
        self.prefetcher = prefetcher
        self.spad_ports = spad_ports
        # Burger-decomposition idealization (Figure 7 "processing time").
        self.perfect_memory = perfect_memory
        self.validate()

    def validate(self):
        """Raise ConfigError on out-of-range parameters."""
        if self.lanes < 1 or self.partitions < 1:
            raise ConfigError("lanes and partitions must be >= 1")
        if self.mem_interface not in ("dma", "cache"):
            raise ConfigError(
                f"mem_interface must be 'dma' or 'cache', "
                f"got {self.mem_interface!r}")
        if self.pipelining not in ("off", "barriers", "modulo"):
            raise ConfigError(
                f"pipelining must be 'off', 'barriers' or 'modulo', "
                f"got {self.pipelining!r}")
        if self.ii != "auto" and (not isinstance(self.ii, int)
                                  or isinstance(self.ii, bool)
                                  or self.ii < 1):
            raise ConfigError(
                f"ii must be 'auto' or an integer >= 1, got {self.ii!r}")
        if self.cache_size_kb * 1024 % (self.cache_line * self.cache_assoc):
            raise ConfigError(
                f"cache {self.cache_size_kb}KB not divisible by "
                f"line({self.cache_line}) x assoc({self.cache_assoc})")
        if self.cache_ports < 1 or self.spad_ports < 1:
            raise ConfigError("port counts must be >= 1")
        if self.prefetcher not in ("none", "stride"):
            raise ConfigError(f"unknown prefetcher {self.prefetcher!r}")

    @property
    def is_dma(self):
        return self.mem_interface == "dma"

    @property
    def loop_pipelining(self):
        """Legacy boolean view of the pipelining mode (True = free
        overlap, what ``pipelining="off"`` now spells)."""
        return self.pipelining == "off"

    def replace(self, **kwargs):
        """A copy with some fields changed."""
        fields = dict(
            lanes=self.lanes, partitions=self.partitions,
            mem_interface=self.mem_interface,
            pipelined_dma=self.pipelined_dma,
            dma_triggered_compute=self.dma_triggered_compute,
            double_buffer=self.double_buffer,
            pipelining=self.pipelining, ii=self.ii,
            cache_size_kb=self.cache_size_kb, cache_line=self.cache_line,
            cache_ports=self.cache_ports, cache_assoc=self.cache_assoc,
            prefetcher=self.prefetcher, spad_ports=self.spad_ports,
            perfect_memory=self.perfect_memory,
        )
        if "loop_pipelining" in kwargs and "pipelining" not in kwargs:
            # Legacy spelling: let the constructor re-derive the mode
            # from the boolean instead of the copied field shadowing it.
            fields["pipelining"] = None
        fields.update(kwargs)
        return DesignPoint(**fields)

    def _pipelining_key(self):
        """The pipelining element of :meth:`key`.

        Off/barriers keep the legacy boolean so existing keys stay
        stable; modulo designs get a distinct ``("modulo", ii)`` marker.
        """
        if self.pipelining == "modulo":
            return ("modulo", self.ii)
        return self.loop_pipelining

    def key(self):
        """Hashable identity (used by sweeps and caches)."""
        if self.is_dma:
            return ("dma", self.lanes, self.partitions, self.pipelined_dma,
                    self.dma_triggered_compute, self.double_buffer,
                    self._pipelining_key(), self.spad_ports)
        return ("cache", self.lanes, self.partitions, self.cache_size_kb,
                self.cache_line, self.cache_ports, self.cache_assoc,
                self.prefetcher, self._pipelining_key(),
                self.perfect_memory)

    def __repr__(self):
        if self.is_dma:
            opts = []
            if self.pipelined_dma:
                opts.append("pipelined")
            if self.dma_triggered_compute:
                opts.append("triggered")
            extra = "+".join(opts) or "baseline"
            return (f"DesignPoint(dma lanes={self.lanes} "
                    f"parts={self.partitions} {extra})")
        return (f"DesignPoint(cache lanes={self.lanes} "
                f"size={self.cache_size_kb}KB line={self.cache_line} "
                f"ports={self.cache_ports} assoc={self.cache_assoc})")


class SoCConfig:
    """Platform-wide parameters shared by every accelerator on the SoC."""

    def __init__(self, bus_width_bits=32, accel_clock_mhz=100,
                 cpu_clock_mhz=667, dram_banks=8, dram_row_bytes=4096,
                 dram_row_hit_ns=25.0, dram_row_miss_ns=50.0,
                 flush_ns_per_line=84.0, invalidate_ns_per_line=71.0,
                 ioctl_ns=500.0, poll_interval_ns=100.0,
                 dma_setup_cycles=40, dma_burst_bytes=64,
                 dma_max_outstanding=4, dma_block_bytes=4096,
                 tlb_entries=8, tlb_miss_ns=200.0, mshrs=16,
                 cpu_cache_kb=512, cpu_cache_line=64,
                 background_traffic=False, traffic_interval_cycles=40,
                 traffic_burst_bytes=64, fence_ns=50.0):
        self.bus_width_bits = bus_width_bits
        self.accel_clock_mhz = accel_clock_mhz
        self.cpu_clock_mhz = cpu_clock_mhz
        self.dram_banks = dram_banks
        self.dram_row_bytes = dram_row_bytes
        self.dram_row_hit_ns = dram_row_hit_ns
        self.dram_row_miss_ns = dram_row_miss_ns
        self.flush_ns_per_line = flush_ns_per_line
        self.invalidate_ns_per_line = invalidate_ns_per_line
        self.ioctl_ns = ioctl_ns
        self.poll_interval_ns = poll_interval_ns
        self.dma_setup_cycles = dma_setup_cycles
        self.dma_burst_bytes = dma_burst_bytes
        self.dma_max_outstanding = dma_max_outstanding
        self.dma_block_bytes = dma_block_bytes
        self.tlb_entries = tlb_entries
        self.tlb_miss_ns = tlb_miss_ns
        self.mshrs = mshrs
        self.cpu_cache_kb = cpu_cache_kb
        self.cpu_cache_line = cpu_cache_line
        self.background_traffic = background_traffic
        self.traffic_interval_cycles = traffic_interval_cycles
        self.traffic_burst_bytes = traffic_burst_bytes
        self.fence_ns = fence_ns
        self.validate()

    def validate(self):
        """Raise ConfigError on inconsistent platform parameters."""
        if self.bus_width_bits % 8:
            raise ConfigError("bus width must be a whole number of bytes")
        if self.dma_block_bytes < self.dma_burst_bytes:
            raise ConfigError("DMA block must be at least one burst")
        if self.accel_clock_mhz <= 0 or self.cpu_clock_mhz <= 0:
            raise ConfigError("clock frequencies must be positive")
        if self.background_traffic:
            service_cycles = 1 + -(-self.traffic_burst_bytes
                                   // (self.bus_width_bits // 8))
            if self.traffic_interval_cycles <= service_cycles:
                raise ConfigError(
                    f"traffic interval ({self.traffic_interval_cycles} cy) "
                    f"must exceed the bus service time per burst "
                    f"({service_cycles} cy) or the bus queue diverges")

    def replace(self, **kwargs):
        """A copy with some fields changed."""
        fields = {k: v for k, v in self.__dict__.items()}
        fields.update(kwargs)
        return SoCConfig(**fields)
