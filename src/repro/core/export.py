"""Result export: JSON and CSV serialization of run results and sweeps.

Design-space studies end in plots; this module flattens
:class:`~repro.core.metrics.RunResult` objects into plain records that any
plotting stack can consume, and writes JSON/CSV files for the figure data
the benchmark harness regenerates.
"""

import csv
import json

CSV_FIELDS = [
    "workload", "mem_interface", "lanes", "partitions", "cache_size_kb",
    "cache_line", "cache_ports", "cache_assoc", "pipelined_dma",
    "dma_triggered_compute", "loop_pipelining", "pipelining", "ii",
    "time_us", "accel_cycles",
    "power_mw", "energy_pj", "edp_js", "area_mm2", "flush_only_frac",
    "dma_flush_frac", "compute_dma_frac", "compute_only_frac", "other_frac",
]


def design_record(design):
    """Flatten a DesignPoint into plain JSON-able fields."""
    return {
        "mem_interface": design.mem_interface,
        "lanes": design.lanes,
        "partitions": design.partitions,
        "pipelined_dma": design.pipelined_dma,
        "dma_triggered_compute": design.dma_triggered_compute,
        "double_buffer": design.double_buffer,
        "loop_pipelining": design.loop_pipelining,
        "pipelining": design.pipelining,
        "ii": design.ii,
        "cache_size_kb": design.cache_size_kb,
        "cache_line": design.cache_line,
        "cache_ports": design.cache_ports,
        "cache_assoc": design.cache_assoc,
        "prefetcher": design.prefetcher,
        "spad_ports": design.spad_ports,
    }


def result_record(result):
    """Flatten a RunResult into plain JSON-able fields."""
    frac = result.breakdown_fractions()
    record = {
        "workload": result.workload,
        "time_us": result.time_us,
        "accel_cycles": result.accel_cycles,
        "power_mw": result.power_mw,
        "energy_pj": result.energy_pj,
        "edp_js": result.edp,
        "area_mm2": result.area_mm2,
        "flush_only_frac": frac["flush_only"],
        "dma_flush_frac": frac["dma_flush"],
        "compute_dma_frac": frac["compute_dma"],
        "compute_only_frac": frac["compute_only"],
        "other_frac": frac["other"],
        "energy_breakdown_pj": result.energy.as_dict(),
        "stats": {k: v for k, v in result.stats.items() if v is not None},
    }
    record.update(design_record(result.design))
    return record


def results_to_json(results, path=None, indent=2):
    """Serialize results to a JSON string (and optionally a file)."""
    records = [result_record(r) for r in results]
    text = json.dumps(records, indent=indent, sort_keys=True)
    if path is not None:
        with open(path, "w") as f:
            f.write(text)
    return text


def results_to_csv(results, path):
    """Write one flat CSV row per result (plot-ready)."""
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=CSV_FIELDS,
                                extrasaction="ignore")
        writer.writeheader()
        for result in results:
            writer.writerow(result_record(result))


def load_json(path):
    """Round-trip helper: read records back as plain dicts."""
    with open(path) as f:
        return json.load(f)
