"""One entry point per table/figure of the paper's evaluation.

Each ``figN`` function regenerates the data behind the corresponding figure
and returns it as plain structures; the benchmark harness prints them via
:mod:`repro.core.reporting`.  Expensive sweeps are memoized per process so
Figures 9 and 10 share Figure 8's work.

Figure index (see DESIGN.md section 3):
  fig1   stencil3d isolated-vs-co-designed design spaces
  fig2a  md-knn baseline-DMA timeline breakdown
  fig2b  flush/DMA/compute breakdown across MachSuite, 16 lanes
  fig4   validation: analytic model vs detailed simulation
  fig6a  cumulative DMA optimizations at 4 lanes
  fig6b  parallelism sweep with all DMA optimizations
  fig7   cache designs: processing/latency/bandwidth decomposition
  fig8   power-performance Pareto curves, DMA vs cache
  fig9   Kiviat resource comparison across the four scenarios
  fig10  EDP improvement of co-design over isolated design
  fig11  initiation-interval (modulo pipelining) EDP study
"""

from repro.core.config import DesignPoint, SoCConfig
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.scenarios import (
    SCENARIOS,
    edp_improvement,
    run_isolated,
)
from repro.core.soc import run_design
from repro.core.sweep import (
    cache_design_space,
    dma_design_space,
    ii_design_space,
    run_sweep,
)
from repro.core.kiviat import kiviat_normalized, overprovision_summary
from repro.core.validation import validate_suite
from repro.workloads import ALL_WORKLOADS, CORE_EIGHT

# Subset used in Figure 6 (spans the DMA-time range of Figure 2b).
FIG6_WORKLOADS = ["aes-aes", "nw-nw", "md-knn", "stencil-stencil2d",
                  "fft-transpose"]
FIG7_WORKLOADS = ["gemm-ncubed", "stencil-stencil3d", "md-knn", "spmv-crs",
                  "fft-transpose"]

_memo = {}

# Process-wide sweep execution options (worker pool + on-disk memo cache +
# robustness knobs), consumed by every figure that runs a design-space
# sweep.  Configured by the CLI's --jobs/--no-cache/--on-error flags and
# the benchmark harness.
_sweep_options = {"parallel": None, "cache_dir": None, "metrics": None,
                  "on_error": "raise", "retries": 0, "timeout": None,
                  "resume": False, "fidelity": "exact", "guard_band": None,
                  "executor": None}


def set_sweep_options(parallel=None, cache_dir=None, metrics=None,
                      on_error="raise", retries=0, timeout=None,
                      resume=False, fidelity="exact", guard_band=None,
                      executor=None):
    """Configure how figure sweeps execute (see :mod:`repro.core.sweeppool`).

    ``parallel`` is the worker count (``0`` = one per CPU, ``None`` =
    serial), ``cache_dir`` the on-disk memo cache root, and ``metrics`` an
    optional :class:`~repro.core.sweeppool.SweepMetrics` that accumulates
    counters across every sweep the figures run.  ``on_error``/``retries``
    / ``timeout`` / ``resume`` select the robust engine; with
    ``on_error="collect"`` the figures drop failed points and compute over
    the survivors (every figure reduces sweeps with Pareto/EDP optima, so
    a missing point degrades the figure rather than aborting it).

    ``fidelity``/``guard_band`` select the simulation tier (see
    :mod:`repro.core.calibrate`); ``"auto"`` needs per-workload
    calibrations persisted under ``cache_dir`` (``repro calibrate``).
    ``executor`` overrides where points evaluate (see
    :mod:`repro.core.executors`).
    """
    _sweep_options["parallel"] = parallel
    _sweep_options["cache_dir"] = cache_dir
    _sweep_options["metrics"] = metrics
    _sweep_options["on_error"] = on_error
    _sweep_options["retries"] = retries
    _sweep_options["timeout"] = timeout
    _sweep_options["resume"] = resume
    _sweep_options["fidelity"] = fidelity
    _sweep_options["guard_band"] = guard_band
    _sweep_options["executor"] = executor


def _sweep(workload, designs, cfg=None):
    """One design-space sweep under the configured execution options.

    Under ``on_error="collect"`` the failed points are filtered out here:
    figure code consumes results positionally only through Pareto/EDP
    reductions, which want successes.  Under ``fidelity="auto"`` the
    unconfirmed fast predictions are filtered the same way — the triage
    guarantees the dropped points are Pareto-dominated, so the figures'
    frontier/EDP reductions are unchanged.
    """
    results = run_sweep(workload, designs, cfg,
                        parallel=_sweep_options["parallel"],
                        cache_dir=_sweep_options["cache_dir"],
                        metrics=_sweep_options["metrics"],
                        on_error=_sweep_options["on_error"],
                        retries=_sweep_options["retries"],
                        timeout=_sweep_options["timeout"],
                        resume=_sweep_options["resume"],
                        fidelity=_sweep_options["fidelity"],
                        guard_band=_sweep_options["guard_band"],
                        executor=_sweep_options["executor"])
    if _sweep_options["on_error"] == "collect":
        from repro.core.sweeppool import partition_results
        results, _failed = partition_results(results)
    if _sweep_options["fidelity"] == "auto":
        results = [r for r in results
                   if getattr(r, "fidelity", "exact") == "exact"]
    return results


def _memoized(key, fn):
    if key not in _memo:
        _memo[key] = fn()
    return _memo[key]


def clear_memo():
    """Drop all memoized sweep results (used between tests)."""
    _memo.clear()


# -- Figure 1 -----------------------------------------------------------------

def fig1(workload="stencil-stencil3d", density="standard"):
    """Isolated vs co-designed DMA design spaces for stencil3d."""
    designs = dma_design_space(density)
    isolated = [run_isolated(workload, d) for d in designs]
    codesigned = _sweep(workload, designs)
    iso_opt = edp_optimal(isolated)
    co_opt = edp_optimal(codesigned)
    # The isolated optimum re-evaluated with system effects applied.
    iso_opt_in_system = run_design(workload, iso_opt.design)
    return {
        "workload": workload,
        "isolated": isolated,
        "codesigned": codesigned,
        "isolated_optimum": iso_opt,
        "codesigned_optimum": co_opt,
        "isolated_optimum_in_system": iso_opt_in_system,
        "edp_gap": iso_opt_in_system.edp / co_opt.edp,
    }


# -- Figure 2 -----------------------------------------------------------------

def _baseline16(workload):
    design = DesignPoint(lanes=16, partitions=16, mem_interface="dma",
                        pipelined_dma=False, dma_triggered_compute=False)
    return run_design(workload, design)


def fig2a(workload="md-knn"):
    """Execution-time breakdown of a 16-lane baseline-DMA md-knn."""
    return _memoized(("fig2a", workload), lambda: _baseline16(workload))


def fig2b(workloads=None):
    """flush/DMA/compute breakdown for 16-way designs across MachSuite."""
    workloads = workloads or ALL_WORKLOADS
    return [_memoized(("fig2a", w), lambda w=w: _baseline16(w))
            for w in workloads]


# -- Figure 4 -----------------------------------------------------------------

def fig4(workloads=None):
    """Validation of the analytic model against detailed simulation."""
    return validate_suite(workloads or CORE_EIGHT)


# -- Figure 6 -----------------------------------------------------------------

DMA_OPT_STEPS = (
    ("baseline", dict(pipelined_dma=False, dma_triggered_compute=False)),
    ("+pipelined", dict(pipelined_dma=True, dma_triggered_compute=False)),
    ("+triggered", dict(pipelined_dma=True, dma_triggered_compute=True)),
)


def fig6a(workloads=None, lanes=4):
    """Cumulatively apply pipelined DMA and DMA-triggered compute."""
    workloads = workloads or FIG6_WORKLOADS
    out = {}
    for w in workloads:
        rows = []
        for label, opts in DMA_OPT_STEPS:
            design = DesignPoint(lanes=lanes, partitions=lanes,
                                 mem_interface="dma", **opts)
            rows.append((label, run_design(w, design)))
        out[w] = rows
    return out


def fig6b(workloads=None, lanes_list=(1, 2, 4, 8, 16)):
    """Parallelism sweep with all DMA optimizations applied."""
    workloads = workloads or FIG6_WORKLOADS
    out = {}
    for w in workloads:
        rows = []
        for lanes in lanes_list:
            design = DesignPoint(lanes=lanes, partitions=lanes,
                                 mem_interface="dma", pipelined_dma=True,
                                 dma_triggered_compute=True)
            rows.append((lanes, run_design(w, design)))
        out[w] = rows
    return out


# -- Figure 7 -----------------------------------------------------------------

def saturating_cache_size(workload, lanes=4,
                          sizes=(2, 4, 8, 16, 32, 64), tolerance=0.05):
    """The smallest cache whose runtime is within ``tolerance`` of the best
    across the size sweep (the per-benchmark label atop Figure 7)."""
    results = []
    for size in sizes:
        design = DesignPoint(lanes=lanes, mem_interface="cache",
                             cache_size_kb=size, cache_ports=4)
        results.append((size, run_design(workload, design).total_ticks))
    best = min(t for _s, t in results)
    for size, ticks in results:
        if ticks <= best * (1.0 + tolerance):
            return size
    return results[-1][0]


def fig7(workloads=None, lanes_list=(1, 2, 4, 8, 16)):
    """Burger-style processing/latency/bandwidth decomposition.

    processing = runtime with single-cycle always-hit memory;
    latency    = extra runtime from real caches with an unconstrained bus;
    bandwidth  = extra runtime from constraining the bus to 32 bits.
    """
    workloads = workloads or FIG7_WORKLOADS
    wide_cfg = SoCConfig(bus_width_bits=4096)
    narrow_cfg = SoCConfig(bus_width_bits=32)
    out = {}
    for w in workloads:
        size = _memoized(("satsize", w), lambda w=w: saturating_cache_size(w))
        rows = []
        for lanes in lanes_list:
            base = DesignPoint(lanes=lanes, mem_interface="cache",
                               cache_size_kb=size, cache_ports=4)
            t_perfect = run_design(
                w, base.replace(perfect_memory=True), wide_cfg).total_ticks
            t_wide = run_design(w, base, wide_cfg).total_ticks
            t_narrow = run_design(w, base, narrow_cfg).total_ticks
            rows.append({
                "lanes": lanes,
                "processing": t_perfect,
                "latency": max(t_wide - t_perfect, 0),
                "bandwidth": max(t_narrow - t_wide, 0),
                "total": t_narrow,
            })
        out[w] = {"cache_size_kb": size, "rows": rows}
    return out


# -- Figure 8 -----------------------------------------------------------------

def fig8(workloads=None, density="standard"):
    """Power-performance Pareto curves for DMA vs cache designs."""
    workloads = workloads or CORE_EIGHT
    out = {}
    for w in workloads:
        dma = _memoized(("sweep", w, "dma32", density), lambda w=w:
                        _sweep(w, dma_design_space(density)))
        cache = _memoized(("sweep", w, "cache32", density), lambda w=w:
                          _sweep(w, cache_design_space(density)))
        out[w] = {
            "dma": dma,
            "cache": cache,
            "dma_pareto": pareto_frontier(dma),
            "cache_pareto": pareto_frontier(cache),
            "dma_optimum": edp_optimal(dma),
            "cache_optimum": edp_optimal(cache),
        }
    return out


# -- Figures 9 and 10 ---------------------------------------------------------

def scenario_optima(workload, density="standard"):
    """EDP optima of all four scenarios for one workload.

    Shares sweep results with fig8 through the process-level memo, so
    running fig8 -> fig9 -> fig10 in one process sweeps each design space
    once.
    """
    def compute():
        from repro.core.scenarios import isolated_sweep
        cfg64 = SoCConfig(bus_width_bits=64)
        dma = _memoized(("sweep", workload, "dma32", density), lambda:
                        _sweep(workload, dma_design_space(density)))
        cache32 = _memoized(("sweep", workload, "cache32", density), lambda:
                            _sweep(workload, cache_design_space(density)))
        cache64 = _memoized(("sweep", workload, "cache64", density), lambda:
                            _sweep(workload, cache_design_space(density),
                                   cfg64))
        return {
            "isolated": edp_optimal(isolated_sweep(workload, density)),
            "dma32": edp_optimal(dma),
            "cache32": edp_optimal(cache32),
            "cache64": edp_optimal(cache64),
        }
    return _memoized(("optima", workload, density), compute)


def fig9(workloads=None, density="standard"):
    """Kiviat comparison of lanes / SRAM / bandwidth across scenarios."""
    workloads = workloads or CORE_EIGHT
    out = {}
    for w in workloads:
        optima = scenario_optima(w, density)
        normalized = kiviat_normalized(w, optima)
        out[w] = {
            "optima": optima,
            "normalized": normalized,
            "leaner_fraction": overprovision_summary(normalized),
        }
    return out


def fig10(workloads=None, density="standard"):
    """EDP improvement of co-designed over isolated-then-deployed designs."""
    workloads = workloads or CORE_EIGHT
    rows = {}
    for w in workloads:
        optima = scenario_optima(w, density)
        per_scenario = {}
        for key in ("dma32", "cache32", "cache64"):
            imp = edp_improvement(
                w, SCENARIOS[key], density,
                isolated_optimum=optima["isolated"],
                codesigned_optimum=optima[key])
            per_scenario[key] = imp
        rows[w] = per_scenario
    averages = {}
    maxima = {}
    for key in ("dma32", "cache32", "cache64"):
        values = [rows[w][key]["improvement"] for w in rows]
        averages[key] = _geomean(values)
        maxima[key] = max(values)
    return {"rows": rows, "averages": averages, "maxima": maxima,
            "paper_averages": {"dma32": 1.2, "cache32": 2.2, "cache64": 2.0},
            "paper_max": 7.4}


def fig11(workload="md-knn", iis=("auto", 1, 2, 4, 8, 16),
          base_design=None):
    """Initiation-interval study: EDP along the modulo-pipelining axis.

    Sweeps one design across pipelining modes (barriers, free overlap,
    and modulo at each II — see
    :func:`repro.core.sweep.ii_design_space`), full co-simulation per
    point.  Returns the per-point results plus the EDP-vs-time Pareto
    frontier over the axis; ``rec_mii``/``res_mii``/``ii`` come from the
    modulo planner's stats.
    """
    designs = ii_design_space(base_design, iis=iis)
    results = _sweep(workload, designs)
    rows = []
    for design, result in zip(designs, results):
        rows.append({
            "pipelining": design.pipelining,
            "ii_requested": design.ii,
            "ii": result.stats.get("ii"),
            "rec_mii": result.stats.get("rec_mii"),
            "res_mii": result.stats.get("res_mii"),
            "time_us": result.time_us,
            "energy_pj": result.energy_pj,
            "edp_js": result.edp,
            "result": result,
        })
    frontier = pareto_frontier(results)
    return {
        "workload": workload,
        "rows": rows,
        "pareto": frontier,
        "edp_optimum": edp_optimal(results),
    }


def _geomean(values):
    prod = 1.0
    for v in values:
        prod *= v
    return prod ** (1.0 / len(values)) if values else float("nan")
