"""Multi-accelerator SoCs.

Figure 3 draws two accelerators (ACCEL0, ACCEL1) on one system bus, and
Section IV-A's fourth design consideration is behaviour under shared
resource contention: "invariably a DMA operation or cache fill will stall
to allow another process to make progress."  The paper proxies contention
with bus width; this module models it directly — several accelerators,
each running its own workload on its own design point, launched
concurrently on one shared :class:`~repro.core.soc.Platform` (one bus, one
DRAM, one coherence domain).

Typical use::

    from repro.core.multi import MultiAcceleratorSoC
    soc = MultiAcceleratorSoC([
        ("md-knn", DesignPoint(lanes=4, partitions=4)),
        ("fft-transpose", DesignPoint(lanes=4, mem_interface="cache")),
    ])
    results = soc.run()
    slowdowns = soc.contention_slowdowns()   # vs running alone
"""

from repro.core.config import SoCConfig
from repro.core.soc import Platform, SoC, run_design


class MultiAcceleratorSoC:
    """N accelerators sharing one platform, offloaded concurrently."""

    def __init__(self, jobs, cfg=None, check=None):
        """``jobs`` is a list of (workload, DesignPoint) pairs.

        ``check`` enables runtime correctness checking on the shared
        platform (see :mod:`repro.check`); ``None`` honors
        ``$REPRO_CHECK``.
        """
        if not jobs:
            raise ValueError("need at least one (workload, design) job")
        self.cfg = cfg or SoCConfig()
        self.platform = Platform(self.cfg, check=check)
        self.socs = [SoC(workload, design, platform=self.platform)
                     for workload, design in jobs]
        self.jobs = list(jobs)
        self._results = None
        self._solo_results = None
        self._solo_key = None

    def run(self):
        """Launch every accelerator at tick 0 and run to completion.

        Returns one :class:`~repro.core.metrics.RunResult` per job, in job
        order.  Each result's runtime includes whatever stalls the *other*
        accelerators inflicted through the shared bus and DRAM banks.
        """
        for soc in self.socs:
            soc.launch()
        self.platform.sim.run()
        if self.platform.checker is not None:
            self.platform.checker.audit(self.platform)
        self._results = [soc.collect() for soc in self.socs]
        return self._results

    @property
    def results(self):
        if self._results is None:
            raise RuntimeError("call run() first")
        return self._results

    def makespan_ticks(self):
        """Completion time of the slowest offload."""
        return max(r.total_ticks for r in self.results)

    def solo_results(self, on_error="raise", retries=0):
        """Each job re-run alone on an identical (private) platform.

        Memoized per fault-handling policy: the solo runs are
        deterministic functions of (job, cfg, on_error, retries), so
        repeated calls with the same knobs — e.g.
        ``contention_slowdowns()`` after ``makespan_ticks()`` analyses —
        re-simulate nothing, while a call with *different* knobs re-runs
        rather than silently serving results computed under the old
        policy (a first ``on_error="raise"`` call must not pin the memo
        for a later ``on_error="collect"`` one, and vice versa).

        The solo re-runs go through the sweep engine's fault handling:
        ``on_error="collect"`` turns a failing solo run into a
        :class:`~repro.core.sweeppool.FailedPoint` slot (with ``retries``
        extra attempts first) instead of aborting the whole contention
        analysis.
        """
        key = (on_error, retries)
        if self._solo_results is None or self._solo_key != key:
            from repro.core.sweep import run_sweep
            solo = []
            for workload, design in self.jobs:
                solo.extend(run_sweep(workload, [design], self.cfg,
                                      on_error=on_error, retries=retries))
            self._solo_results = solo
            self._solo_key = key
        return self._solo_results

    def contention_slowdowns(self, on_error="raise", retries=0):
        """Per-job runtime ratio shared-platform / alone (>= ~1.0).

        This is the direct measurement of the paper's shared-resource-
        contention effect: how much each accelerator's offload stretches
        because its neighbours occupy the bus and DRAM.  A job whose solo
        re-run failed (``on_error="collect"``) or completed in zero ticks
        (a degenerate workload with no ratio to take) yields ``None`` in
        its slot rather than poisoning the other ratios.
        """
        solo = self.solo_results(on_error=on_error, retries=retries)
        return [None if getattr(alone, "is_failure", False)
                or not alone.total_ticks
                else shared.total_ticks / alone.total_ticks
                for shared, alone in zip(self.results, solo)]

    def bus_utilization(self):
        """Shared-bus busy fraction over the makespan."""
        return self.platform.bus.utilization(0, self.makespan_ticks())


def run_pair(workload_a, design_a, workload_b, design_b, cfg=None,
             check=None):
    """Convenience: two accelerators side by side; returns the Multi SoC.

    ``check`` reaches the shared platform exactly as it would via
    :class:`MultiAcceleratorSoC` directly — a ``run_pair(...,
    check=True)`` caller gets MOESI checking and the leak audit, not a
    silently unchecked run.
    """
    soc = MultiAcceleratorSoC([(workload_a, design_a),
                               (workload_b, design_b)], cfg, check=check)
    soc.run()
    return soc
