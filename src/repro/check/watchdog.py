"""Deadlock diagnosis for drained-but-unfinished simulations.

The event kernel already *detects* deadlock: :meth:`repro.sim.kernel.
Simulator.run` raises when the queue drains while a registered done-check
still reports outstanding work.  What it cannot say is *why* — which lane
is parked on which full/empty bit, whether the DMA channel wedged with a
transaction half done, which MSHR fills never came back.

:func:`diagnose_platform` walks a :class:`~repro.core.soc.Platform` at the
moment of deadlock and builds a structured report with an embedded
``"summary"`` string.  :class:`~repro.check.Checker` registers it as a
diagnoser on the simulator (``add_deadlock_diagnoser``); the kernel then
raises :class:`~repro.errors.DeadlockError` carrying the report, with the
summary appended to the exception message.  The report dict (not an
exception type) crosses the kernel/check boundary, so the kernel never
imports this package.
"""


def _stalled_ready_bits(soc):
    stalls = []
    for array, bits in soc.ready_bits.items():
        if bits._waiters:
            first_bit = min(bits._waiters)
            stalls.append({
                "array": array,
                "stalled_lanes": bits.pending_waiters(),
                "unfilled_lines": len(bits._waiters),
                "first_unfilled_offset": first_bit * bits.granularity,
            })
    return stalls


def _dma_state(dma):
    if dma is None:
        return None
    active = dma._active
    state = {
        "idle": dma.idle(),
        "queued_transactions": len(dma._queue),
        "bursts_in_flight": dma._in_flight,
        "active": None,
    }
    if active is not None:
        state["active"] = {
            "label": active.label,
            "completed_bursts": active.completed_bursts,
            "total_bursts": len(active.bursts),
            "descriptors": len(active.descriptors),
        }
    return state


def _mshr_lines(cache):
    if cache is None:
        return []
    return [f"0x{addr:x}" for addr in cache.mshrs.pending_lines()]


def _diagnose_soc(soc):
    sched = soc.scheduler
    return {
        "accel": soc.accel_id,
        "workload": soc.workload,
        "flow_done": soc._flow_done,
        "signaled": soc._signaled,
        "scheduler": {
            "started": sched._started,
            "done": sched.done,
            "completed": sched._completed,
            "nodes": sched._num_nodes,
            "in_flight": sched._in_flight,
            "ready": sched._num_ready,
            "current_round": sched._current_round,
            "parked": sum(len(v) for v in sched._round_parked.values()),
        },
        "ready_bit_stalls": _stalled_ready_bits(soc),
        "dma": _dma_state(soc.dma),
        "mshr_pending": _mshr_lines(soc.accel_cache),
        "tlb_pending_walks": (len(soc.tlb._pending)
                              if soc.tlb is not None else 0),
        "driver_polls": soc.driver.polls,
    }


def _summarize_soc(diag):
    sched = diag["scheduler"]
    parts = []
    if not sched["started"]:
        parts.append("datapath never started")
    elif not sched["done"]:
        parts.append(
            f"datapath stuck at {sched['completed']}/{sched['nodes']} "
            f"nodes ({sched['in_flight']} in flight, {sched['ready']} "
            f"ready, {sched['parked']} parked)")
    elif not diag["signaled"]:
        parts.append("compute finished but completion flag never written")
    else:
        parts.append("completion flag written but CPU never saw it")
    for stall in diag["ready_bit_stalls"]:
        parts.append(
            f"{stall['stalled_lanes']} lane(s) stalled on full/empty bits "
            f"of {stall['array']!r} (first unfilled offset "
            f"0x{stall['first_unfilled_offset']:x})")
    dma = diag["dma"]
    if dma is not None and not dma["idle"]:
        active = dma["active"]
        if active is not None:
            parts.append(
                f"DMA wedged mid-transaction "
                f"({active['completed_bursts']}/{active['total_bursts']} "
                f"bursts, {dma['bursts_in_flight']} in flight, "
                f"{dma['queued_transactions']} queued behind it)")
        else:
            parts.append(f"DMA has {dma['queued_transactions']} "
                         f"transaction(s) queued but none active")
    if diag["mshr_pending"]:
        parts.append(f"{len(diag['mshr_pending'])} MSHR fill(s) pending "
                     f"({', '.join(diag['mshr_pending'][:4])})")
    if diag["tlb_pending_walks"]:
        parts.append(f"{diag['tlb_pending_walks']} TLB walk(s) pending")
    return (f"accel{diag['accel']} ({diag['workload']}): "
            + "; ".join(parts))


def diagnose_platform(platform):
    """Build the structured deadlock report for one platform.

    Returns a dict with per-SoC diagnoses and a human-readable
    ``"summary"`` the kernel appends to the :class:`~repro.errors.
    DeadlockError` message.  Purely observational — safe to call on a
    healthy platform too (every SoC then reports ``flow_done``).
    """
    socs = [_diagnose_soc(soc) for soc in platform.socs]
    report = {
        "tick": platform.sim.now,
        "socs": socs,
        "cpu_cache_mshr_pending": _mshr_lines(platform.cpu_cache),
    }
    stuck = [d for d in socs if not d["flow_done"]]
    lines = ["deadlock diagnosis:"]
    lines.extend(f"  {_summarize_soc(d)}" for d in stuck)
    if not stuck:
        lines.append("  every offload flow reports done")
    if report["cpu_cache_mshr_pending"]:
        lines.append(f"  cpu cache: {len(report['cpu_cache_mshr_pending'])} "
                     f"MSHR fill(s) pending")
    report["summary"] = "\n".join(lines)
    return report
