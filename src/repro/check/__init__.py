"""Opt-in runtime correctness checking (`repro.check`).

Three layers, all following the zero-overhead-when-detached discipline of
:mod:`repro.obs` — a detached simulation pays one ``is None`` test per
hook site and nothing else:

* **MOESI invariants** (:mod:`repro.check.invariants`) — every line-state
  installation and writeback re-validates the global coherence invariants;
  a violation raises :class:`~repro.errors.InvariantError` at the exact
  transition that broke the protocol.
* **End-of-run audits** (:mod:`repro.check.audit`) — after the event queue
  drains, every component is checked for leaked state (unreleased MSHRs,
  pending full/empty waiters, in-flight DMA, bus reservations past the
  final tick); findings raise :class:`~repro.errors.LeakError`.
* **Deadlock watchdog** (:mod:`repro.check.watchdog`) — when the queue
  drains with an unfinished offload, the kernel raises a structured
  :class:`~repro.errors.DeadlockError` whose report says which lanes
  stalled on which full/empty bits, which MSHRs are pending, and what the
  DMA channel was doing.

Enable it per run (``run_design(..., check=True)``, ``SoC(...,
check=True)``), from the CLI (``repro run/sweep --check``), or globally
via ``REPRO_CHECK=1``.  The health report dumps as JSON in the style of
:mod:`repro.obs.stats`::

    checker = Checker()
    result = run_design("gemm-ncubed", check=checker)
    checker.dump_json("health-report.json")
"""

import json
import os

from repro.check.audit import audit_platform, format_leaks
from repro.check.invariants import MOESIChecker
from repro.check.watchdog import diagnose_platform
from repro.errors import LeakError

ENV_VAR = "REPRO_CHECK"
_FALSY = ("", "0", "false", "off", "no")


def enabled_from_env(environ=None):
    """True when ``REPRO_CHECK`` asks for checking (unset/0/false = off)."""
    if environ is None:
        environ = os.environ
    value = environ.get(ENV_VAR, "")
    return value.strip().lower() not in _FALSY


def resolve_check(check):
    """Normalize a ``check=`` argument into a :class:`Checker` or ``None``.

    ``None`` falls back to the ``REPRO_CHECK`` environment variable; an
    existing :class:`Checker` passes through (so callers can keep one
    across runs and read accumulated counters); any other truthy value
    builds a fresh checker, and falsy disables checking explicitly.
    """
    if isinstance(check, Checker):
        return check
    if check is None:
        return Checker() if enabled_from_env() else None
    return Checker() if check else None


class Checker:
    """One correctness-checking session, attachable to successive platforms.

    :meth:`attach` hooks the MOESI checker into the platform's coherence
    domain and registers the deadlock diagnoser on its simulator;
    :meth:`audit` runs the end-of-run leak audit.  Counters accumulate
    across re-attachment (e.g. one checker spanning a whole sweep).
    """

    def __init__(self):
        self.platform = None
        self.moesi = None
        self.audits = 0
        self.last_audit = None
        self._prior_checks = 0
        self._prior_writeback_checks = 0
        self._prior_violations = 0
        self._prior_deferred = 0

    # -- lifecycle ---------------------------------------------------------

    def attach(self, platform):
        """Hook every check layer into ``platform``; returns self."""
        if self.moesi is not None:
            self._prior_checks += self.moesi.checks
            self._prior_writeback_checks += self.moesi.writeback_checks
            self._prior_violations += self.moesi.violations
            self._prior_deferred += self.platform.domain.deferred_fetches
        self.platform = platform
        self.moesi = MOESIChecker(platform.domain)
        platform.domain.attach_checker(self.moesi)
        platform.sim.add_deadlock_diagnoser(
            lambda: diagnose_platform(platform))
        return self

    def audit(self, platform=None):
        """Run the end-of-run leak audit; raises :class:`LeakError` on
        findings, returns the (clean) audit result otherwise."""
        platform = platform if platform is not None else self.platform
        if platform is None:
            raise LeakError("checker was never attached to a platform")
        self.audits += 1
        report = audit_platform(platform)
        self.last_audit = report
        if not report["clean"]:
            findings = format_leaks(report["leaks"])
            raise LeakError(
                f"end-of-run audit found {len(findings)} leak(s) at tick "
                f"{report['tick']}:\n  " + "\n  ".join(findings),
                leaks=report["leaks"])
        return report

    # -- accumulated counters ----------------------------------------------

    @property
    def invariant_checks(self):
        current = self.moesi.checks if self.moesi is not None else 0
        return self._prior_checks + current

    @property
    def writeback_checks(self):
        current = (self.moesi.writeback_checks
                   if self.moesi is not None else 0)
        return self._prior_writeback_checks + current

    @property
    def violations(self):
        current = self.moesi.violations if self.moesi is not None else 0
        return self._prior_violations + current

    @property
    def deferred_fetches(self):
        current = (self.platform.domain.deferred_fetches
                   if self.platform is not None else 0)
        return self._prior_deferred + current

    # -- reporting -----------------------------------------------------------

    def health_report(self):
        """The structured health summary (JSON-serializable)."""
        return {
            "enabled": True,
            "invariant_checks": self.invariant_checks,
            "writeback_checks": self.writeback_checks,
            "violations": self.violations,
            "deferred_fetches": self.deferred_fetches,
            "audits": self.audits,
            "audit": self.last_audit,
        }

    def dump_json(self, path):
        """Write the health report as JSON (obs.stats export style)."""
        with open(path, "w") as fh:
            json.dump(self.health_report(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def reg_stats(self, stats, prefix="check"):
        """Mirror the checker's counters into a stats registry."""
        stats.scalar(f"{prefix}.invariant_checks",
                     lambda: self.invariant_checks,
                     desc="MOESI state installations validated")
        stats.scalar(f"{prefix}.writeback_checks",
                     lambda: self.writeback_checks,
                     desc="writebacks validated against dirty states")
        stats.scalar(f"{prefix}.violations", lambda: self.violations,
                     desc="invariant violations detected")
        stats.scalar(f"{prefix}.audits", lambda: self.audits,
                     desc="end-of-run leak audits performed")
        stats.scalar(f"{prefix}.deferred_fetches",
                     lambda: self.deferred_fetches,
                     desc="same-line fetches serialized by the domain")


__all__ = ["Checker", "MOESIChecker", "ENV_VAR", "enabled_from_env",
           "resolve_check", "audit_platform", "format_leaks",
           "diagnose_platform"]
