"""MOESI protocol invariant checking.

The coherence model (:mod:`repro.memory.coherence`) keeps per-line MOESI
state in every cache of a snooping domain.  The paper's co-design results
depend on that state staying *globally* consistent: a line silently held
MODIFIED by two caches, or SHARED copies surviving next to a MODIFIED one,
would skew modeled bus/DRAM traffic without failing any run.

A :class:`MOESIChecker` attaches to one :class:`~repro.memory.coherence.
CoherenceDomain` (``domain.attach_checker``) and is invoked from every
line-state installation and writeback.  Detached (the default) the hook
sites cost a single ``is None`` test, the same zero-overhead discipline as
:mod:`repro.obs.trace`; attached, every transition re-validates the global
invariants for the affected line and raises
:class:`~repro.errors.InvariantError` on the first violation.

Invariants enforced (per line, across all caches of the domain):

* **single owner** — at most one cache in MODIFIED or EXCLUSIVE;
* **owner exclusivity** — a MODIFIED/EXCLUSIVE copy is the *only* copy
  (in particular: no stale SHARED beside MODIFIED);
* **unique OWNED** — at most one cache in OWNED (O may coexist with S);
* **dirty writebacks only** — writeback traffic is generated only from a
  line that was MODIFIED or OWNED.
"""

from repro.errors import InvariantError
from repro.memory.coherence import LineState


class MOESIChecker:
    """Validates global MOESI invariants for one coherence domain.

    Purely observational: it reads cache state through ``peek_state`` and
    never schedules events or mutates anything, so an attached checker
    leaves simulation results bit-identical.
    """

    __slots__ = ("domain", "checks", "writeback_checks", "violations")

    def __init__(self, domain):
        self.domain = domain
        self.checks = 0
        self.writeback_checks = 0
        self.violations = 0

    # -- hook entry points (called from Cache / CoherenceDomain) -----------

    def on_install(self, cache, line_addr, state):
        """A cache installed or upgraded ``line_addr`` to ``state``."""
        self.checks += 1
        states = [(c, c.peek_state(line_addr)) for c in self.domain.caches]
        owners = [c for c, s in states if s in (LineState.MODIFIED,
                                                LineState.EXCLUSIVE)]
        owned = [c for c, s in states if s == LineState.OWNED]
        valid = [c for c, s in states if s != LineState.INVALID]
        if len(owners) > 1:
            self._violation(
                "multiple_owners", line_addr, states,
                f"{len(owners)} caches hold the line MODIFIED/EXCLUSIVE")
        if owners and len(valid) > 1:
            kind = ("stale_shared_beside_modified"
                    if owners[0].peek_state(line_addr) == LineState.MODIFIED
                    else "owner_not_exclusive")
            self._violation(
                kind, line_addr, states,
                f"{owners[0].name} owns the line exclusively but "
                f"{len(valid) - 1} other cache(s) still hold a copy")
        if len(owned) > 1:
            self._violation(
                "multiple_owned", line_addr, states,
                f"{len(owned)} caches hold the line OWNED")

    def on_writeback(self, cache, line_addr, state):
        """``cache`` generated writeback traffic for ``line_addr``; the
        line's state at eviction time was ``state`` (``None`` = unknown,
        e.g. an external caller that predates the check hook — skipped)."""
        if state is None:
            return
        self.writeback_checks += 1
        if state not in LineState.DIRTY_STATES:
            self.violations += 1
            raise InvariantError(
                f"MOESI invariant violated [writeback_from_clean_state]: "
                f"{cache.name} wrote back line 0x{line_addr:x} from state "
                f"{state!r} (only {'/'.join(LineState.DIRTY_STATES)} may "
                f"generate writeback traffic)")

    # -- reporting ---------------------------------------------------------

    def check_line(self, line_addr):
        """Re-validate one line on demand (used by tests and audits)."""
        self.on_install(None, line_addr, None)

    def _violation(self, kind, line_addr, states, detail):
        self.violations += 1
        held = ", ".join(f"{c.name}={s}" for c, s in states
                         if s != LineState.INVALID) or "<no copies>"
        raise InvariantError(
            f"MOESI invariant violated [{kind}] at tick "
            f"{self.domain.sim.now}: line 0x{line_addr:x}: {detail} "
            f"({held})")
