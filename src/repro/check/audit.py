"""End-of-run resource-leak audits.

A simulation that *completes* can still be wrong: an MSHR entry that was
allocated but never released, a full/empty-bit waiter that never woke, a
DMA transaction left in flight, a bus reservation stretching past the
final tick — all of these mean some modeled work silently vanished, and
the run's timing is quietly optimistic.

:func:`audit_platform` walks one :class:`~repro.core.soc.Platform` (the
shared bus / DRAM / coherence / CPU-cache half plus every attached
:class:`~repro.core.soc.SoC`) after the event queue has drained and
returns a structured result; :class:`~repro.check.Checker` raises
:class:`~repro.errors.LeakError` when any finding survives.

Audited resources:

* cache MSHR files (CPU and accelerator side) — no unreleased entries;
* coherence domain — no pending or deferred line fetches;
* full/empty ``ReadyBits`` — no callbacks still blocked on unfilled lines;
* DMA engine — channel idle, no queued transactions, no bursts in flight,
  busy interval closed;
* accelerator TLB — no pending page-table walks;
* datapath scheduler — finished, nothing in flight, no nodes stranded in
  the per-lane ready queues (checked against the actual queue contents,
  with counter drift reported separately), none parked behind round or
  modulo-II gates, no unopened modulo gates;
* CPU driver — busy/flush intervals closed;
* system bus — ``next_free`` not beyond the final tick;
* cache/scratchpad port accounting — per-cycle counters within bounds;
* pipeline handoff buffers — no committed-but-unconsumed chunks, no
  producer still stalled on buffer credit, no consumer still parked on an
  empty buffer, stall/park intervals closed.
"""


def _leak(leaks, component, kind, detail):
    leaks.append({"component": component, "kind": kind, "detail": detail})


def _audit_cache(leaks, name, cache):
    mshrs = cache.mshrs
    if mshrs.in_use:
        lines = ", ".join(f"0x{a:x}" for a in mshrs.pending_lines()[:8])
        _leak(leaks, name, "mshr_leak",
              f"{mshrs.in_use} unreleased MSHR entrie(s): {lines}")


def _audit_scheduler(leaks, name, sched):
    """Datapath scheduler: finished, nothing in flight, queued or parked.

    The ready audit inspects the *actual* per-lane queues, not just the
    ``_num_ready`` counter: with round barriers off (or modulo-gated)
    a wedged pipelined schedule can strand nodes in the lane queues, and
    a counter bug could report zero while queues still hold work.  Both
    the stranded nodes and any counter drift are separate findings.
    """
    if not sched.done:
        _leak(leaks, name, "datapath_unfinished",
              f"{sched._completed}/{sched._num_nodes} nodes completed")
    if sched._in_flight:
        _leak(leaks, name, "nodes_in_flight",
              f"{sched._in_flight} node(s) still in flight")
    queued = sum(len(lane_queue) for lane_queue in sched._ready)
    if queued:
        _leak(leaks, name, "nodes_ready_unissued",
              f"{queued} ready node(s) never issued")
    if queued != sched._num_ready:
        _leak(leaks, name, "ready_counter_drift",
              f"_num_ready reads {sched._num_ready} but the lane queues "
              f"hold {queued} node(s)")
    if sched._round_parked:
        parked = sum(len(v) for v in sched._round_parked.values())
        rounds = ", ".join(str(r) for r in sorted(sched._round_parked)[:8])
        _leak(leaks, name, "nodes_parked",
              f"{parked} node(s) parked behind round gate(s) {rounds}")
    started = sched._round_started
    if started is not None and not sched.done:
        unopened = started.count(False)
        if unopened:
            _leak(leaks, name, "ii_gates_unopened",
                  f"{unopened} of {len(started)} modulo round gate(s) "
                  f"never opened (II={sched.ii})")
    return 1


def _audit_soc(leaks, soc):
    prefix = f"accel{soc.accel_id}"
    count = 0

    sched = soc.scheduler
    count += _audit_scheduler(leaks, f"{prefix}.sched", sched)

    if soc.dma is not None:
        count += 1
        dma = soc.dma
        if not dma.idle():
            active = dma._active
            detail = (f"active transaction "
                      f"({active.completed_bursts}/{len(active.bursts)} "
                      f"bursts)" if active is not None else
                      f"{len(dma._queue)} transaction(s) still queued")
            _leak(leaks, f"{prefix}.dma", "dma_channel_busy", detail)
        if dma._in_flight:
            _leak(leaks, f"{prefix}.dma", "dma_bursts_in_flight",
                  f"{dma._in_flight} burst(s) never completed")
        if dma.busy.busy:
            _leak(leaks, f"{prefix}.dma", "open_busy_interval",
                  "busy interval opened but never closed")

    for array, bits in soc.ready_bits.items():
        count += 1
        waiters = bits.pending_waiters()
        if waiters:
            _leak(leaks, f"{prefix}.ready_bits.{array}", "pending_waiters",
                  f"{waiters} lane callback(s) still blocked on unfilled "
                  f"lines of {array!r}")

    if soc.accel_cache is not None:
        count += 1
        _audit_cache(leaks, f"{prefix}.cache", soc.accel_cache)

    if soc.tlb is not None:
        count += 1
        if soc.tlb._pending:
            _leak(leaks, f"{prefix}.tlb", "pending_walks",
                  f"{len(soc.tlb._pending)} page-table walk(s) never "
                  f"finished")

    mem_if = sched.mem_if
    ports = getattr(mem_if, "ports", None)
    if ports is not None:
        count += 1
        used = mem_if._ports_used
        if not 0 <= used <= ports:
            _leak(leaks, f"{prefix}.cache_ports", "port_accounting",
                  f"{used} ports in use, {ports} exist (refund imbalance)")

    count += 1
    spad = soc.spad
    for array, banks in spad._banks.items():
        for bank, slot in enumerate(banks):
            if slot[1] > spad.ports:
                _leak(leaks, f"{prefix}.spad.{array}", "port_accounting",
                      f"bank {bank} recorded {slot[1]} accesses in one "
                      f"cycle with {spad.ports} port(s)")
                break

    driver = soc.driver
    count += 1
    if driver.busy.busy or driver.flush_busy.busy:
        _leak(leaks, f"cpu{soc.accel_id}", "open_busy_interval",
              "driver busy interval opened but never closed")

    return count


def _audit_link(leaks, link):
    """One streaming handoff buffer (repro.core.pipeline.HandoffLink).

    At the end of a clean run every committed chunk was drained and both
    sides retired: leftover full bits are producer data the consumer never
    read, pending waiters are a consumer parked forever, pending *empty*
    waiters are a producer that died stalled on buffer credit.
    """
    name = f"pipeline.{link.name}"
    bits = link.bits
    full = sum(bits._ready)
    if full:
        _leak(leaks, name, "unconsumed_handoff_data",
              f"{full} committed chunk(s) of "
              f"{link.producer.workload!r} -> {link.consumer.workload!r} "
              f"never drained by the consumer")
    waiters = bits.pending_waiters()
    if waiters:
        _leak(leaks, name, "consumer_parked",
              f"{waiters} consumer callback(s) still waiting for the "
              f"producer to commit")
    empty_waiters = bits.pending_empty_waiters()
    if empty_waiters:
        _leak(leaks, name, "producer_stalled",
              f"{empty_waiters} producer callback(s) still waiting for "
              f"buffer credit")
    if link.producer_stall.busy:
        _leak(leaks, name, "open_busy_interval",
              "producer stall interval opened but never closed")
    if link.consumer_park.busy:
        _leak(leaks, name, "open_busy_interval",
              "consumer park interval opened but never closed")
    return 1


def audit_platform(platform):
    """Audit every component of ``platform`` for leaked end-of-run state.

    Returns ``{"tick", "components_audited", "leaks", "clean"}``; callers
    that want an exception on findings go through
    :meth:`repro.check.Checker.audit`.
    """
    leaks = []
    now = platform.sim.now
    components = 0

    components += 1
    bus = platform.bus
    if bus.next_free > now:
        _leak(leaks, "soc.bus", "bus_busy_past_end",
              f"bus reserved until tick {bus.next_free}, simulation ended "
              f"at {now}")

    components += 1
    domain = platform.domain
    pending = getattr(domain, "_pending", None)
    if pending:
        lines = ", ".join(f"0x{a:x}" for a in list(pending)[:8])
        _leak(leaks, "soc.coherence", "pending_fetches",
              f"{len(pending)} line fetch(es) still in flight or "
              f"deferred: {lines}")

    components += 1
    _audit_cache(leaks, "soc.cpu_cache", platform.cpu_cache)

    for soc in platform.socs:
        components += _audit_soc(leaks, soc)

    for link in getattr(platform, "handoff_links", ()):
        components += _audit_link(leaks, link)

    return {"tick": now, "components_audited": components,
            "leaks": leaks, "clean": not leaks}


def format_leaks(leaks):
    """One human-readable line per leak finding."""
    return [f"{leak['component']}: {leak['kind']} — {leak['detail']}"
            for leak in leaks]
