#!/usr/bin/env python3
"""Write the kernel as plain Python; let the frontend trace it.

The real gem5-Aladdin captures dynamic traces with an LLVM
instrumentation pass over ordinary C.  The Python frontend is this
reproduction's analogue: decorate a restricted plain-Python function
with ``@fe.kernel`` and it runs twice — once concretely as its own
functional reference, once symbolically with operator-overloading
proxies that emit the trace — then registers as a first-class workload
that sweeps, caches and serves exactly like the 19 builtins.

Compare examples/custom_kernel.py, which builds the same style of
kernel by hand against the TraceBuilder DSL.

    python examples/frontend_kernel.py

The same kernels work from a file via the CLI, no script needed:

    repro trace-kernel examples/frontend_kernel.py
    repro sweep fir128 --kernel examples/frontend_kernel.py --density quick
"""

from repro import DesignPoint
from repro import frontend as fe
from repro.core.pareto import pareto_frontier
from repro.core.sweep import run_sweep

TAPS = 16
N = 128
OUT = N - TAPS + 1


@fe.kernel(description=f"{TAPS}-tap FIR filter over {N} samples")
def fir128(x: fe.Array("x", N, word_bytes=8, kind="input"),
           h: fe.Array("h", TAPS, word_bytes=8, kind="input"),
           y: fe.Array("y", OUT, word_bytes=8, kind="output")):
    for i in fe.parallel_range(OUT):
        acc = 0.0
        for t in range(TAPS):
            acc = acc + x[i + t] * h[t]
        y[i] = acc


@fe.kernel(description="clipped vector magnitude with traced select/sqrt")
def magnitude(a: fe.Array("a", 64, word_bytes=8, kind="input"),
              b: fe.Array("b", 64, word_bytes=8, kind="input"),
              m: fe.Array("m", 64, word_bytes=8, kind="output")):
    for i in fe.parallel_range(64):
        # No data-dependent branches: extrema and choices stay in the
        # dataflow as compare+select nodes.
        mag = fe.sqrt(a[i] * a[i] + b[i] * b[i])
        m[i] = fe.fmin(mag, 1.0)


def main():
    for kernel in (fir128, magnitude):
        trace = kernel.build()          # reference pass + trace pass
        kernel.verify(trace)            # auto-generated functional check
        print(f"{kernel.name}: {trace.num_nodes} ops, "
              f"{trace.num_iterations()} parallel iterations, verified")

    # Registered, the kernel is indistinguishable from a builtin: sweep
    # it, Pareto-filter it, serve it.
    fir128.register()
    results = run_sweep("fir128", [
        DesignPoint(lanes=lanes, partitions=lanes, mem_interface=mem)
        for lanes in (1, 2, 4, 8)
        for mem in ("dma", "cache")
    ])
    frontier = pareto_frontier(results)
    print(f"\nfir128 sweep: {len(results)} designs, "
          f"{len(frontier)} on the Pareto frontier")
    best = min(results, key=lambda r: r.edp)
    print(f"best EDP: {best.design!r}")
    print(f"  {best.time_us:.1f} us, {best.power_mw:.3f} mW, "
          f"EDP {best.edp:.3e}")


if __name__ == "__main__":
    main()
