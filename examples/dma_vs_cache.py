#!/usr/bin/env python3
"""DMA vs cache: which memory interface fits your kernel?  (Section V-A)

Sweeps both design spaces for two contrasting workloads — aes-aes (tiny
working set, regular access: the paper's DMA poster child) and spmv-crs
(indirect accesses: the cache poster child) — and prints each side's
Pareto frontier and EDP-optimal design.

    python examples/dma_vs_cache.py [workload ...]
"""

import sys

from repro import (
    cache_design_space,
    dma_design_space,
    edp_optimal,
    pareto_frontier,
    run_sweep,
)
from repro.core.reporting import pareto_table


def compare(workload):
    print(f"=== {workload} ===")
    dma_results = run_sweep(workload, dma_design_space("standard"))
    cache_results = run_sweep(workload, cache_design_space("standard"))

    print(pareto_table(pareto_frontier(dma_results),
                       "DMA / scratchpad Pareto frontier:"))
    print()
    print(pareto_table(pareto_frontier(cache_results),
                       "coherent-cache Pareto frontier:"))

    dma_best = edp_optimal(dma_results)
    cache_best = edp_optimal(cache_results)
    winner = "DMA" if dma_best.edp < cache_best.edp else "cache"
    print(f"\nEDP optima: dma={dma_best.edp:.3e}  cache={cache_best.edp:.3e}"
          f"  ->  {winner} wins for {workload}\n")


def main():
    workloads = sys.argv[1:] or ["aes-aes", "spmv-crs"]
    for workload in workloads:
        compare(workload)


if __name__ == "__main__":
    main()
