#!/usr/bin/env python3
"""Quickstart: offload one MachSuite kernel onto a configured accelerator.

Runs the md-knn molecular-dynamics kernel through the full SoC flow (flush
-> DMA -> compute -> DMA out -> completion signal) on a small DMA-based
design, then again with the paper's two DMA optimizations, and prints the
runtime breakdown that Figure 2a/6a plots.

    python examples/quickstart.py
"""

from repro import DesignPoint, run_design


def main():
    workload = "md-knn"

    baseline = DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                           pipelined_dma=False, dma_triggered_compute=False)
    optimized = baseline.replace(pipelined_dma=True,
                                 dma_triggered_compute=True)

    print(f"workload: {workload}\n")
    for label, design in (("baseline DMA", baseline),
                          ("pipelined + triggered DMA", optimized)):
        result = run_design(workload, design)
        frac = result.breakdown_fractions()
        print(f"{label}  ({design!r})")
        print(f"  total time : {result.time_us:8.1f} us "
              f"({result.accel_cycles} accelerator cycles)")
        print(f"  avg power  : {result.power_mw:8.2f} mW")
        print(f"  EDP        : {result.edp:.3e} J*s")
        print("  cycle classes:")
        for key in ("flush_only", "dma_flush", "compute_dma",
                    "compute_only", "other"):
            print(f"    {key:12s} {100 * frac[key]:5.1f}%")
        print()


if __name__ == "__main__":
    main()
