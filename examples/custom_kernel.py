#!/usr/bin/env python3
"""Bring your own kernel: trace a new workload and co-design for it.

gem5-Aladdin's whole point is pre-RTL exploration of *your* accelerator.
This example writes a small dot-product kernel against the trace-builder
DSL (the stand-in for Aladdin's LLVM tracer), runs Aladdin standalone,
then registers it through the public API — ``Workload.from_builder`` +
``register_workload`` — and runs the same datapath inside the SoC, first
with DMA and then with a coherent cache.

For the even shorter path — writing the kernel as a plain Python
function instead of DSL calls — see examples/frontend_kernel.py.

    python examples/custom_kernel.py
"""

from repro import Accelerator, DesignPoint, SoCConfig, TraceBuilder
from repro.core.soc import SoC
from repro.workloads.registry import Workload, register_workload


def build_dot_product(n=256):
    """dot(a, b) with a parallel reduction tree epilogue."""
    tb = TraceBuilder("dot-product")
    tb.array("a", n, word_bytes=8, kind="input",
             init=[0.5 + i * 0.01 for i in range(n)])
    tb.array("b", n, word_bytes=8, kind="input",
             init=[1.0 - i * 0.003 for i in range(n)])
    tb.array("partial", 16, word_bytes=8, kind="internal")
    tb.array("result", 1, word_bytes=8, kind="output")

    # Phase 1: 16-way partial sums (iteration = chunk).
    chunk = n // 16
    partials = []
    for c in range(16):
        with tb.iteration(c):
            acc = 0.0
            for i in range(c * chunk, (c + 1) * chunk):
                acc = tb.fadd(acc, tb.fmul(tb.load("a", i),
                                           tb.load("b", i)))
            tb.store("partial", c, acc)
            partials.append(acc)
    # Phase 2: serial tree reduction.
    total = partials[0]
    for c in range(1, 16):
        total = tb.fadd(total, tb.load("partial", c))
    tb.store("result", 0, total)
    return tb


def verify_dot_product(trace, n=256):
    """Functional check against a plain-Python reference."""
    expected = sum((0.5 + i * 0.01) * (1.0 - i * 0.003) for i in range(n))
    got = trace.arrays["result"].data[0]
    assert abs(expected - got) < 1e-9, f"result {got}, expected {expected}"


def main():
    trace = build_dot_product()
    verify_dot_product(trace)
    print(f"kernel traced: {trace.num_nodes} operations, "
          f"{trace.num_iterations()} parallel iterations\n")

    # Classic Aladdin: standalone design sweep.
    print("isolated (Aladdin standalone):")
    for lanes in (1, 4, 16):
        res = Accelerator(trace, lanes=lanes, partitions=lanes).run_isolated()
        print(f"  lanes={lanes:2d}: {res.cycles:6d} cycles, "
              f"{res.power_mw:6.3f} mW, EDP {res.edp:.3e}")

    # Inside the SoC: register it as a first-class workload, so the SoC
    # layer (and sweeps, caches, `repro serve`) can find it by name.
    register_workload(Workload.from_builder(
        "dot-product", build=build_dot_product, verify=verify_dot_product,
        description="256-element dot product, 16-way partial sums"))

    print("\nco-designed (full SoC flow):")
    for design in (
        DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                    pipelined_dma=True, dma_triggered_compute=True),
        DesignPoint(lanes=4, mem_interface="cache", cache_size_kb=4,
                    cache_ports=2),
    ):
        result = SoC("dot-product", design, SoCConfig()).run()
        print(f"  {design!r}")
        print(f"    {result.time_us:8.1f} us, {result.power_mw:6.3f} mW, "
              f"EDP {result.edp:.3e}")


if __name__ == "__main__":
    main()
