#!/usr/bin/env python3
"""Isolated vs co-designed optimization (Figures 1, 9, 10 in miniature).

For one workload, finds the EDP-optimal accelerator twice — once in
isolation (classic Aladdin: data preloaded, no system) and once co-designed
inside the SoC — then shows how the isolated choice over-provisions and
what that costs once real data movement is applied.

    python examples/codesign_sweep.py [workload]
"""

import sys

from repro import (
    DesignPoint,
    dma_design_space,
    edp_optimal,
    run_design,
    run_isolated,
)
from repro.core.kiviat import design_resources


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "fft-transpose"
    designs = dma_design_space("standard")

    isolated = [run_isolated(workload, d) for d in designs]
    codesigned = [run_design(workload, d) for d in designs]
    iso_best = edp_optimal(isolated)
    co_best = edp_optimal(codesigned)

    print(f"workload: {workload}\n")
    print(f"isolated    EDP optimum: {iso_best.design!r}")
    print(f"co-designed EDP optimum: {co_best.design!r}\n")

    iso_res = design_resources(workload, iso_best.design)
    co_res = design_resources(workload, co_best.design)
    print("resource provisioning (isolated -> co-designed):")
    print(f"  datapath lanes   {iso_res['lanes']:6d} -> {co_res['lanes']}")
    print(f"  local SRAM       {iso_res['sram_bytes']:6d} -> "
          f"{co_res['sram_bytes']} bytes")
    print(f"  local bandwidth  {iso_res['local_bandwidth']:6d} -> "
          f"{co_res['local_bandwidth']} words/cycle\n")

    # What the isolated choice actually costs in a real system.
    naive = run_design(workload, iso_best.design)
    print("under real system effects:")
    print(f"  isolated prediction : {iso_best.time_us:8.1f} us "
          f"@ {iso_best.power_mw:.2f} mW")
    print(f"  same design, in SoC : {naive.time_us:8.1f} us "
          f"@ {naive.power_mw:.2f} mW")
    print(f"  co-designed optimum : {co_best.time_us:8.1f} us "
          f"@ {co_best.power_mw:.2f} mW")
    print(f"\nEDP improvement from co-design: "
          f"{naive.edp / co_best.edp:.2f}x")


if __name__ == "__main__":
    main()
