#!/usr/bin/env python3
"""Isolated vs co-designed optimization (Figures 1, 9, 10 in miniature).

For one workload, finds the EDP-optimal accelerator twice — once in
isolation (classic Aladdin: data preloaded, no system) and once co-designed
inside the SoC — then shows how the isolated choice over-provisions and
what that costs once real data movement is applied.

The co-designed sweep runs through the parallel, on-disk-memoized sweep
engine (repro.core.sweeppool): pass --jobs to fan design points out over
worker processes, and re-run the script to watch the cache absorb every
point (evaluated drops to zero).

    python examples/codesign_sweep.py [workload] [--jobs N] [--no-cache]
"""

import argparse

from repro import (
    SweepMetrics,
    edp_optimal,
    dma_design_space,
    run_design,
    run_isolated,
    run_sweep,
)
from repro.core.kiviat import design_resources


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("workload", nargs="?", default="fft-transpose")
    parser.add_argument("--jobs", type=int, default=1,
                        help="sweep worker processes (0 = one per CPU)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk sweep cache")
    parser.add_argument("--cache-dir", default=".sweep-cache")
    args = parser.parse_args()

    workload = args.workload
    designs = dma_design_space("standard")
    cache_dir = None if args.no_cache else args.cache_dir
    metrics = SweepMetrics()

    isolated = [run_isolated(workload, d) for d in designs]
    codesigned = run_sweep(workload, designs,
                           parallel=None if args.jobs == 1 else args.jobs,
                           cache_dir=cache_dir, metrics=metrics)
    iso_best = edp_optimal(isolated)
    co_best = edp_optimal(codesigned)

    print(f"workload: {workload}\n")
    print(f"isolated    EDP optimum: {iso_best.design!r}")
    print(f"co-designed EDP optimum: {co_best.design!r}\n")

    iso_res = design_resources(workload, iso_best.design)
    co_res = design_resources(workload, co_best.design)
    print("resource provisioning (isolated -> co-designed):")
    print(f"  datapath lanes   {iso_res['lanes']:6d} -> {co_res['lanes']}")
    print(f"  local SRAM       {iso_res['sram_bytes']:6d} -> "
          f"{co_res['sram_bytes']} bytes")
    print(f"  local bandwidth  {iso_res['local_bandwidth']:6d} -> "
          f"{co_res['local_bandwidth']} words/cycle\n")

    # What the isolated choice actually costs in a real system.
    naive = run_design(workload, iso_best.design)
    print("under real system effects:")
    print(f"  isolated prediction : {iso_best.time_us:8.1f} us "
          f"@ {iso_best.power_mw:.2f} mW")
    print(f"  same design, in SoC : {naive.time_us:8.1f} us "
          f"@ {naive.power_mw:.2f} mW")
    print(f"  co-designed optimum : {co_best.time_us:8.1f} us "
          f"@ {co_best.power_mw:.2f} mW")
    print(f"\nEDP improvement from co-design: "
          f"{naive.edp / co_best.edp:.2f}x\n")
    print(metrics.report())


if __name__ == "__main__":
    main()
