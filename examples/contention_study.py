#!/usr/bin/env python3
"""Shared-resource contention (Section IV-A / V-B2).

Runs one DMA-based and one cache-based design under four platform
conditions — 64-bit bus, 32-bit bus, and each with background bus traffic
from other agents — showing that (a) coarse-grained DMA suffers more from
contention than fine-grained cache fills and (b) co-design matters more on
contended platforms.

    python examples/contention_study.py [workload]
"""

import sys

from repro import DesignPoint, SoCConfig, run_design


def main():
    workload = sys.argv[1] if len(sys.argv) > 1 else "spmv-crs"
    dma = DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                      pipelined_dma=True, dma_triggered_compute=True)
    cache = DesignPoint(lanes=4, mem_interface="cache", cache_size_kb=8,
                        cache_ports=2)

    platforms = [
        ("64-bit bus, quiet", SoCConfig(bus_width_bits=64)),
        ("32-bit bus, quiet", SoCConfig(bus_width_bits=32)),
        ("64-bit bus, loaded", SoCConfig(bus_width_bits=64,
                                         background_traffic=True)),
        ("32-bit bus, loaded", SoCConfig(bus_width_bits=32,
                                         background_traffic=True)),
    ]

    print(f"workload: {workload}\n")
    print(f"{'platform':22s} {'DMA time':>12s} {'cache time':>12s} "
          f"{'bus util (DMA run)':>20s}")
    baselines = {}
    for label, cfg in platforms:
        r_dma = run_design(workload, dma, cfg)
        r_cache = run_design(workload, cache, cfg)
        baselines[label] = (r_dma, r_cache)
        print(f"{label:22s} {r_dma.time_us:10.1f}us "
              f"{r_cache.time_us:10.1f}us "
              f"{100 * r_dma.stats['bus_utilization']:18.0f}%")

    quiet_dma, quiet_cache = baselines["64-bit bus, quiet"]
    loaded_dma, loaded_cache = baselines["32-bit bus, loaded"]
    print("\nslowdown from quiet 64-bit to loaded 32-bit:")
    print(f"  DMA design:   {loaded_dma.total_ticks / quiet_dma.total_ticks:.2f}x")
    print(f"  cache design: "
          f"{loaded_cache.total_ticks / quiet_cache.total_ticks:.2f}x")


if __name__ == "__main__":
    main()
