#!/usr/bin/env python3
"""Two accelerators on one bus (Figure 3's ACCEL0 + ACCEL1).

Launches a DMA-based md-knn accelerator and a cache-based spmv-crs
accelerator concurrently on one shared platform, then compares each
against running alone — the direct form of the paper's shared-resource-
contention consideration (Section IV-A).

    python examples/multi_accelerator.py
"""

from repro import DesignPoint
from repro.core.multi import MultiAcceleratorSoC


def main():
    jobs = [
        ("md-knn", DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                               pipelined_dma=True,
                               dma_triggered_compute=True)),
        ("spmv-crs", DesignPoint(lanes=4, mem_interface="cache",
                                 cache_size_kb=8, cache_ports=2)),
    ]
    soc = MultiAcceleratorSoC(jobs)
    shared = soc.run()
    solo = soc.solo_results()

    print("concurrent offloads on one shared bus/DRAM:\n")
    print(f"{'workload':15s} {'interface':9s} {'alone':>10s} "
          f"{'shared':>10s} {'slowdown':>9s}")
    for (workload, design), s, a in zip(jobs, shared, solo):
        print(f"{workload:15s} {design.mem_interface:9s} "
              f"{a.time_us:8.1f}us {s.time_us:8.1f}us "
              f"{s.total_ticks / a.total_ticks:8.2f}x")

    print(f"\nmakespan: {soc.makespan_ticks() / 1e6:.1f} us, "
          f"shared-bus utilization {100 * soc.bus_utilization():.0f}%")
    print("\nThe paper's Section IV-A observation: the coarse-grained DMA "
          "stream and fine-grained\ncache fills interleave on the bus; "
          "both stretch, and co-design under contention\n(Figure 10's "
          "32-bit-bus column) matters more than in a quiet system.")


if __name__ == "__main__":
    main()
