"""Loop pipelining (round barriers off)."""

import pytest

from repro.aladdin.accelerator import Accelerator
from repro.core.config import DesignPoint
from repro.core.soc import run_design
from repro.workloads import cached_trace

from tests.conftest import make_linear_trace


class TestIsolated:
    def test_pipelining_never_slower(self):
        tb = make_linear_trace(64)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        piped = Accelerator(tb, 4, 4, round_barriers=False).run_isolated()
        assert piped.cycles <= barrier.cycles

    def test_pipelining_overlaps_rounds(self):
        """With barriers, 64 iterations on 4 lanes take 16 rounds of 6
        cycles; pipelined, consecutive rounds overlap in the lanes."""
        tb = make_linear_trace(64)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        piped = Accelerator(tb, 4, 4, round_barriers=False).run_isolated()
        assert barrier.cycles == 16 * 6
        assert piped.cycles < barrier.cycles * 0.6

    def test_dependences_still_respected(self):
        """Pipelining must not break loop-carried chains: a serial
        accumulator runs at the same speed either way."""
        from tests.conftest import make_serial_trace
        tb = make_serial_trace(16)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        piped = Accelerator(tb, 4, 4, round_barriers=False).run_isolated()
        chain = 16 * 3  # 16 fadds of latency 3
        assert piped.cycles >= chain
        assert piped.cycles <= barrier.cycles

    def test_completes_on_every_workload(self):
        for name in ("aes-aes", "nw-nw", "sort-radix"):
            trace = cached_trace(name)
            res = Accelerator(trace, 4, 4,
                              round_barriers=False).run_isolated()
            assert res.cycles > 0


class TestInSoC:
    def test_design_flag_wired_through(self):
        base = DesignPoint(lanes=4, partitions=4)
        piped = base.replace(loop_pipelining=True)
        r_base = run_design("gemm-ncubed", base)
        r_piped = run_design("gemm-ncubed", piped)
        assert r_piped.total_ticks <= r_base.total_ticks

    def test_key_distinguishes(self):
        assert DesignPoint().key() != \
            DesignPoint(loop_pipelining=True).key()

    def test_works_with_cache_interface(self):
        d = DesignPoint(lanes=4, mem_interface="cache",
                        loop_pipelining=True)
        r = run_design("spmv-crs", d)
        assert r.total_ticks > 0
