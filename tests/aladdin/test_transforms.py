"""Lane assignment and round barriers."""

import pytest

from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes, validate_assignment

from tests.conftest import make_linear_trace


class TestAssignLanes:
    def test_modulo_mapping(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 4)
        for node in range(tb.num_nodes):
            it = tb.node_iter[node]
            assert a.lane[node] == it % 4
            assert a.round[node] == it // 4
        assert a.num_rounds == 2

    def test_single_lane_serializes_rounds(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 1)
        assert a.num_rounds == 8

    def test_more_lanes_than_iterations(self):
        tb = make_linear_trace(4)
        a = assign_lanes(tb, 16)
        assert a.num_rounds == 1

    def test_serial_nodes_unassigned(self):
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        v = tb.load("a", 0)
        a = assign_lanes(tb, 4)
        assert a.round[v.node] == -1
        assert a.lane[v.node] == 0

    def test_invalid_lanes(self):
        tb = make_linear_trace(4)
        with pytest.raises(ValueError):
            assign_lanes(tb, 0)


class TestValidation:
    def test_forward_deps_pass(self):
        tb = make_linear_trace(16)
        for lanes in (1, 2, 4, 8, 16):
            validate_assignment(tb, assign_lanes(tb, lanes))

    def test_backward_dep_detected(self):
        tb = TraceBuilder("bad")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.fadd(v, 1.0)  # iteration 0 depends on iteration 1
        with pytest.raises(ValueError, match="deadlock"):
            validate_assignment(tb, assign_lanes(tb, 1))

    def test_backward_dep_through_serial_node(self):
        tb = TraceBuilder("bad-serial")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        u = tb.fadd(v, 1.0)  # serial node depending on iteration 1
        with tb.iteration(0):
            tb.fadd(u, 1.0)  # iteration 0 <- serial <- iteration 1
        with pytest.raises(ValueError, match="deadlock"):
            validate_assignment(tb, assign_lanes(tb, 1))

    def test_same_round_cross_iteration_ok_with_enough_lanes(self):
        tb = TraceBuilder("cross")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.load("a", 1)
        with tb.iteration(2):
            tb.fadd(v, 1.0)  # iteration 2 <- iteration 1: fine
        validate_assignment(tb, assign_lanes(tb, 2))

    def test_all_workloads_validate_at_all_lane_counts(self):
        from repro.workloads import ALL_WORKLOADS, cached_trace
        for name in ALL_WORKLOADS:
            trace = cached_trace(name)
            for lanes in (1, 3, 16):
                validate_assignment(trace, assign_lanes(trace, lanes))
