"""Lane assignment and round barriers."""

import pytest

from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes, validate_assignment

from tests.conftest import make_linear_trace


class TestAssignLanes:
    def test_modulo_mapping(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 4)
        for node in range(tb.num_nodes):
            it = tb.node_iter[node]
            assert a.lane[node] == it % 4
            assert a.round[node] == it // 4
        assert a.num_rounds == 2

    def test_single_lane_serializes_rounds(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 1)
        assert a.num_rounds == 8

    def test_more_lanes_than_iterations(self):
        tb = make_linear_trace(4)
        a = assign_lanes(tb, 16)
        assert a.num_rounds == 1

    def test_serial_nodes_unassigned(self):
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        v = tb.load("a", 0)
        a = assign_lanes(tb, 4)
        assert a.round[v.node] == -1
        assert a.lane[v.node] == 0

    def test_invalid_lanes(self):
        tb = make_linear_trace(4)
        with pytest.raises(ValueError):
            assign_lanes(tb, 0)


class TestValidation:
    def test_forward_deps_pass(self):
        tb = make_linear_trace(16)
        for lanes in (1, 2, 4, 8, 16):
            validate_assignment(tb, assign_lanes(tb, lanes))

    def test_backward_dep_detected(self):
        tb = TraceBuilder("bad")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.fadd(v, 1.0)  # iteration 0 depends on iteration 1
        with pytest.raises(ValueError, match="deadlock"):
            validate_assignment(tb, assign_lanes(tb, 1))

    def test_backward_dep_through_serial_node(self):
        tb = TraceBuilder("bad-serial")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        u = tb.fadd(v, 1.0)  # serial node depending on iteration 1
        with tb.iteration(0):
            tb.fadd(u, 1.0)  # iteration 0 <- serial <- iteration 1
        with pytest.raises(ValueError, match="deadlock"):
            validate_assignment(tb, assign_lanes(tb, 1))

    def test_same_round_cross_iteration_ok_with_enough_lanes(self):
        tb = TraceBuilder("cross")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.load("a", 1)
        with tb.iteration(2):
            tb.fadd(v, 1.0)  # iteration 2 <- iteration 1: fine
        validate_assignment(tb, assign_lanes(tb, 2))

    def test_all_workloads_validate_at_all_lane_counts(self):
        from repro.workloads import ALL_WORKLOADS, cached_trace
        for name in ALL_WORKLOADS:
            trace = cached_trace(name)
            for lanes in (1, 3, 16):
                validate_assignment(trace, assign_lanes(trace, lanes))

    def test_non_topological_trace_detected(self):
        """Regression: ``effective`` used to be initialized to 0 with -1
        as the serial sentinel, so a dependence on a *later* node read
        the untouched entry as "round 0" and a would-deadlock schedule
        validated silently.  Non-topological traces must raise."""
        from repro.aladdin.transforms import LaneAssignment

        class FakeTrace:
            name = "fake"
            num_nodes = 2
            deps = [[1], []]  # node 0 depends on node 1: not topological

        assignment = LaneAssignment(1, [0, 0], [0, 1], 2)
        with pytest.raises(ValueError, match="topologically ordered"):
            validate_assignment(FakeTrace(), assignment)


class TestValidationModulo:
    """Cross-round dependences are legal under modulo gating as long as
    every round can issue its first node."""

    def _late_dep_trace(self):
        # Iteration 0 holds an independent load plus an op depending on
        # iteration 1: with 1 lane, round 0 partially depends on round 1.
        tb = TraceBuilder("latedep")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.load("a", 1)
            tb.fadd(v, 1.0)
        return tb

    def test_partial_late_dep_legal_under_modulo(self):
        tb = self._late_dep_trace()
        a = assign_lanes(tb, 1)
        with pytest.raises(ValueError, match="deadlock"):
            validate_assignment(tb, a, pipelining="barriers")
        validate_assignment(tb, a, pipelining="modulo")  # does not raise

    def test_fully_wedged_round_still_detected(self):
        # *Every* node of round 0 depends on round 1: the round can
        # never issue its first node, so even the modulo gate chain
        # deadlocks.
        tb = TraceBuilder("wedged")
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(1):
            v = tb.load("a", 0)
        with tb.iteration(0):
            tb.fadd(v, 1.0)
        a = assign_lanes(tb, 1)
        with pytest.raises(ValueError, match="never issue"):
            validate_assignment(tb, a, pipelining="modulo")

    def test_off_mode_skips_validation(self):
        tb = self._late_dep_trace()
        validate_assignment(tb, assign_lanes(tb, 1), pipelining="off")

    def test_unknown_mode_rejected(self):
        tb = make_linear_trace(4)
        with pytest.raises(ValueError, match="unknown pipelining"):
            validate_assignment(tb, assign_lanes(tb, 4),
                                pipelining="bogus")


class TestRoundBase:
    """The shared nodes-per-round template must be filled once,
    idempotently, and never mutated by schedulers."""

    def test_assign_lanes_fills_eagerly(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 4)
        assert a.round_base == [12, 12]  # 4 iterations x 3 nodes each

    def test_ensure_round_base_idempotent(self):
        tb = make_linear_trace(8)
        a = assign_lanes(tb, 4)
        first = a.ensure_round_base()
        assert a.ensure_round_base() is first

    def test_hand_built_assignment_lazy_fill(self):
        from repro.aladdin.transforms import LaneAssignment
        a = LaneAssignment(2, [0, 1, 0], [0, 0, 1], 2)
        assert a.round_base is None
        assert a.ensure_round_base() == [2, 1]

    def test_two_schedulers_share_template_unmutated(self):
        """Regression: the lazy fill used to happen inside the scheduler
        constructor on the *shared* memoized assignment; two schedulers
        over the same trace must each consume their own countdown while
        the template stays intact."""
        from repro.aladdin.accelerator import Accelerator
        tb = make_linear_trace(16)
        a1 = Accelerator(tb, 4, 4)
        a2 = Accelerator(tb, 4, 4)
        assert a1.assignment is a2.assignment  # memoized, genuinely shared
        template = list(a1.assignment.round_base)
        r1 = a1.run_isolated()
        assert a1.assignment.round_base == template
        r2 = a2.run_isolated()
        assert a2.assignment.round_base == template
        assert r1.ticks == r2.ticks
