"""Area models."""

import pytest

from repro.aladdin.area import AreaModel, sram_area_um2
from repro.aladdin.ir import FuClass, Op
from repro.aladdin.power import PowerModel
from repro.memory.sram import ArraySpec, Scratchpad


class TestSramArea:
    def test_zero_capacity(self):
        assert sram_area_um2(0) == 0.0

    def test_grows_with_capacity(self):
        assert sram_area_um2(8192) > sram_area_um2(1024)

    def test_banking_costs_area(self):
        assert sram_area_um2(8192, banks=16) > sram_area_um2(8192, banks=1)

    def test_roughly_linear_in_bits_at_scale(self):
        # Large arrays are cell-dominated: 4x capacity ~ 3-4x area.
        ratio = sram_area_um2(64 * 1024) / sram_area_um2(16 * 1024)
        assert 3.0 < ratio < 4.5


class TestAreaModel:
    def _model(self, lanes=4):
        pm = PowerModel(lanes, {Op.FMUL: 10, Op.LOAD: 10})
        return AreaModel.from_power_model(pm)

    def test_fu_area_scales_with_lanes(self):
        assert self._model(8).fu_area_um2() == 2 * self._model(4).fu_area_um2()

    def test_only_used_fu_classes_counted(self):
        just_alu = AreaModel(1, {FuClass.ALU})
        alu_and_fp = AreaModel(1, {FuClass.ALU, FuClass.FMUL})
        assert alu_and_fp.fu_area_um2() > just_alu.fu_area_um2()

    def test_breakdown_total(self):
        spad = Scratchpad([ArraySpec("a", 4096, 4)], 4)
        bd = self._model().area(spad=spad)
        assert bd.total_um2 == pytest.approx(
            bd.fu + bd.registers + bd.spad)
        assert bd.total_mm2 == pytest.approx(bd.total_um2 / 1e6)

    def test_cache_area_grows_with_ports(self):
        from repro.memory.cache import Cache
        from repro.sim.clock import ClockDomain
        from repro.sim.kernel import Simulator
        cache = Cache(Simulator(), ClockDomain(100), "c", 8192, 64, 4)
        m = self._model()
        assert m.cache_area_um2(cache, ports=8) > \
            2 * m.cache_area_um2(cache, ports=1)

    def test_multiported_cache_beats_partitioned_scratchpad(self):
        """The paper's Figure 10 asymmetry, in area terms."""
        from repro.memory.cache import Cache
        from repro.sim.clock import ClockDomain
        from repro.sim.kernel import Simulator
        m = self._model()
        cache = Cache(Simulator(), ClockDomain(100), "c", 16 * 1024, 64, 4)
        spad = Scratchpad([ArraySpec("a", 16 * 1024, 4)], 16)
        assert m.cache_area_um2(cache, ports=8) > m.spad_area_um2(spad)


class TestIntegration:
    def test_isolated_run_reports_area(self):
        from repro.aladdin.accelerator import Accelerator
        from tests.conftest import make_linear_trace
        res = Accelerator(make_linear_trace(16), 4, 4).run_isolated()
        assert res.area_mm2 > 0
        assert res.area.fu > 0
        assert res.area.spad > 0
        assert res.area.cache == 0

    def test_soc_run_reports_area(self):
        from repro.core.config import DesignPoint
        from repro.core.soc import run_design
        dma = run_design("aes-aes", DesignPoint(lanes=2, partitions=2))
        cache = run_design("aes-aes", DesignPoint(lanes=2,
                                                  mem_interface="cache"))
        assert dma.area_mm2 > 0
        assert cache.area.cache > 0
        assert cache.area.tlb > 0
        assert dma.area.cache == 0

    def test_area_scales_with_design_aggressiveness(self):
        from repro.core.config import DesignPoint
        from repro.core.soc import run_design
        small = run_design("gemm-ncubed", DesignPoint(lanes=1, partitions=1))
        big = run_design("gemm-ncubed", DesignPoint(lanes=16, partitions=16))
        assert big.area_mm2 > small.area_mm2
