"""Golden schedules: hand-computed cycle counts for tiny kernels.

These pin the scheduler's exact timing semantics (issue rules, FU
latencies, port arbitration, round barriers) so refactors cannot silently
shift the model.  Latencies: load/store 1 (scratchpad), fadd 3, fmul 4,
alu 1 (see repro.aladdin.ir.OP_INFO).
"""

import pytest

from repro.aladdin.accelerator import Accelerator
from repro.aladdin.trace import TraceBuilder


def cycles(tb, lanes, partitions, **kw):
    return Accelerator(tb, lanes, partitions, **kw).run_isolated().cycles


class TestStraightLine:
    def test_single_load(self):
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        tb.load("a", 0)
        assert cycles(tb, 1, 1) == 1

    def test_load_fmul_store_chain(self):
        # load (c0, done c1) -> fmul (c1..c4) -> store (c5): 6 cycles.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[1.0] * 4)
        tb.array("o", 4, 4, kind="output")
        v = tb.load("a", 0)
        w = tb.fmul(v, 2.0)
        tb.store("o", 0, w)
        assert cycles(tb, 1, 1) == 6

    def test_fadd_chain(self):
        # n chained fadds: 3 cycles each, no overlap possible.
        tb = TraceBuilder()
        acc = 0.0
        for _ in range(5):
            acc = tb.fadd(acc, 1.0)
        assert cycles(tb, 1, 1) == 15

    def test_independent_fadds_pipeline(self):
        # 4 independent fadds, one FU, II=1: issue c0..c3, the last
        # completes at c3 + 3 = cycle 6.
        tb = TraceBuilder()
        for _ in range(4):
            tb.fadd(1.0, 2.0)
        assert cycles(tb, 1, 1) == 6


class TestMemoryPorts:
    def test_single_bank_serializes_loads(self):
        # 4 loads, one bank with one port: issue c0..c3, done c4.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(0):
            for i in range(4):
                tb.load("a", i)
        assert cycles(tb, 1, 1) == 4

    def test_four_banks_but_one_lane_port(self):
        # The lane's single mem-issue slot still serializes: 4 cycles.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(0):
            for i in range(4):
                tb.load("a", i)
        assert cycles(tb, 1, 4) == 4

    def test_wider_mem_issue_uses_banks(self):
        # 4 mem issues/lane/cycle + 4 banks: all loads in c0, done c1.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(0):
            for i in range(4):
                tb.load("a", i)
        assert cycles(tb, 1, 4, fu_per_lane={"mem": 4}) == 1

    def test_bank_conflict_with_wide_issue(self):
        # 4 mem issues but a single bank: conflicts serialize to 4 cycles.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[0] * 4)
        with tb.iteration(0):
            for i in range(4):
                tb.load("a", i)
        assert cycles(tb, 1, 1, fu_per_lane={"mem": 4}) == 4


class TestLanesAndRounds:
    def _two_iter_kernel(self):
        tb = TraceBuilder()
        tb.array("a", 8, 4, kind="input", init=[1.0] * 8)
        tb.array("o", 8, 4, kind="output")
        for i in range(2):
            with tb.iteration(i):
                v = tb.load("a", i)
                w = tb.fmul(v, 2.0)
                tb.store("o", i, w)
        return tb

    def test_two_lanes_one_round(self):
        # Both iterations run concurrently on separate lanes/banks.
        assert cycles(self._two_iter_kernel(), 2, 2) == 6

    def test_one_lane_two_rounds_with_barrier(self):
        # Round barrier: second iteration starts only after the first
        # fully completes: 2 x 6 cycles.
        assert cycles(self._two_iter_kernel(), 1, 1) == 12

    def test_one_lane_pipelined(self):
        # Loop pipelining: iteration 1's load issues in cycle 1 (the
        # lane's mem slot is free after iteration 0's load), so the
        # second chain finishes one cycle behind the first: 7 cycles.
        assert cycles(self._two_iter_kernel(), 1, 1,
                      round_barriers=False) == 7

    def test_serial_node_not_barriered(self):
        # A serial epilogue node depends only on data, not on rounds.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[1.0] * 4)
        with tb.iteration(0):
            v = tb.load("a", 0)
        with tb.iteration(1):
            tb.load("a", 1)
        tb.fadd(v, 1.0)  # serial: needs only iteration 0's load
        # 2 lanes: loads at c0; fadd c1..c3: 4 cycles.
        assert cycles(tb, 2, 2) == 4


class TestMixedFUs:
    def test_different_classes_issue_same_cycle(self):
        # One fadd and one fmul are independent and use different FUs:
        # both issue at c0; fmul (4) dominates.
        tb = TraceBuilder()
        tb.fadd(1.0, 2.0)
        tb.fmul(1.0, 2.0)
        assert cycles(tb, 1, 1) == 4

    def test_same_class_serializes(self):
        # Two independent fmuls share the lane's one fmul unit: issue
        # c0 and c1, last done c5.
        tb = TraceBuilder()
        tb.fmul(1.0, 2.0)
        tb.fmul(3.0, 4.0)
        assert cycles(tb, 1, 1) == 5
