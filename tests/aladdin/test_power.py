"""Power/energy models."""

import pytest

from repro.aladdin.ir import FuClass, Op
from repro.aladdin.power import (
    EnergyBreakdown,
    PowerModel,
    sram_access_energy_pj,
    sram_leakage_mw,
)
from repro.memory.sram import ArraySpec, Scratchpad


class TestSramModel:
    def test_access_energy_grows_with_capacity(self):
        assert sram_access_energy_pj(16384) > sram_access_energy_pj(1024)

    def test_sublinear_scaling(self):
        # sqrt scaling: 4x the capacity, 2x the energy.
        assert sram_access_energy_pj(4096) == pytest.approx(
            2 * sram_access_energy_pj(1024))

    def test_wider_words_cost_more(self):
        assert sram_access_energy_pj(4096, 8) == pytest.approx(
            2 * sram_access_energy_pj(4096, 4))

    def test_leakage_linear_in_capacity(self):
        base = sram_leakage_mw(1024, banks=1)
        double = sram_leakage_mw(2048, banks=1)
        assert double > base

    def test_banking_overhead(self):
        assert sram_leakage_mw(4096, banks=16) > sram_leakage_mw(4096, banks=1)


class TestPowerModel:
    def _hist(self):
        return {Op.FMUL: 100, Op.FADD: 100, Op.LOAD: 50, Op.STORE: 50}

    def test_fu_classes_inferred_from_ops(self):
        model = PowerModel(4, self._hist())
        assert FuClass.FMUL in model.fu_classes
        assert FuClass.FADD in model.fu_classes
        assert FuClass.MEM in model.fu_classes
        assert FuClass.FDIV not in model.fu_classes

    def test_fu_dynamic_counts_every_op(self):
        model = PowerModel(1, {Op.FMUL: 10})
        # 10 x (1.80 + 0.05 overhead)
        assert model.fu_dynamic_pj() == pytest.approx(18.5)

    def test_leakage_scales_with_lanes(self):
        m1 = PowerModel(1, self._hist())
        m4 = PowerModel(4, self._hist())
        assert m4.fu_leakage_mw() == pytest.approx(4 * m1.fu_leakage_mw())

    def test_energy_breakdown_totals(self):
        model = PowerModel(2, self._hist())
        spad = Scratchpad([ArraySpec("a", 1024, 4)], 2)
        for _ in range(10):
            spad.try_access("a", 0, 0)
        bd = model.energy(runtime_ticks=10**6, spad=spad)
        assert bd.total_pj == pytest.approx(
            bd.fu_dynamic + bd.fu_leakage + bd.spad_dynamic
            + bd.spad_leakage)
        assert bd.spad_dynamic > 0
        assert bd.cache_dynamic == 0

    def test_longer_runtime_more_leakage_same_dynamic(self):
        model = PowerModel(2, self._hist())
        e1 = model.energy(10**6)
        e2 = model.energy(2 * 10**6)
        assert e2.fu_leakage == pytest.approx(2 * e1.fu_leakage)
        assert e2.fu_dynamic == pytest.approx(e1.fu_dynamic)

    def test_breakdown_as_dict(self):
        bd = EnergyBreakdown()
        d = bd.as_dict()
        assert set(d) == {"fu_dynamic", "fu_leakage", "spad_dynamic",
                          "spad_leakage", "cache_dynamic", "cache_leakage",
                          "tlb"}

    def test_multiported_cache_leaks_more(self):
        """Figure 10's asymmetry: big multi-ported caches are much more
        expensive than partitioned scratchpads."""
        from repro.memory.cache import Cache
        from repro.sim.clock import ClockDomain
        from repro.sim.kernel import Simulator
        sim = Simulator()
        cache = Cache(sim, ClockDomain(100), "c", 32 * 1024, 64, 8)
        model = PowerModel(4, self._hist())
        assert model.cache_leakage_mw(cache, ports=8) > \
            2 * model.cache_leakage_mw(cache, ports=1)
