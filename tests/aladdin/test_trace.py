"""Trace builder: SSA values, memory dependences, functional semantics."""

import pytest

from repro.aladdin.ir import Op
from repro.aladdin.trace import TraceBuilder, Value
from repro.errors import TraceError


def make_tb():
    tb = TraceBuilder("t")
    tb.array("a", 8, 4, kind="input", init=[1, 2, 3, 4, 5, 6, 7, 8])
    tb.array("out", 8, 4, kind="output")
    return tb


class TestArrays:
    def test_duplicate_array_rejected(self):
        tb = make_tb()
        with pytest.raises(TraceError):
            tb.array("a", 4, 4)

    def test_bad_kind_rejected(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.array("x", 4, 4, kind="wibble")

    def test_init_length_mismatch(self):
        tb = TraceBuilder()
        with pytest.raises(TraceError):
            tb.array("x", 4, 4, init=[1, 2])

    def test_out_of_bounds_access(self):
        tb = make_tb()
        with pytest.raises(TraceError):
            tb.load("a", 8)
        with pytest.raises(TraceError):
            tb.store("out", -1, 0)

    def test_undeclared_array(self):
        tb = make_tb()
        with pytest.raises(TraceError):
            tb.load("nope", 0)


class TestValues:
    def test_load_returns_functional_value(self):
        tb = make_tb()
        v = tb.load("a", 2)
        assert v.value == 3

    def test_store_updates_data(self):
        tb = make_tb()
        tb.store("out", 1, 42)
        assert tb.arrays["out"].data[1] == 42

    def test_op_computes(self):
        tb = make_tb()
        assert tb.add(2, 3).value == 5
        assert tb.fmul(2.0, 4.0).value == 8.0
        assert tb.xor(0b1100, 0b1010).value == 0b0110
        assert tb.select(1, "nope" == "nope" and 10 or 0, 20).value == 10
        assert tb.icmp(5, 3).value == 1
        assert tb.icmp(3, 5).value == 0

    def test_fsqrt(self):
        tb = make_tb()
        assert tb.fsqrt(9.0).value == pytest.approx(3.0)

    def test_unknown_opcode(self):
        tb = make_tb()
        with pytest.raises(TraceError):
            tb.op("madd", 1, 2)


class TestDependences:
    def test_register_dependence(self):
        tb = make_tb()
        x = tb.load("a", 0)
        y = tb.fmul(x, 2.0)
        assert x.node in tb.deps[y.node]

    def test_constants_have_no_producer(self):
        tb = make_tb()
        y = tb.fadd(1.0, 2.0)
        assert tb.deps[y.node] == ()

    def test_raw_memory_dependence(self):
        tb = make_tb()
        s = tb.store("out", 0, 1)
        v = tb.load("out", 0)
        assert s in tb.deps[v.node]
        assert v.value == 1

    def test_waw_memory_dependence(self):
        tb = make_tb()
        s1 = tb.store("out", 0, 1)
        s2 = tb.store("out", 0, 2)
        assert s1 in tb.deps[s2]

    def test_different_addresses_independent(self):
        tb = make_tb()
        tb.store("out", 0, 1)
        v = tb.load("out", 1)
        assert tb.deps[v.node] == ()

    def test_load_before_any_store_is_root(self):
        tb = make_tb()
        v = tb.load("a", 0)
        assert tb.deps[v.node] == ()


class TestIterations:
    def test_serial_by_default(self):
        tb = make_tb()
        v = tb.load("a", 0)
        assert tb.node_iter[v.node] == -1

    def test_iteration_scope(self):
        tb = make_tb()
        with tb.iteration(3):
            v = tb.load("a", 0)
        assert tb.node_iter[v.node] == 3
        after = tb.load("a", 1)
        assert tb.node_iter[after.node] == -1

    def test_nested_scopes_restore(self):
        tb = make_tb()
        with tb.iteration(1):
            with tb.iteration(2):
                inner = tb.load("a", 0)
            outer = tb.load("a", 1)
        assert tb.node_iter[inner.node] == 2
        assert tb.node_iter[outer.node] == 1

    def test_negative_iteration_rejected(self):
        tb = make_tb()
        with pytest.raises(TraceError):
            with tb.iteration(-1):
                pass

    def test_num_iterations(self):
        tb = make_tb()
        for i in (0, 5, 2):
            with tb.iteration(i):
                tb.load("a", 0)
        assert tb.num_iterations() == 6


class TestSummary:
    def test_histogram(self):
        tb = make_tb()
        tb.load("a", 0)
        tb.load("a", 1)
        tb.fadd(1.0, 2.0)
        hist = tb.op_histogram()
        assert hist[Op.LOAD] == 2
        assert hist[Op.FADD] == 1

    def test_first_use_order(self):
        tb = TraceBuilder()
        tb.array("late", 4, 4, kind="input", init=[0] * 4)
        tb.array("early", 4, 4, kind="input", init=[0] * 4)
        tb.array("never", 4, 4, kind="input", init=[0] * 4)
        tb.load("early", 0)
        tb.load("late", 0)
        assert tb.first_use_order() == ["early", "late", "never"]
