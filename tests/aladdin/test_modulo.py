"""Modulo-scheduled loop pipelining: II planning and dynamic enforcement."""

import pytest

from repro.aladdin.accelerator import Accelerator
from repro.aladdin.ddg import DDDG
from repro.aladdin.modulo import _has_positive_cycle, _rec_mii, plan_ii
from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes
from repro.core.config import DesignPoint
from repro.core.soc import run_design

from tests.conftest import make_linear_trace, make_serial_trace


def _plan(tb, lanes, mem_slots=None, ii="auto", fu_per_lane=None):
    return plan_ii(DDDG(tb), assign_lanes(tb, lanes),
                   fu_per_lane=fu_per_lane,
                   mem_slots_per_cycle=mem_slots, ii=ii)


class TestRecMII:
    """Recurrence bound: max cycle ratio over folded cross-round edges."""

    def test_no_cross_round_cycle_means_one(self):
        assert _rec_mii(2, {(0, 1, 0): 3}) == 1

    def test_simple_recurrence(self):
        # 0 ->(lat 3) 1 ->(lat 3, distance 1) 0: 6 cycles per round trip.
        assert _rec_mii(2, {(0, 1, 0): 3, (1, 0, 1): 3}) == 6

    def test_distance_two_halves_the_bound(self):
        assert _rec_mii(2, {(0, 1, 0): 4, (1, 0, 2): 4}) == 4

    def test_positive_cycle_detection(self):
        edges = {(0, 1, 0): 3, (1, 0, 1): 3}
        assert _has_positive_cycle(2, edges, 5)
        assert not _has_positive_cycle(2, edges, 6)

    def test_accumulator_trace(self):
        # 8 iterations on 4 lanes: each round chains 4 fadds (latency 3)
        # into the next round's accumulator -> RecMII = 12.
        plan = _plan(make_serial_trace(8), 4)
        assert plan.rec_mii == 12
        assert plan.ii >= 12


class TestResMII:
    def test_memory_slots_bound(self):
        # 4 lanes x (1 load + 1 store) = 8 memory ops per round; each
        # lane's own mem-issue port (width 1, 2 ops) floors ResMII at 2.
        tb = make_linear_trace(64)
        assert _plan(tb, 4, mem_slots=4).res_mii == 2
        assert _plan(tb, 4, mem_slots=1).res_mii == 8
        # Widening the per-lane port exposes the aggregate-slot bound.
        assert _plan(tb, 4, mem_slots=8,
                     fu_per_lane={"mem": 2}).res_mii == 1
        assert _plan(tb, 4, mem_slots=4,
                     fu_per_lane={"mem": 2}).res_mii == 2

    def test_fu_class_bound(self):
        # Two dependent fmuls per iteration on every lane: the per-lane
        # FP-multiplier row (width 1) forces II >= 2.
        tb = TraceBuilder("twomul")
        tb.array("a", 8, 4, kind="input", init=[1.0] * 8)
        tb.array("out", 8, 4, kind="output")
        for i in range(8):
            with tb.iteration(i):
                x = tb.load("a", i)
                y = tb.fmul(x, 2.0)
                z = tb.fmul(y, 3.0)
                tb.store("out", i, z)
        plan = _plan(tb, 2, mem_slots=16)
        assert plan.res_mii >= 2

    def test_wider_fu_relaxes_bound(self):
        tb = TraceBuilder("twomul2")
        tb.array("a", 8, 4, kind="input", init=[1.0] * 8)
        tb.array("out", 8, 4, kind="output")
        for i in range(8):
            with tb.iteration(i):
                x = tb.load("a", i)
                y = tb.fmul(x, 2.0)
                z = tb.fmul(y, 3.0)
                tb.store("out", i, z)
        narrow = _plan(tb, 2, mem_slots=16)
        wide = _plan(tb, 2, mem_slots=16,
                     fu_per_lane={"fmul": 2, "mem": 2})
        assert wide.res_mii < narrow.res_mii


class TestPlanII:
    def test_auto_at_least_lower_bounds(self):
        plan = _plan(make_linear_trace(64), 4, mem_slots=4)
        assert plan.ii >= max(plan.rec_mii, plan.res_mii)
        assert plan.ii <= plan.round_length

    def test_forced_ii_verbatim_with_bounds_reported(self):
        plan = _plan(make_linear_trace(64), 4, mem_slots=4, ii=5)
        assert plan.ii == 5
        assert plan.rec_mii >= 1
        assert plan.res_mii >= 1

    def test_forced_ii_below_one_rejected(self):
        with pytest.raises(ValueError, match="ii must be >= 1"):
            _plan(make_linear_trace(64), 4, mem_slots=4, ii=0)

    def test_single_round_degenerates_to_no_gating(self):
        plan = _plan(make_linear_trace(4), 4)
        assert plan.num_rounds == 1
        assert plan.ii == 0

    def test_lanes_exceed_iterations(self):
        plan = _plan(make_linear_trace(4), 16)
        assert plan.num_rounds == 1
        assert plan.ii == 0

    def test_all_serial_trace_has_no_rounds(self):
        tb = TraceBuilder("flat")
        tb.array("a", 4, 4, kind="input", init=[0.0] * 4)
        v = tb.load("a", 0)
        tb.fadd(v, 1.0)
        plan = _plan(tb, 4)
        assert plan.num_rounds == 0
        assert plan.ii == 0

    def test_memoized_per_parameters(self):
        tb = make_linear_trace(64)
        ddg = DDDG(tb)
        a = assign_lanes(tb, 4)
        p1 = plan_ii(ddg, a, mem_slots_per_cycle=4)
        p2 = plan_ii(ddg, a, mem_slots_per_cycle=4)
        p3 = plan_ii(ddg, a, mem_slots_per_cycle=8)
        assert p1 is p2
        assert p3 is not p1


class TestIsolatedModulo:
    """Dynamic enforcement in Accelerator.run_isolated."""

    def test_ii_at_round_length_reproduces_barriers_bitwise(self):
        tb = make_linear_trace(64)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        plan = _plan(tb, 4, mem_slots=4)
        forced = Accelerator(tb, 4, 4, pipelining="modulo",
                             ii=plan.round_length).run_isolated()
        assert forced.ticks == barrier.ticks
        assert forced.cycles == barrier.cycles

    def test_auto_between_off_and_barriers(self):
        tb = make_linear_trace(64)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        off = Accelerator(tb, 4, 4, pipelining="off").run_isolated()
        modulo = Accelerator(tb, 4, 4, pipelining="modulo").run_isolated()
        assert off.cycles <= modulo.cycles <= barrier.cycles
        assert modulo.cycles < barrier.cycles  # overlap actually happens

    def test_cycles_monotone_in_ii(self):
        tb = make_linear_trace(64)
        cycles = [Accelerator(tb, 4, 4, pipelining="modulo",
                              ii=ii).run_isolated().cycles
                  for ii in (1, 2, 4, 6)]
        assert cycles == sorted(cycles)

    def test_dependences_respected_under_aggressive_ii(self):
        # Forcing II far below RecMII must not break the loop-carried
        # chain: the gate releases rounds early, but dataflow still
        # serializes the accumulator.
        tb = make_serial_trace(16)
        res = Accelerator(tb, 4, 4, pipelining="modulo",
                          ii=1).run_isolated()
        assert res.cycles >= 16 * 3  # 16 fadds of latency 3

    def test_reservation_conflicts_counted(self):
        # II=1 releases rounds every cycle; each lane's FP multiplier
        # (latency 4, width 1) is still busy, so issue passes must
        # requeue and count the conflicts.  Barrier mode never overlaps
        # rounds, so it records none.
        tb = make_linear_trace(64)
        contended = Accelerator(tb, 4, 4, pipelining="modulo",
                                ii=1).run_isolated()
        barrier = Accelerator(tb, 4, 4).run_isolated()
        assert contended.scheduler.reservation_conflicts > 0
        assert barrier.scheduler.reservation_conflicts == 0

    def test_single_round_modulo_matches_barriers(self):
        tb = make_linear_trace(4)
        barrier = Accelerator(tb, 4, 4).run_isolated()
        modulo = Accelerator(tb, 4, 4, pipelining="modulo").run_isolated()
        assert modulo.ticks == barrier.ticks

    def test_stats_registered(self):
        from repro.obs.stats import StatRegistry
        tb = make_linear_trace(64)
        accel = Accelerator(tb, 4, 4, pipelining="modulo")
        res = accel.run_isolated()
        registry = StatRegistry()
        res.scheduler.reg_stats(registry, "accel0.sched")
        doc = registry.to_json()
        assert doc["accel0.sched.ii"] == accel.ii_plan.ii
        assert doc["accel0.sched.rec_mii"] == accel.ii_plan.rec_mii
        assert doc["accel0.sched.res_mii"] == accel.ii_plan.res_mii
        assert doc["accel0.sched.reservation_conflicts"] >= 0

    def test_completes_on_real_workloads(self):
        from repro.workloads import cached_trace
        for name in ("aes-aes", "gemm-ncubed"):
            trace = cached_trace(name)
            res = Accelerator(trace, 4, 4,
                              pipelining="modulo").run_isolated()
            assert res.cycles > 0


class TestInSoC:
    def test_modulo_design_reports_ii_stats(self):
        design = DesignPoint(lanes=4, partitions=4, pipelining="modulo")
        result = run_design("gemm-ncubed", design)
        assert result.stats["ii"] >= max(result.stats["rec_mii"],
                                         result.stats["res_mii"])
        assert result.stats["reservation_conflicts"] >= 0

    def test_modulo_no_slower_than_barriers(self):
        base = DesignPoint(lanes=4, partitions=4)
        modulo = base.replace(pipelining="modulo")
        r_base = run_design("gemm-ncubed", base)
        r_mod = run_design("gemm-ncubed", modulo)
        assert r_mod.total_ticks <= r_base.total_ticks

    def test_barrier_design_reports_no_ii_stats(self):
        result = run_design("gemm-ncubed", DesignPoint(lanes=4))
        assert "ii" not in result.stats

    def test_works_with_cache_interface(self):
        design = DesignPoint(lanes=4, mem_interface="cache",
                             pipelining="modulo")
        result = run_design("spmv-crs", design)
        assert result.total_ticks > 0
        assert result.stats["ii"] >= 0

    def test_forced_ii_wired_through(self):
        fast = run_design("gemm-ncubed",
                          DesignPoint(pipelining="modulo", ii=1))
        slow = run_design("gemm-ncubed",
                          DesignPoint(pipelining="modulo", ii=64))
        assert fast.stats["ii"] == 1
        assert slow.stats["ii"] == 64
        assert fast.total_ticks <= slow.total_ticks
