"""Standalone (isolated) accelerator runs — classic Aladdin."""

import pytest

from repro.aladdin.accelerator import Accelerator, make_scratchpad

from tests.conftest import make_linear_trace, make_serial_trace


class TestIsolatedRuns:
    def test_result_fields(self):
        res = Accelerator(make_linear_trace(16), 4, 4).run_isolated()
        assert res.cycles > 0
        assert res.ticks == res.cycles * 10_000
        assert res.energy_pj > 0
        assert res.power_mw > 0
        assert res.edp > 0

    def test_cycles_scale_with_lanes(self):
        tb = make_linear_trace(64)
        c = {lanes: Accelerator(tb, lanes, lanes).run_isolated().cycles
             for lanes in (1, 4, 16)}
        assert c[1] == 4 * c[4] == 16 * c[16]

    def test_isolated_edp_prefers_parallel_designs(self):
        """The paper's central observation: in isolation, leakage grows
        linearly with lanes but time shrinks ~linearly, so aggressive
        parallelism looks EDP-optimal."""
        tb = make_linear_trace(64)
        edps = [Accelerator(tb, lanes, lanes).run_isolated().edp
                for lanes in (1, 4, 16)]
        assert edps[2] < edps[1] < edps[0]

    def test_power_grows_with_parallelism(self):
        tb = make_linear_trace(64)
        p = [Accelerator(tb, lanes, lanes).run_isolated().power_mw
             for lanes in (1, 16)]
        assert p[1] > p[0]

    def test_deterministic(self):
        tb = make_linear_trace(32)
        a = Accelerator(tb, 4, 4).run_isolated()
        b = Accelerator(tb, 4, 4).run_isolated()
        assert a.cycles == b.cycles
        assert a.energy_pj == pytest.approx(b.energy_pj)


class TestScratchpadFactory:
    def test_all_arrays_by_default(self):
        tb = make_linear_trace(8)
        spad = make_scratchpad(tb, 2)
        assert set(spad.arrays) == {"a", "out"}

    def test_kind_filter(self):
        tb = make_linear_trace(8)
        spad = make_scratchpad(tb, 2, kinds=("output",))
        assert set(spad.arrays) == {"out"}
