"""Datapath scheduler: resource constraints, rounds, memory interfaces."""

import pytest

from repro.aladdin.accelerator import Accelerator, make_scratchpad
from repro.aladdin.ddg import DDDG
from repro.aladdin.scheduler import (
    CacheInterface,
    DatapathScheduler,
    SpadInterface,
)
from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes
from repro.errors import SimulationError
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.memory.tlb import AcceleratorTLB
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator

from tests.conftest import make_linear_trace, make_serial_trace


def run_spad(trace, lanes, partitions, ports=1, ready_bits=None,
             fu_per_lane=None):
    sim = Simulator()
    clock = ClockDomain(100)
    spad = make_scratchpad(trace, partitions, ports)
    mem_if = SpadInterface(sim, clock, spad, ready_bits=ready_bits)
    sched = DatapathScheduler(sim, clock, DDDG(trace),
                              assign_lanes(trace, lanes), mem_if,
                              fu_per_lane=fu_per_lane)
    sim.add_done_dependency(lambda: sched.done)
    return sim, sched, spad


class TestBasicExecution:
    def test_all_nodes_complete(self):
        tb = make_linear_trace(16)
        sim, sched, _ = run_spad(tb, 4, 4)
        sched.start()
        sim.run()
        assert sched.done
        assert sched.issued_loads == 16
        assert sched.issued_stores == 16

    def test_empty_trace_completes_immediately(self):
        tb = TraceBuilder()
        sim, sched, _ = run_spad(tb, 1, 1)
        sched.start()
        assert sched.done
        assert sched.compute_ticks == 0

    def test_double_start_rejected(self):
        tb = make_linear_trace(4)
        sim, sched, _ = run_spad(tb, 1, 1)
        sched.start()
        with pytest.raises(SimulationError):
            sched.start()

    def test_perfect_lane_scaling_on_parallel_trace(self):
        tb = make_linear_trace(64)
        cycles = {}
        for lanes in (1, 2, 4, 8):
            sim, sched, _ = run_spad(tb, lanes, lanes)
            sched.start()
            sim.run()
            cycles[lanes] = sched.compute_ticks
        assert cycles[1] == 2 * cycles[2] == 4 * cycles[4] == 8 * cycles[8]

    def test_serial_chain_barely_scales(self):
        """The fadd chain bounds the schedule: extra lanes only let the
        loads prefetch across rounds, far from the 8x of a parallel loop."""
        tb = make_serial_trace(16)
        times = {}
        for lanes in (1, 8):
            sim, sched, _ = run_spad(tb, lanes, lanes)
            sched.start()
            sim.run()
            times[lanes] = sched.compute_ticks
        chain_ticks = 16 * 3 * 10_000  # 16 fadds on the critical path
        assert times[8] >= chain_ticks
        assert times[1] <= times[8] * 1.5


class TestResourceConstraints:
    def test_fu_limit_serializes_within_lane(self):
        # 4 independent fmuls in ONE iteration: a single lane has one
        # pipelined fmul unit (II=1), so issues spread over 4 cycles but
        # overlap: last completes at cycle 3 + 4 = 7 not 16.
        tb = TraceBuilder()
        tb.array("a", 4, 4, kind="input", init=[1.0] * 4)
        with tb.iteration(0):
            loads = [tb.load("a", i) for i in range(4)]
        with tb.iteration(0):
            for v in loads:
                tb.fmul(v, 2.0)
        sim, sched, spad = run_spad(tb, 1, 4)
        sched.start()
        sim.run()
        cycles = sched.compute_ticks // 10_000
        # loads: 4 banks but 1 mem issue/lane/cycle -> cycles 0..3;
        # fmuls: issue 1..4 (dataflow), latency 4 -> last done cycle ~8.
        assert 8 <= cycles <= 10

    def test_wider_fu_allocation_speeds_up(self):
        tb = TraceBuilder()
        tb.array("a", 8, 4, kind="input", init=[1.0] * 8)
        with tb.iteration(0):
            loads = [tb.load("a", i) for i in range(8)]
            for v in loads:
                tb.fmul(v, 2.0)
        slow_t = fast_t = None
        for label, fu in (("slow", None), ("fast", {"mem": 4, "fmul": 4})):
            sim, sched, _ = run_spad(tb, 1, 8, fu_per_lane=fu)
            sched.start()
            sim.run()
            if label == "slow":
                slow_t = sched.compute_ticks
            else:
                fast_t = sched.compute_ticks
        assert fast_t < slow_t

    def test_bank_conflicts_throttle_memory(self):
        tb = make_linear_trace(32)
        times = {}
        for parts in (1, 8):
            sim, sched, spad = run_spad(tb, 8, parts)
            sched.start()
            sim.run()
            times[parts] = sched.compute_ticks
        assert times[8] < times[1]


class TestRoundBarriers:
    def test_rounds_serialize(self):
        # Iterations are independent, but rounds must not overlap: with
        # 2 lanes and 4 iterations there are 2 rounds of 6 cycles each.
        tb = make_linear_trace(4)
        sim, sched, _ = run_spad(tb, 2, 2)
        sched.start()
        sim.run()
        assert sched.compute_ticks // 10_000 == 2 * 6

    def test_single_round_with_enough_lanes(self):
        tb = make_linear_trace(4)
        sim, sched, _ = run_spad(tb, 4, 4)
        sched.start()
        sim.run()
        assert sched.compute_ticks // 10_000 == 6


class TestReadyBitGating:
    def test_load_stalls_until_bits_set(self):
        tb = make_linear_trace(8)
        bits = ReadyBits("a", 32, granularity=64)
        sim, sched, _ = run_spad(tb, 8, 8, ready_bits={"a": bits})
        sched.start()
        # Nothing can complete yet: every load gated.
        sim.queue.run(until=50 * 10_000)
        assert not sched.done
        sim.schedule(0, bits.set_all)
        sim.run()
        assert sched.done

    def test_partial_fill_unblocks_some_lanes(self):
        tb = make_linear_trace(32)  # words 0..31 -> bytes 0..127, 2 lines
        bits = ReadyBits("a", 128, granularity=64)
        sim, sched, _ = run_spad(tb, 32, 32, ready_bits={"a": bits})
        sched.start()
        sim.schedule(10 * 10_000, bits.set_range, 0, 64)
        sim.queue.run(until=100 * 10_000)
        # First 16 words ready -> those iterations completed their stores.
        assert 16 <= sched.issued_stores
        assert not sched.done
        sim.schedule(0, bits.set_range, 64, 64)
        sim.run()
        assert sched.done

    def test_deadlock_detected_when_bits_never_set(self):
        tb = make_linear_trace(4)
        bits = ReadyBits("a", 16, granularity=64)
        sim, sched, _ = run_spad(tb, 4, 4, ready_bits={"a": bits})
        sched.start()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run()


def run_cache(trace, lanes, cache_kb=4, ports=2, perfect=False,
              preload_peer=False):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, 32, downstream=dram)
    domain = CoherenceDomain(sim, bus)
    cache = Cache(sim, clock, "accel", cache_kb * 1024, 64, 4)
    domain.register(cache)
    tlb = AcceleratorTLB(sim)
    addr_map = {}
    base = 0x10_0000
    for name, decl in trace.arrays.items():
        addr_map[name] = base
        base += 4096
    spad = make_scratchpad(trace, 1, kinds=("internal",)) \
        if any(d.kind == "internal" for d in trace.arrays.values()) else None
    internal = [n for n, d in trace.arrays.items() if d.kind == "internal"]
    mem_if = CacheInterface(sim, clock, cache, tlb, addr_map,
                            phys_offset=0x1000_0000, ports=ports, spad=spad,
                            internal_arrays=internal, perfect=perfect)
    sched = DatapathScheduler(sim, clock, DDDG(trace),
                              assign_lanes(trace, lanes), mem_if)
    sim.add_done_dependency(lambda: sched.done)
    return sim, sched, cache, tlb


class TestCacheInterface:
    def test_completes_through_cache(self):
        tb = make_linear_trace(16)
        sim, sched, cache, tlb = run_cache(tb, 4)
        sched.start()
        sim.run()
        assert sched.done
        assert cache.misses > 0
        assert tlb.misses >= 2  # two arrays, two pages

    def test_perfect_memory_faster(self):
        tb = make_linear_trace(16)
        times = {}
        for perfect in (False, True):
            sim, sched, *_ = run_cache(tb, 4, perfect=perfect)
            sched.start()
            sim.run()
            times[perfect] = sched.compute_ticks
        assert times[True] < times[False]

    def test_internal_arrays_stay_in_scratchpad(self):
        tb = TraceBuilder()
        tb.array("in", 8, 4, kind="input", init=[1.0] * 8)
        tb.array("tmp", 8, 4, kind="internal")
        for i in range(8):
            with tb.iteration(i):
                v = tb.load("in", i)
                tb.store("tmp", i, v)
        sim, sched, cache, _tlb = run_cache(tb, 2)
        sched.start()
        sim.run()
        # Only the 'in' loads went through the cache.
        assert cache.reads == 8
        assert cache.writes == 0

    def test_port_limit_slows_execution(self):
        """With perfect (always-hit) memory the port count is the only
        memory bottleneck, so it must show up in the schedule length."""
        tb = make_linear_trace(64)
        times = {}
        for ports in (1, 8):
            sim, sched, *_ = run_cache(tb, 16, cache_kb=8, ports=ports,
                                       perfect=True)
            sched.start()
            sim.run()
            times[ports] = sched.compute_ticks
        assert times[8] < times[1]


class TestBusyTracking:
    def test_busy_interval_spans_run(self):
        tb = make_linear_trace(8)
        sim, sched, _ = run_spad(tb, 2, 2)
        sched.start()
        sim.run()
        assert sched.busy.total_busy() > 0
        merged = sched.busy.merged()
        assert merged[0][0] >= sched.start_tick
        assert merged[-1][1] <= sched.done_tick
