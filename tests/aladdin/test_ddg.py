"""DDDG construction and analysis."""

import pytest

from repro.aladdin.ddg import DDDG
from repro.aladdin.trace import TraceBuilder

from tests.conftest import make_linear_trace, make_serial_trace


class TestConstruction:
    def test_counts(self):
        tb = make_linear_trace(n=4)
        ddg = DDDG(tb)
        assert ddg.num_nodes == 12  # 4 x (load, fmul, store)
        assert ddg.num_edges == 8   # load->fmul, fmul->store per iteration

    def test_roots(self):
        tb = make_linear_trace(n=4)
        ddg = DDDG(tb)
        # Every load is a root (no prior stores to 'a').
        assert len(ddg.roots) == 4

    def test_successors_inverse_of_deps(self):
        tb = make_serial_trace(4)
        ddg = DDDG(tb)
        for node, preds in enumerate(tb.deps):
            for pred in preds:
                assert node in ddg.successors[pred]

    def test_empty_trace(self):
        ddg = DDDG(TraceBuilder())
        assert ddg.num_nodes == 0
        assert ddg.critical_path() == 0


class TestCriticalPath:
    def test_parallel_trace_path_is_one_chain(self):
        ddg = DDDG(make_linear_trace(n=16))
        # load(1) + fmul(4) + store(1)
        assert ddg.critical_path() == 6

    def test_serial_chain_accumulates(self):
        ddg = DDDG(make_serial_trace(n=8))
        # load(1) then 8 chained fadds(3) + final store(1);
        # the loads are parallel, so: 1 + 8*3 + 1
        assert ddg.critical_path() == 1 + 8 * 3 + 1

    def test_lower_bounds_any_schedule(self):
        from repro.aladdin.accelerator import Accelerator
        tb = make_serial_trace(8)
        ddg = DDDG(tb)
        res = Accelerator(tb, lanes=16, partitions=16).run_isolated()
        assert res.cycles >= ddg.critical_path()


class TestWorkloadProperties:
    def test_compute_to_memory_ratio(self):
        ddg = DDDG(make_linear_trace(8))
        # 8 fmul / 16 mem ops
        assert ddg.compute_to_memory_ratio() == pytest.approx(0.5)

    def test_footprint_excludes_internal(self):
        tb = TraceBuilder()
        tb.array("in", 8, 4, kind="input", init=[0] * 8)
        tb.array("scratch", 100, 4, kind="internal")
        tb.array("out", 8, 4, kind="output")
        ddg = DDDG(tb)
        assert ddg.footprint_bytes() == 64
        assert ddg.footprint_bytes(kinds=("internal",)) == 400

    def test_memory_nodes(self):
        tb = make_linear_trace(4)
        ddg = DDDG(tb)
        assert len(ddg.memory_nodes()) == 8
