"""Hot-path machinery of the scheduler: memoized construction tables,
completion batching, and the cache-port refund on blocked accesses."""

import pytest

from repro.aladdin.accelerator import make_scratchpad
from repro.aladdin.ddg import DDDG
from repro.aladdin.scheduler import (
    CacheInterface,
    DatapathScheduler,
    SpadInterface,
)
from repro.aladdin.trace import TraceBuilder
from repro.aladdin.transforms import assign_lanes
from repro.errors import ConfigError, SimulationError
from repro.memory.bus import SystemBus
from repro.memory.cache import Cache
from repro.memory.coherence import CoherenceDomain
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.memory.tlb import AcceleratorTLB
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator

from tests.conftest import make_linear_trace


def build_spad_sched(trace, lanes=4, partitions=4, ready_bits=None):
    sim = Simulator()
    clock = ClockDomain(100)
    spad = make_scratchpad(trace, partitions)
    mem_if = SpadInterface(sim, clock, spad, ready_bits=ready_bits)
    sched = DatapathScheduler(sim, clock, DDDG(trace),
                              assign_lanes(trace, lanes), mem_if)
    sim.add_done_dependency(lambda: sched.done)
    return sim, sched, mem_if, spad


class TestConstructionMemoization:
    def test_spad_plans_shared_across_runs(self):
        trace = make_linear_trace(16)
        _sim1, _sched1, if1, _ = build_spad_sched(trace)
        _sim2, _sched2, if2, _ = build_spad_sched(trace)
        # Same trace + same design shape: the static plan list is the
        # very same object (memoized), while the per-run slot tables are
        # rebuilt against each run's scratchpad.
        assert if1._node_plan is if2._node_plan
        assert if1._plan_slots is not if2._plan_slots

    def test_different_partitions_do_not_share_plans(self):
        trace = make_linear_trace(16)
        _s1, _d1, if1, _ = build_spad_sched(trace, partitions=2)
        _s2, _d2, if2, _ = build_spad_sched(trace, partitions=8)
        assert if1._node_plan is not if2._node_plan

    def test_scheduler_node_arrays_shared_and_read_only(self):
        trace = make_linear_trace(16)
        ddg = DDDG(trace)
        sim = Simulator()
        clock = ClockDomain(100)
        spad = make_scratchpad(trace, 4)
        sched1 = DatapathScheduler(sim, clock, ddg, assign_lanes(trace, 4),
                                   SpadInterface(sim, clock, spad))
        sched2 = DatapathScheduler(sim, clock, ddg, assign_lanes(trace, 4),
                                   SpadInterface(sim, clock, spad))
        assert sched1._node_fu is sched2._node_fu
        assert sched1._node_ticks is sched2._node_ticks
        # Mutable countdowns are per-scheduler copies.
        assert sched1._round_remaining is not sched2._round_remaining
        assert sched1._indegree is not sched2._indegree

    def test_assign_lanes_memoized_per_lane_count(self):
        trace = make_linear_trace(16)
        assert assign_lanes(trace, 4) is assign_lanes(trace, 4)
        assert assign_lanes(trace, 4) is not assign_lanes(trace, 2)

    def test_repeated_runs_identical_cycles_and_stats(self):
        trace = make_linear_trace(32)
        outcomes = []
        for _ in range(2):
            sim, sched, _mem, spad = build_spad_sched(trace)
            sched.start()
            sim.run()
            outcomes.append((sched.compute_ticks, spad.accesses,
                             spad.conflicts, dict(spad.access_by_array)))
        assert outcomes[0] == outcomes[1]

    def test_ready_bit_stall_behavior_survives_memoization(self):
        trace = make_linear_trace(8)
        outcomes = []
        for _ in range(2):
            bits = ReadyBits("a", 8 * 4, granularity=16)
            sim, sched, _mem, _spad = build_spad_sched(
                trace, ready_bits={"a": bits})
            sched.start()
            sim.queue.run(until=10_000_000)
            bits.set_all()
            sim.run()
            outcomes.append((sched.done, bits.stalls, sched.compute_ticks))
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][0] is True
        assert outcomes[0][1] > 0


class TestSpadErrorPaths:
    def test_unknown_array_raises_config_error(self):
        trace = make_linear_trace(8)
        sim = Simulator()
        clock = ClockDomain(100)
        # Scratchpad holding none of the trace's arrays.
        empty = make_scratchpad(make_linear_trace(8), 4, kinds=())
        mem_if = SpadInterface(sim, clock, empty)
        sched = DatapathScheduler(sim, clock, DDDG(trace),
                                  assign_lanes(trace, 4), mem_if)
        sim.add_done_dependency(lambda: sched.done)
        sched.start()
        with pytest.raises(ConfigError, match="unknown scratchpad array"):
            sim.run()

    def test_out_of_range_ready_offset_raises_at_issue(self):
        trace = make_linear_trace(8)
        # Bits sized for half the array: the later loads fall outside.
        bits = ReadyBits("a", 4 * 4, granularity=16)
        bits.set_all()
        sim, sched, _mem, _spad = build_spad_sched(
            trace, ready_bits={"a": bits})
        sched.start()
        with pytest.raises(SimulationError, match="outside array"):
            sim.run()


class TestCompletionBatching:
    def test_same_cycle_same_latency_completions_all_land(self):
        # 8 independent iterations on 8 lanes: every load issues in the
        # same cycle with the same latency and shares one batch event.
        trace = make_linear_trace(8)
        sim, sched, _mem, spad = build_spad_sched(trace, lanes=8,
                                                  partitions=8)
        sched.start()
        sim.run()
        assert sched.done
        assert sched._completed == trace.num_nodes
        assert spad.accesses == 16  # 8 loads + 8 stores
        assert sched.issued_loads == 8
        assert sched.issued_stores == 8

    def test_mixed_latency_ops_complete_in_order(self):
        tb = TraceBuilder("mixed")
        tb.array("a", 8, 4, kind="input", init=[2.0] * 8)
        tb.array("out", 8, 4, kind="output")
        for i in range(8):
            with tb.iteration(i):
                x = tb.load("a", i)
                slow = tb.fdiv(x, 2.0)     # multi-cycle
                fast = tb.add(x, 1)        # single-cycle
                y = tb.fadd(slow, fast)
                tb.store("out", i, y)
        sim, sched, _mem, _spad = build_spad_sched(tb, lanes=4)
        sched.start()
        sim.run()
        assert sched.done
        assert sched._completed == tb.num_nodes
        assert sched._in_flight == 0

    def test_busy_interval_closes_after_batched_completions(self):
        trace = make_linear_trace(8)
        sim, sched, _mem, _spad = build_spad_sched(trace, lanes=8,
                                                   partitions=8)
        sched.start()
        sim.run()
        assert sched.busy.total_busy() > 0
        assert not sched.busy.busy  # every begin() was matched by an end()


class TestCachePortRefund:
    def _iface(self, mshrs):
        # 32 iterations: loads of "a" span two cache lines (word 16 is at
        # byte 64), so two loads can be genuinely independent misses.
        trace = make_linear_trace(32)
        sim = Simulator()
        clock = ClockDomain(100)
        dram = DRAM(sim)
        bus = SystemBus(sim, clock, 32, downstream=dram)
        domain = CoherenceDomain(sim, bus)
        cache = Cache(sim, clock, "accel", 4096, 64, 4, mshrs=mshrs)
        domain.register(cache)
        tlb = AcceleratorTLB(sim)
        addr_map = {name: 0x10_0000 + i * 4096
                    for i, name in enumerate(trace.arrays)}
        mem_if = CacheInterface(sim, clock, cache, tlb, addr_map,
                                phys_offset=0x1000_0000, ports=4)
        sched = DatapathScheduler(sim, clock, DDDG(trace),
                                  assign_lanes(trace, 4), mem_if)
        return sim, sched, mem_if, cache, tlb

    def test_blocked_access_refunds_port(self):
        sim, sched, mem_if, cache, tlb = self._iface(mshrs=1)
        # Warm the TLB so issue reaches the cache instead of parking.
        for node in range(len(mem_if._node_vaddr)):
            if mem_if._node_vaddr[node]:
                tlb.translate(mem_if._node_vaddr[node], mem_if.phys_offset,
                              lambda paddr: None)
        sim.run()
        mem_if.new_cycle(0)
        # Loads of array "a" sit at word stride 4; words 0 and 16 map to
        # different cache lines, so the second is a fresh miss that needs
        # the (single, occupied) MSHR and must be rejected.
        first = mem_if.issue(sched, 0, 0)     # load word 0: miss, takes MSHR
        assert first == "issued"
        assert mem_if._ports_used == 1
        blocked = mem_if.issue(sched, 48, 0)  # load word 16: MSHRs full
        assert blocked == "retry"
        assert cache.blocked == 1
        # The port consumed by the rejected attempt was handed back.
        assert mem_if._ports_used == 1

    def test_ports_still_capped_without_blocking(self):
        sim, sched, mem_if, cache, _tlb = self._iface(mshrs=16)
        mem_if.new_cycle(0)
        mem_if.perfect = True
        statuses = [mem_if.issue(sched, node, 0) for node in (0, 3, 6, 9, 12)]
        assert statuses[:4] == [mem_if._period_ticks] * 4
        assert statuses[4] == "retry"
        assert mem_if._ports_used == 4
