"""DMA engine: setup cost, bandwidth, ordering, ready bits."""

import math

import pytest

from repro.dma.descriptor import DMADescriptor
from repro.dma.engine import DMAEngine
from repro.memory.bus import SystemBus
from repro.memory.dram import DRAM
from repro.memory.fullempty import ReadyBits
from repro.sim.clock import ClockDomain
from repro.sim.kernel import Simulator


def make_engine(width_bits=32, setup=40, burst=64, outstanding=4):
    sim = Simulator()
    clock = ClockDomain(100)
    dram = DRAM(sim)
    bus = SystemBus(sim, clock, width_bits, downstream=dram)
    engine = DMAEngine(sim, clock, bus, setup_cycles=setup,
                       burst_bytes=burst, max_outstanding=outstanding)
    return sim, engine, bus, clock


class TestTransfers:
    def test_transfer_completes(self):
        sim, engine, _bus, _c = make_engine()
        done = []
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 1024, True)],
                       on_done=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert engine.bytes_moved == 1024
        assert engine.idle()

    def test_setup_delay_applied(self):
        sim, engine, _bus, clock = make_engine(setup=40)
        done = []
        engine.enqueue([DMADescriptor(0, "a", 0, 4, True)],
                       on_done=lambda: done.append(sim.now))
        sim.run()
        assert done[0] >= clock.cycles_to_ticks(40)

    def test_bandwidth_limited_by_bus(self):
        """4 KB at 32 bits/beat, 100 MHz: at least 1024 beats = 10.24 us."""
        sim, engine, _bus, _c = make_engine(width_bits=32)
        done = []
        engine.enqueue([DMADescriptor(0, "a", 0, 4096, True)],
                       on_done=lambda: done.append(sim.now))
        sim.run()
        assert done[0] >= 1024 * 10_000

    def test_wider_bus_is_faster(self):
        times = {}
        for width in (32, 64):
            sim, engine, _bus, _c = make_engine(width_bits=width)
            done = []
            engine.enqueue([DMADescriptor(0, "a", 0, 4096, True)],
                           on_done=lambda: done.append(sim.now))
            sim.run()
            times[width] = done[0]
        assert times[64] < times[32]

    def test_transactions_fifo_order(self):
        sim, engine, _bus, _c = make_engine()
        order = []
        engine.enqueue([DMADescriptor(0, "a", 0, 256, True)],
                       on_done=lambda: order.append("first"))
        engine.enqueue([DMADescriptor(0x1000, "b", 0, 256, True)],
                       on_done=lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second"]
        assert engine.transactions == 2

    def test_multiple_descriptors_one_transaction(self):
        sim, engine, _bus, _c = make_engine()
        done = []
        engine.enqueue(
            [DMADescriptor(0, "a", 0, 128, True),
             DMADescriptor(0x1000, "b", 0, 128, True)],
            on_done=lambda: done.append(1))
        sim.run()
        assert engine.transactions == 1
        assert engine.bytes_moved == 256

    def test_store_direction(self):
        sim, engine, bus, _c = make_engine()
        engine.enqueue([DMADescriptor(0, "out", 0, 256, to_accel=False)])
        sim.run()
        assert engine.bytes_moved == 256


class TestReadyBits:
    def test_bits_set_in_arrival_order(self):
        sim, engine, _bus, _c = make_engine()
        bits = ReadyBits("a", 512, granularity=64)
        engine.ready_bits = {"a": bits}
        arrival = []
        for line in range(8):
            bits.wait(line * 64, lambda line=line: arrival.append(line))
        engine.enqueue([DMADescriptor(0, "a", 0, 512, True)])
        sim.run()
        assert arrival == list(range(8))
        assert bits.all_ready()

    def test_partial_array_transfer_leaves_bits_clear(self):
        sim, engine, _bus, _c = make_engine()
        bits = ReadyBits("a", 512, granularity=64)
        engine.ready_bits = {"a": bits}
        engine.enqueue([DMADescriptor(0, "a", 0, 256, True)])
        sim.run()
        assert bits.is_ready(255)
        assert not bits.is_ready(256)

    def test_stores_do_not_touch_bits(self):
        sim, engine, _bus, _c = make_engine()
        bits = ReadyBits("a", 512, granularity=64)
        engine.ready_bits = {"a": bits}
        engine.enqueue([DMADescriptor(0, "a", 0, 512, to_accel=False)])
        sim.run()
        assert not bits.is_ready(0)


class TestEmptyChain:
    """Zero-burst transactions must complete instead of wedging the
    channel (regression: an empty/all-zero-size descriptor chain produced
    no bursts, so no completion ever fired and every later transaction
    deadlocked behind it)."""

    def test_empty_descriptor_chain_completes(self):
        sim, engine, _bus, _c = make_engine()
        done = []
        engine.enqueue([], on_done=lambda: done.append(sim.now))
        sim.run()
        assert len(done) == 1
        assert engine.idle()
        assert engine.bytes_moved == 0

    def test_all_zero_size_descriptors_complete(self):
        sim, engine, _bus, _c = make_engine()
        done = []
        engine.enqueue([DMADescriptor(0, "a", 0, 0, True),
                        DMADescriptor(0x1000, "b", 0, 0, True)],
                       on_done=lambda: done.append(1))
        sim.run()
        assert done == [1]
        assert engine.idle()

    def test_empty_chain_does_not_wedge_queue(self):
        sim, engine, _bus, _c = make_engine()
        order = []
        engine.enqueue([], on_done=lambda: order.append("empty"))
        engine.enqueue([DMADescriptor(0, "a", 0, 256, True)],
                       on_done=lambda: order.append("data"))
        sim.run()
        assert order == ["empty", "data"]
        assert engine.transactions == 2
        assert engine.bytes_moved == 256

    def test_empty_chain_still_pays_setup(self):
        sim, engine, _bus, clock = make_engine(setup=40)
        done = []
        engine.enqueue([], on_done=lambda: done.append(sim.now))
        sim.run()
        assert done[0] >= clock.cycles_to_ticks(40)
        merged = engine.busy.merged()
        assert merged and merged[0][1] == done[0]


class TestBusyTracking:
    def test_busy_interval_covers_transfer(self):
        sim, engine, _bus, _c = make_engine()
        engine.enqueue([DMADescriptor(0, "a", 0, 1024, True)])
        sim.run()
        merged = engine.busy.merged()
        assert len(merged) == 1
        start, end = merged[0]
        assert start == 0
        assert end == sim.now

    def test_outstanding_bound_respected(self):
        """Bounded outstanding bursts: the queue never floods the bus."""
        sim, engine, bus, _c = make_engine(outstanding=2)
        engine.enqueue([DMADescriptor(0, "a", 0, 4096, True)])
        # Run a few events, then check the bus has at most
        # outstanding-many pending requests queued ahead of now.
        for _ in range(6):
            sim.queue.step()
        assert bus.next_free - sim.now <= 3 * bus.occupancy_ticks(64)
        sim.run()


class TestGatedStart:
    """Descriptor-gated transactions (streaming-pipeline handoffs)."""

    def _gate(self, until="full"):
        from repro.memory.fullempty import DescriptorGate
        bits = ReadyBits("buf", 256, granularity=64)
        return bits, DescriptorGate(bits, 0, 64, until=until)

    def test_gated_txn_waits_for_condition(self):
        sim, engine, _bus, _c = make_engine()
        bits, gate = self._gate(until="full")
        done = []
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=lambda: done.append(sim.now), gate=gate)
        sim.run()
        assert done == []  # parked: nothing ever set the bits
        assert engine.gated_starts == 1
        assert not engine.idle()

    def test_gated_txn_proceeds_once_opened(self):
        sim, engine, _bus, _c = make_engine()
        bits, gate = self._gate(until="full")
        done = []
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=lambda: done.append(sim.now), gate=gate)
        sim.schedule(5_000_000, lambda: bits.set_range(0, 64))
        sim.run()
        assert len(done) == 1
        assert done[0] > 5_000_000
        assert engine.gate_wait_ticks >= 5_000_000
        assert gate.opened_tick >= 5_000_000
        assert engine.idle()

    def test_satisfied_gate_starts_immediately(self):
        sim, engine, _bus, _c = make_engine()
        bits, gate = self._gate(until="empty")  # fresh bits are empty
        done = []
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=lambda: done.append(True), gate=gate)
        sim.run()
        assert done == [True]
        assert engine.gated_starts == 0
        assert not gate.waited

    def test_fifo_order_preserved_behind_parked_head(self):
        """A parked gated head blocks later transactions, as on a real
        single-channel engine."""
        sim, engine, _bus, _c = make_engine()
        bits, gate = self._gate(until="full")
        order = []
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=lambda: order.append("gated"), gate=gate)
        engine.enqueue([DMADescriptor(0x2000, "b", 0, 64, True)],
                       on_done=lambda: order.append("plain"))
        sim.schedule(1_000_000, lambda: bits.set_range(0, 64))
        sim.run()
        assert order == ["gated", "plain"]

    def test_gate_tracker_records_park_window(self):
        from repro.sim.stats import IntervalTracker
        from repro.memory.fullempty import DescriptorGate
        sim, engine, _bus, _c = make_engine()
        bits = ReadyBits("buf", 256, granularity=64)
        tracker = IntervalTracker("park")
        gate = DescriptorGate(bits, 0, 64, until="full", tracker=tracker)
        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=None, gate=gate)
        sim.schedule(2_000_000, lambda: bits.set_range(0, 64))
        sim.run()
        assert tracker.total_busy() >= 2_000_000
        assert not tracker.busy


class TestOnDoneReentrancy:
    """Regression: _finish_active set _active=None, ran on_done, then
    unconditionally started the next queued transaction.  An on_done that
    enqueues (pipeline pulls chain this way) already started it through
    enqueue(), so the old code popped a SECOND transaction onto the single
    channel and orphaned the first — its bursts never moved and any
    waiter on them deadlocked."""

    def test_enqueue_from_on_done_does_not_orphan_queued_txn(self):
        sim, engine, _bus, _c = make_engine()
        done = []

        def chain_another():
            done.append("first")
            engine.enqueue([DMADescriptor(0x3000, "c", 0, 64, True)],
                           on_done=lambda: done.append("chained"))

        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=chain_another)
        engine.enqueue([DMADescriptor(0x2000, "b", 0, 128, True)],
                       on_done=lambda: done.append("queued"))
        sim.run()
        assert sorted(done) == ["chained", "first", "queued"]
        assert engine.idle()
        assert engine.bytes_moved == 64 + 128 + 64
        assert engine.transactions == 3

    def test_ready_bits_set_for_every_transaction(self):
        """The orphaned transaction's bursts never landed, so its array's
        full/empty bits stayed clear forever."""
        sim, engine, _bus, _c = make_engine()
        bits_b = ReadyBits("b", 128, granularity=64)
        engine.ready_bits = {"b": bits_b}

        def chain_another():
            engine.enqueue([DMADescriptor(0x3000, "c", 0, 64, True)])

        engine.enqueue([DMADescriptor(0x1000, "a", 0, 64, True)],
                       on_done=chain_another)
        engine.enqueue([DMADescriptor(0x2000, "b", 0, 128, True)])
        sim.run()
        assert bits_b.all_ready()
