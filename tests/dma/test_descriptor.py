"""DMA descriptors."""

import pytest

from repro.dma.descriptor import DMADescriptor
from repro.errors import ConfigError


class TestDescriptor:
    def test_fields(self):
        d = DMADescriptor(0x1000, "a", 0, 256, to_accel=True)
        assert d.mem_addr == 0x1000
        assert d.size == 256

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigError):
            DMADescriptor(0, "a", 0, -1, True)

    def test_zero_size_allowed(self):
        # A zero-length descriptor (empty array region) is legal; the DMA
        # engine completes the transaction right after setup.
        d = DMADescriptor(0, "a", 0, 0, True)
        assert d.size == 0
        assert d.split(4096) == []

    def test_split_into_blocks(self):
        d = DMADescriptor(0x1000, "a", 0, 10_000, True)
        blocks = d.split(4096)
        assert [b.size for b in blocks] == [4096, 4096, 1808]
        assert [b.mem_addr for b in blocks] == [0x1000, 0x2000, 0x3000]
        assert [b.array_offset for b in blocks] == [0, 4096, 8192]

    def test_split_smaller_than_block(self):
        d = DMADescriptor(0, "a", 16, 100, False)
        blocks = d.split(4096)
        assert len(blocks) == 1
        assert blocks[0].size == 100
        assert blocks[0].array_offset == 16

    def test_repr_direction(self):
        assert "load" in repr(DMADescriptor(0, "a", 0, 4, True))
        assert "store" in repr(DMADescriptor(0, "a", 0, 4, False))
