"""Debug-flag trace layer: flag parsing, tracers, dprintf, recording."""

import io

import pytest

from repro.errors import ConfigError
from repro.obs import trace


@pytest.fixture(autouse=True)
def _clean_flags():
    trace.clear_flags()
    yield
    trace.clear_flags()


class TestFlagParsing:
    def test_comma_string(self):
        assert trace.parse_flags("bus,dram") == frozenset({"bus", "dram"})

    def test_iterable(self):
        assert trace.parse_flags(["tlb", "dma"]) == frozenset({"tlb", "dma"})

    def test_all_expands(self):
        assert trace.parse_flags("all") == frozenset(trace.FLAGS)

    def test_whitespace_and_empties_ignored(self):
        assert trace.parse_flags(" bus , ,dram ") == \
            frozenset({"bus", "dram"})

    def test_unknown_flag_rejected(self):
        with pytest.raises(ConfigError):
            trace.parse_flags("bus,bogus")

    def test_none_and_empty(self):
        assert trace.parse_flags(None) == frozenset()
        assert trace.parse_flags("") == frozenset()


class TestEnableDisable:
    def test_set_and_query(self):
        trace.set_flags("bus,tlb")
        assert trace.enabled("bus")
        assert trace.enabled("tlb")
        assert not trace.enabled("dram")
        assert trace.active_flags() == ["bus", "tlb"]

    def test_clear(self):
        trace.set_flags("bus")
        trace.clear_flags()
        assert trace.active_flags() == []

    def test_context_manager_restores(self):
        trace.set_flags("bus")
        with trace.flags("dram"):
            assert trace.active_flags() == ["dram"]
        assert trace.active_flags() == ["bus"]

    def test_context_manager_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with trace.flags("dram"):
                raise RuntimeError("boom")
        assert trace.active_flags() == []

    def test_env_parsing(self, monkeypatch):
        monkeypatch.setenv(trace.ENV_VAR, "dma,sched")
        assert trace.flags_from_env() == ["dma", "sched"]
        monkeypatch.delenv(trace.ENV_VAR)
        trace.clear_flags()
        assert trace.flags_from_env() == []  # unset env leaves flags alone


class TestTracer:
    def test_disabled_flag_yields_none(self):
        assert trace.tracer("bus", "membus") is None

    def test_enabled_flag_yields_tracer(self):
        sink = io.StringIO()
        trace.set_flags("bus", sink=sink.write)
        t = trace.tracer("bus", "membus")
        assert t is not None
        t(1500, "req addr=%#x size=%d", 0x40, 64)
        line = sink.getvalue()
        assert line == f"{1500:>12d}: membus: req addr=0x40 size=64\n"

    def test_unknown_flag_rejected(self):
        with pytest.raises(ConfigError):
            trace.tracer("bogus", "x")

    def test_dprintf_no_op_when_disabled(self):
        sink = io.StringIO()
        # No crash, no output, and args must not even be formatted.
        trace.dprintf("bus", 10, "boom %s", object())
        assert sink.getvalue() == ""

    def test_dprintf_writes_when_enabled(self):
        sink = io.StringIO()
        trace.set_flags("dram", sink=sink.write)
        trace.dprintf("dram", 42, "bank %d", 3)
        assert "bank 3" in sink.getvalue()
        assert sink.getvalue().startswith(f"{42:>12d}: ")


class TestRecording:
    def test_record_captures_events(self):
        trace.set_flags("dma", sink=io.StringIO().write)
        trace.start_recording()
        try:
            trace.dprintf("dma", 100, "txn %d start", 0)
            trace.dprintf("dma", 250, "txn %d done", 0)
        finally:
            events = trace.stop_recording()
        assert [e.tick for e in events] == [100, 250]
        assert all(e.flag == "dma" for e in events)
        assert events[0].text == "txn 0 start"

    def test_stop_without_start(self):
        assert trace.stop_recording() == []

    def test_recording_stops_cleanly(self):
        trace.set_flags("dma", sink=io.StringIO().write)
        trace.start_recording()
        trace.dprintf("dma", 1, "x")
        trace.stop_recording()
        trace.dprintf("dma", 2, "y")
        assert trace.stop_recording() == []


class TestSoCWiring:
    """End-to-end: flags set before build produce component trace lines."""

    def test_run_emits_flagged_lines_only(self):
        from repro.core.soc import run_design
        sink = io.StringIO()
        with trace.flags("dma,driver", sink=sink.write):
            run_design("gemm-ncubed")
        out = sink.getvalue()
        assert ": dma0: " in out
        assert ": cpu0: " in out
        assert ": bus: " not in out  # bus flag was not enabled

    def test_flags_empty_means_silent(self):
        from repro.core.soc import run_design
        sink = io.StringIO()
        with trace.flags("", sink=sink.write):
            run_design("gemm-ncubed")
        assert sink.getvalue() == ""
