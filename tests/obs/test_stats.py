"""Hierarchical stats registry: types, dumping, per-ROI reset."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.stats import (
    Distribution,
    Formula,
    Scalar,
    StatRegistry,
    Vector,
)


class TestScalar:
    def test_stored_counter(self):
        s = Scalar("a.b")
        s.inc()
        s.inc(4)
        assert s.value() == 5
        s.set(2)
        assert s.value() == 2

    def test_getter_backed_mirrors_live_attribute(self):
        box = {"n": 0}
        s = Scalar("a.b", getter=lambda: box["n"])
        assert s.value() == 0
        box["n"] = 7
        assert s.value() == 7

    def test_getter_backed_is_read_only(self):
        s = Scalar("a.b", getter=lambda: 1)
        with pytest.raises(ConfigError):
            s.inc()
        with pytest.raises(ConfigError):
            s.set(3)

    def test_none_passthrough(self):
        s = Scalar("a.b", getter=lambda: None)
        assert s.value() is None

    def test_reset_rebases(self):
        box = {"n": 10}
        s = Scalar("a.b", getter=lambda: box["n"])
        s.reset()
        assert s.value() == 0
        box["n"] = 25
        assert s.value() == 15

    def test_invalid_names_rejected(self):
        for bad in ("", ".", "a..b", "a."):
            with pytest.raises(ConfigError):
                Scalar(bad)


class TestVector:
    def test_getter_backed(self):
        data = [1, 2, 3]
        v = Vector("a.v", getter=lambda: data)
        assert v.value() == [1, 2, 3]
        data[1] = 10
        assert v.value() == [1, 10, 3]
        assert v.total() == 14

    def test_stored(self):
        v = Vector("a.v", size=2)
        v.inc(0)
        v.inc(1, 5)
        assert v.value() == [0 + 1, 5]

    def test_needs_size_or_getter(self):
        with pytest.raises(ConfigError):
            Vector("a.v")

    def test_reset_elementwise(self):
        data = [5, 5]
        v = Vector("a.v", getter=lambda: data)
        v.reset()
        data[0] = 8
        assert v.value() == [3, 0]

    def test_lines_include_subnames_and_total(self):
        v = Vector("a.v", getter=lambda: [1, 2], subnames=("x", "y"))
        lines = dict(v.lines())
        assert lines["::x"] == 1
        assert lines["::y"] == 2
        assert lines["::total"] == 3


class TestFormula:
    def test_rate_over_deps(self):
        reg = StatRegistry()
        box = {"hits": 3, "misses": 1}
        reg.scalar("c.hits", lambda: box["hits"])
        reg.scalar("c.misses", lambda: box["misses"])
        reg.formula("c.miss_rate", lambda m, h: m / (m + h),
                    deps=("c.misses", "c.hits"))
        assert reg.value("c.miss_rate") == pytest.approx(0.25)

    def test_division_by_zero_is_zero(self):
        reg = StatRegistry()
        reg.scalar("c.n", lambda: 0)
        reg.formula("c.rate", lambda n: 1 / n, deps=("c.n",))
        assert reg.value("c.rate") == 0.0

    def test_none_dep_propagates_none(self):
        reg = StatRegistry()
        reg.scalar("c.n", lambda: None)
        reg.formula("c.double", lambda n: n * 2, deps=("c.n",))
        assert reg.value("c.double") is None

    def test_formula_sees_roi_reset(self):
        reg = StatRegistry()
        box = {"hits": 10, "misses": 10}
        reg.scalar("c.hits", lambda: box["hits"])
        reg.scalar("c.misses", lambda: box["misses"])
        reg.formula("c.miss_rate", lambda m, h: m / (m + h),
                    deps=("c.misses", "c.hits"))
        reg.reset()
        box["hits"] = 13   # +3 hits, +1 miss inside the ROI
        box["misses"] = 11
        assert reg.value("c.miss_rate") == pytest.approx(0.25)


class TestDistribution:
    def test_summary_moments(self):
        d = Distribution("a.d")
        for v in (0, 10, 20):
            d.sample(v)
        s = d.summary()
        assert s["count"] == 3
        assert s["min"] == 0
        assert s["max"] == 20
        assert s["mean"] == pytest.approx(10.0)

    def test_histogram_covers_all_samples(self):
        d = Distribution("a.d", buckets=4)
        for v in range(100):
            d.sample(v)
        s = d.summary()
        assert sum(b["count"] for b in s["histogram"]) == 100
        assert len(s["histogram"]) == 4

    def test_single_value_histogram(self):
        d = Distribution("a.d")
        d.sample(5)
        d.sample(5)
        s = d.summary()
        assert s["histogram"] == [{"lo": 5, "hi": 5, "count": 2}]

    def test_empty(self):
        d = Distribution("a.d")
        assert d.summary()["count"] == 0

    def test_reset_discards_prior_samples(self):
        d = Distribution("a.d")
        d.sample(1)
        d.reset()
        d.sample(9)
        assert d.summary() == pytest.approx(d.summary())
        assert d.summary()["count"] == 1
        assert d.summary()["min"] == 9


class TestRegistry:
    def make(self):
        reg = StatRegistry()
        box = {"n": 4}
        reg.scalar("soc.dram.row_hits", lambda: box["n"],
                   desc="row-buffer hits")
        reg.vector("soc.dram.per_bank", lambda: [1, 2])
        reg.formula("soc.dram.double", lambda n: 2 * n,
                    deps=("soc.dram.row_hits",))
        return reg, box

    def test_duplicate_rejected(self):
        reg, _ = self.make()
        with pytest.raises(ConfigError):
            reg.scalar("soc.dram.row_hits", lambda: 0)

    def test_lookup_and_group(self):
        reg, _ = self.make()
        assert "soc.dram.row_hits" in reg
        assert reg.value("soc.dram.row_hits") == 4
        group = reg.group("soc.dram")
        assert set(group) == {"soc.dram.row_hits", "soc.dram.per_bank",
                              "soc.dram.double"}
        assert reg.group("soc.dram.row_hits") == {"soc.dram.row_hits": 4}
        assert reg.group("soc.dr") == {}

    def test_dump_text_format(self):
        reg, _ = self.make()
        text = reg.dump_text()
        assert text.startswith("---------- Begin Simulation Statistics")
        assert text.rstrip().endswith(
            "---------- End Simulation Statistics   ----------")
        assert "soc.dram.row_hits" in text
        assert "# row-buffer hits" in text
        assert "soc.dram.per_bank::total" in text

    def test_to_json_flat_and_nested(self):
        reg, _ = self.make()
        flat = reg.to_json()
        assert flat["soc.dram.row_hits"] == 4
        assert flat["soc.dram.per_bank"] == {"0": 1, "1": 2}
        nested = reg.to_json(nested=True)
        assert nested["soc"]["dram"]["row_hits"] == 4

    def test_dump_json_roundtrip(self, tmp_path):
        reg, _ = self.make()
        path = tmp_path / "stats.json"
        reg.dump_json(str(path))
        assert json.loads(path.read_text())["soc.dram.double"] == 8

    def test_reset_all(self):
        reg, box = self.make()
        reg.reset()
        box["n"] = 9
        assert reg.value("soc.dram.row_hits") == 5
        assert reg.value("soc.dram.double") == 10


class TestSoCIntegration:
    """reg_stats over a real run: names, coverage, and non-perturbation."""

    def test_dma_design_coverage(self):
        from repro.core.soc import run_design
        reg = StatRegistry()
        run_design("gemm-ncubed", registry=reg)
        names = reg.names()
        for prefix in ("soc.sim.", "soc.bus.", "soc.dram.",
                       "soc.cpu_cache.", "soc.coherence.", "accel0.dma.",
                       "accel0.sched.", "accel0.spad.", "cpu0."):
            assert any(n.startswith(prefix) for n in names), prefix
        assert reg.value("soc.sim.events") > 0
        assert reg.value("accel0.dma.bytes_moved") > 0
        assert reg.value("accel0.sched.completed") == \
            reg.value("accel0.sched.nodes")

    def test_cache_design_has_tlb_and_cache(self):
        from repro.core.config import DesignPoint
        from repro.core.soc import run_design
        reg = StatRegistry()
        design = DesignPoint(mem_interface="cache", cache_size_kb=4)
        run_design("gemm-ncubed", design, registry=reg)
        assert reg.value("accel0.tlb.misses") > 0
        assert 0.0 <= reg.value("accel0.tlb.miss_rate") <= 1.0
        assert reg.value("accel0.cache.misses") > 0

    def test_registry_does_not_perturb_simulation(self):
        from repro.core.soc import run_design
        bare = run_design("gemm-ncubed")
        reg = StatRegistry()
        observed = run_design("gemm-ncubed", registry=reg)
        assert observed.total_ticks == bare.total_ticks
        assert observed.stats == bare.stats

    def test_registry_agrees_with_run_result_stats(self):
        from repro.core.soc import run_design
        reg = StatRegistry()
        result = run_design("gemm-ncubed", registry=reg)
        assert reg.value("soc.bus.bytes") == result.stats["bus_bytes"]
        assert reg.value("accel0.dma.bytes_moved") == \
            result.stats["dma_bytes"]
        assert reg.value("soc.dram.row_hit_rate") == \
            pytest.approx(result.stats["dram_row_hit_rate"])
