"""Chrome trace_event timeline export: builder and SoC integration."""

import json

from repro.obs import trace
from repro.obs.timeline import TimelineBuilder, soc_timeline
from repro.units import TICKS_PER_US


class TestBuilder:
    def test_tracks_become_complete_events(self):
        b = TimelineBuilder()
        b.add_track("bus", [(0, 2 * TICKS_PER_US), (5 * TICKS_PER_US,
                                                    6 * TICKS_PER_US)])
        xs = [e for e in b.to_dict()["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 2
        assert xs[0]["ts"] == 0
        assert xs[0]["dur"] == 2.0
        assert xs[1]["ts"] == 5.0
        assert all(e["name"] == "bus" for e in xs)

    def test_rows_get_distinct_tids_and_metadata(self):
        b = TimelineBuilder(process_name="p")
        b.add_track("a", [(0, 1)])
        b.add_track("b", [(0, 1)])
        b.add_track("a", [(2, 3)])  # same row reuses its tid
        events = b.to_dict()["traceEvents"]
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert names == {"a", "b"}
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert len(tids) == 2
        assert b.rows() == ["a", "b"]

    def test_process_name_metadata(self):
        b = TimelineBuilder(process_name="repro:gemm")
        meta = [e for e in b.to_dict()["traceEvents"]
                if e["name"] == "process_name"]
        assert meta[0]["args"]["name"] == "repro:gemm"

    def test_instants(self):
        b = TimelineBuilder()
        b.add_instant("trace.dma", 3 * TICKS_PER_US, "txn 0 done")
        inst = [e for e in b.to_dict()["traceEvents"] if e["ph"] == "i"]
        assert len(inst) == 1
        assert inst[0]["ts"] == 3.0
        assert inst[0]["s"] == "t"

    def test_trace_events_grouped_by_flag(self):
        b = TimelineBuilder()
        b.add_trace_events([
            trace.TraceEvent(10, "dma", "dma0", "start"),
            trace.TraceEvent(20, "sched", "accel", "issue"),
            trace.TraceEvent(30, "dma", "dma0", "done"),
        ])
        assert b.rows() == ["trace.dma", "trace.sched"]
        assert b.num_events("i") == 3

    def test_num_events_excludes_metadata(self):
        b = TimelineBuilder()
        b.add_track("a", [(0, 1)])
        assert b.num_events() == 1

    def test_write_valid_json(self, tmp_path):
        b = TimelineBuilder()
        b.add_track("a", [(0, TICKS_PER_US)])
        path = tmp_path / "trace.json"
        n = b.write(str(path))
        assert n == 1
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        assert doc["displayTimeUnit"] == "ns"


class TestSoCTimeline:
    def run_soc(self, design=None):
        from repro.core.soc import SoC
        soc = SoC("gemm-ncubed", design)
        soc.run()
        return soc

    def test_dma_run_has_expected_rows(self):
        soc = self.run_soc()
        builder = soc_timeline(soc)
        rows = builder.rows()
        assert "cpu0.driver" in rows
        assert "cpu0.flush" in rows
        assert "accel0.dma" in rows
        assert "bus" in rows
        assert "accel0.datapath" in rows
        assert any(r.startswith("dram.bank") for r in rows)
        assert len(rows) >= 5  # the acceptance bar
        assert builder.num_events("X") > 0

    def test_events_are_well_formed(self, tmp_path):
        soc = self.run_soc()
        builder = soc_timeline(soc)
        path = tmp_path / "trace.json"
        builder.write(str(path))
        doc = json.loads(path.read_text())
        for e in doc["traceEvents"]:
            assert e["ph"] in ("M", "X", "i")
            if e["ph"] == "X":
                assert e["ts"] >= 0
                assert e["dur"] >= 0

    def test_trace_instants_from_recording(self):
        from repro.core.soc import SoC
        with trace.flags("dma,sched"):
            trace.start_recording()
            try:
                soc = SoC("gemm-ncubed")
                soc.run()
            finally:
                events = trace.stop_recording()
        assert events
        builder = soc_timeline(soc, trace_events=events)
        rows = builder.rows()
        assert "trace.dma" in rows
        assert "trace.sched" in rows
        assert builder.num_events("i") == len(events)


class TestPipelineTimeline:
    def _run(self, **kwargs):
        from repro.core.pipeline import AcceleratorPipeline
        from repro.obs.timeline import pipeline_timeline
        pipe = AcceleratorPipeline(["aes-aes", "kmp"], check=False,
                                   **kwargs)
        pipe.run()
        return pipe, pipeline_timeline(pipe)

    def test_per_stage_rows_present(self):
        _pipe, builder = self._run(buffer_bytes=512)
        rows = builder.rows()
        for stage_row in ("stage0.aes-aes", "stage1.kmp"):
            assert f"{stage_row}.cpu" in rows
            assert f"{stage_row}.dma" in rows
            assert f"{stage_row}.datapath" in rows
        assert "bus" in rows

    def test_link_stall_and_park_rows_present(self):
        _pipe, builder = self._run(buffer_bytes=512)
        rows = builder.rows()
        assert "link0.stall" in rows
        assert "link0.park" in rows

    def test_park_window_rendered_as_complete_event(self):
        """Stage 1's first pull parks until stage 0 commits; that window
        must appear as an X event on the link's park row."""
        pipe, builder = self._run(buffer_bytes=512)
        park_tid = None
        events = builder.to_dict()["traceEvents"]
        for e in events:
            if e["ph"] == "M" and e["name"] == "thread_name" \
                    and e["args"]["name"] == "link0.park":
                park_tid = e["tid"]
        assert park_tid is not None
        xs = [e for e in events if e["ph"] == "X"
              and e["tid"] == park_tid]
        assert len(xs) >= 1
        assert xs[0]["dur"] > 0

    def test_handoff_instants_mark_commit_and_drain(self):
        _pipe, builder = self._run(buffer_bytes=512)
        events = builder.to_dict()["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "i"}
        assert "commit chunk 0" in names
        assert "drain chunk 0" in names

    def test_cache_handoff_timeline(self):
        _pipe, builder = self._run(handoff="cache")
        rows = builder.rows()
        assert "link0.stall" in rows
        # Cache stages have no DMA engine, hence no dma rows.
        assert not any(r.endswith(".dma") for r in rows
                       if r.startswith("stage"))

    def test_writes_valid_json(self, tmp_path):
        _pipe, builder = self._run(buffer_bytes=512)
        path = tmp_path / "pipe.json"
        count = builder.write(str(path))
        payload = json.loads(path.read_text())
        assert count > 0
        assert payload["traceEvents"]
