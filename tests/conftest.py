"""Shared fixtures for the test suite."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.clock import ClockDomain


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def accel_clock():
    return ClockDomain(100)  # 10 ns period


@pytest.fixture
def cpu_clock():
    return ClockDomain(667)


def make_linear_trace(n=16, arrays_kind="input"):
    """A tiny load-op-store trace used across scheduler/SoC tests."""
    from repro.aladdin.trace import TraceBuilder

    tb = TraceBuilder("linear")
    tb.array("a", n, 4, kind=arrays_kind, init=list(range(n)))
    tb.array("out", n, 4, kind="output")
    for i in range(n):
        with tb.iteration(i):
            x = tb.load("a", i)
            y = tb.fmul(x, 2.0)
            tb.store("out", i, y)
    return tb


def make_serial_trace(n=8):
    """A fully serial dependence chain (accumulator)."""
    from repro.aladdin.trace import TraceBuilder

    tb = TraceBuilder("serial")
    tb.array("a", n, 4, kind="input", init=[1.0] * n)
    tb.array("out", 1, 4, kind="output")
    acc = 0.0
    for i in range(n):
        with tb.iteration(i):
            x = tb.load("a", i)
            acc = tb.fadd(acc, x)
    tb.store("out", 0, acc)
    return tb
