"""Every workload: functional correctness, trace invariants, registry."""

import pytest

from repro.aladdin.ir import OP_INFO, Op, is_memory
from repro.aladdin.transforms import assign_lanes, validate_assignment
from repro.errors import WorkloadError
from repro.workloads import (
    ALL_WORKLOADS,
    CORE_EIGHT,
    cached_ddg,
    cached_trace,
    get_workload,
    workload_names,
)


class TestRegistry:
    def test_all_names_resolvable(self):
        for name in ALL_WORKLOADS:
            assert get_workload(name).name == name

    def test_unknown_name(self):
        with pytest.raises(WorkloadError):
            get_workload("quantum-sort")

    def test_core_eight_is_subset(self):
        assert set(CORE_EIGHT) <= set(ALL_WORKLOADS)
        assert len(CORE_EIGHT) == 8

    def test_full_machsuite_coverage(self):
        """All 19 MachSuite kernels are implemented (the paper's Figure 2b
        runs the whole suite)."""
        assert len(workload_names()) == 19
        # Both variants of every multi-variant MachSuite benchmark exist.
        names = set(workload_names())
        assert {"bfs-bulk", "bfs-queue"} <= names
        assert {"fft-strided", "fft-transpose"} <= names
        assert {"gemm-ncubed", "gemm-blocked"} <= names
        assert {"md-knn", "md-grid"} <= names
        assert {"sort-merge", "sort-radix"} <= names
        assert {"spmv-crs", "spmv-ellpack"} <= names

    def test_cached_trace_identity(self):
        assert cached_trace("kmp") is cached_trace("kmp")
        assert cached_ddg("kmp") is cached_ddg("kmp")


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_functional_correctness(self, name):
        wl = get_workload(name)
        trace = wl.build()
        wl.verify(trace)  # raises on any mismatch with the reference

    def test_build_deterministic(self, name):
        a = get_workload(name).build()
        b = get_workload(name).build()
        assert a.num_nodes == b.num_nodes
        assert a.node_op == b.node_op
        assert a.deps == b.deps

    def test_trace_is_topologically_ordered(self, name):
        trace = cached_trace(name)
        for node, preds in enumerate(trace.deps):
            for pred in preds:
                assert pred < node

    def test_dependences_never_point_to_later_iterations(self, name):
        trace = cached_trace(name)
        for lanes in (1, 2, 4, 8, 16):
            validate_assignment(trace, assign_lanes(trace, lanes))

    def test_has_shared_inputs_and_outputs(self, name):
        trace = cached_trace(name)
        kinds = {a.kind for a in trace.arrays.values()}
        assert kinds & {"input", "inout"}
        assert kinds & {"output", "inout"}

    def test_memory_nodes_reference_declared_arrays(self, name):
        trace = cached_trace(name)
        for node in range(trace.num_nodes):
            if is_memory(trace.node_op[node]):
                array = trace.node_array[node]
                assert array in trace.arrays
                decl = trace.arrays[array]
                assert 0 <= trace.node_index[node] < decl.length
            else:
                assert trace.node_array[node] is None

    def test_all_ops_known(self, name):
        trace = cached_trace(name)
        assert set(trace.op_histogram()) <= set(OP_INFO)

    def test_parallel_loop_exists(self, name):
        assert cached_trace(name).num_iterations() > 0

    def test_nonempty_and_bounded(self, name):
        trace = cached_trace(name)
        assert 500 < trace.num_nodes < 100_000


class TestWorkloadCharacter:
    """The access-pattern properties the paper's arguments rest on."""

    def test_mdknn_is_fp_multiply_heavy(self):
        hist = cached_trace("md-knn").op_histogram()
        # "12 FP multiplies per atom-to-atom interaction" — ours counts 11
        # FMULs plus the r^2 inverse FDIV per interaction.
        interactions = 64 * 16
        assert hist[Op.FMUL] >= 11 * interactions
        assert hist[Op.FMUL] + hist[Op.FDIV] >= 12 * interactions

    def test_aes_has_tiny_footprint(self):
        assert cached_ddg("aes-aes").footprint_bytes() < 1024

    def test_fft_has_512_byte_strides(self):
        trace = cached_trace("fft-transpose")
        decl = trace.arrays["work_x"]
        indices = [trace.node_index[n] for n in range(trace.num_nodes)
                   if trace.node_array[n] == "work_x"
                   and trace.node_op[n] == Op.LOAD]
        strides = {(b - a) * decl.word_bytes
                   for a, b in zip(indices, indices[1:])}
        assert 512 in strides

    def test_spmv_has_indirect_loads(self):
        """vec is loaded at data-dependent indices (cols values)."""
        trace = cached_trace("spmv-crs")
        vec_indices = [trace.node_index[n] for n in range(trace.num_nodes)
                       if trace.node_array[n] == "vec"]
        diffs = {b - a for a, b in zip(vec_indices, vec_indices[1:])}
        assert len(diffs) > 10  # no regular stride

    def test_nw_is_serial(self):
        """Wavefront dependences: the critical path is a large fraction of
        the ideal parallel schedule."""
        from repro.aladdin.accelerator import Accelerator
        trace = cached_trace("nw-nw")
        res16 = Accelerator(trace, 16, 16).run_isolated()
        res1 = Accelerator(trace, 1, 1).run_isolated()
        assert res1.cycles / res16.cycles < 4  # nowhere near 16x

    def test_gemm_is_compute_parallel(self):
        from repro.aladdin.accelerator import Accelerator
        trace = cached_trace("gemm-ncubed")
        res16 = Accelerator(trace, 16, 16).run_isolated()
        res1 = Accelerator(trace, 1, 1).run_isolated()
        assert res1.cycles / res16.cycles > 8

    def test_sort_merge_low_compute_ratio(self):
        assert cached_ddg("sort-merge").compute_to_memory_ratio() < 0.5

    def test_internal_arrays_where_paper_says(self):
        assert cached_trace("nw-nw").arrays["matrix"].kind == "internal"
        assert cached_trace("sort-merge").arrays["temp"].kind == "internal"

    def test_variant_pairs_share_functional_problem(self):
        """Variant pairs attack the same problem: spmv variants share the
        output shape, gemm variants the matrix size, and the BFS variants
        traverse the *same* graph to the same levels (bfs-queue reuses
        bfs-bulk's generator)."""
        crs_out = cached_trace("spmv-crs").arrays["out"].data
        ell_out = cached_trace("spmv-ellpack").arrays["out"].data
        assert len(crs_out) == len(ell_out)  # same problem shape

        gemm_a = cached_trace("gemm-ncubed").arrays["prod"].data
        gemm_b = cached_trace("gemm-blocked").arrays["prod"].data
        assert len(gemm_a) == len(gemm_b)

        bulk = cached_trace("bfs-bulk").arrays["level"].data
        queue = cached_trace("bfs-queue").arrays["level"].data
        assert bulk == queue  # same graph, same BFS depths

    def test_fft_variants_agree_with_each_other(self):
        """Both sorts sort; both fft variants implement DFT machinery that
        verified against independent references in their own verify()."""
        merge = cached_trace("sort-merge").arrays["a"].data
        radix = cached_trace("sort-radix").arrays["a"].data
        assert merge == sorted(merge)
        assert radix == sorted(radix)

    def test_mdgrid_fp_heavy_like_mdknn(self):
        ddg = cached_ddg("md-grid")
        assert ddg.compute_to_memory_ratio() > 3.0

    def test_fft_strided_spans_stride_scales(self):
        """Stage spans double: both unit-stride and half-array-stride
        butterflies appear in the trace."""
        trace = cached_trace("fft-strided")
        indices = [trace.node_index[n] for n in range(trace.num_nodes)
                   if trace.node_array[n] == "real"
                   and trace.node_op[n] == Op.LOAD]
        diffs = {abs(b - a) for a, b in zip(indices, indices[1:])}
        assert 1 in diffs           # early stages
        assert any(d >= 64 for d in diffs)  # late stages

    def test_backprop_weight_chain_serializes_samples(self):
        """SGD's weight updates chain samples: speedup from lanes is
        bounded well below the per-layer parallelism."""
        from repro.aladdin.accelerator import Accelerator
        trace = cached_trace("backprop")
        c1 = Accelerator(trace, 1, 1).run_isolated().cycles
        c8 = Accelerator(trace, 8, 8).run_isolated().cycles
        assert c1 / c8 < 6
