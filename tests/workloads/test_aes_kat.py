"""AES known-answer test (FIPS-197 Appendix B / C.1).

The workload's reference implementation must match the standard's published
vector — this anchors the whole aes-aes workload to ground truth rather
than to itself.
"""

from repro.workloads.aes import ROUNDS, SBOX, aes128_encrypt_ref


class TestFips197:
    def test_appendix_b_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plaintext = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        expected = bytes.fromhex("3925841d02dc09fbdc118597196a0b32")
        got = aes128_encrypt_ref(list(key), list(plaintext))
        assert bytes(got) == expected

    def test_appendix_c1_vector(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("00112233445566778899aabbccddeeff")
        expected = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")
        got = aes128_encrypt_ref(list(key), list(plaintext))
        assert bytes(got) == expected

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))
        assert len(SBOX) == 256

    def test_ten_rounds(self):
        assert ROUNDS == 10

    def test_traced_kernel_matches_reference(self):
        """The traced AES (on its own random key/block) must equal the
        FIPS-validated reference implementation."""
        from repro.workloads import get_workload
        wl = get_workload("aes-aes")
        trace = wl.build()
        wl.verify(trace)  # verify() compares against aes128_encrypt_ref
