"""Command-line interface."""

import pytest

from repro.cli import build_parser, design_from_args, main


def run_cli(argv):
    lines = []
    code = main(argv, out=lines.append)
    return code, "\n".join(str(line) for line in lines)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_workload_rejected(self):
        # Validation happens against the live registry (which can grow at
        # runtime via --kernel), not in argparse choices.
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "nonexistent-kernel"], out=lambda *a: None)

    def test_design_from_args(self):
        args = build_parser().parse_args(
            ["run", "aes-aes", "--lanes", "8", "--mem", "cache",
             "--cache-size", "16", "--no-pipelined-dma"])
        design = design_from_args(args)
        assert design.lanes == 8
        assert design.mem_interface == "cache"
        assert design.cache_size_kb == 16
        assert not design.pipelined_dma


class TestCommands:
    def test_list(self):
        code, text = run_cli(["list"])
        assert code == 0
        assert "aes-aes" in text
        assert "fft-transpose" in text

    def test_run_dma(self):
        code, text = run_cli(["run", "aes-aes", "--lanes", "2",
                              "--partitions", "2"])
        assert code == 0
        assert "EDP" in text
        assert "flush_only" in text
        assert "mm^2" in text

    def test_run_cache(self):
        code, text = run_cli(["run", "aes-aes", "--mem", "cache",
                              "--cache-size", "4"])
        assert code == 0
        assert "cache_miss_rate" in text

    def test_run_with_platform_flags(self):
        code, text = run_cli(["run", "kmp", "--bus-width", "64"])
        assert code == 0

    def test_sweep_quick(self):
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--no-cache"])
        assert code == 0
        assert "Pareto" in text
        assert "wins for aes-aes" in text
        assert "sweep metrics" in text

    def test_sweep_cache_warm_run_evaluates_nothing(self, tmp_path):
        argv = ["sweep", "aes-aes", "--density", "quick",
                "--cache-dir", str(tmp_path)]
        code, cold = run_cli(argv)
        assert code == 0
        assert "cache hits   : 0" in cold
        code, warm = run_cli(argv)
        assert code == 0
        assert "evaluated    : 0" in warm

    def test_sweep_parallel_jobs(self, tmp_path):
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--jobs", "2", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "jobs=2" in text

    def test_sweep_engine_flags_parsed(self):
        from repro.cli import sweep_engine_from_args
        args = build_parser().parse_args(
            ["sweep", "aes-aes", "--jobs", "4", "--cache-dir", "/tmp/x"])
        assert sweep_engine_from_args(args) == (4, "/tmp/x")
        args = build_parser().parse_args(["sweep", "aes-aes", "--no-cache"])
        assert sweep_engine_from_args(args) == (None, None)
        args = build_parser().parse_args(["sweep", "aes-aes"])
        parallel, cache_dir = sweep_engine_from_args(args)
        assert parallel is None
        assert cache_dir == ".sweep-cache"

    def test_negative_jobs_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["sweep", "aes-aes", "--jobs", "-1"])
        assert exc.value.code == 2
        assert "must be >= 0" in capsys.readouterr().err

    def test_stats_text_dump(self):
        code, text = run_cli(["stats", "gemm-ncubed"])
        assert code == 0
        assert "Begin Simulation Statistics" in text
        for name in ("soc.bus.bytes", "soc.dram.row_hit_rate",
                     "soc.cpu_cache.hits", "accel0.dma.bytes_moved",
                     "accel0.sched.nodes", "cpu0.lines_flushed"):
            assert name in text, name

    def test_stats_json_file(self, tmp_path):
        import json
        path = tmp_path / "stats.json"
        code, text = run_cli(["stats", "gemm-ncubed", "--no-text",
                              "--json", str(path)])
        assert code == 0
        assert "Begin Simulation Statistics" not in text
        doc = json.loads(path.read_text())
        assert doc["soc.sim.events"] > 0
        assert isinstance(doc["soc.dram.bank_conflict_ticks"], dict)

    def test_stats_json_stdout(self):
        code, text = run_cli(["stats", "gemm-ncubed", "--no-text",
                              "--json", "-"])
        assert code == 0
        import json
        doc = json.loads(text[text.index("{"):])
        assert "soc.bus.requests" in doc

    def test_stats_cache_design_covers_tlb(self):
        code, text = run_cli(["stats", "gemm-ncubed", "--mem", "cache",
                              "--cache-size", "4"])
        assert code == 0
        assert "accel0.tlb.miss_rate" in text
        assert "accel0.cache.misses" in text

    def test_trace_export(self, tmp_path):
        import json
        path = tmp_path / "trace.json"
        code, text = run_cli(["trace", "gemm-ncubed", "-o", str(path),
                              "--debug-flags", "dma,sched"])
        assert code == 0
        assert "perfetto" in text
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        rows = {e["args"]["name"] for e in events
                if e["ph"] == "M" and e["name"] == "thread_name"}
        assert len(rows) >= 5
        assert "accel0.dma" in rows
        assert "trace.dma" in rows
        assert any(e["ph"] == "X" for e in events)
        assert any(e["ph"] == "i" for e in events)

    def test_trace_flags_do_not_leak(self, tmp_path):
        from repro.obs import trace as obs_trace
        code, _text = run_cli(["trace", "gemm-ncubed", "-o",
                               str(tmp_path / "t.json"),
                               "--debug-flags", "all"])
        assert code == 0
        assert obs_trace.active_flags() == []

    def test_run_rejects_unknown_debug_flag(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError, match="bogus"):
            run_cli(["run", "aes-aes", "--debug-flags", "bogus"])

    def test_sweep_dump_stats(self, tmp_path):
        import json
        import os
        code, _text = run_cli(["sweep", "aes-aes", "--density", "quick",
                               "--no-cache", "--dump-stats", str(tmp_path)])
        assert code == 0
        dma_dir = tmp_path / "dma"
        cache_dir = tmp_path / "cache"
        assert dma_dir.is_dir() and cache_dir.is_dir()
        dma_files = sorted(os.listdir(dma_dir))
        assert dma_files[0] == "aes-aes-0000.json"
        doc = json.loads((dma_dir / dma_files[0]).read_text())
        assert doc["soc.sim.events"] > 0
        assert doc["design"].startswith("DesignPoint(")
        cache_doc = json.loads(
            (cache_dir / sorted(os.listdir(cache_dir))[0]).read_text())
        assert "accel0.tlb.misses" in cache_doc

    def test_run_with_check(self):
        code, text = run_cli(["run", "aes-aes", "--lanes", "2",
                              "--partitions", "2", "--check"])
        assert code == 0
        assert "check    : clean" in text
        assert "invariant checks" in text
        assert "0 leaks" in text

    def test_run_check_report(self, tmp_path):
        import json
        path = tmp_path / "health.json"
        # --check-report implies --check.
        code, text = run_cli(["run", "aes-aes", "--lanes", "2",
                              "--partitions", "2",
                              "--check-report", str(path)])
        assert code == 0
        assert "wrote health report" in text
        doc = json.loads(path.read_text())
        assert doc["enabled"] is True
        assert doc["invariant_checks"] > 0
        assert doc["violations"] == 0
        assert doc["audit"]["clean"] is True
        assert doc["audit"]["leaks"] == []

    def test_sweep_with_check(self):
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--no-cache", "--check"])
        assert code == 0
        assert "check: clean across" in text
        assert "Pareto" in text

    def test_check_env_does_not_break_sweep_metrics(self, monkeypatch):
        # Env-only checking keeps the parallel/memoized engine (workers
        # inherit REPRO_CHECK); only an explicit --check forces serial.
        monkeypatch.setenv("REPRO_CHECK", "1")
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--no-cache"])
        assert code == 0
        assert "sweep metrics" in text

    def test_stats_with_check_registers_counters(self):
        code, text = run_cli(["stats", "gemm-ncubed", "--check"])
        assert code == 0
        assert "check.invariant_checks" in text
        assert "check.audits" in text

    def test_validate_subset(self):
        code, text = run_cli(["validate", "aes-aes"])
        assert code == 0
        assert "average total error" in text

    def test_figure_fig2a(self):
        code, text = run_cli(["figure", "fig2a"])
        assert code == 0
        assert "md-knn" in text

    def test_figure_resets_sweep_options(self):
        from repro.core import figures
        code, _text = run_cli(["figure", "fig2a", "--jobs", "2"])
        assert code == 0
        assert figures._sweep_options["parallel"] is None
        assert figures._sweep_options["cache_dir"] is None


class TestRobustSweepCLI:
    def test_robustness_flags_parsed(self):
        from repro.cli import sweep_robustness_from_args
        args = build_parser().parse_args(
            ["sweep", "aes-aes", "--on-error", "collect", "--retries", "2",
             "--timeout", "30", "--resume"])
        assert sweep_robustness_from_args(args) == {
            "on_error": "collect", "retries": 2, "timeout": 30.0,
            "resume": True}
        args = build_parser().parse_args(["sweep", "aes-aes"])
        assert sweep_robustness_from_args(args) == {
            "on_error": "raise", "retries": 0, "timeout": None,
            "resume": False}

    def test_resume_without_cache_rejected(self):
        from repro.cli import sweep_robustness_from_args
        args = build_parser().parse_args(
            ["sweep", "aes-aes", "--resume", "--no-cache"])
        with pytest.raises(SystemExit, match="--resume needs"):
            sweep_robustness_from_args(args)

    def test_collect_reports_failures_and_exits_2(self, tmp_path,
                                                  monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@1")
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--on-error", "collect",
                              "--cache-dir", str(tmp_path)])
        assert code == 2
        # one faulted point per design space (DMA and cache)
        assert "FAILED points: 2" in text
        assert "[error] RuntimeError" in text
        assert "failures     : 2" in text

    def test_resume_reevaluates_only_failed(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_FAULT", "raise@1")
        code, _text = run_cli(["sweep", "aes-aes", "--density", "quick",
                               "--on-error", "collect",
                               "--cache-dir", str(tmp_path)])
        assert code == 2
        monkeypatch.delenv("REPRO_SWEEP_FAULT")
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--resume", "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "resume DMA" in text and "1 failed" in text
        assert "evaluated    : 2" in text  # exactly the two faulted points
        assert "Pareto" in text

    def test_fault_free_collect_matches_default_run(self, tmp_path):
        base = ["sweep", "aes-aes", "--density", "quick", "--no-cache"]
        code_a, text_a = run_cli(base)
        code_b, text_b = run_cli(base + ["--on-error", "collect",
                                         "--retries", "1"])
        assert code_a == code_b == 0

        def pareto(text):
            return [ln for ln in text.splitlines() if "EDP" in ln]
        assert pareto(text_a) == pareto(text_b)


class TestFidelityCLI:
    def test_calibrate_command(self, tmp_path):
        code, text = run_cli(["calibrate", "aes-aes", "--density", "quick",
                              "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "error bound time" in text
        assert "dma:p1t1b0" in text
        assert "saved to" in text
        assert (tmp_path / "calibrations").is_dir()

    def test_calibrate_no_cache_notes_not_persisted(self):
        code, text = run_cli(["calibrate", "aes-aes", "--density", "quick",
                              "--no-cache"])
        assert code == 0
        assert "not persisted" in text

    def test_calibrate_unknown_workload_rejected(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            run_cli(["calibrate", "not-a-kernel"])

    def test_sweep_auto_reuses_persisted_calibration(self, tmp_path):
        code, _text = run_cli(["calibrate", "aes-aes", "--density",
                               "quick", "--cache-dir", str(tmp_path)])
        assert code == 0
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--fidelity", "auto",
                              "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "no calibration" not in text
        assert "fast points" in text
        assert "confirmed exactly" in text
        assert "within the guard band" in text
        assert "Pareto" in text

    def test_sweep_auto_calibrates_on_the_fly(self, tmp_path):
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--fidelity", "auto",
                              "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "no calibration for aes-aes" in text
        assert "fast error" in text

    def test_sweep_fast_marks_frontier_predicted(self, tmp_path):
        code, text = run_cli(["sweep", "aes-aes", "--density", "quick",
                              "--fidelity", "fast",
                              "--cache-dir", str(tmp_path)])
        assert code == 0
        assert "(predicted)" in text
        assert "guard band" in text

    def test_fidelity_conflicts_with_exact_only_knobs(self):
        with pytest.raises(SystemExit, match="fidelity"):
            run_cli(["sweep", "aes-aes", "--density", "quick",
                     "--no-cache", "--fidelity", "auto", "--check"])


class TestServeCLI:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.jobs == 1
        assert args.fidelity is None
        assert args.batch_window == 0.02
        assert not args.verbose

    def test_serve_delegates_to_httpd(self, monkeypatch, tmp_path):
        import repro.serve.httpd as httpd
        captured = {}

        def fake_serve(cache_dir, **kwargs):
            captured["cache_dir"] = cache_dir
            captured.update(kwargs)

        monkeypatch.setattr(httpd, "serve", fake_serve)
        code, _text = run_cli(["serve", "--cache-dir", str(tmp_path),
                               "--port", "0", "--jobs", "2",
                               "--fidelity", "auto",
                               "--batch-window", "0.01", "--verbose"])
        assert code == 0
        assert captured["cache_dir"] == str(tmp_path)
        assert captured["port"] == 0
        assert captured["jobs"] == 2
        assert captured["fidelity"] == "auto"
        assert captured["batch_window"] == 0.01
        assert captured["verbose"] is True

    def test_serve_uses_default_cache_dir(self, monkeypatch):
        import repro.serve.httpd as httpd
        from repro.core.sweeppool import DEFAULT_CACHE_DIR
        captured = {}
        monkeypatch.setattr(
            httpd, "serve",
            lambda cache_dir, **kwargs: captured.setdefault(
                "cache_dir", cache_dir))
        run_cli(["serve"])
        assert captured["cache_dir"] == DEFAULT_CACHE_DIR


@pytest.fixture
def live_server(tmp_path):
    """A real repro serve on an ephemeral port; yields its base URL."""
    import threading

    from repro.serve import SweepService
    from repro.serve.httpd import make_server

    service = SweepService(str(tmp_path), batch_window=0.005)
    server = make_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.close()
        thread.join(timeout=5)


class TestQueryCLI:
    def test_query_health(self, live_server):
        code, text = run_cli(["query", "health", "--server", live_server])
        assert code == 0
        assert "ok" in text

    def test_query_workloads(self, live_server):
        code, text = run_cli(["query", "workloads",
                              "--server", live_server])
        assert code == 0
        assert "aes-aes" in text

    def test_query_edp_quick_grid(self, live_server):
        code, text = run_cli(["query", "edp", "aes-aes",
                              "--space", "dma", "--density", "quick",
                              "--server", live_server, "--json", "-"])
        assert code == 0
        assert "edp_optimal" in text

    def test_query_json_file(self, live_server, tmp_path):
        import json
        path = tmp_path / "health.json"
        code, text = run_cli(["query", "health", "--server", live_server,
                              "--json", str(path)])
        assert code == 0
        assert f"wrote response to {path}" in text
        assert json.loads(path.read_text())["status"] == "ok"

    def test_query_server_from_env(self, live_server, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_URL", live_server)
        code, text = run_cli(["query", "health"])
        assert code == 0
        assert "ok" in text

    def test_query_result_kind_needs_workload(self, live_server):
        with pytest.raises(SystemExit, match="needs a workload"):
            run_cli(["query", "edp", "--server", live_server])

    def test_query_unreachable_server_exits_cleanly(self):
        import socket
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        with pytest.raises(SystemExit, match="cannot reach"):
            run_cli(["query", "health",
                     "--server", f"http://127.0.0.1:{port}"])

    def test_query_service_error_exits_cleanly(self, live_server):
        with pytest.raises(SystemExit, match="query failed"):
            run_cli(["query", "sweep", "aes-aes", "--fidelity", "fast",
                     "--space", "dma", "--density", "quick",
                     "--server", live_server])


class TestPipelineCommand:
    def test_pipeline_dma(self, tmp_path):
        trace_path = tmp_path / "pipe.json"
        code, text = run_cli(["pipeline", "aes-aes", "kmp",
                              "--buffer-bytes", "512", "--check",
                              "--solo-baseline",
                              "--trace", str(trace_path)])
        assert code == 0
        assert "aes-aes -> kmp" in text
        assert "makespan" in text
        assert "link0" in text
        assert "speedup" in text
        assert "check    : clean" in text
        assert trace_path.exists()

    def test_pipeline_cache(self):
        code, text = run_cli(["pipeline", "aes-aes", "kmp",
                              "--handoff", "cache"])
        assert code == 0
        assert "aliased regions" in text

    def test_pipeline_json_export(self, tmp_path):
        import json
        path = tmp_path / "result.json"
        code, _text = run_cli(["pipeline", "aes-aes", "kmp", "viterbi",
                               "--buffer-bytes", "256",
                               "--json", str(path)])
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["depth"] == 3
        assert len(payload["links"]) == 2
        assert all(l["ordering_clean"] for l in payload["links"])

    def test_pipeline_needs_two_stages(self):
        with pytest.raises(SystemExit, match="at least 2"):
            run_cli(["pipeline", "aes-aes"])

    def test_pipeline_rejects_tiny_buffer(self):
        with pytest.raises(SystemExit, match="buffer_bytes"):
            run_cli(["pipeline", "aes-aes", "kmp",
                     "--buffer-bytes", "16"])
