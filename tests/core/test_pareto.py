"""Pareto frontier and EDP-optimal selection."""

import pytest

from repro.core.pareto import dominates, edp_optimal, pareto_frontier


class FakeResult:
    def __init__(self, ticks, power):
        self.total_ticks = ticks
        self.power_mw = power
        self.edp = power * 1e-3 * (ticks / 1e12) ** 2 * 1e12  # arbitrary units

    def __repr__(self):
        return f"({self.total_ticks}, {self.power_mw})"


class TestParetoFrontier:
    def test_dominated_points_removed(self):
        a = FakeResult(10, 1.0)
        b = FakeResult(20, 2.0)   # dominated by a
        front = pareto_frontier([a, b])
        assert front == [a]

    def test_tradeoff_points_kept(self):
        fast_hot = FakeResult(10, 5.0)
        slow_cool = FakeResult(50, 1.0)
        front = pareto_frontier([fast_hot, slow_cool])
        assert set(front) == {fast_hot, slow_cool}

    def test_sorted_by_time(self):
        pts = [FakeResult(t, 100.0 / t) for t in (30, 10, 20)]
        front = pareto_frontier(pts)
        assert [p.total_ticks for p in front] == [10, 20, 30]

    def test_equal_points_keep_one(self):
        a = FakeResult(10, 1.0)
        b = FakeResult(10, 1.0)
        assert len(pareto_frontier([a, b])) == 1

    def test_empty(self):
        assert pareto_frontier([]) == []

    def test_frontier_members_mutually_nondominated(self):
        import random
        rng = random.Random(7)
        pts = [FakeResult(rng.randint(1, 100), rng.uniform(0.1, 10))
               for _ in range(50)]
        front = pareto_frontier(pts)
        for a in front:
            for b in front:
                if a is not b:
                    assert not dominates(a, b) or not dominates(b, a)

    def test_every_point_dominated_by_or_on_frontier(self):
        import random
        rng = random.Random(11)
        pts = [FakeResult(rng.randint(1, 100), rng.uniform(0.1, 10))
               for _ in range(50)]
        front = pareto_frontier(pts)
        for p in pts:
            assert p in front or any(
                f.total_ticks <= p.total_ticks and f.power_mw <= p.power_mw
                for f in front)


class TestEdpOptimal:
    def test_picks_minimum(self):
        pts = [FakeResult(10, 5.0), FakeResult(100, 0.1), FakeResult(20, 1.0)]
        assert edp_optimal(pts) is min(pts, key=lambda p: p.edp)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            edp_optimal([])


class TestDominates:
    def test_strict(self):
        assert dominates(FakeResult(1, 1), FakeResult(2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates(FakeResult(1, 1), FakeResult(1, 1))

    def test_tradeoff_neither_dominates(self):
        a, b = FakeResult(1, 2), FakeResult(2, 1)
        assert not dominates(a, b)
        assert not dominates(b, a)
