"""Design points, SoC configuration, and the Figure 3 parameter table."""

import pytest

from repro.core.config import PARAMETER_TABLE, DesignPoint, SoCConfig
from repro.errors import ConfigError


class TestParameterTable:
    """The table on the right of Figure 3, verbatim."""

    def test_lanes(self):
        assert PARAMETER_TABLE["datapath_lanes"] == (1, 2, 4, 8, 16)

    def test_partitions(self):
        assert PARAMETER_TABLE["scratchpad_partitions"] == (1, 2, 4, 8, 16)

    def test_transfer_mechanisms(self):
        assert PARAMETER_TABLE["data_transfer_mechanism"] == ("dma", "cache")

    def test_cache_geometry(self):
        assert PARAMETER_TABLE["cache_size_kb"] == (2, 4, 8, 16, 32, 64)
        assert PARAMETER_TABLE["cache_line_bytes"] == (16, 32, 64)
        assert PARAMETER_TABLE["cache_ports"] == (1, 2, 4, 8)
        assert PARAMETER_TABLE["cache_assoc"] == (4, 8)

    def test_measured_constants(self):
        assert PARAMETER_TABLE["cache_line_flush_ns"] == 84.0
        assert PARAMETER_TABLE["cache_line_invalidate_ns"] == 71.0
        assert PARAMETER_TABLE["mshrs"] == 16
        assert PARAMETER_TABLE["accelerator_tlb_entries"] == 8
        assert PARAMETER_TABLE["tlb_miss_latency_ns"] == 200.0

    def test_bus_widths(self):
        assert PARAMETER_TABLE["system_bus_width_bits"] == (32, 64)


class TestDesignPoint:
    def test_defaults_valid(self):
        d = DesignPoint()
        assert d.is_dma

    def test_invalid_interface(self):
        with pytest.raises(ConfigError):
            DesignPoint(mem_interface="nvlink")

    def test_invalid_lanes(self):
        with pytest.raises(ConfigError):
            DesignPoint(lanes=0)

    def test_invalid_cache_geometry(self):
        with pytest.raises(ConfigError):
            DesignPoint(mem_interface="cache", cache_size_kb=2,
                        cache_line=24, cache_assoc=4)

    def test_invalid_prefetcher(self):
        with pytest.raises(ConfigError):
            DesignPoint(prefetcher="oracle")

    def test_replace_copies(self):
        d = DesignPoint(lanes=4)
        d2 = d.replace(lanes=8)
        assert d.lanes == 4
        assert d2.lanes == 8
        assert d2.partitions == d.partitions

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            DesignPoint().replace(lanes=-1)

    def test_key_distinguishes_interfaces(self):
        dma = DesignPoint(mem_interface="dma")
        cache = DesignPoint(mem_interface="cache")
        assert dma.key() != cache.key()

    def test_key_ignores_irrelevant_fields(self):
        a = DesignPoint(mem_interface="dma", cache_size_kb=2)
        b = DesignPoint(mem_interface="dma", cache_size_kb=64)
        assert a.key() == b.key()

    def test_repr_readable(self):
        assert "dma" in repr(DesignPoint())
        assert "cache" in repr(DesignPoint(mem_interface="cache"))


class TestSoCConfig:
    def test_defaults(self):
        cfg = SoCConfig()
        assert cfg.bus_width_bits == 32
        assert cfg.flush_ns_per_line == 84.0
        assert cfg.invalidate_ns_per_line == 71.0
        assert cfg.dma_setup_cycles == 40
        assert cfg.dma_block_bytes == 4096

    def test_bad_bus_width(self):
        with pytest.raises(ConfigError):
            SoCConfig(bus_width_bits=12)

    def test_block_smaller_than_burst(self):
        with pytest.raises(ConfigError):
            SoCConfig(dma_block_bytes=32, dma_burst_bytes=64)

    def test_unstable_traffic_rejected(self):
        with pytest.raises(ConfigError):
            SoCConfig(background_traffic=True, traffic_interval_cycles=4)

    def test_replace(self):
        cfg = SoCConfig().replace(bus_width_bits=64)
        assert cfg.bus_width_bits == 64
        assert cfg.flush_ns_per_line == 84.0
