"""Figure 9 resource extraction and normalization."""

import pytest

from repro.core.config import DesignPoint
from repro.core.kiviat import (
    design_resources,
    kiviat_normalized,
    overprovision_summary,
)
from repro.core.scenarios import run_isolated
from repro.workloads import cached_trace


class TestDesignResources:
    def test_dma_design_holds_all_arrays(self):
        res = design_resources("gemm-ncubed",
                               DesignPoint(lanes=4, partitions=8))
        trace = cached_trace("gemm-ncubed")
        assert res["sram_bytes"] == sum(a.size_bytes
                                        for a in trace.arrays.values())
        assert res["local_bandwidth"] == 8
        assert res["lanes"] == 4

    def test_cache_design_counts_cache_plus_internal(self):
        d = DesignPoint(lanes=2, mem_interface="cache", cache_size_kb=8,
                        cache_ports=4)
        res = design_resources("nw-nw", d)
        internal = cached_trace("nw-nw").arrays["matrix"].size_bytes
        assert res["sram_bytes"] == 8 * 1024 + internal
        assert res["local_bandwidth"] == 4

    def test_cache_smaller_than_scratchpad_when_it_caches(self):
        """The paper: caches 'can often afford to be smaller than a
        scratchpad that must hold all the data'."""
        dma = design_resources("spmv-crs", DesignPoint(lanes=4))
        cache = design_resources(
            "spmv-crs", DesignPoint(lanes=4, mem_interface="cache",
                                    cache_size_kb=2))
        assert cache["sram_bytes"] < dma["sram_bytes"]


class TestNormalization:
    def _optima(self):
        return {
            "isolated": run_isolated("gemm-ncubed",
                                     DesignPoint(lanes=16, partitions=16)),
            "dma32": run_isolated("gemm-ncubed",
                                  DesignPoint(lanes=4, partitions=4)),
        }

    def test_isolated_normalizes_to_one(self):
        norm = kiviat_normalized("gemm-ncubed", self._optima())
        assert norm["isolated"] == {"lanes": 1.0, "sram_bytes": 1.0,
                                    "local_bandwidth": 1.0}

    def test_leaner_design_below_one(self):
        norm = kiviat_normalized("gemm-ncubed", self._optima())
        assert norm["dma32"]["lanes"] == 0.25
        assert norm["dma32"]["local_bandwidth"] == 0.25

    def test_overprovision_summary(self):
        norm = kiviat_normalized("gemm-ncubed", self._optima())
        assert overprovision_summary(norm) == 1.0

    def test_overprovision_partial(self):
        norm = {
            "isolated": {"lanes": 1.0, "sram_bytes": 1.0,
                         "local_bandwidth": 1.0},
            "x": {"lanes": 2.0, "sram_bytes": 0.5, "local_bandwidth": 0.5},
        }
        assert overprovision_summary(norm) == pytest.approx(2 / 3)
