"""Fault-tolerant, resumable sweep execution (robust engine).

Every fault is injected deterministically through the
``REPRO_SWEEP_FAULT`` / ``fault=`` hook (see
:func:`repro.core.sweeppool.parse_fault_spec`), so worker crashes,
hard exits, hangs and interrupts are reproducible in-process.

Pool tests use the ``fork`` start method: behaviourally identical to
``spawn`` for the dispatcher under test, without paying interpreter
startup per worker.
"""

import json
import os
import time
import warnings

import pytest

import repro.core.sweeppool as sweeppool
from repro.core.config import SoCConfig
from repro.core.export import results_to_json
from repro.core.sweep import dma_design_space, run_sweep
from repro.core.sweeppool import (
    ENV_FAULT,
    FailedPoint,
    SweepManifest,
    SweepMetrics,
    parse_fault_spec,
    partition_results,
    run_sweep_pool,
    sweep_id,
)
from repro.errors import SweepError

WORKLOAD = "aes-aes"


def quick_designs(n=3):
    return dma_design_space("quick")[:n]


def as_json(results):
    return json.loads(results_to_json(results))


@pytest.fixture(scope="module")
def serial_json():
    """Golden serial results for the default 3-point space."""
    return as_json(run_sweep(WORKLOAD, quick_designs()))


class TestFaultSpec:
    def test_parse(self):
        assert parse_fault_spec("") == {}
        assert parse_fault_spec(None) == {}
        spec = parse_fault_spec("raise@2,exit@0,hang@1*2")
        assert spec[2][0] == "raise" and spec[0][0] == "exit"
        assert spec[1] == ("hang", 2)

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            parse_fault_spec("explode@1")
        with pytest.raises(ValueError):
            parse_fault_spec("raise")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT, "raise@0")
        with pytest.raises(RuntimeError, match="injected fault"):
            run_sweep_pool(WORKLOAD, quick_designs(1))

    def test_explicit_fault_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENV_FAULT, "raise@0")
        results = run_sweep_pool(WORKLOAD, quick_designs(1), fault="")
        assert not getattr(results[0], "is_failure", False)


class TestFailedPoint:
    def test_attrs_and_dict(self):
        fp = FailedPoint(WORKLOAD, quick_designs(1)[0], "RuntimeError('x')",
                         traceback="tb", attempts=3, kind="timeout")
        assert fp.is_failure
        d = fp.as_dict()
        assert d["kind"] == "timeout" and d["attempts"] == 3
        assert "timeout" in repr(fp)

    def test_partition(self):
        fp = FailedPoint(WORKLOAD, quick_designs(1)[0], "boom")
        ok, failed = partition_results([1, fp, 2])
        assert ok == [1, 2] and failed == [fp]


class TestCollectInline:
    def test_worker_raises_becomes_failed_point(self):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(), fault="raise@1",
                                 on_error="collect", metrics=metrics)
        assert isinstance(results[1], FailedPoint)
        assert results[1].kind == "error"
        assert "injected fault" in results[1].error
        assert results[1].traceback  # captured formatted traceback
        assert not getattr(results[0], "is_failure", False)
        assert not getattr(results[2], "is_failure", False)
        assert metrics.failures == 1 and metrics.evaluated == 2
        assert metrics.points == 3

    def test_default_on_error_still_raises(self):
        with pytest.raises(RuntimeError, match="injected fault"):
            run_sweep_pool(WORKLOAD, quick_designs(), fault="raise@1")

    def test_raise_after_retries_is_sweep_error(self):
        with pytest.raises(SweepError) as excinfo:
            run_sweep_pool(WORKLOAD, quick_designs(), fault="raise@1",
                           retries=1)
        failure = excinfo.value.failure
        assert isinstance(failure, FailedPoint)
        assert failure.attempts == 2

    def test_retry_recovers_transient_fault(self):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(),
                                 fault="raise@0*1", retries=1,
                                 on_error="collect", metrics=metrics)
        ok, failed = partition_results(results)
        assert len(ok) == 3 and not failed
        assert metrics.retries == 1 and metrics.failures == 0

    def test_retry_backoff_waits(self):
        start = time.perf_counter()
        run_sweep_pool(WORKLOAD, quick_designs(1), fault="raise@0*1",
                       retries=1, retry_backoff=0.2, on_error="collect")
        assert time.perf_counter() - start >= 0.2

    def test_failures_never_cached(self, tmp_path):
        run_sweep_pool(WORKLOAD, quick_designs(), fault="raise@1",
                       on_error="collect", cache_dir=str(tmp_path))
        cache = sweeppool.SweepCache(str(tmp_path))
        assert len(cache) == 2  # only the two successes

    def test_ordering_preserved(self):
        designs = quick_designs()
        results = run_sweep_pool(WORKLOAD, designs, fault="raise@0,raise@2",
                                 on_error="collect")
        assert isinstance(results[0], FailedPoint)
        assert isinstance(results[2], FailedPoint)
        assert results[1].design.key() == designs[1].key()


class TestCollectPool:
    def test_worker_raises(self, serial_json):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=2,
                                 mp_context="fork", fault="raise@1",
                                 on_error="collect", metrics=metrics)
        assert isinstance(results[1], FailedPoint)
        assert results[1].kind == "error"
        assert metrics.failures == 1 and metrics.evaluated == 2
        ok, _failed = partition_results(results)
        assert as_json(ok) == [serial_json[0], serial_json[2]]

    def test_worker_hard_exit_is_worker_lost(self):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=2,
                                 mp_context="fork", fault="exit@0",
                                 on_error="collect", metrics=metrics)
        assert isinstance(results[0], FailedPoint)
        assert results[0].kind == "worker-lost"
        ok, _failed = partition_results(results)
        assert len(ok) == 2  # the pool survived the dead worker

    def test_worker_hard_exit_retried_then_succeeds(self, serial_json):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=2,
                                 mp_context="fork", fault="exit@0*1",
                                 retries=1, on_error="collect",
                                 metrics=metrics)
        ok, failed = partition_results(results)
        assert not failed and metrics.retries == 1
        assert as_json(results) == serial_json

    def test_timeout_expiry_kills_hung_point(self):
        metrics = SweepMetrics()
        start = time.monotonic()
        results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=1,
                                 mp_context="fork", fault="hang@2",
                                 timeout=1.0, on_error="collect",
                                 metrics=metrics)
        elapsed = time.monotonic() - start
        assert isinstance(results[2], FailedPoint)
        assert results[2].kind == "timeout"
        assert metrics.timeouts == 1 and metrics.failures == 1
        assert elapsed < 30  # the hung worker was killed, not waited out

    def test_timeout_on_error_raise(self):
        with pytest.raises(SweepError, match="timeout"):
            run_sweep_pool(WORKLOAD, quick_designs(), jobs=1,
                           mp_context="fork", fault="hang@0", timeout=1.0)

    def test_pool_failure_falls_back_to_serial(self, monkeypatch,
                                               serial_json):
        def no_workers(ctx):
            raise OSError("cannot fork")
        monkeypatch.setattr(sweeppool, "_start_worker", no_workers)
        metrics = SweepMetrics()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=2,
                                     mp_context="fork", on_error="collect",
                                     metrics=metrics)
        assert any("falling back to serial" in str(w.message)
                   for w in caught)
        assert as_json(results) == serial_json
        assert metrics.evaluated == 3


class TestInterruptAndResume:
    def test_keyboard_interrupt_flushes_then_resume(self, tmp_path,
                                                    serial_json):
        designs = quick_designs()

        def interrupt_after_first(done, total):
            if done == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                           progress=interrupt_after_first)
        # The completed point was flushed before the interrupt ...
        doc = SweepManifest.peek(str(tmp_path), WORKLOAD, designs)
        assert doc["done"] == 1 and doc["pending"] == 2
        # ... and resume re-evaluates only the other two.
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                                 resume=True, metrics=metrics)
        assert metrics.cache_hits == 1 and metrics.evaluated == 2
        assert as_json(results) == serial_json

    def test_resume_after_partial_failure(self, tmp_path, serial_json):
        designs = quick_designs()
        run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                       fault="raise@2", on_error="collect")
        doc = SweepManifest.peek(str(tmp_path), WORKLOAD, designs)
        assert doc["done"] == 2 and doc["failed"] == 1
        assert doc["entries"][2]["error"].startswith("RuntimeError")
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, designs, cache_dir=str(tmp_path),
                                 resume=True, metrics=metrics)
        assert metrics.evaluated == 1  # exactly the failed point
        assert metrics.cache_hits == 2
        assert as_json(results) == serial_json
        doc = SweepManifest.peek(str(tmp_path), WORKLOAD, designs)
        assert doc["done"] == 3 and doc["failed"] == 0

    def test_resume_requires_cache(self):
        with pytest.raises(ValueError, match="cache_dir"):
            run_sweep_pool(WORKLOAD, quick_designs(1), resume=True)

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_sweep_pool(WORKLOAD, quick_designs(1), on_error="ignore")


class TestManifest:
    def test_sweep_id_stable_and_sensitive(self):
        designs = quick_designs(2)
        assert sweep_id(WORKLOAD, designs) == sweep_id(WORKLOAD, designs)
        assert sweep_id(WORKLOAD, designs) != sweep_id("nw-nw", designs)
        assert sweep_id(WORKLOAD, designs) != \
            sweep_id(WORKLOAD, designs, SoCConfig(bus_width_bits=64))
        assert sweep_id(WORKLOAD, designs) != \
            sweep_id(WORKLOAD, quick_designs(3))

    def test_mark_and_peek_roundtrip(self, tmp_path):
        designs = quick_designs(2)
        manifest = SweepManifest(str(tmp_path), WORKLOAD, designs)
        manifest.mark(0, "done")
        manifest.mark(1, "failed", attempts=2, kind="timeout",
                      error="too slow")
        doc = SweepManifest.peek(str(tmp_path), WORKLOAD, designs)
        assert doc["done"] == 1 and doc["failed"] == 1
        assert doc["entries"][1]["kind"] == "timeout"

    def test_peek_missing_is_none(self, tmp_path):
        assert SweepManifest.peek(str(tmp_path), WORKLOAD,
                                  quick_designs(1)) is None

    def test_no_stray_tmp_files(self, tmp_path):
        manifest = SweepManifest(str(tmp_path), WORKLOAD, quick_designs(1))
        manifest.save()
        stray = [f for _d, _s, fs in os.walk(str(tmp_path))
                 for f in fs if f.endswith(".tmp")]
        assert stray == []


class TestFaultFreeParity:
    """The robustness layer must not perturb a fault-free sweep."""

    def test_inline_collect_bit_identical_to_serial(self, serial_json):
        results = run_sweep_pool(WORKLOAD, quick_designs(),
                                 on_error="collect", retries=2)
        assert as_json(results) == serial_json

    def test_pool_robust_bit_identical_to_serial(self, serial_json):
        metrics = SweepMetrics()
        results = run_sweep_pool(WORKLOAD, quick_designs(), jobs=2,
                                 mp_context="fork", on_error="collect",
                                 retries=2, timeout=600.0, metrics=metrics)
        assert as_json(results) == serial_json
        assert metrics.failures == 0 and metrics.retries == 0

    def test_run_sweep_threads_robust_knobs(self, serial_json):
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, quick_designs(), on_error="collect",
                            retries=1, metrics=metrics)
        assert as_json(results) == serial_json
        assert metrics.evaluated == 3


class TestSerialEngineRobustness:
    """The profiler/stats/check-forced serial engine shares the layer."""

    def test_serial_path_fills_metrics(self):
        from repro.sim.profiling import EventProfiler
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, quick_designs(2), metrics=metrics,
                            profiler=EventProfiler())
        assert len(results) == 2
        assert metrics.points == 2 and metrics.evaluated == 2
        assert metrics.jobs == 1
        assert metrics.wall_seconds > 0
        assert len(metrics.point_seconds) == 2

    def test_serial_path_collects_faults(self):
        from repro.sim.profiling import EventProfiler
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, quick_designs(2), metrics=metrics,
                            profiler=EventProfiler(), on_error="collect",
                            fault="raise@0")
        assert isinstance(results[0], FailedPoint)
        assert metrics.failures == 1 and metrics.evaluated == 1

    def test_serial_path_retries(self):
        from repro.sim.profiling import EventProfiler
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, quick_designs(2), metrics=metrics,
                            profiler=EventProfiler(), on_error="collect",
                            retries=1, fault="raise@1*1")
        ok, failed = partition_results(results)
        assert len(ok) == 2 and not failed
        assert metrics.retries == 1


class TestConsumers:
    def test_sweep_pareto_filters_failures(self):
        from repro.core.pareto import sweep_pareto
        frontier, optimum, results = sweep_pareto(
            WORKLOAD, quick_designs(), on_error="collect")
        # fault-free: everything succeeds, all three shapes populated
        assert len(results) == 3 and frontier and optimum
        frontier, optimum, results = sweep_pareto(
            WORKLOAD, quick_designs(), on_error="collect", retries=0,
            metrics=None, parallel=None, cache_dir=None)
        assert optimum.edp == min(r.edp for r in results)

    def test_sweep_pareto_with_failed_points(self, monkeypatch):
        from repro.core.pareto import sweep_pareto
        monkeypatch.setenv(ENV_FAULT, "raise@0")
        frontier, optimum, results = sweep_pareto(
            WORKLOAD, quick_designs(), on_error="collect")
        assert isinstance(results[0], FailedPoint)
        assert all(not getattr(r, "is_failure", False) for r in frontier)
        assert optimum.edp == min(
            r.edp for r in partition_results(results)[0])

    def test_scenario_optimum_with_failures(self, monkeypatch):
        from repro.core.scenarios import SCENARIOS, run_scenario_optimum
        monkeypatch.setenv(ENV_FAULT, "raise@0")
        optimum, results = run_scenario_optimum(
            WORKLOAD, SCENARIOS["dma32"], density="quick",
            on_error="collect")
        assert isinstance(results[0], FailedPoint)
        assert not getattr(optimum, "is_failure", False)

    def test_figures_drop_failures_under_collect(self, monkeypatch):
        from repro.core import figures
        monkeypatch.setenv(ENV_FAULT, "raise@0")
        figures.set_sweep_options(on_error="collect")
        try:
            results = figures._sweep(WORKLOAD, quick_designs())
        finally:
            figures.set_sweep_options()
        assert len(results) == 2
        assert all(not getattr(r, "is_failure", False) for r in results)

    def test_multi_solo_results_collect(self):
        from repro.core.config import DesignPoint
        from repro.core.multi import MultiAcceleratorSoC
        soc = MultiAcceleratorSoC([
            (WORKLOAD, DesignPoint(lanes=1, partitions=1)),
            ("nw-nw", DesignPoint(lanes=1, partitions=1)),
        ])
        soc.run()
        slowdowns = soc.contention_slowdowns(on_error="collect")
        assert len(slowdowns) == 2
        assert all(s is not None and s >= 0.99 for s in slowdowns)
