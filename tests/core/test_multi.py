"""Multi-accelerator SoCs on a shared platform."""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.multi import MultiAcceleratorSoC, run_pair
from repro.core.soc import Platform, SoC


def small_dma(lanes=2):
    return DesignPoint(lanes=lanes, partitions=lanes)


class TestPlatformSharing:
    def test_disjoint_address_regions(self):
        plat = Platform()
        a = SoC("aes-aes", small_dma(), platform=plat)
        b = SoC("kmp", small_dma(), platform=plat)
        regions = []
        for soc in (a, b):
            for name, base in soc.phys_base.items():
                size = soc.trace.arrays[name].size_bytes
                regions.append((base, base + size))
        regions.sort()
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 <= s2, "array regions overlap"

    def test_unique_accel_ids(self):
        plat = Platform()
        socs = [SoC("aes-aes", small_dma(), platform=plat) for _ in range(3)]
        assert len({s.accel_id for s in socs}) == 3

    def test_cfg_with_platform_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            SoC("aes-aes", small_dma(), cfg=SoCConfig(), platform=Platform())


class TestConcurrentOffloads:
    def test_both_complete(self):
        soc = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        assert len(soc.results) == 2
        assert all(r.total_ticks > 0 for r in soc.results)
        assert soc.makespan_ticks() == max(r.total_ticks
                                           for r in soc.results)

    def test_functional_results_still_correct(self):
        from repro.workloads import cached_trace, get_workload
        run_pair("aes-aes", small_dma(), "sort-merge", small_dma())
        get_workload("aes-aes").verify(cached_trace("aes-aes"))
        get_workload("sort-merge").verify(cached_trace("sort-merge"))

    def test_contention_slows_both(self):
        soc = run_pair("md-knn", small_dma(4), "fft-transpose", small_dma(4))
        slowdowns = soc.contention_slowdowns()
        assert all(s >= 0.99 for s in slowdowns)
        assert any(s > 1.02 for s in slowdowns)

    def test_mixed_interfaces_coexist(self):
        soc = run_pair("md-knn", small_dma(4),
                       "spmv-crs", DesignPoint(lanes=4,
                                               mem_interface="cache"))
        assert soc.results[1].stats["cache_miss_rate"] > 0

    def test_three_accelerators(self):
        soc = MultiAcceleratorSoC([
            ("aes-aes", small_dma()),
            ("kmp", small_dma()),
            ("viterbi", small_dma()),
        ])
        results = soc.run()
        assert len(results) == 3

    def test_empty_jobs_rejected(self):
        with pytest.raises(ValueError):
            MultiAcceleratorSoC([])

    def test_shared_bus_more_utilized_than_solo(self):
        shared = run_pair("md-knn", small_dma(4),
                          "stencil-stencil3d", small_dma(4))
        solo = SoC("md-knn", small_dma(4))
        solo.run()
        solo_util = solo.bus.utilization(0, solo._end_tick)
        assert shared.bus_utilization() > solo_util

    def test_deterministic(self):
        a = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        b = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        assert [r.total_ticks for r in a.results] == \
            [r.total_ticks for r in b.results]


class TestSoloMemoization:
    def test_solo_results_computed_once(self, monkeypatch):
        """Regression: contention_slowdowns() re-simulated every solo run
        on each call; solo results are deterministic in (job, cfg) and
        must be memoized."""
        import repro.core.multi as multi_mod
        soc = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        first = soc.solo_results()
        monkeypatch.setattr(
            multi_mod, "run_design",
            lambda *a, **k: pytest.fail("solo run re-simulated"))
        assert soc.solo_results() is first
        slowdowns_a = soc.contention_slowdowns()
        slowdowns_b = soc.contention_slowdowns()
        assert slowdowns_a == slowdowns_b

    def test_slowdowns_unchanged_by_memoization(self):
        a = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        b = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        assert a.contention_slowdowns() == b.contention_slowdowns()

    def test_memo_keyed_on_fault_policy(self, monkeypatch):
        """Regression: solo_results() memoized unconditionally on the
        first call, so a later call with different on_error/retries knobs
        silently got results computed under the *old* policy.  The memo
        must be keyed on the knobs."""
        import repro.core.sweep as sweep_mod
        soc = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        calls = []
        real_run_sweep = sweep_mod.run_sweep

        def spying(workload, designs, cfg=None, **kwargs):
            calls.append((kwargs.get("on_error"), kwargs.get("retries")))
            return real_run_sweep(workload, designs, cfg, **kwargs)

        monkeypatch.setattr(sweep_mod, "run_sweep", spying)
        soc.solo_results(on_error="raise", retries=0)
        assert calls == [("raise", 0)] * 2
        # Different knobs: must re-run, not serve the stale memo.
        soc.solo_results(on_error="collect", retries=1)
        assert calls[2:] == [("collect", 1)] * 2
        # Same knobs again: memoized, no new sweep calls.
        soc.solo_results(on_error="collect", retries=1)
        assert len(calls) == 4

    def test_zero_tick_solo_yields_none_slot(self):
        """Regression: a zero-tick solo run (degenerate workload) crashed
        contention_slowdowns() with ZeroDivisionError; it must yield None
        for that slot and leave the other ratios intact."""
        from types import SimpleNamespace

        from repro.core.metrics import RunResult
        soc = run_pair("aes-aes", small_dma(), "kmp", small_dma())
        real = soc.solo_results()
        zero = RunResult("aes-aes", small_dma(), 0, 0,
                         {"flush_only": 0, "dma_flush": 0,
                          "compute_dma": 0, "compute_only": 0, "other": 0},
                         SimpleNamespace(total_pj=0.0))
        soc._solo_results = [zero, real[1]]
        slowdowns = soc.contention_slowdowns()
        assert slowdowns[0] is None
        assert slowdowns[1] is not None and slowdowns[1] > 0

    def test_run_pair_threads_check_through(self):
        """Regression: run_pair() dropped its caller's check= on the
        floor, so 'checked' pair runs were silently unchecked."""
        from repro.check import Checker
        checker = Checker()
        soc = run_pair("aes-aes", small_dma(), "kmp", small_dma(),
                       check=checker)
        assert soc.platform.checker is checker
        assert checker.audits == 1
        assert checker.last_audit["clean"]

    def test_checked_multi_soc_audits_clean(self):
        from repro.check import Checker
        checker = Checker()
        soc = MultiAcceleratorSoC([("aes-aes", small_dma()),
                                   ("kmp", small_dma())], check=checker)
        soc.run()
        assert checker.audits == 1
        assert checker.last_audit["clean"]
        # Both accelerators' components were walked by the audit.
        assert checker.last_audit["components_audited"] >= 14


class TestDoubleBuffering:
    def test_double_buffer_runs_and_completes(self):
        from repro.core.soc import run_design
        d = DesignPoint(lanes=4, partitions=4, pipelined_dma=True,
                        dma_triggered_compute=True, double_buffer=True)
        r = run_design("stencil-stencil2d", d)
        assert r.total_ticks > 0

    def test_double_buffer_comparable_to_line_bits(self):
        """Half-array granularity changes wakeup order (which can shift
        port-arbitration winners either way) but must stay in the same
        performance regime as line-granularity bits."""
        from repro.core.soc import run_design
        base = DesignPoint(lanes=4, partitions=4, pipelined_dma=True,
                           dma_triggered_compute=True)
        fine = run_design("gemm-ncubed", base)
        coarse = run_design("gemm-ncubed",
                            base.replace(double_buffer=True))
        assert 0.7 < coarse.total_ticks / fine.total_ticks < 1.3

    def test_key_distinguishes_double_buffer(self):
        a = DesignPoint(double_buffer=False)
        b = DesignPoint(double_buffer=True)
        assert a.key() != b.key()
