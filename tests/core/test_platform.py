"""Platform internals and SoC corner cases."""

import pytest

from repro.core.config import DesignPoint, SoCConfig
from repro.core.soc import PAGE, Platform, SoC, run_design


class TestPlatform:
    def test_alloc_page_aligned(self):
        plat = Platform()
        a = plat.alloc_region(100)
        b = plat.alloc_region(5000)
        c = plat.alloc_region(1)
        assert a % PAGE == 0 and b % PAGE == 0 and c % PAGE == 0
        assert b - a == PAGE          # 100 B rounds up to one page
        assert c - b == 2 * PAGE      # 5000 B rounds up to two pages

    def test_accel_ids_monotonic(self):
        plat = Platform()
        assert plat.next_accel_id() == 0
        assert plat.next_accel_id() == 1

    def test_platform_carries_config(self):
        plat = Platform(SoCConfig(bus_width_bits=64))
        assert plat.bus.width_bits == 64

    def test_drivers_share_cpu_cache(self):
        plat = Platform()
        d0 = plat.make_driver("cpu0")
        d1 = plat.make_driver("cpu1")
        assert d0.cpu_cache is d1.cpu_cache
        assert d0.name != d1.name


class TestSoCCorners:
    def test_inout_arrays_transferred_both_ways(self):
        """sort-merge's array is inout: DMA'd in, sorted, DMA'd back."""
        soc = SoC("sort-merge", DesignPoint(lanes=2, partitions=2))
        soc.run()
        size = soc.trace.arrays["a"].size_bytes
        # in: a; out: a again.
        assert soc.dma.bytes_moved == 2 * size

    def test_internal_arrays_have_no_physical_region(self):
        soc = SoC("nw-nw", DesignPoint(lanes=2, partitions=2))
        assert "matrix" not in soc.phys_base
        assert "seqA" in soc.phys_base

    def test_signal_addresses_distinct_per_accelerator(self):
        from repro.core.multi import MultiAcceleratorSoC
        multi = MultiAcceleratorSoC([
            ("aes-aes", DesignPoint(lanes=1, partitions=1)),
            ("kmp", DesignPoint(lanes=1, partitions=1)),
        ])
        ids = [s.accel_id for s in multi.socs]
        assert ids == [0, 1]
        multi.run()  # both flags observed despite sharing the bus

    def test_collect_before_completion_raises(self):
        from repro.errors import SimulationError
        soc = SoC("aes-aes", DesignPoint(lanes=1, partitions=1))
        with pytest.raises(SimulationError):
            soc.collect()

    def test_first_use_order_drives_dma_order(self):
        """stencil2d reads 'filter' first, so it must be DMA'd first even
        though 'orig' is declared first."""
        soc = SoC("stencil-stencil2d", DesignPoint(lanes=2, partitions=2))
        regions = soc._input_regions()
        assert regions[0][0] == "filter"

    def test_run_design_accepts_all_densities_of_designs(self):
        from repro.core.sweep import cache_design_space, dma_design_space
        # One design of each flavour must run on every workload class.
        for d in (dma_design_space("quick")[0],
                  cache_design_space("quick")[0]):
            r = run_design("kmp", d)
            assert r.total_ticks > 0
