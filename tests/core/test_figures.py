"""Smoke tests for every figure entry point (quick densities / subsets).

The full-fidelity runs live in benchmarks/; here we check that each figure
produces structurally complete data and that its headline *qualitative*
claim holds.
"""

import pytest

from repro.core import figures


@pytest.fixture(autouse=True)
def fresh_memo():
    figures.clear_memo()
    yield
    figures.clear_memo()


class TestFig2:
    def test_fig2a_mdknn_compute_is_minor_fraction(self):
        """Figure 2a: md-knn at 16 lanes, baseline DMA — compute is ~25%
        of total cycles, the rest is data preparation and movement."""
        r = figures.fig2a()
        assert 0.10 < r.compute_fraction < 0.45
        assert r.breakdown["flush_only"] > 0

    def test_fig2b_covers_all_workloads(self):
        rows = figures.fig2b(["aes-aes", "kmp"])
        assert [r.workload for r in rows] == ["aes-aes", "kmp"]

    def test_fig2b_has_compute_and_data_bound_kernels(self):
        rows = figures.fig2b(["nw-nw", "fft-transpose"])
        fracs = {r.workload: r.compute_fraction for r in rows}
        assert fracs["nw-nw"] > 0.5            # compute-bound
        assert fracs["fft-transpose"] < 0.5    # data-movement-bound

    def test_fig2b_suite_splits_roughly_in_half(self):
        """'About half of them are compute-bound and the other half
        data-movement-bound.'"""
        rows = figures.fig2b()
        compute_bound = sum(1 for r in rows if r.compute_fraction > 0.5)
        assert 0.2 <= compute_bound / len(rows) <= 0.7


class TestFig4:
    def test_validation_under_paper_bounds(self):
        suite = figures.fig4(["aes-aes", "md-knn"])
        assert suite["avg_total_error"] < 0.06


class TestFig6:
    def test_fig6a_optimizations_monotonic(self):
        data = figures.fig6a(["md-knn"], lanes=4)
        times = [r.total_ticks for _label, r in data["md-knn"]]
        assert times[0] >= times[1] >= times[2]

    def test_fig6a_pipelining_kills_flush_time(self):
        data = figures.fig6a(["md-knn"], lanes=4)
        rows = dict(data["md-knn"])
        assert rows["+pipelined"].breakdown["flush_only"] < \
            rows["baseline"].breakdown["flush_only"] / 2

    def test_fig6b_speedup_saturates(self):
        """More lanes cannot beat the data-movement bound."""
        data = figures.fig6b(["md-knn"], lanes_list=(1, 4, 16))
        rows = data["md-knn"]
        t1, t4, t16 = (r.total_ticks for _l, r in rows)
        assert t4 < t1
        # Saturation: 4 -> 16 gains far less than the 4x lane increase.
        assert t4 / t16 < 2.5


class TestFig7:
    def test_decomposition_structure(self):
        data = figures.fig7(["gemm-ncubed"], lanes_list=(1, 4))
        rows = data["gemm-ncubed"]["rows"]
        for row in rows:
            assert row["total"] >= row["processing"]
            assert row["processing"] > 0
            assert row["latency"] >= 0
            assert row["bandwidth"] >= 0

    def test_processing_time_shrinks_with_lanes(self):
        data = figures.fig7(["gemm-ncubed"], lanes_list=(1, 8))
        rows = data["gemm-ncubed"]["rows"]
        assert rows[1]["processing"] < rows[0]["processing"]


class TestFig8:
    def test_structure(self):
        data = figures.fig8(["aes-aes"], density="quick")
        entry = data["aes-aes"]
        assert entry["dma_optimum"].edp <= min(r.edp for r in entry["dma"])
        assert set(entry["dma_pareto"]) <= set(entry["dma"])

    def test_aes_prefers_dma(self):
        """Figure 8's left edge: aes unambiguously prefers DMA."""
        data = figures.fig8(["aes-aes"], density="quick")
        entry = data["aes-aes"]
        assert entry["dma_optimum"].edp < entry["cache_optimum"].edp

    def test_spmv_prefers_cache(self):
        """Figure 8's right edge: spmv prefers a cache (indirect loads)."""
        data = figures.fig8(["spmv-crs"], density="standard")
        entry = data["spmv-crs"]
        assert entry["cache_optimum"].edp < entry["dma_optimum"].edp


class TestFig9And10:
    def test_scenario_optima_all_present(self):
        optima = figures.scenario_optima("aes-aes", density="quick")
        assert set(optima) == {"isolated", "dma32", "cache32", "cache64"}

    def test_fig9_codesigned_leaner_than_isolated(self):
        """'Almost every colored triangle is smaller than the baseline.'"""
        data = figures.fig9(["spmv-crs"], density="quick")
        assert data["spmv-crs"]["leaner_fraction"] > 0.5

    def test_fig10_improvements_positive(self):
        data = figures.fig10(["spmv-crs"], density="quick")
        for key in ("dma32", "cache32", "cache64"):
            assert data["averages"][key] > 0.8
        assert data["paper_averages"] == {"dma32": 1.2, "cache32": 2.2,
                                          "cache64": 2.0}
