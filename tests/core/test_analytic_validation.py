"""Analytic phase model and the Figure 4 validation harness."""

import pytest

from repro.core.analytic import (
    dma_transfer_ticks,
    predict_phases,
    predict_total,
)
from repro.core.config import DesignPoint, SoCConfig
from repro.core.validation import PAPER_ERRORS, validate_suite, validate_workload
from repro.units import ns_to_ticks


def baseline_design():
    return DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                       pipelined_dma=False, dma_triggered_compute=False)


class TestAnalyticModel:
    def test_dma_transfer_scales_with_bytes(self):
        cfg = SoCConfig()
        assert dma_transfer_ticks(8192, cfg) > dma_transfer_ticks(4096, cfg)

    def test_dma_transfer_wider_bus_faster(self):
        assert dma_transfer_ticks(4096, SoCConfig(bus_width_bits=64)) < \
            dma_transfer_ticks(4096, SoCConfig(bus_width_bits=32))

    def test_setup_cost_per_transaction(self):
        cfg = SoCConfig()
        one = dma_transfer_ticks(4096, cfg, transactions=1)
        four = dma_transfer_ticks(4096, cfg, transactions=4)
        assert four - one == 3 * 40 * 10_000

    def test_flush_phase_uses_measured_constant(self):
        phases = predict_phases("aes-aes", baseline_design())
        # aes inputs: sbox(4 lines) + key(1) + buf(1) = 6 lines.
        assert phases.flush == ns_to_ticks(6 * 84.0)

    def test_compute_phase_matches_isolated_aladdin(self):
        from repro.aladdin.accelerator import Accelerator
        from repro.workloads import cached_trace
        design = baseline_design()
        phases = predict_phases("gemm-ncubed", design)
        iso = Accelerator(cached_trace("gemm-ncubed"), design.lanes,
                          design.partitions).run_isolated()
        assert phases.compute == iso.ticks

    def test_total_baseline_is_sum_of_phases(self):
        p = predict_phases("aes-aes", baseline_design())
        assert p.total_baseline == (p.flush + p.invalidate + p.driver
                                    + p.dma_in + p.compute + p.dma_out)

    def test_pipelined_prediction_not_longer(self):
        piped = baseline_design().replace(pipelined_dma=True)
        assert predict_total("spmv-crs", piped) <= \
            predict_total("spmv-crs", baseline_design())


class TestValidationHarness:
    def test_single_workload_row(self):
        row = validate_workload("aes-aes")
        assert row.workload == "aes-aes"
        assert row.total_error < 0.10
        assert set(row.component_errors) == {"flush", "dma", "compute"}

    def test_suite_meets_paper_error_bounds(self):
        """Our model-vs-simulation errors must be within the paper's
        model-vs-hardware bounds (6.4% DMA, 5% compute, 5% flush)."""
        suite = validate_suite(["aes-aes", "gemm-ncubed", "md-knn",
                                "spmv-crs"])
        assert suite["avg_total_error"] < 0.06
        assert suite["avg_component_errors"]["dma"] < 0.064
        assert suite["avg_component_errors"]["flush"] < 0.05
        assert suite["avg_component_errors"]["compute"] < 0.05

    def test_paper_reference_numbers_recorded(self):
        assert PAPER_ERRORS["dma_model_avg"] == 0.064
        assert PAPER_ERRORS["aladdin_avg"] == 0.05
        assert PAPER_ERRORS["flush_model_avg"] == 0.05
