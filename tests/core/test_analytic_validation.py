"""Analytic phase model and the Figure 4 validation harness."""

import math

import pytest

from repro.core.analytic import (
    AnalyticPhases,
    dma_transfer_ticks,
    predict_phases,
    predict_total,
)
from repro.core.config import DesignPoint, SoCConfig
from repro.core.validation import (
    PAPER_ERRORS,
    ValidationRow,
    relative_error,
    validate_suite,
    validate_workload,
)
from repro.units import ns_to_ticks


def baseline_design():
    return DesignPoint(lanes=4, partitions=4, mem_interface="dma",
                       pipelined_dma=False, dma_triggered_compute=False)


class TestAnalyticModel:
    def test_dma_transfer_scales_with_bytes(self):
        cfg = SoCConfig()
        assert dma_transfer_ticks(8192, cfg) > dma_transfer_ticks(4096, cfg)

    def test_dma_transfer_wider_bus_faster(self):
        assert dma_transfer_ticks(4096, SoCConfig(bus_width_bits=64)) < \
            dma_transfer_ticks(4096, SoCConfig(bus_width_bits=32))

    def test_setup_cost_per_transaction(self):
        cfg = SoCConfig()
        one = dma_transfer_ticks(4096, cfg, transactions=1)
        four = dma_transfer_ticks(4096, cfg, transactions=4)
        assert four - one == 3 * 40 * 10_000

    def test_flush_phase_uses_measured_constant(self):
        phases = predict_phases("aes-aes", baseline_design())
        # aes inputs: sbox(4 lines) + key(1) + buf(1) = 6 lines.
        assert phases.flush == ns_to_ticks(6 * 84.0)

    def test_compute_phase_matches_isolated_aladdin(self):
        from repro.aladdin.accelerator import Accelerator
        from repro.workloads import cached_trace
        design = baseline_design()
        phases = predict_phases("gemm-ncubed", design)
        iso = Accelerator(cached_trace("gemm-ncubed"), design.lanes,
                          design.partitions).run_isolated()
        assert phases.compute == iso.ticks

    def test_total_baseline_is_sum_of_phases(self):
        p = predict_phases("aes-aes", baseline_design())
        assert p.total_baseline == (p.flush + p.invalidate + p.driver
                                    + p.dma_in + p.compute + p.dma_out)

    def test_pipelined_prediction_not_longer(self):
        piped = baseline_design().replace(pipelined_dma=True)
        assert predict_total("spmv-crs", piped) <= \
            predict_total("spmv-crs", baseline_design())


class TestValidationHarness:
    def test_single_workload_row(self):
        row = validate_workload("aes-aes")
        assert row.workload == "aes-aes"
        assert row.total_error < 0.10
        assert set(row.component_errors) == {"flush", "dma", "compute"}

    def test_suite_meets_paper_error_bounds(self):
        """Our model-vs-simulation errors must be within the paper's
        model-vs-hardware bounds (6.4% DMA, 5% compute, 5% flush)."""
        suite = validate_suite(["aes-aes", "gemm-ncubed", "md-knn",
                                "spmv-crs"])
        assert suite["avg_total_error"] < 0.06
        assert suite["avg_component_errors"]["dma"] < 0.064
        assert suite["avg_component_errors"]["flush"] < 0.05
        assert suite["avg_component_errors"]["compute"] < 0.05

    def test_paper_reference_numbers_recorded(self):
        assert PAPER_ERRORS["dma_model_avg"] == 0.064
        assert PAPER_ERRORS["aladdin_avg"] == 0.05
        assert PAPER_ERRORS["flush_model_avg"] == 0.05


class TestPipelinedLead:
    """The pipelined-DMA composition: one exposed leading flush block."""

    def test_hand_computed_total(self):
        p = AnalyticPhases(flush=100, invalidate=10, dma_in=50,
                           compute=200, dma_out=30, driver=5, blocks=4)
        # lead = ceil(100/4) = 25; overlap = max(100, 50) = 100.
        assert p.total_pipelined() == 25 + 100 + 10 + 200 + 30

    def test_lead_shrinks_with_more_blocks(self):
        """The min() regression: more blocks must shorten the exposed
        lead, not leave the total pinned at the serial flush time."""
        totals = [AnalyticPhases(flush=120, invalidate=0, dma_in=240,
                                 compute=10, dma_out=0, driver=0,
                                 blocks=b).total_pipelined()
                  for b in (1, 2, 4)]
        assert totals[0] > totals[1] > totals[2]
        assert totals[0] - totals[2] == 120 - 30  # lead 120 -> 30

    def test_blocks_is_per_instance(self):
        a = AnalyticPhases(100, 0, 50, 10, 0, 0, blocks=4)
        b = AnalyticPhases(100, 0, 50, 10, 0, 0, blocks=2)
        assert (a.blocks, b.blocks) == (4, 2)
        assert b.total_pipelined() - a.total_pipelined() == 50 - 25

    def test_blocks_floor_is_one(self):
        assert AnalyticPhases(8, 0, 0, 0, 0, 0, blocks=0).blocks == 1


class TestRelativeError:
    def test_zero_measurement_is_unbounded_not_perfect(self):
        assert math.isinf(relative_error(5.0, 0))

    def test_zero_vs_zero_is_exact(self):
        assert relative_error(0, 0) == 0.0

    def test_ordinary_ratio(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.10)


class TestDegenerateRows:
    @staticmethod
    def _rows(monkeypatch):
        from repro.core import validation
        rows = {
            "good": ValidationRow("good", 102, 100,
                                  {"flush": 0.02, "dma": 0.04,
                                   "compute": 0.06}),
            "bad": ValidationRow("bad", 100, 0,
                                 {"flush": float("inf"), "dma": 0.0,
                                  "compute": 0.0}),
        }
        monkeypatch.setattr(validation, "validate_workload",
                            lambda w, design=None, cfg=None: rows[w])
        return validation

    def test_flagged_and_excluded_from_averages(self, monkeypatch):
        validation = self._rows(monkeypatch)
        suite = validation.validate_suite(["good", "bad"])
        assert suite["degenerate_rows"] == ["bad"]
        # Only the finite row contributes: 2% total, per-component as-is.
        assert suite["avg_total_error"] == pytest.approx(0.02)
        assert suite["avg_component_errors"]["flush"] == pytest.approx(0.02)
        assert suite["avg_component_errors"]["dma"] == pytest.approx(0.02)

    def test_all_degenerate_reads_inf_not_zero(self, monkeypatch):
        validation = self._rows(monkeypatch)
        suite = validation.validate_suite(["bad"])
        assert math.isinf(suite["avg_total_error"])
        assert math.isinf(suite["avg_component_errors"]["flush"])

    def test_empty_suite_raises(self):
        with pytest.raises(ValueError, match="no workloads"):
            validate_suite([])
