"""Tiered-fidelity sweeps: calibration, fast prediction, and triage."""

import json
import os

import pytest

from repro.core import calibrate
from repro.core.calibrate import (
    CALIBRATION_VERSION,
    Calibration,
    FastResult,
    calibrate_workload,
    config_hash,
    design_class,
    predicted_frontier,
    prune_dominated,
    run_sweep_tiered,
)
from repro.core.config import DesignPoint, SoCConfig
from repro.core.pareto import edp_optimal, pareto_frontier
from repro.core.sweep import cache_design_space, dma_design_space, run_sweep
from repro.core.sweeppool import SweepMetrics
from repro.errors import CalibrationError

WORKLOAD = "aes-aes"


def quick_grid():
    grid = [d
            for pipelined in (False, True)
            for triggered in (False, True)
            for d in dma_design_space("quick", pipelined=pipelined,
                                      triggered=triggered)]
    return grid + cache_design_space("quick")


@pytest.fixture(scope="module")
def cal():
    return calibrate_workload(WORKLOAD, density="quick",
                              designs=quick_grid(), save=False)


@pytest.fixture(scope="module")
def exact_results():
    return run_sweep(WORKLOAD, quick_grid())


class _Pt:
    """Stub with just the axes the triage reads."""

    def __init__(self, ticks, power):
        self.total_ticks = ticks
        self.power_mw = power


class TestTriageUnits:
    def test_predicted_frontier_picks_nondominated(self):
        fast = [_Pt(1, 9), _Pt(2, 5), _Pt(3, 6), _Pt(4, 1)]
        assert predicted_frontier(fast, [0, 1, 2, 3]) == [0, 1, 3]

    def test_predicted_frontier_always_includes_none(self):
        fast = [_Pt(1, 1), None, _Pt(2, 2)]
        assert predicted_frontier(fast, [0, 1, 2]) == [0, 1]

    def test_prune_requires_strict_dominance_past_the_band(self):
        # Optimistic value of (110, 110) at band 0.10 is (100, 100):
        # an exact (100, 100) ties, so the candidate must survive.
        fast = [_Pt(110, 110)]
        assert prune_dominated(fast, [0], [(100.0, 100.0)], 0.10) == [0]
        assert prune_dominated(fast, [0], [(99.0, 99.0)], 0.10) == []

    def test_prune_per_axis_bands(self):
        # Loose time band, tight power band: the same exact point prunes
        # under (0.5, 0.0) but not under the pooled scalar 0.5.
        fast = [_Pt(150, 104)]
        exact = [(99.0, 103.0)]
        assert prune_dominated(fast, [0], exact, 0.5) == [0]
        assert prune_dominated(fast, [0], exact, (0.5, 0.0)) == []

    def test_prune_never_drops_none(self):
        assert prune_dominated([None], [0], [(0.0, 0.0)], 0.1) == [0]


class TestCalibrationArtifact:
    def test_classes_cover_the_grid(self, cal):
        expected = {design_class(d) for d in quick_grid()}
        assert set(cal.classes) | set(cal.rejected) == expected

    def test_bounds_cover_in_sample_errors(self, cal):
        assert cal.time_bound >= max(f.time_error_max
                                     for f in cal.classes.values())
        assert cal.power_bound >= max(f.power_error_max
                                      for f in cal.classes.values())
        assert cal.error_bound == max(cal.time_bound, cal.power_bound)

    def test_predict_returns_fast_result(self, cal):
        r = cal.predict(quick_grid()[0])
        assert isinstance(r, FastResult)
        assert r.fidelity == "fast"
        assert r.total_ticks >= 1
        assert r.power_mw > 0
        assert r.edp > 0

    def test_round_trip_persistence(self, cal, tmp_path):
        path = cal.save(str(tmp_path))
        assert os.path.exists(path)
        loaded = Calibration.load(str(tmp_path), WORKLOAD)
        assert loaded is not None
        assert loaded.time_bound == cal.time_bound
        assert loaded.power_bound == cal.power_bound
        assert sorted(loaded.classes) == sorted(cal.classes)
        assert sorted(loaded.rejected) == sorted(cal.rejected)
        d = quick_grid()[0]
        assert loaded.predict(d).total_ticks == cal.predict(d).total_ticks

    def test_load_rejects_version_mismatch(self, cal, tmp_path):
        path = cal.save(str(tmp_path))
        with open(path) as f:
            doc = json.load(f)
        doc["version"] = CALIBRATION_VERSION - 1
        with open(path, "w") as f:
            json.dump(doc, f)
        assert Calibration.load(str(tmp_path), WORKLOAD) is None

    def test_load_rejects_other_platform(self, cal, tmp_path):
        cal.save(str(tmp_path))
        other = SoCConfig(bus_width_bits=64)
        assert config_hash(other) != config_hash(SoCConfig())
        assert Calibration.load(str(tmp_path), WORKLOAD, other) is None

    def test_load_tolerates_corruption(self, cal, tmp_path):
        path = cal.save(str(tmp_path))
        with open(path, "w") as f:
            f.write("{not json")
        assert Calibration.load(str(tmp_path), WORKLOAD) is None

    def test_load_missing_is_none(self, tmp_path):
        assert Calibration.load(str(tmp_path), WORKLOAD) is None


class TestErrorWithinBound:
    def test_fast_error_within_calibrated_bounds(self, cal, exact_results):
        """The acceptance property: on the very grid it was calibrated
        against, every covered prediction is within the per-axis bounds."""
        from repro.core.validation import relative_error
        for design, exact in zip(quick_grid(), exact_results):
            fast = cal.predict(design)
            if fast is None:
                continue
            assert relative_error(fast.total_ticks,
                                  exact.total_ticks) <= cal.time_bound
            assert relative_error(fast.power_mw,
                                  exact.power_mw) <= cal.power_bound


class TestTieredSweep:
    def test_auto_frontier_and_edp_match_exact(self, cal, exact_results):
        metrics = SweepMetrics()
        grid = quick_grid()
        auto = run_sweep(WORKLOAD, grid, fidelity="auto", calibration=cal,
                         metrics=metrics)
        assert len(auto) == len(grid)
        confirmed = [r for r in auto if r.fidelity == "exact"]
        assert [r.design.key() for r in pareto_frontier(confirmed)] == \
            [r.design.key() for r in pareto_frontier(exact_results)]
        assert edp_optimal(confirmed).design.key() == \
            edp_optimal(exact_results).design.key()
        assert metrics.fast_points == len(grid)
        assert metrics.confirmed == len(confirmed)
        assert metrics.pruned == len(grid) - len(confirmed)
        assert metrics.fast_time_error_max <= cal.time_bound
        assert metrics.fast_power_error_max <= cal.power_bound

    def test_fast_mode_predicts_everything(self, cal):
        grid = quick_grid()
        metrics = SweepMetrics()
        results = run_sweep(WORKLOAD, grid, fidelity="fast",
                            calibration=cal, metrics=metrics)
        assert len(results) == len(grid)
        assert all(r.fidelity == "fast" for r in results)
        assert metrics.fast_points == len(grid)
        assert metrics.confirmed == 0

    def test_metrics_registry_export(self, cal):
        from repro.obs.stats import StatRegistry
        metrics = SweepMetrics()
        run_sweep(WORKLOAD, quick_grid()[:8], fidelity="fast",
                  calibration=cal, metrics=metrics)
        reg = StatRegistry()
        metrics.reg_stats(reg)
        assert reg.value("sweep.fast_points") == 8
        assert reg.value("sweep.pruned") == 0

    def test_guard_band_scalar_override(self, cal):
        auto = run_sweep(WORKLOAD, quick_grid(), fidelity="auto",
                         calibration=cal, guard_band=cal.error_bound)
        confirmed = [r for r in auto if r.fidelity == "exact"]
        assert confirmed  # frontier is always confirmed

    def test_bad_fidelity_rejected(self, cal):
        with pytest.raises(ValueError, match="fidelity"):
            run_sweep(WORKLOAD, quick_grid()[:2], fidelity="wrong")

    def test_exact_only_knobs_rejected(self, cal):
        with pytest.raises(ValueError, match="exact"):
            run_sweep(WORKLOAD, quick_grid()[:2], fidelity="fast",
                      calibration=cal, check=True)

    def test_missing_calibration_raises(self, tmp_path):
        with pytest.raises(CalibrationError, match="no calibration"):
            run_sweep_tiered(WORKLOAD, quick_grid()[:2],
                             cache_dir=str(tmp_path))

    def test_wrong_workload_calibration_raises(self, cal):
        with pytest.raises(CalibrationError, match="aes-aes"):
            run_sweep_tiered("gemm-ncubed", quick_grid()[:2],
                             calibration=cal)

    def test_wrong_platform_calibration_raises(self, cal):
        with pytest.raises(CalibrationError, match="SoCConfig"):
            run_sweep_tiered(WORKLOAD, quick_grid()[:2],
                             cfg=SoCConfig(bus_width_bits=64),
                             calibration=cal)


class TestRejection:
    def test_all_rejected_degrades_to_exact(self, monkeypatch,
                                            exact_results):
        """With every fit rejected the fast tier is vacuous, but auto
        mode must still terminate and return the exact answer."""
        monkeypatch.setattr(calibrate, "MAX_FIT_ERROR", -1.0)
        grid = quick_grid()
        cal = calibrate_workload(WORKLOAD, density="quick", designs=grid,
                                 save=False)
        assert not cal.classes
        assert set(cal.rejected) == {design_class(d) for d in grid}
        assert cal.time_bound == calibrate.MAX_ERROR_BOUND
        assert all(cal.predict(d) is None for d in grid)
        metrics = SweepMetrics()
        auto = run_sweep_tiered(WORKLOAD, grid, calibration=cal,
                                metrics=metrics)
        assert metrics.pruned == 0
        assert [r.design.key() for r in pareto_frontier(auto)] == \
            [r.design.key() for r in pareto_frontier(exact_results)]

    def test_fast_mode_refuses_rejected_classes(self, monkeypatch):
        monkeypatch.setattr(calibrate, "MAX_FIT_ERROR", -1.0)
        grid = quick_grid()[:4]
        cal = calibrate_workload(WORKLOAD, density="quick", designs=grid,
                                 save=False)
        with pytest.raises(CalibrationError, match="rejected"):
            run_sweep_tiered(WORKLOAD, grid, fidelity="fast",
                             calibration=cal)


class TestDesignClass:
    def test_dma_classes_split_by_optimization(self):
        base = DesignPoint(lanes=2, partitions=2, mem_interface="dma")
        assert design_class(base.replace(pipelined_dma=False,
                                         dma_triggered_compute=False)) != \
            design_class(base.replace(pipelined_dma=True,
                                      dma_triggered_compute=False))

    def test_cache_classes_split_by_line(self):
        base = DesignPoint(lanes=2, partitions=2, mem_interface="cache")
        assert design_class(base.replace(cache_line=16)) == "cache:l16"
        assert design_class(base.replace(cache_line=64)) == "cache:l64"
