"""JSON/CSV export of results."""

import csv
import json

import pytest

from repro.core.config import DesignPoint
from repro.core.export import (
    CSV_FIELDS,
    design_record,
    load_json,
    result_record,
    results_to_csv,
    results_to_json,
)
from repro.core.soc import run_design


@pytest.fixture(scope="module")
def results():
    return [
        run_design("aes-aes", DesignPoint(lanes=2, partitions=2)),
        run_design("aes-aes", DesignPoint(lanes=2, mem_interface="cache",
                                          cache_size_kb=2)),
    ]


class TestRecords:
    def test_design_record_roundtrips_through_json(self):
        rec = design_record(DesignPoint(lanes=8, mem_interface="cache"))
        assert json.loads(json.dumps(rec)) == rec
        assert rec["lanes"] == 8

    def test_result_record_fields(self, results):
        rec = result_record(results[0])
        assert rec["workload"] == "aes-aes"
        assert rec["time_us"] > 0
        assert rec["edp_js"] > 0
        assert rec["area_mm2"] > 0
        assert abs(sum(rec[k] for k in
                       ("flush_only_frac", "dma_flush_frac",
                        "compute_dma_frac", "compute_only_frac",
                        "other_frac")) - 1.0) < 1e-9

    def test_cache_stats_present_for_cache_design(self, results):
        rec = result_record(results[1])
        assert "cache_miss_rate" in rec["stats"]


class TestFiles:
    def test_json_file_roundtrip(self, results, tmp_path):
        path = tmp_path / "out.json"
        text = results_to_json(results, path)
        assert json.loads(text) == load_json(path)
        assert len(load_json(path)) == 2

    def test_csv_file(self, results, tmp_path):
        path = tmp_path / "out.csv"
        results_to_csv(results, path)
        with open(path) as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 2
        assert set(rows[0]) == set(CSV_FIELDS)
        assert rows[0]["workload"] == "aes-aes"
        assert float(rows[0]["time_us"]) > 0

    def test_json_string_only(self, results):
        text = results_to_json(results)
        assert isinstance(text, str)
        assert "aes-aes" in text
