"""The four design scenarios and EDP-improvement analysis."""

import pytest

from repro.core.config import DesignPoint
from repro.core.scenarios import (
    SCENARIOS,
    edp_improvement,
    isolated_sweep,
    naive_design_for,
    run_isolated,
    run_scenario_optimum,
)


class TestScenarioDefinitions:
    def test_four_scenarios(self):
        assert set(SCENARIOS) == {"isolated", "dma32", "cache32", "cache64"}

    def test_bus_widths(self):
        assert SCENARIOS["cache32"].soc_config().bus_width_bits == 32
        assert SCENARIOS["cache64"].soc_config().bus_width_bits == 64

    def test_design_spaces_match_interface(self):
        assert all(d.is_dma for d in SCENARIOS["dma32"].design_space("quick"))
        assert all(d.mem_interface == "cache"
                   for d in SCENARIOS["cache32"].design_space("quick"))


class TestIsolatedRuns:
    def test_isolated_result_is_all_compute(self):
        r = run_isolated("aes-aes", DesignPoint(lanes=4, partitions=4))
        assert r.breakdown["compute_only"] == r.total_ticks
        assert r.breakdown["flush_only"] == 0
        assert r.stats["isolated"]

    def test_isolated_sweep_covers_space(self):
        results = isolated_sweep("aes-aes", "quick")
        assert len(results) == 9

    def test_isolated_ignores_system(self):
        """An isolated run must be faster than any co-designed run of the
        same design (it skips all data movement)."""
        from repro.core.soc import run_design
        d = DesignPoint(lanes=4, partitions=4)
        iso = run_isolated("gemm-ncubed", d)
        co = run_design("gemm-ncubed", d)
        assert iso.total_ticks < co.total_ticks


class TestNaiveTransplant:
    def test_dma_keeps_parallelism(self):
        iso = DesignPoint(lanes=16, partitions=16)
        naive = naive_design_for("gemm-ncubed", iso, SCENARIOS["dma32"])
        assert naive.lanes == 16
        assert naive.partitions == 16
        assert naive.pipelined_dma and naive.dma_triggered_compute

    def test_cache_sized_to_footprint(self):
        iso = DesignPoint(lanes=16, partitions=16)
        naive = naive_design_for("gemm-ncubed", iso, SCENARIOS["cache32"])
        assert naive.mem_interface == "cache"
        # gemm footprint = 3 x 2 KB = 6 KB -> smallest size >= 6 KB is 8 KB.
        assert naive.cache_size_kb == 8

    def test_cache_ports_match_isolated_bandwidth(self):
        iso = DesignPoint(lanes=8, partitions=16)
        naive = naive_design_for("gemm-ncubed", iso, SCENARIOS["cache32"])
        assert naive.cache_ports == 8  # largest allowed <= 16


class TestOptimaAndImprovement:
    def test_scenario_optimum_quick(self):
        opt, results = run_scenario_optimum("aes-aes", SCENARIOS["dma32"],
                                            density="quick")
        assert opt in results
        assert all(opt.edp <= r.edp for r in results)

    def test_edp_improvement_structure(self):
        imp = edp_improvement("aes-aes", SCENARIOS["dma32"], density="quick")
        assert imp["improvement"] == pytest.approx(
            imp["naive_edp"] / imp["codesigned_edp"])
        assert imp["improvement"] >= 1.0  # optimum can't be worse than naive*

    def test_codesign_beats_naive_for_cache_scenarios(self):
        """The paper's co-design claim, on one representative workload."""
        imp = edp_improvement("spmv-crs", SCENARIOS["cache32"],
                              density="quick")
        assert imp["improvement"] > 1.0


class TestPipelineFamily:
    def test_family_covers_the_grid(self):
        from repro.core.scenarios import run_pipeline_family
        rows = run_pipeline_family(["aes-aes", "kmp", "viterbi"],
                                   depths=(2, 3),
                                   buffer_bytes=(256, 512),
                                   handoffs=("dma", "cache"),
                                   check=True)
        # Per depth: 2 DMA buffer sizes + 1 cache row.
        assert len(rows) == 2 * 3
        assert {r["depth"] for r in rows} == {2, 3}
        assert all(r["ordering_clean"] for r in rows)
        assert all(r["makespan_ticks"] > 0 for r in rows)
        cache_rows = [r for r in rows if r["handoff"] == "cache"]
        assert all(r["buffer_bytes"] is None for r in cache_rows)

    def test_family_records_backpressure_and_speedup(self):
        from repro.core.scenarios import run_pipeline_family
        rows = run_pipeline_family(["aes-aes", "kmp"], depths=(2,),
                                   buffer_bytes=(512,), handoffs=("dma",))
        row = rows[0]
        assert row["speedup_vs_serial"] == pytest.approx(
            row["serial_ticks"] / row["makespan_ticks"])
        assert len(row["stage_ticks"]) == 2
        assert row["consumer_parks"] >= 1

    def test_family_progress_callback(self):
        from repro.core.scenarios import run_pipeline_family
        seen = []
        run_pipeline_family(["aes-aes", "kmp"], depths=(2,),
                            buffer_bytes=(256,), handoffs=("dma",),
                            progress=lambda i, n, row: seen.append((i, n)))
        assert seen == [(1, 1)]

    def test_double_buffer_axis_skips_cache(self):
        from repro.core.scenarios import run_pipeline_family
        rows = run_pipeline_family(["aes-aes", "kmp"], depths=(2,),
                                   buffer_bytes=(512,),
                                   handoffs=("dma", "cache"),
                                   double_buffer=(False, True))
        dma = [r for r in rows if r["handoff"] == "dma"]
        cache = [r for r in rows if r["handoff"] == "cache"]
        assert {r["double_buffer"] for r in dma} == {False, True}
        assert {r["double_buffer"] for r in cache} == {False}
